"""Citation-network node classification, end to end.

The paper's motivating workload: classify papers in a citation graph
(Cora) with a 2-layer GCN. This example runs the *numeric* inference
through the reference model, verifies the accelerator's computation
order gives bit-equivalent predictions, and reports what the hardware
simulation says the inference would cost on every design point.

Run:  python examples/citation_classification.py
"""

import numpy as np

from repro import ArchConfig, build_model, load_dataset, run_design_suite
from repro.accel.designs import DESIGN_LABELS, DESIGN_NAMES


def main():
    dataset = load_dataset("cora", "scaled", seed=7)
    model = build_model(dataset)

    # --- numerics: both computation orders agree ----------------------
    trace = model.forward(dataset.features)            # A (X W) order
    trace_alt = model.forward_ax_w(dataset.features)   # (A X) W order
    agree = np.allclose(trace.probabilities, trace_alt.probabilities)
    predictions = np.argmax(trace.probabilities, axis=1)
    print(f"nodes classified: {predictions.size}")
    print(f"class histogram:  {np.bincount(predictions).tolist()}")
    print(f"computation orders agree numerically: {agree}")
    print(f"X2 density after ReLU: {trace.layer_input_density(1):.1%} "
          f"(Table 1 reports 78.0% for Cora)")
    print()

    # --- timing: the five design points of Fig. 14 --------------------
    reports = run_design_suite(dataset, base=ArchConfig(n_pes=256))
    base_cycles = reports["baseline"].total_cycles
    print(f"{'design':<24}{'latency':>12}{'util':>8}{'speedup':>9}")
    for design in DESIGN_NAMES:
        report = reports[design]
        print(
            f"{DESIGN_LABELS[design]:<24}"
            f"{report.latency_ms:>10.3f}ms"
            f"{report.utilization:>8.1%}"
            f"{base_cycles / report.total_cycles:>8.2f}x"
        )


if __name__ == "__main__":
    main()
