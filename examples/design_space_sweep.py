"""Design-space exploration: hops, PEs and area in one sweep.

A downstream architect's workflow: given a target graph (Pubmed here),
sweep the sharing distance and PE count, and read off the
performance/area Pareto the paper's Figs. 14-15 imply. Uses the area
model's published overhead fractions and the measured task-queue depths.

Run:  python examples/design_space_sweep.py
"""

from repro import ArchConfig, GcnAccelerator, load_dataset
from repro.accel.resources import estimate_resources, report_tq_depth
from repro.analysis.report import ascii_table


def main():
    dataset = load_dataset("pubmed", "scaled", seed=7)
    print(dataset.summary(), "\n")

    rows = []
    for n_pes in (128, 256, 512):
        for hop in (0, 1, 2):
            for remote in (False, True):
                if hop == 0 and remote:
                    continue  # remote switching assumes sharing hardware
                config = ArchConfig(
                    n_pes=n_pes, hop=hop, remote_switching=remote
                )
                report = GcnAccelerator(dataset, config).run()
                area = estimate_resources(
                    config, tq_depth=report_tq_depth(report)
                )
                label = f"h{hop}" + ("+remote" if remote else "")
                rows.append(
                    [
                        n_pes,
                        label,
                        f"{report.latency_ms:.3f}",
                        f"{report.utilization:.1%}",
                        f"{area.total_clb / 1e3:.1f}K",
                        f"{report.latency_ms * area.total_clb / 1e6:.3f}",
                    ]
                )
    print(
        ascii_table(
            ["PEs", "design", "latency ms", "util", "CLB", "ms*CLB (cost)"],
            rows,
            title="Pubmed design-space sweep (lower cost = better)",
        )
    )
    print(
        "\nReading: more hops buy utilization at tiny area cost; remote "
        "switching pays off once per-PE row counts leave it room to move."
    )


if __name__ == "__main__":
    main()
