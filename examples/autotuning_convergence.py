"""Watching the Eq. 5 auto-tuner converge on the Nell hub cluster.

This traces the paper's central mechanism round by round: each column
of the dense operand, the PESM identifies the hotspot/coldspot PE pair,
Eq. 5 sizes the row exchange, and the makespan shrinks until the map
freezes and is reused for the remaining columns.

Run:  python examples/autotuning_convergence.py
"""

import numpy as np

from repro import load_dataset
from repro.accel.localshare import share_makespan
from repro.accel.remote import RemoteAutoTuner
from repro.accel.workload import RowAssignment

HOP = 2
N_PES = 256


def main():
    dataset = load_dataset("nell", "scaled", seed=7)
    row_nnz = dataset.adjacency.row_nnz()
    assignment = RowAssignment(row_nnz, N_PES)
    tuner = RemoteAutoTuner(
        assignment,
        rows_per_pe_equal=row_nnz.size / N_PES,
    )
    ideal = -(-int(row_nnz.sum()) // N_PES)

    print(f"Nell A-SPMM on {N_PES} PEs with {HOP}-hop local sharing")
    print(f"ideal (perfectly balanced) round cost: {ideal} cycles\n")
    print(f"{'round':>5} {'makespan':>9} {'util':>7} {'gap':>8} "
          f"{'hot PE':>7} {'cold PE':>8} {'action'}")

    round_index = 0
    while not tuner.converged and round_index < 30:
        round_index += 1
        span = share_makespan(assignment.loads, HOP)
        hot = int(np.argmax(assignment.loads))
        cold = int(np.argmin(assignment.loads))
        moved = tuner.observe_round(span)
        if tuner.converged:
            action = f"FROZEN (best map restored)"
        elif moved:
            action = "rows switched"
        elif round_index == 1:
            action = "profiling (Eq. 5: N_1 = 0)"
        else:
            action = "-"
        print(
            f"{round_index:>5} {span:>9,} {ideal / span:>7.1%} "
            f"{tuner.gap_history[-1]:>8,} {hot:>7} {cold:>8}  {action}"
        )

    final_span = share_makespan(assignment.loads, HOP)
    print(
        f"\nconverged after {tuner.converged_round} rounds; "
        f"frozen map reused for the remaining columns at "
        f"{final_span:,} cycles/round ({ideal / final_span:.1%} utilization)"
    )

    # The Fig. 10 heat-map view of the same story (one char per PE; the
    # strip is wide, so show every 4th PE).
    from repro.analysis import rebalancing_heat_story, render_heat_story

    story = rebalancing_heat_story(row_nnz, N_PES, hop=HOP)
    thinned = [(label, strip[::4]) for label, strip in story]
    print("\nPE utilization heat strips (every 4th PE):")
    print(render_heat_story(thinned))


if __name__ == "__main__":
    main()
