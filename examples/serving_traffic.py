"""Serving: batched multi-graph inference with autotune caching.

Simulates a production-style serving scenario: a stream of GCN inference
requests over a pool of RMAT graph snapshots (Zipf-popular, like real
query mixes) is scheduled across two simulated accelerator instances.
The shared AutotuneCache persists each graph's converged Eq. 5 row map,
so repeat graphs skip the auto-tuner warm-up through the frozen fast
path — same cycle counts, a fraction of the simulation cost. The cache
is then saved and restored to show a warm service restart.

Run:  python examples/serving_traffic.py
"""

import tempfile
from pathlib import Path

from repro.accel import ArchConfig
from repro.serve import (
    AutotuneCache,
    InferenceService,
    serve_requests,
    synthetic_traffic,
)


def main():
    configs = (
        ArchConfig(n_pes=96, hop=1, remote_switching=True,
                   convergence_patience=3),
        ArchConfig(n_pes=128, hop=2, remote_switching=True,
                   convergence_patience=3),
    )
    requests = synthetic_traffic(
        40, n_graphs=4, n_nodes=4096, seed=7, configs=configs,
    )
    print(f"mix: {len(requests)} requests over 4 graphs, "
          f"{len(configs)} arch configs\n")

    cache = AutotuneCache()
    service = InferenceService(n_workers=2, cache=cache)
    service.submit_many(requests)
    outcome = service.drain()

    print(f"{'req':>4} {'graph':<20} {'batch':>5} {'inst':>4} "
          f"{'cycles':>10} {'latency':>9} {'util':>7}  cache")
    for result in outcome.results[:10]:
        print(
            f"{result.request_id:>4} {result.dataset:<20} "
            f"{result.batch:>5} {result.worker:>4} "
            f"{result.total_cycles:>10,} {result.latency_ms:>7.3f}ms "
            f"{result.utilization:>7.1%}  "
            f"{'hit' if result.cache_hit else 'MISS'}"
        )
    print(f"  ... ({len(outcome.results) - 10} more)\n")

    stats = outcome.stats
    print(f"throughput : {stats.requests_per_second:8.1f} req/s "
          f"({stats.wall_seconds * 1e3:.0f} ms wall)")
    print(f"cache      : {stats.cache_hits} hits / "
          f"{stats.cache_misses} misses ({stats.hit_rate:.0%} hit rate)")
    print(f"instances  : " + ", ".join(
        f"#{w.index}: {w.requests_served} reqs in {w.batches_served} batches"
        for w in outcome.workers
    ))

    # A restarted service loaded from the saved cache starts 100% warm.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "autotune.npz"
        cache.save(path)
        restarted = serve_requests(requests, n_workers=2,
                                   cache=AutotuneCache.load(path))
    print(f"\nafter restart from {path.name}: "
          f"{restarted.stats.cache_hits}/{restarted.stats.n_requests} hits, "
          f"{restarted.stats.requests_per_second:.1f} req/s")
    identical = all(
        a.total_cycles == b.total_cycles
        for a, b in zip(outcome.results, restarted.results)
    )
    print(f"restarted results cycle-identical: {identical}")


if __name__ == "__main__":
    main()
