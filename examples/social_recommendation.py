"""Social-network recommendation: a custom graph through the full stack.

The paper's intro motivates GCN acceleration with e-commerce and social
recommendation — huge power-law user graphs evaluated continuously
("on events like Black Friday"). This example builds a *custom*
synthetic social graph (not one of the five benchmark datasets) with
the raw substrate APIs, then measures how each design point copes and
what sustained inference throughput the accelerator would deliver.

Run:  python examples/social_recommendation.py
"""

import numpy as np

from repro.accel import ArchConfig, GcnAccelerator
from repro.accel.designs import DESIGN_LABELS
from repro.datasets import gcn_normalize, rmat_edges
from repro.datasets.features import dense_weight_matrix, sparse_feature_matrix
from repro.datasets.synthetic import GcnDataset
from repro.sparse import CooMatrix, distribution_stats

N_USERS = 30_000
N_FOLLOWS = 400_000
EMBED_IN, HIDDEN, N_CATEGORIES = 256, 32, 20


def build_social_dataset(seed=11):
    """A power-law follower graph with engagement-feature embeddings."""
    rng = np.random.default_rng(seed)
    src, dst = rmat_edges(
        N_USERS, N_FOLLOWS, abcd=(0.57, 0.19, 0.17, 0.07), rng=rng
    )
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    adjacency = gcn_normalize(
        CooMatrix((N_USERS, N_USERS), rows, cols, np.ones(rows.size))
    )
    features = sparse_feature_matrix(
        N_USERS, EMBED_IN, density=0.08, rng=rng, row_skew=0.8
    )
    weights = [
        dense_weight_matrix(EMBED_IN, HIDDEN, rng=rng),
        dense_weight_matrix(HIDDEN, N_CATEGORIES, rng=rng),
    ]
    x2_row_nnz = np.minimum(
        rng.poisson(0.7 * HIDDEN, size=N_USERS), HIDDEN
    ).astype(np.int64)
    return GcnDataset(
        name="social",
        preset="custom",
        seed=seed,
        adjacency=adjacency,
        features=features,
        weights=weights,
        x1_row_nnz=features.row_nnz(),
        x2_row_nnz=x2_row_nnz,
    )


def main():
    dataset = build_social_dataset()
    stats = distribution_stats(dataset.adjacency.row_nnz())
    print(dataset.summary())
    print(f"follower-count skew: {stats.describe()}\n")

    configs = {
        "baseline": ArchConfig(n_pes=512, hop=0),
        "design_a": ArchConfig(n_pes=512, hop=1),
        "design_d": ArchConfig(n_pes=512, hop=2, remote_switching=True),
    }
    print(f"{'design':<24}{'latency':>12}{'util':>8}{'graphs/sec':>12}")
    for name, config in configs.items():
        report = GcnAccelerator(dataset, config).run()
        throughput = 1000.0 / report.latency_ms
        print(
            f"{DESIGN_LABELS.get(name, name):<24}"
            f"{report.latency_ms:>10.3f}ms"
            f"{report.utilization:>8.1%}"
            f"{throughput:>12.1f}"
        )
    print(
        "\nAt Black-Friday load, the rebalanced design re-evaluates the "
        "whole user graph that much more often per second."
    )


if __name__ == "__main__":
    main()
