"""Quickstart: simulate AWB-GCN inference on Cora.

Loads the Cora-calibrated synthetic dataset, runs the no-rebalancing
baseline and the full AWB design (2-hop local sharing + remote
switching), and prints latency, PE utilization and the speedup — the
experiment behind the paper's Fig. 14(A).

Run:  python examples/quickstart.py

Serving
-------
This runs *one* inference. For the multi-graph serving scenario — a
stream of requests scheduled across a pool of simulated accelerators,
with converged Eq. 5 row maps cached per (graph, config) so repeat
graphs skip the auto-tuner warm-up — see :mod:`repro.serve`,
``examples/serving_traffic.py`` and the ``repro serve-bench`` CLI
subcommand.
"""

from repro import ArchConfig, GcnAccelerator, load_dataset


def main():
    dataset = load_dataset("cora", "scaled", seed=7)
    print(dataset.summary())
    print()

    baseline_cfg = ArchConfig(n_pes=256, hop=0, remote_switching=False)
    awb_cfg = ArchConfig(n_pes=256, hop=2, remote_switching=True)

    baseline = GcnAccelerator(dataset, baseline_cfg).run()
    awb = GcnAccelerator(dataset, awb_cfg).run()

    print(f"{'design':<28}{'cycles':>12}{'latency':>12}{'PE util':>10}")
    for label, report in (("baseline", baseline), ("AWB (h2 + remote)", awb)):
        print(
            f"{label:<28}{report.total_cycles:>12,}"
            f"{report.latency_ms:>10.3f}ms"
            f"{report.utilization:>10.1%}"
        )
    speedup = baseline.total_cycles / awb.total_cycles
    print(f"\nruntime rebalancing speedup: {speedup:.2f}x "
          f"(paper reports ~2.1x for Cora)")

    print("\nper-SPMM utilization (AWB design):")
    for result in awb.spmm_results:
        converged = (
            f"tuner converged at round {result.converged_round}"
            if result.converged_round
            else "static map"
        )
        print(
            f"  {result.job_name:<10} util={result.utilization:6.1%}  "
            f"cycles={result.total_cycles:>9,}  ({converged})"
        )


if __name__ == "__main__":
    main()
