"""Inside the machine: cycle-level simulation of the SPMM engine.

Runs the detailed event-driven simulator (Omega network with contention,
per-PE task queues, MAC pipelines with RaW stall buffers) on a small
power-law matrix, verifies the numeric product against numpy, and shows
how local sharing changes the per-PE picture — the microscopic view of
what the fast cycle model summarizes.

Run:  python examples/microarchitecture_trace.py
"""

import numpy as np

from repro import simulate_spmm_detailed
from repro.sparse import CooMatrix

N_PES = 8


def build_matrix(rng):
    """A 64x48 matrix with three hub rows (the local-imbalance pattern)."""
    dense = rng.normal(size=(64, 48))
    dense[rng.random(dense.shape) > 0.10] = 0.0
    dense[0:3, :] = rng.normal(size=(3, 48))  # hub rows on PE 0
    return dense


def describe(stats, label):
    busy = stats.busy_cycles
    print(f"--- {label} ---")
    print(f"cycles: {stats.cycles}   utilization: {stats.utilization:.1%}   "
          f"RaW stall events: {stats.stall_events}   "
          f"peak queue depth: {stats.max_queue_occupancy}")
    bar_unit = max(busy.max() // 40, 1)
    for pe, cycles in enumerate(busy):
        bar = "#" * (cycles // bar_unit)
        print(f"  PE{pe}: {cycles:>6} busy  {bar}")
    print()


def main():
    rng = np.random.default_rng(5)
    dense = build_matrix(rng)
    a = CooMatrix.from_dense(dense)
    b = rng.normal(size=(48, 4))
    expected = dense @ b
    print(f"SPMM: {a.shape[0]}x{a.shape[1]} sparse (nnz={a.nnz}) "
          f"x dense {b.shape[0]}x{b.shape[1]} on {N_PES} PEs\n")

    for hop, label in ((0, "baseline (no sharing)"),
                       (1, "1-hop local sharing"),
                       (2, "2-hop local sharing")):
        result, stats = simulate_spmm_detailed(
            a, b, n_pes=N_PES, hop=hop, mac_latency=5
        )
        assert np.allclose(result, expected), "numerics must be exact"
        describe(stats, label)

    print("Numeric result matches numpy exactly in every configuration.")
    print("Note how sharing drains PE0's overload into its neighbours "
          "while the accumulation still lands in PE0's ACC bank.")


if __name__ == "__main__":
    main()
