"""Streaming serving: arrival-rate sweep under a latency SLO.

Sweeps the offered load on the event-driven inference service: the same
Zipf-popular RMAT graph mix arrives as a Poisson stream at increasing
request rates, every request carrying an end-to-end latency SLO. The
sweep traces the U-shaped latency curve of SLO-aware batching: at low
rates batches cannot fill, so requests wait until their deadline slack
expires and latency hugs the SLO; at healthy rates batches fill long
before their deadlines and latency collapses to near pure service
time; past saturation queueing takes over and the tail grows again.
Everything runs on the simulated clock, so every number is
deterministic. A final bursty run shows why arrival *shape*, not just
rate, matters: bursts fill batches instantly even at a modest mean
rate.

Run:  python examples/streaming_traffic.py
"""

from repro.accel import ArchConfig
from repro.serve import AutotuneCache, serve_requests, streaming_traffic

N_REQUESTS = 64
SLO_MS = 10.0
RATES = (100.0, 400.0, 6400.0, 51200.0)


def run_mix(cache, rate, arrival="poisson"):
    requests = streaming_traffic(
        N_REQUESTS,
        arrival_rate=rate,
        arrival=arrival,
        slo_ms=SLO_MS,
        n_graphs=4,
        n_nodes=2048,
        seed=7,
        configs=(ArchConfig(n_pes=64, hop=1, remote_switching=True),),
    )
    return serve_requests(
        requests, n_workers=2, cache=cache, max_batch=8
    )


def describe(label, outcome):
    latency, stats = outcome.latency, outcome.stats
    print(
        f"{label:>14} {stats.n_batches:>7} "
        f"{latency.p50_ms:>8.3f} {latency.p95_ms:>8.3f} "
        f"{latency.p99_ms:>8.3f} {latency.mean_queue_ms:>9.3f} "
        f"{latency.slo_attainment:>8.1%} "
        f"{stats.modeled_requests_per_second:>9.0f}"
    )


def main():
    print(f"{N_REQUESTS} requests, 4 RMAT graphs, {SLO_MS:g} ms SLO, "
          f"2 instances, max_batch 8\n")
    print(f"{'arrivals':>14} {'batches':>7} {'p50ms':>8} {'p95ms':>8} "
          f"{'p99ms':>8} {'queue ms':>9} {'SLO att':>8} {'req/s':>9}")

    # One shared cache across the sweep: rates change *when* requests
    # arrive, never what they compute, so repeats hit the frozen path.
    cache = AutotuneCache()
    for rate in RATES:
        describe(f"poisson {rate:g}/s", run_mix(cache, rate))
    describe("bursty 400/s", run_mix(cache, 400.0, arrival="bursty"))

    print(f"\nautotune cache after the sweep: {cache.stats.hits} hits / "
          f"{cache.stats.misses} misses over {len(cache)} entries")
    print("sparse arrivals wait out their deadline slack (latency hugs "
          "the SLO);\nhealthy rates fill batches early (latency drops); "
          "saturation queues (tail grows back).")


if __name__ == "__main__":
    main()
