"""Deep and multi-hop GCNs on the accelerator.

The paper's introduction motivates acceleration with the trend toward
*deeper* GCNs ("a GCN network with 152 layers has been proposed") and
Sec. 3.3 sketches multi-hop layers ``A (A (X W))`` whose three
multiplications pipeline. This example scales both axes on the Pubmed
graph: depth 2 -> 16 layers, and 1 -> 3 aggregation hops, showing how
cycle cost grows and how well the Fig. 8 pipeline hides the extra
A-stages.

Run:  python examples/deep_gcn.py
"""

import numpy as np

from repro import ArchConfig, load_dataset
from repro.accel import GcnAccelerator, jobs_for_layers

HIDDEN = 32
N_PES = 256


def deep_jobs(dataset, n_layers, a_hops):
    """Job lists for an n-layer GCN with a fixed hidden width."""
    rng = np.random.default_rng(0)
    a_row_nnz = dataset.adjacency.row_nnz()
    specs = []
    for index in range(n_layers):
        if index == 0:
            x_row_nnz = dataset.x1_row_nnz
        else:
            # Hidden activations after ReLU: roughly half non-zero.
            x_row_nnz = np.minimum(
                rng.poisson(0.5 * HIDDEN, size=dataset.n_nodes), HIDDEN
            ).astype(np.int64)
        specs.append((f"L{index + 1}", x_row_nnz, HIDDEN))
    return jobs_for_layers(a_row_nnz, specs, a_hops=a_hops)


def main():
    dataset = load_dataset("pubmed", "scaled", seed=7)
    config = ArchConfig(n_pes=N_PES, hop=2, remote_switching=True)
    print(dataset.summary())
    print(f"running on {N_PES} PEs, 2-hop sharing + remote switching\n")

    print(f"{'layers':>7} {'A-hops':>7} {'cycles':>12} {'latency':>11} "
          f"{'util':>7} {'pipeline gain':>14}")
    for n_layers in (2, 4, 8, 16):
        for a_hops in (1, 2, 3):
            jobs = deep_jobs(dataset, n_layers, a_hops)
            report = GcnAccelerator.from_jobs(
                jobs, config, name="deep-pubmed"
            ).run()
            gain = np.mean([l.pipeline_speedup for l in report.layers])
            print(
                f"{n_layers:>7} {a_hops:>7} {report.total_cycles:>12,} "
                f"{report.latency_ms:>9.3f}ms {report.utilization:>7.1%} "
                f"{gain:>13.2f}x"
            )
    print(
        "\nEach extra aggregation hop adds an A-SPMM per layer, but the "
        "column pipeline overlaps it with the neighbouring stages, so "
        "cost grows sub-linearly in hops."
    )


if __name__ == "__main__":
    main()
