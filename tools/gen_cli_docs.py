"""Generate docs/cli.md from the live argparse tree.

The reference is rendered from ``repro.cli.build_parser()`` itself, so
it cannot drift from the code silently: CI regenerates it and fails on
any difference (``--check``). Regenerate after changing the CLI with::

    PYTHONPATH=src python tools/gen_cli_docs.py

Usage::

    python tools/gen_cli_docs.py [--check] [--out docs/cli.md]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import build_parser  # noqa: E402

HEADER = """\
# CLI reference

Every subcommand of `python -m repro`, rendered from the live
`--help` output. **Generated file — do not edit by hand**; regenerate
with `PYTHONPATH=src python tools/gen_cli_docs.py` (CI fails when this
page drifts from `repro/cli.py`).
"""


def _subparsers(parser):
    """The (name, parser) pairs of every registered subcommand."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            seen = {}
            for name, sub in action.choices.items():
                # choices maps aliases too; keep first name per parser.
                if id(sub) not in seen:
                    seen[id(sub)] = (name, sub)
            return list(seen.values())
    return []


def render():
    """The full markdown reference as a string."""
    # argparse wraps help to the terminal width; pin it for stable output.
    import os

    os.environ["COLUMNS"] = "79"
    parser = build_parser()
    sections = [HEADER]
    sections.append("## repro\n\n```text\n" + parser.format_help() + "```\n")
    for name, sub in _subparsers(parser):
        sections.append(
            f"## repro {name}\n\n```text\n" + sub.format_help() + "```\n"
        )
    return "\n".join(sections)


def main(argv=None):
    args = argparse.ArgumentParser(description=__doc__)
    args.add_argument("--check", action="store_true",
                      help="fail (exit 1) if docs/cli.md is out of date "
                           "instead of rewriting it")
    args.add_argument("--out", default=str(REPO_ROOT / "docs" / "cli.md"))
    opts = args.parse_args(argv)

    out = Path(opts.out)
    rendered = render()
    if opts.check:
        current = out.read_text() if out.exists() else ""
        if current != rendered:
            print(f"{out} is out of date with repro/cli.py; regenerate "
                  f"with: PYTHONPATH=src python tools/gen_cli_docs.py",
                  file=sys.stderr)
            return 1
        print(f"{out} is in sync with repro/cli.py")
        return 0
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(rendered)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
