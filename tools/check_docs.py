"""Documentation health checks: links resolve, quickstart runs.

Two independent checks, both exercised by CI's docs job (and the link
half by ``tests/test_docs.py``):

* ``--links``: every relative markdown link in ``README.md`` and
  ``docs/*.md`` must point at an existing file or directory (external
  ``http(s)://`` / ``mailto:`` links and pure ``#anchor`` links are
  skipped — the repo is developed offline).
* ``--quickstart``: every ``python`` code fence in ``README.md`` is
  executed (in order, in one namespace per fence) with ``src/`` on the
  path, so the advertised snippets can never rot.

With no flags, both checks run. Exit code 0 = healthy.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) — excluding images; target split from an optional title.
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _doc_files():
    docs = [REPO_ROOT / "README.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in docs if path.exists()]


def check_links():
    """Verify relative links in README.md and docs/*.md; returns errors."""
    errors = []
    for doc in _doc_files():
        text = doc.read_text()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link "
                    f"-> {target}"
                )
    return errors


def check_quickstart():
    """Run every python fence in README.md in a subprocess; returns errors."""
    readme = REPO_ROOT / "README.md"
    fences = _FENCE.findall(readme.read_text())
    if not fences:
        return ["README.md: no ```python quickstart fence found"]
    errors = []
    for index, code in enumerate(fences):
        with tempfile.NamedTemporaryFile(
            "w", suffix=".py", delete=False
        ) as handle:
            handle.write(code)
            script = handle.name
        try:
            result = subprocess.run(
                [sys.executable, script],
                cwd=REPO_ROOT,
                env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
                capture_output=True,
                text=True,
                timeout=300,
            )
            if result.returncode != 0:
                errors.append(
                    f"README.md python fence #{index + 1} failed "
                    f"(exit {result.returncode}):\n{result.stderr.strip()}"
                )
        except subprocess.TimeoutExpired:
            errors.append(
                f"README.md python fence #{index + 1} timed out (300 s)"
            )
        finally:
            Path(script).unlink(missing_ok=True)
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--links", action="store_true",
                        help="only check markdown links")
    parser.add_argument("--quickstart", action="store_true",
                        help="only run the README python fences")
    args = parser.parse_args(argv)
    run_links = args.links or not args.quickstart
    run_quickstart = args.quickstart or not args.links

    errors = []
    if run_links:
        errors.extend(check_links())
    if run_quickstart:
        errors.extend(check_quickstart())
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        checked = [
            name for name, on in (
                ("links", run_links), ("quickstart", run_quickstart)
            ) if on
        ]
        print(f"docs healthy ({', '.join(checked)} ok)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
