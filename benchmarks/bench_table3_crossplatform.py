"""Table 3 — cross-platform latency and energy comparison.

Claims checked (paper Sec. 5.4): AWB beats CPU by ~2 orders of
magnitude, GPU by ~1-2 orders, the no-rebalancing baseline by ~2.7x on
average (most on Nell), and the EIE-like reference tracks the baseline;
the accelerator also wins on energy efficiency everywhere.
"""

from conftest import run_once, save_artifact

from repro.analysis import table3_crossplatform
from repro.analysis.crossplatform import mean_speedups


def test_table3_crossplatform(benchmark, bench_preset, bench_seed, bench_pes):
    rows, text = run_once(
        benchmark,
        table3_crossplatform,
        preset=bench_preset,
        seed=bench_seed,
        n_pes=bench_pes,
    )
    save_artifact("table3_crossplatform", rows, text)

    means = mean_speedups(rows)
    # Headline ordering: CPU slowest, then GPU, then EIE/baseline, AWB 1x.
    assert means["cpu"] > means["gpu"] > means["baseline"] > 1.0
    assert means["cpu"] > 50.0          # paper: 246.7x
    assert means["gpu"] > 10.0          # paper: 78.9x
    assert 1.3 < means["baseline"] < 8  # paper: 2.7x
    # EIE tracks the baseline within a few percent (clock difference).
    assert abs(means["eie"] - means["baseline"]) / means["baseline"] < 0.1

    # Nell is the biggest baseline win (paper: 7.3x).
    by_key = {(r["platform"], r["dataset"]): r for r in rows}
    nell_gain = by_key[("baseline", "nell")]["awb_speedup"]
    for name in ("cora", "citeseer", "pubmed", "reddit"):
        assert nell_gain >= by_key[("baseline", name)]["awb_speedup"]

    # Energy: the accelerator is the most efficient platform per dataset.
    datasets = {r["dataset"] for r in rows}
    for name in datasets:
        awb = by_key[("awb", name)]["inferences_per_kj"]
        for platform in ("cpu", "gpu", "baseline", "eie"):
            assert awb >= by_key[(platform, name)]["inferences_per_kj"]
