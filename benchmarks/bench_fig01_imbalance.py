"""Fig. 1 — adjacency non-zero distribution imbalance (Cora, Pubmed).

Claim checked: per-row non-zero counts are heavily skewed (power-law
tails), the root cause of PE workload imbalance.
"""

import numpy as np

from conftest import run_once, save_artifact

from repro.analysis import fig_nnz_distribution
from repro.datasets import load_dataset
from repro.sparse import distribution_stats


def test_fig01_imbalance(benchmark, bench_preset, bench_seed):
    rows, text = run_once(
        benchmark,
        fig_nnz_distribution,
        preset=bench_preset,
        seed=bench_seed,
        datasets=["cora", "pubmed"],
    )
    save_artifact("fig01_imbalance", rows, text)

    for name in ("cora", "pubmed"):
        ds = load_dataset(name, bench_preset, seed=bench_seed)
        stats = distribution_stats(ds.adjacency.row_nnz())
        # Heavy tail: the heaviest row is many times the mean, and the
        # Gini coefficient shows real concentration.
        assert stats.max_over_mean > 10.0, name
        assert stats.gini > 0.35, name
        # A long tail exists: the 99th percentile dwarfs the median.
        assert stats.p99_over_median > 3.0, name

    # The histogram mass sits at low counts (most rows are light).
    cora_rows = [r for r in rows if r["dataset"] == "cora"]
    total = sum(r["rows"] for r in cora_rows)
    light = sum(r["rows"] for r in cora_rows if r["nnz_hi"] <= 16)
    assert light / total > 0.8
