"""Fig. 9 — the paper's illustrative 8-PE imbalance example.

Claims checked, using the paper's own toy numbers: balanced = 2 cycles,
local imbalance = 5, remote imbalance = 7; local sharing repairs the
local pattern, remote switching the remote one.
"""

from conftest import run_once, save_artifact

from repro.analysis.report import ascii_table
from repro.analysis.toy import (
    fig9_local_loads,
    fig9_remote_loads,
    toy_after_remote_switching,
    toy_round_cycles,
)


def build_toy_table():
    cases = {
        "local imbalance (Fig. 9A)": fig9_local_loads(),
        "remote imbalance (Fig. 9B)": fig9_remote_loads(),
    }
    rows = []
    for label, loads in cases.items():
        switched = toy_after_remote_switching(loads)
        rows.append(
            {
                "case": label,
                "no rebalancing": toy_round_cycles(loads),
                "1-hop sharing": toy_round_cycles(loads, hop=1),
                "2-hop sharing": toy_round_cycles(loads, hop=2),
                "after remote switching": toy_round_cycles(switched),
            }
        )
    text = ascii_table(
        ["case", "none", "1-hop", "2-hop", "remote-switched"],
        [
            [
                r["case"], r["no rebalancing"], r["1-hop sharing"],
                r["2-hop sharing"], r["after remote switching"],
            ]
            for r in rows
        ],
        title="Fig. 9 toy — round delay in cycles (ideal = 2)",
    )
    return rows, text


def test_fig09_toy(benchmark):
    rows, text = run_once(benchmark, build_toy_table)
    save_artifact("fig09_toy", rows, text)

    local, remote = rows
    # The paper's exact numbers.
    assert local["no rebalancing"] == 5
    assert remote["no rebalancing"] == 7
    # Local sharing repairs the local pattern...
    assert local["2-hop sharing"] == 2
    # ...but not the remote one; switching finishes the job.
    assert remote["1-hop sharing"] >= 4
    assert remote["after remote switching"] == 2
