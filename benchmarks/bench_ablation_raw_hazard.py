"""Ablation — MAC pipeline depth and the RaW hazard bound.

At the paper's design point (T = 5 with four task queues) the stall
buffer plus arbiter hide same-row hazards entirely. This bench deepens
the MAC pipeline until the cooldown bound binds on the hub-dominated
Nell workload, quantifying why the stall-buffer + multi-queue design is
load-bearing.
"""

from conftest import run_once, save_artifact

from repro.accel import ArchConfig, SpmmJob, simulate_spmm
from repro.analysis.report import ascii_table
from repro.datasets import load_dataset

MAC_DEPTHS = (5, 8, 12, 20, 32)


def sweep_mac_depth(*, preset, seed, n_pes):
    ds = load_dataset("nell", preset, seed=seed)
    job = SpmmJob(
        name="A(XW)",
        row_nnz=ds.adjacency.row_nnz(),
        n_rounds=ds.feature_dims[1],
    )
    rows = []
    for depth in MAC_DEPTHS:
        config = ArchConfig(
            n_pes=n_pes, hop=2, mac_latency=depth, queues_per_pe=4
        )
        result = simulate_spmm(job, config)
        rows.append(
            {
                "mac_latency": depth,
                "raw_cooldown": config.raw_cooldown,
                "total_cycles": result.total_cycles,
                "utilization": result.utilization,
            }
        )
    text = ascii_table(
        ["MAC depth T", "visible cooldown", "cycles", "util"],
        [
            [
                r["mac_latency"], r["raw_cooldown"], r["total_cycles"],
                f"{r['utilization']:.1%}",
            ]
            for r in rows
        ],
        title="Ablation — RaW cooldown vs MAC pipeline depth (Nell A-SPMM)",
    )
    return rows, text


def test_ablation_raw_hazard(benchmark, bench_preset, bench_seed, bench_pes):
    rows, text = run_once(
        benchmark, sweep_mac_depth,
        preset=bench_preset, seed=bench_seed, n_pes=bench_pes,
    )
    save_artifact("ablation_raw_hazard", rows, text)

    # At the paper's design point hazards are hidden (cooldown 1).
    assert rows[0]["raw_cooldown"] == 1
    # Deeper pipelines expose a growing cooldown and eventually bind.
    cycles = [r["total_cycles"] for r in rows]
    assert cycles[-1] > cycles[0]
    assert all(b >= a for a, b in zip(cycles, cycles[1:]))
