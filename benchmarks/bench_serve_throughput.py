"""Serving throughput — the autotune cache under repeated-graph traffic.

Claims checked: on a request mix dominated by repeat graphs, enabling
the :class:`~repro.serve.AutotuneCache` (a) speeds the service up by at
least 5x wall-clock, because cache hits replay the converged Eq. 5 row
map through the vectorized frozen fast path instead of re-running the
tuner warm-up, and (b) changes no model semantics: every cache-hit
report is cycle-identical to the cold run of the same request, and the
aggregate cycle/utilization numbers match exactly.
"""

from conftest import run_once, save_artifact

from repro.serve import compare_caching


def test_serve_throughput(benchmark, bench_seed):
    rows, text = run_once(
        benchmark,
        compare_caching,
        n_requests=96,
        n_graphs=4,
        n_nodes=16384,
        n_pes=192,
        n_workers=2,
        seed=bench_seed,
    )
    save_artifact("serve_throughput", rows, text)

    table = {r["mode"]: r for r in rows}
    cold, warm, cmp_row = table["no-cache"], table["cache"], table["speedup"]

    # The cache never changes what the hardware would do — only how fast
    # the simulator can say it. Exact equality, not approximate.
    assert cmp_row["total_cycles"] == "identical"
    assert warm["total_cycles"] == cold["total_cycles"]
    assert warm["mean_util"] == cold["mean_util"]

    # A cold service tunes every request from scratch; the warm one only
    # pays the tuner once per unique (graph, config).
    assert cold["cache_hits"] == 0
    assert warm["cache_hits"] == 96 - 4
    assert warm["hit_rate"] > 0.9

    # The acceptance bar: >= 5x serving speedup from caching alone
    # (measured ~10x; 5 leaves headroom for noisy CI machines).
    assert cmp_row["req_per_s"] >= 5.0, text
