"""Micro-benchmark — the detailed cycle-level engine.

Times the event-driven simulator on a small power-law SPMM and checks
its verdicts track the fast model (the validation the rest of the suite
relies on). Also doubles as a regression guard on simulator throughput.
"""

import numpy as np

from conftest import run_once, save_artifact

from repro.accel import ArchConfig, SpmmJob, simulate_spmm
from repro.analysis.report import ascii_table
from repro.hw import simulate_spmm_detailed
from repro.sparse import CooMatrix


def run_detailed(*, seed):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(64, 48))
    dense[rng.random(dense.shape) > 0.15] = 0.0
    dense[:3, :] = rng.normal(size=(3, 48))  # hot rows
    a = CooMatrix.from_dense(dense)
    b = rng.normal(size=(48, 4))
    rows = []
    for hop in (0, 1, 2):
        result, stats = simulate_spmm_detailed(
            a, b, n_pes=16, hop=hop, mac_latency=5
        )
        assert np.allclose(result, dense @ b)
        job = SpmmJob(name="bench", row_nnz=a.row_nnz(), n_rounds=4)
        fast = simulate_spmm(
            job, ArchConfig(n_pes=16, hop=hop, drain_cycles=0)
        )
        rows.append(
            {
                "hop": hop,
                "detailed_cycles": stats.cycles,
                "fast_cycles": fast.total_cycles,
                "detailed_util": stats.utilization,
                "stall_events": stats.stall_events,
            }
        )
    text = ascii_table(
        ["hop", "detailed cycles", "fast-model cycles", "util", "RaW stalls"],
        [
            [
                r["hop"], r["detailed_cycles"], r["fast_cycles"],
                f"{r['detailed_util']:.1%}", r["stall_events"],
            ]
            for r in rows
        ],
        title="Detailed engine vs fast model (64x48 power-law SPMM, 16 PEs)",
    )
    return rows, text


def test_detailed_engine(benchmark, bench_seed):
    rows, text = run_once(benchmark, run_detailed, seed=bench_seed)
    save_artifact("detailed_engine", rows, text)

    # Sharing helps in both models; verdicts agree.
    assert rows[1]["detailed_cycles"] < rows[0]["detailed_cycles"]
    assert rows[1]["fast_cycles"] < rows[0]["fast_cycles"]
    # The detailed engine never beats the fast model's bound by more
    # than warm-up slack, and stays within a small factor above it.
    for r in rows:
        assert r["detailed_cycles"] >= 0.6 * r["fast_cycles"]
        assert r["detailed_cycles"] <= 3.0 * r["fast_cycles"] + 200
