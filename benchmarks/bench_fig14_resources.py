"""Fig. 14 K-O — hardware resource consumption (CLBs): TQ vs other.

Claims checked: rebalancing logic itself is cheap (the 'other' area
grows only a few percent), while balanced workloads shrink the required
task-queue depth dramatically — so much that the full design can cost
*less* total area than the baseline on the skewed datasets (the paper's
Nell TQ depth drops 65128 -> 2675).
"""

from conftest import run_once, save_artifact

from repro.analysis import fig14_resources


def test_fig14_resources(benchmark, bench_preset, bench_seed, bench_pes):
    rows, text = run_once(
        benchmark,
        fig14_resources,
        preset=bench_preset,
        seed=bench_seed,
        n_pes=bench_pes,
    )
    save_artifact("fig14_resources", rows, text)

    table = {(r["dataset"], r["design"]): r for r in rows}
    datasets = sorted({r["dataset"] for r in rows})

    for name in datasets:
        base = table[(name, "baseline")]
        best = table[(name, "design_d")]
        # TQ depth shrinks with rebalancing on every dataset.
        assert best["tq_depth"] <= base["tq_depth"], name
        # Rebalance logic is a small fraction of the non-TQ area
        # (paper: 2.7% + 4.3% + 1.9% classes of overhead).
        overhead = best["other_clb"] / base["other_clb"] - 1.0
        assert overhead < 0.12, name

    # On the most skewed dataset the TQ savings beat the logic overhead:
    # the full design is smaller than the baseline overall.
    nell_base = table[("nell", "baseline")]
    nell_best = table[("nell", "design_d")]
    assert nell_best["total_clb"] < nell_base["total_clb"]
    # And the reduction is large (paper: ~24x depth reduction).
    assert nell_best["tq_depth"] * 5 < nell_base["tq_depth"]
