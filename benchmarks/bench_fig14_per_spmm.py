"""Fig. 14 F-J — per-SPMM cycle breakdown: ideal vs sync cycles.

Claims checked: in the baseline, sync (imbalance) cycles concentrate in
the A(XW) SPMMs — the adjacency-driven jobs — and rebalancing removes
most of them; the X W jobs are comparatively balanced (except layer-1
Cora, which the paper also calls out).
"""

from collections import defaultdict

from conftest import run_once, save_artifact

from repro.analysis import fig14_per_spmm


def test_fig14_per_spmm(benchmark, bench_preset, bench_seed, bench_pes):
    rows, text = run_once(
        benchmark,
        fig14_per_spmm,
        preset=bench_preset,
        seed=bench_seed,
        n_pes=bench_pes,
    )
    save_artifact("fig14_per_spmm", rows, text)

    # Index: dataset -> design -> spmm -> row.
    table = defaultdict(dict)
    for r in rows:
        table[(r["dataset"], r["design"])][r["spmm"]] = r

    datasets = sorted({r["dataset"] for r in rows})
    for name in datasets:
        base = table[(name, "baseline")]
        best = table[(name, "design_d")]
        # Sync share of the baseline's A(XW) jobs exceeds its XW jobs'
        # on the skewed graphs (the paper's central observation).
        if name in ("pubmed", "nell"):
            a_sync = base["L1:A(XW)"]["sync_cycles"] / max(
                base["L1:A(XW)"]["total_cycles"], 1
            )
            xw_sync = base["L2:XW"]["sync_cycles"] / max(
                base["L2:XW"]["total_cycles"], 1
            )
            assert a_sync > xw_sync, name
        # Rebalancing cuts the A(XW) sync cycles substantially.
        for job in ("L1:A(XW)", "L2:A(XW)"):
            assert (
                best[job]["sync_cycles"] <= base[job]["sync_cycles"]
            ), (name, job)
        # Utilization of every job improves or holds under design D.
        for job, row in best.items():
            assert (
                row["utilization"] >= base[job]["utilization"] - 0.02
            ), (name, job)

    # Nell's baseline A-SPMM utilization is the starkest (paper: ~13%
    # overall driven by this job).
    nell_a = table[("nell", "baseline")]["L1:A(XW)"]["utilization"]
    assert nell_a < 0.2
