"""Shared fixtures and helpers for the benchmark suite.

Every bench regenerates one of the paper's tables or figures: it runs
the analysis harness once inside ``benchmark.pedantic`` (the work is
seconds-long, so no repetition), saves the rendered table and the raw
rows under ``results/``, prints the table, and asserts the paper's
qualitative claim about it.

Dataset sizing: ``REPRO_BENCH_PRESET`` selects ``scaled`` (default) or
``full``; ``scaled`` keeps every dataset laptop-tractable while
preserving the skew profiles that drive the results (see DESIGN.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import rows_to_csv

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BENCH_PRESET = os.environ.get("REPRO_BENCH_PRESET", "scaled")
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
# The paper pins 1024 PEs for the cross-platform table and sweeps
# 512-1024 for scalability but never states the Fig. 14 count; 256 keeps
# rows/PE in the regime its utilization figures imply (see DESIGN.md).
BENCH_PES = int(os.environ.get("REPRO_BENCH_PES", "256"))


@pytest.fixture(scope="session")
def bench_preset():
    """Dataset preset used across the bench suite."""
    return BENCH_PRESET


@pytest.fixture(scope="session")
def bench_seed():
    """Seed used across the bench suite."""
    return BENCH_SEED


@pytest.fixture(scope="session")
def bench_pes():
    """PE count used across the bench suite."""
    return BENCH_PES


def run_once(benchmark, fn, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)


def save_artifact(name, rows, text):
    """Persist a bench artifact (CSV rows + rendered table) and print it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rows_to_csv(rows, RESULTS_DIR / f"{name}.csv")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
