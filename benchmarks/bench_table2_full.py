"""Table 2 at the *published* sizes — direct cell-level reproduction.

The scaled presets shrink Nell's feature width and Reddit's node count,
which changes Table 2's absolute cells. On the full presets the op-count
formulas reproduce the paper's numbers directly, because every term is
determined by Table 1's published statistics:

    cora:     ALL (AX)W 62.8M   vs  ALL A(XW) 1.33M
    citeseer: ALL (AX)W 198.0M  vs  ALL A(XW) 2.23M
    pubmed:   ALL (AX)W 165.5M  vs  ALL A(XW) 18.6M
    nell:     ALL (AX)W 258G    vs  ALL A(XW) 782M

Reddit's full preset (24M-non-zero adjacency) is excluded by default to
keep the bench light; set REPRO_BENCH_REDDIT_FULL=1 to include it.
"""

import os

import pytest

from conftest import run_once, save_artifact

from repro.analysis import table2_ordering

PAPER_CELLS = {
    # dataset: (ALL (AX)W, ALL A(XW)) from the paper's Table 2.
    "cora": (62.8e6, 1.33e6),
    "citeseer": (198.0e6, 2.23e6),
    "pubmed": (165.5e6, 18.6e6),
    "nell": (258e9, 782e6),
    "reddit": (17.1e9, 6.6e9),
}


def test_table2_full_presets(benchmark, bench_seed):
    datasets = ["cora", "citeseer", "pubmed", "nell"]
    if os.environ.get("REPRO_BENCH_REDDIT_FULL") == "1":
        datasets.append("reddit")
    rows, text = run_once(
        benchmark,
        table2_ordering,
        preset="full",
        seed=bench_seed,
        datasets=datasets,
    )
    save_artifact("table2_full", rows, text)

    for row in rows:
        paper_ax_w, paper_a_xw = PAPER_CELLS[row["dataset"]]
        # The dense-GEMM-dominated (AX)W term is pinned by the published
        # dimensions, so it must land very close.
        assert row["total_ax_w"] == pytest.approx(paper_ax_w, rel=0.10), (
            row["dataset"]
        )
        # The A(XW) term depends on the synthetic nnz counts, which are
        # calibrated to Table 1's densities; allow a wider band.
        assert row["total_a_xw"] == pytest.approx(paper_a_xw, rel=0.35), (
            row["dataset"]
        )
