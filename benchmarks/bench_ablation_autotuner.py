"""Ablation — the Eq. 5 auto-tuner's knobs.

Sweeps the switch damping (the multiplier on Eq. 5's R/2 step) and the
PESM tracking window, isolating the remote-switching contribution the
paper attributes to the Utilization Gap Tracker design.
"""

from conftest import run_once, save_artifact

from repro.accel import ArchConfig, SpmmJob, simulate_spmm
from repro.analysis.report import ascii_table
from repro.datasets import load_dataset

DAMPINGS = (0.25, 0.5, 1.0, 2.0)
WINDOWS = (1, 2, 4)


def sweep_autotuner(*, preset, seed, n_pes):
    ds = load_dataset("nell", preset, seed=seed)
    job = SpmmJob(
        name="A(XW)",
        row_nnz=ds.adjacency.row_nnz(),
        n_rounds=ds.feature_dims[1],
    )
    rows = []
    static = simulate_spmm(job, ArchConfig(n_pes=n_pes, hop=2))
    rows.append(
        {
            "variant": "no-remote",
            "damping": 0.0,
            "window": 0,
            "total_cycles": static.total_cycles,
            "converged_round": -1,
        }
    )
    for damping in DAMPINGS:
        for window in WINDOWS:
            config = ArchConfig(
                n_pes=n_pes,
                hop=2,
                remote_switching=True,
                switch_damping=damping,
                tracking_window=window,
                convergence_patience=3,
            )
            result = simulate_spmm(job, config)
            rows.append(
                {
                    "variant": f"d={damping} w={window}",
                    "damping": damping,
                    "window": window,
                    "total_cycles": result.total_cycles,
                    "converged_round": result.converged_round or -1,
                }
            )
    text = ascii_table(
        ["variant", "cycles", "converged at round"],
        [
            [r["variant"], r["total_cycles"], r["converged_round"]]
            for r in rows
        ],
        title="Ablation — Eq. 5 damping and PESM tracking window (Nell A-SPMM)",
    )
    return rows, text


def test_ablation_autotuner(benchmark, bench_preset, bench_seed, bench_pes):
    rows, text = run_once(
        benchmark, sweep_autotuner,
        preset=bench_preset, seed=bench_seed, n_pes=bench_pes,
    )
    save_artifact("ablation_autotuner", rows, text)

    static = rows[0]["total_cycles"]
    tuned = [r for r in rows if r["variant"] != "no-remote"]
    # Remote switching helps at every setting on the clustered graph.
    assert all(r["total_cycles"] <= static for r in tuned)
    # The paper's setting (damping 1.0, window 2) is competitive with
    # the best setting in the sweep — the defaults are sane. (The sweep
    # regularly finds a gentler damping a few percent better; the paper
    # itself notes the step calculation is approximated in hardware.)
    best = min(r["total_cycles"] for r in tuned)
    paper_setting = next(
        r for r in tuned if r["damping"] == 1.0 and r["window"] == 2
    )
    assert paper_setting["total_cycles"] <= best * 1.30
