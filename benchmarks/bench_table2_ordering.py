"""Table 2 — operations required under the two computation orders.

Claim checked (paper Sec. 3.1): ``A (X W)`` needs drastically fewer
multiplications than ``(A X) W`` on every dataset — "since the
difference is obviously huge, in our design we first perform X x W".
"""

from conftest import run_once, save_artifact

from repro.analysis import table2_ordering


def test_table2_ordering(benchmark, bench_preset, bench_seed):
    rows, text = run_once(
        benchmark, table2_ordering, preset=bench_preset, seed=bench_seed
    )
    save_artifact("table2_ordering", rows, text)

    for row in rows:
        # The chosen order wins on every dataset...
        assert row["total_a_xw"] < row["total_ax_w"], row["dataset"]
        # ...and the ratio is meaningful everywhere. The paper's own
        # smallest ratio is Reddit at ~2.6x (17.1G vs 6.6G); the
        # citation graphs sit in the tens-to-hundreds.
        assert row["ratio"] > 2.0, row["dataset"]

    # Layer 1 is where the huge gap lives (X1 is widest and sparsest).
    for row in rows:
        layer1_ratio = row["l1_ax_w"] / max(row["l1_a_xw"], 1)
        layer2_ratio = row["l2_ax_w"] / max(row["l2_a_xw"], 1)
        assert layer1_ratio > layer2_ratio, row["dataset"]
