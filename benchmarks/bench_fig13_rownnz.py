"""Fig. 13 — row-nnz distributions of Citeseer, Nell and Reddit.

Claims checked: all three are skewed; Nell is by far the most
concentrated ("the non-zeros are quite clustered"); Reddit, while huge,
is comparatively balanced ("Reddit by itself is already very balanced").
"""

from conftest import run_once, save_artifact

from repro.analysis import fig_nnz_distribution
from repro.datasets import load_dataset
from repro.sparse import distribution_stats


def test_fig13_rownnz(benchmark, bench_preset, bench_seed):
    rows, text = run_once(
        benchmark,
        fig_nnz_distribution,
        preset=bench_preset,
        seed=bench_seed,
        datasets=["citeseer", "nell", "reddit"],
    )
    save_artifact("fig13_rownnz", rows, text)

    stats = {}
    for name in ("citeseer", "nell", "reddit"):
        ds = load_dataset(name, bench_preset, seed=bench_seed)
        stats[name] = distribution_stats(ds.adjacency.row_nnz())

    # Nell is the most skewed on every axis.
    assert stats["nell"].gini > stats["citeseer"].gini
    assert stats["nell"].gini > stats["reddit"].gini
    assert stats["nell"].max_over_mean > 100.0
    # Reddit is the most balanced of the three relative to its mean.
    assert stats["reddit"].cv < stats["nell"].cv
    assert stats["reddit"].cv < stats["citeseer"].cv
