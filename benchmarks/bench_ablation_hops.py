"""Ablation — local-sharing hop distance sweep (0 to 4 hops).

The paper discusses the hop count as a design trade-off: "by
considering more hop neighbors, we obtain a more balanced design at the
cost of higher hardware complexity and area". This bench quantifies the
diminishing returns: each extra hop helps less, while the published
area overheads grow roughly linearly.
"""

from conftest import run_once, save_artifact

from repro.accel import ArchConfig, GcnAccelerator
from repro.accel.resources import estimate_resources, report_tq_depth
from repro.analysis.report import ascii_table
from repro.datasets import load_dataset

HOPS = (0, 1, 2, 3, 4)


def sweep_hops(*, preset, seed, n_pes):
    rows = []
    for name in ("cora", "nell"):
        ds = load_dataset(name, preset, seed=seed)
        for hop in HOPS:
            config = ArchConfig(n_pes=n_pes, hop=hop)
            report = GcnAccelerator(ds, config).run()
            resources = estimate_resources(
                config, tq_depth=report_tq_depth(report)
            )
            rows.append(
                {
                    "dataset": name,
                    "hop": hop,
                    "total_cycles": report.total_cycles,
                    "utilization": report.utilization,
                    "total_clb": resources.total_clb,
                }
            )
    text = ascii_table(
        ["dataset", "hop", "cycles", "util", "CLB"],
        [
            [
                r["dataset"], r["hop"], r["total_cycles"],
                f"{r['utilization']:.1%}", f"{r['total_clb']:.0f}",
            ]
            for r in rows
        ],
        title="Ablation — hop-distance sweep",
    )
    return rows, text


def test_ablation_hops(benchmark, bench_preset, bench_seed, bench_pes):
    rows, text = run_once(
        benchmark, sweep_hops,
        preset=bench_preset, seed=bench_seed, n_pes=bench_pes,
    )
    save_artifact("ablation_hops", rows, text)

    for name in ("cora", "nell"):
        series = [r for r in rows if r["dataset"] == name]
        cycles = [r["total_cycles"] for r in series]
        # Monotone: more hops never slow things down.
        assert all(a >= b for a, b in zip(cycles, cycles[1:])), name
        # Diminishing returns: the first hop buys more than the fourth.
        first_gain = cycles[0] - cycles[1]
        last_gain = cycles[3] - cycles[4]
        assert first_gain >= last_gain, name

    # Nell needs more hops: its relative gain from hop 2 -> 3 exceeds
    # Cora's (the reason the paper switches Nell to 2/3-hop designs).
    def relative_gain(name, a, b):
        series = {r["hop"]: r["total_cycles"] for r in rows
                  if r["dataset"] == name}
        return (series[a] - series[b]) / series[a]

    assert relative_gain("nell", 2, 3) >= relative_gain("cora", 2, 3) - 0.01
