"""Fig. 15 — scalability with the number of PEs (512 / 768 / 1024).

Claims checked: the baseline's utilization drops as PEs grow (fewer rows
per PE to average out imbalance) so its performance scales sub-linearly;
local+remote holds utilization roughly flat and scales near-linearly;
local-only sits in between.
"""

from conftest import run_once, save_artifact

from repro.analysis import fig15_scalability

PE_COUNTS = (512, 768, 1024)


def test_fig15_scalability(benchmark, bench_preset, bench_seed):
    rows, text = run_once(
        benchmark,
        fig15_scalability,
        preset=bench_preset,
        seed=bench_seed,
        pe_counts=PE_COUNTS,
    )
    save_artifact("fig15_scalability", rows, text)

    table = {(r["dataset"], r["variant"], r["n_pes"]): r for r in rows}
    datasets = sorted({r["dataset"] for r in rows})

    for name in datasets:
        # Full rebalancing always at least matches the other variants'
        # performance at the largest PE count.
        top = PE_COUNTS[-1]
        both = table[(name, "local+remote", top)]
        base = table[(name, "baseline", top)]
        local = table[(name, "local", top)]
        assert both["total_cycles"] <= local["total_cycles"]
        assert local["total_cycles"] <= base["total_cycles"]

        # Utilization at scale: local+remote >= local >= baseline.
        assert both["utilization"] >= local["utilization"] - 0.02
        assert local["utilization"] >= base["utilization"] - 0.02

    # On the skewed graphs the baseline's utilization *degrades* as PEs
    # grow, while local+remote stays within a few points of its 512-PE
    # value — the paper's headline scalability claim. This comparison
    # needs enough rows per PE for rebalancing to have moves available:
    # Cora/Citeseer at 1024 PEs have ~3 rows per PE, where single heavy
    # rows exceed the ideal share and *no* row migration can help (a
    # granularity limit the model makes explicit; see EXPERIMENTS.md).
    from repro.datasets import load_dataset

    for name in datasets:
        if name == "reddit":
            continue  # already balanced; nothing to degrade
        ds = load_dataset(name, bench_preset, seed=bench_seed)
        if ds.n_nodes / 1024 < 16:
            continue  # granularity-bound at the largest PE count
        base_drop = (
            table[(name, "baseline", 512)]["utilization"]
            - table[(name, "baseline", 1024)]["utilization"]
        )
        both_drop = (
            table[(name, "local+remote", 512)]["utilization"]
            - table[(name, "local+remote", 1024)]["utilization"]
        )
        assert base_drop >= both_drop - 0.05, name

    # Near-linear scaling of the full design: 1024 PEs deliver at least
    # 1.5x the 512-PE throughput (ideal: 2x) wherever rows-per-PE leave
    # the rebalancer room to work (same granularity caveat as above).
    for name in datasets:
        ds = load_dataset(name, bench_preset, seed=bench_seed)
        if ds.n_nodes / 1024 < 16:
            continue
        ratio = (
            table[(name, "local+remote", 512)]["total_cycles"]
            / table[(name, "local+remote", 1024)]["total_cycles"]
        )
        assert ratio > 1.45, name
