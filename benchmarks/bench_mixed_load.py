"""Multi-tenant co-scheduling sweep (``compare_mixed_load``).

Claims checked on identical mixed-traffic traces — deadline-critical
small queries, SLO'd batch queries and oversized sharded jobs on one
Poisson stream — served by the same instance pool with co-scheduling
off (exclusive gangs) and on (gang claims + priority classes +
boundary preemption + shared-fabric pricing):

(a) at *every* swept arrival rate, co-scheduling improves SLO
    attainment or modeled throughput — it never trades both away;
(b) the improvement is not a freebie from serving less work: both
    modes serve every request (nothing shed, same sharded count);
(c) the sweep exercises the sharded path at every point (the mix
    really is multi-tenant, not batch-only).

``REPRO_MIXED_SMOKE=1`` shrinks the trace to a seconds-long
configuration (CI runs it) while asserting the same claims.
"""

import os

from conftest import run_once, save_artifact

from repro.analysis import compare_mixed_load

SMOKE = os.environ.get("REPRO_MIXED_SMOKE") == "1"
SWEEP_KWARGS = {"n_requests": 48} if SMOKE else {"n_requests": 120}


def test_bench_mixed_load(benchmark, bench_seed):
    rows, text = run_once(
        benchmark, compare_mixed_load, seed=bench_seed, **SWEEP_KWARGS
    )
    save_artifact("mixed_load", rows, text)

    off_rows = [r for r in rows if r["mode"] == "off"]
    on_rows = [r for r in rows if r["mode"] == "on"]
    assert off_rows and len(off_rows) == len(on_rows), text

    # (a) Co-scheduling improves attainment or throughput everywhere.
    for off, on in zip(off_rows, on_rows):
        assert on["slo_attainment"] > off["slo_attainment"] or (
            on["slo_attainment"] == off["slo_attainment"]
            and on["makespan_ms"] <= off["makespan_ms"]
        ), (off["rate"], text)
    assert "improves SLO attainment or throughput" in text, text

    # (b) Same work served in both modes.
    for off, on in zip(off_rows, on_rows):
        assert on["n_sharded"] == off["n_sharded"], (off["rate"], text)

    # (c) The mix is genuinely multi-tenant at every point.
    assert all(r["n_sharded"] > 0 for r in rows), text
