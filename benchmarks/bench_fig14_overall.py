"""Fig. 14 A-E — overall inference delay and PE utilization, 5 designs.

Claims checked: rebalancing monotonically improves cycles and
utilization (baseline -> A -> B and C -> D); the full design reaches
high utilization everywhere; Nell gains the most (its baseline is the
most starved); Reddit starts near-balanced so gains are small.
"""

from conftest import run_once, save_artifact

from repro.accel.designs import DESIGN_NAMES
from repro.analysis import fig14_overall


def test_fig14_overall(benchmark, bench_preset, bench_seed, bench_pes):
    rows, text = run_once(
        benchmark,
        fig14_overall,
        preset=bench_preset,
        seed=bench_seed,
        n_pes=bench_pes,
    )
    save_artifact("fig14_overall", rows, text)

    table = {(r["dataset"], r["design"]): r for r in rows}
    datasets = sorted({r["dataset"] for r in rows})

    for name in datasets:
        base = table[(name, "baseline")]
        best = table[(name, "design_d")]
        # Rebalanced designs never lose to the baseline.
        for design in DESIGN_NAMES[1:]:
            assert (
                table[(name, design)]["total_cycles"]
                <= base["total_cycles"]
            ), (name, design)
        # The full design reaches high utilization (paper: 89-99%).
        assert best["utilization"] > 0.80, name
        # Wider sharing never hurts: B <= A, D <= C in cycles.
        assert (
            table[(name, "design_b")]["total_cycles"]
            <= table[(name, "design_a")]["total_cycles"]
        )
        assert (
            table[(name, "design_d")]["total_cycles"]
            <= table[(name, "design_c")]["total_cycles"]
        )

    # Baseline utilization ordering: Nell lowest, Reddit highest.
    base_util = {
        name: table[(name, "baseline")]["utilization"] for name in datasets
    }
    assert base_util["nell"] == min(base_util.values())
    assert base_util["reddit"] == max(base_util.values())

    # Nell gains the most; Reddit the least (paper: 7.2x vs ~1.07x).
    gains = {
        name: table[(name, "design_d")]["speedup_vs_baseline"]
        for name in datasets
    }
    assert gains["nell"] == max(gains.values())
    assert gains["reddit"] == min(gains.values())
    assert gains["nell"] > 2.5
    assert gains["reddit"] < 1.3
