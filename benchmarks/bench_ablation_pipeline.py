"""Ablation — inter-SPMM pipelining (Fig. 8) on vs off.

The paper claims two benefits: extra parallelism (sync gaps of one SPMM
filled by the other's queued work) and avoiding off-chip XW buffering.
This bench quantifies the first: the benefit is largest where workloads
are imbalanced, and near zero for balanced ones (a balanced pipeline is
work-bound either way).
"""

from conftest import run_once, save_artifact

from repro.accel import ArchConfig, GcnAccelerator
from repro.analysis.report import ascii_table
from repro.datasets import dataset_names, load_dataset


def sweep_pipeline(*, preset, seed, n_pes):
    rows = []
    for name in dataset_names():
        ds = load_dataset(name, preset, seed=seed)
        on = GcnAccelerator(
            ds, ArchConfig(n_pes=n_pes, hop=0, pipeline_spmm=True)
        ).run()
        off = GcnAccelerator(
            ds, ArchConfig(n_pes=n_pes, hop=0, pipeline_spmm=False)
        ).run()
        rows.append(
            {
                "dataset": name,
                "pipelined_cycles": on.total_cycles,
                "serial_cycles": off.total_cycles,
                "speedup": off.total_cycles / on.total_cycles,
            }
        )
    text = ascii_table(
        ["dataset", "pipelined", "serial", "speedup"],
        [
            [
                r["dataset"], r["pipelined_cycles"], r["serial_cycles"],
                f"{r['speedup']:.2f}x",
            ]
            for r in rows
        ],
        title="Ablation — Fig. 8 inter-SPMM pipelining (baseline engine)",
    )
    return rows, text


def test_ablation_pipeline(benchmark, bench_preset, bench_seed, bench_pes):
    rows, text = run_once(
        benchmark, sweep_pipeline,
        preset=bench_preset, seed=bench_seed, n_pes=bench_pes,
    )
    save_artifact("ablation_pipeline", rows, text)

    # Pipelining never hurts, and never fabricates throughput beyond
    # the shared-array work bound (speedup capped around 2x by
    # construction: two jobs fully overlapped at best).
    assert all(0.999 <= r["speedup"] <= 2.2 for r in rows)
    # Somewhere it pays substantially — the sync gaps of an
    # underutilized A-SPMM are filled with queued XW work.
    assert max(r["speedup"] for r in rows) > 1.2
