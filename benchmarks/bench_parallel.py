"""Wall-clock scaling of the multiprocessing backend (``parallel-bench``).

Claims checked:

* **Bit-identity (always):** the ``repro shard-bench`` sweep run with
  ``workers in {2, 4}`` emits *exactly* the rows of the sequential
  ``workers=1`` oracle — every cycle count, speedup, efficiency, comm
  fraction, migrated-block count and utilization. Worker count is a
  host-execution knob and must be invisible to the model.
* **Speedup (multi-core hosts only):** at 4 workers the sweep's wall
  time drops >= 2x. Speedup is host physics — on a single-core host
  the pool cannot beat the oracle (it only adds fork/IPC overhead), so
  this assertion is gated on the host actually having >= 4 usable
  CPUs; the artifact records ``host_cpus`` so a reader can tell which
  regime a row was measured in.

``REPRO_PARALLEL_SMOKE=1`` shrinks the sweep to a seconds-long
configuration (CI runs it so the harness cannot rot) while asserting
the same identity claim.
"""

import os

from conftest import run_once, save_artifact

from repro.analysis import compare_parallel_scaling, host_cpu_count

SMOKE = os.environ.get("REPRO_PARALLEL_SMOKE") == "1"
WORKER_COUNTS = (1, 2) if SMOKE else (1, 2, 4)
SWEEP_KWARGS = (
    {"worker_counts": WORKER_COUNTS, "chip_counts": (2,), "n_nodes": 2048,
     "weak_nodes_per_chip": 1024}
    if SMOKE
    else {"worker_counts": WORKER_COUNTS, "chip_counts": (4, 8),
          "n_nodes": 8192, "weak_nodes_per_chip": 2048, "repeats": 2}
)


def test_bench_parallel_scaling(benchmark, bench_seed):
    rows, text = run_once(
        benchmark, compare_parallel_scaling, seed=bench_seed,
        **SWEEP_KWARGS,
    )
    save_artifact("parallel_scaling", rows, text)

    # Bit-identity holds on every host, single-core included.
    assert all(r["identical"] in ("oracle", "yes") for r in rows), text

    by_workers = {r["workers"]: r for r in rows}
    assert set(by_workers) == set(WORKER_COUNTS), text

    # The >= 2x wall-clock claim needs real cores to run on; a host
    # with fewer CPUs than workers physically cannot exhibit it (the
    # artifact's host_cpus column records which regime this was).
    if not SMOKE and host_cpu_count() >= 4:
        assert by_workers[4]["speedup"] >= 2.0, text
