"""Topology x rebalancing-signal sweep (``shard-topology``).

Claims checked on an internally-clustered hub-heavy RMAT graph with
coarse migration blocks (nnz-balanced shards can still hide slow
intra-chip structure — the regime the static load signal cannot see):

(a) cycle-feedback rebalancing (migrate on measured per-chip cycles) is
    at least as good as load-signal rebalancing in every fabric, and
    strictly better in at least one cell;
(b) a ring is strictly slower than all-to-all at equal *aggregate*
    bandwidth, for every signal and overlap setting — contended
    multi-hop routes cost real cycles even when the total fabric
    bandwidth matches;
(c) double-buffered halo/compute overlap never loses to the serialized
    transfer model.

``REPRO_SHARD_SMOKE=1`` shrinks the graph to a seconds-long
configuration (CI runs it) while asserting the same claims.
"""

import os

from conftest import run_once, save_artifact

from repro.analysis import compare_shard_topology

SMOKE = os.environ.get("REPRO_SHARD_SMOKE") == "1"
SWEEP_KWARGS = (
    {"n_nodes": 4096, "n_chips": 4}
    if SMOKE
    else {"n_nodes": 8192, "n_chips": 4}
)


def test_bench_shard_topology(benchmark, bench_seed):
    rows, text = run_once(
        benchmark, compare_shard_topology, seed=bench_seed, **SWEEP_KWARGS
    )
    save_artifact("shard_topology", rows, text)

    by_cell = {
        (r["topology"], r["signal"], r["overlap"]): r["cycles"] for r in rows
    }
    topologies = ("all-to-all", "ring", "mesh2d")

    # (a) Measured-cycle feedback >= static load signal everywhere
    # (the feedback controller's round 0 is the load-signal plan and
    # the best map is restored, so it can only tie or win); at full
    # size the measurement finds what load balance cannot and wins
    # strictly somewhere.
    strict = False
    for topology in topologies:
        for overlap in (False, True):
            load = by_cell[(topology, "load", overlap)]
            feedback = by_cell[(topology, "cycles", overlap)]
            assert feedback <= load, (topology, overlap, text)
            strict = strict or feedback < load
    if not SMOKE:
        assert strict, text

    # (b) Ring strictly slower than all-to-all at equal aggregate
    # bandwidth, in every cell.
    for signal in ("load", "cycles"):
        for overlap in (False, True):
            ring = by_cell[("ring", signal, overlap)]
            a2a = by_cell[("all-to-all", signal, overlap)]
            assert ring > a2a, (signal, overlap, text)

    # (c) Overlap never loses to the serialized model.
    for topology in topologies:
        for signal in ("load", "cycles"):
            assert (
                by_cell[(topology, signal, True)]
                <= by_cell[(topology, signal, False)]
            ), (topology, signal, text)
