"""Straggler-recovery sweep (``compare_straggler``).

Claims checked on a default-mix RMAT graph with one chip slowing down
mid-run (onset lands inside a feedback round, so the ``"cycles"``
signal first sees a blended mid-round measurement):

(a) the frozen plan (static load signal, which never observes measured
    cycles) pays for the straggler in full: total cycles grow strictly
    with the slowdown factor;
(b) cycle-feedback rebalancing beats the frozen plan at every factor —
    it migrates row blocks off the straggling chip and recovers a
    strictly positive fraction of the straggler-induced gap;
(c) the recovered fraction is substantial, not a rounding artifact:
    at least 10% of the gap at every factor.

``REPRO_STRAGGLER_SMOKE=1`` shrinks the graph to a seconds-long
configuration (CI runs it) while asserting the same claims.
"""

import os

from conftest import run_once, save_artifact

from repro.analysis import compare_straggler

SMOKE = os.environ.get("REPRO_STRAGGLER_SMOKE") == "1"
SWEEP_KWARGS = {"n_nodes": 2048} if SMOKE else {"n_nodes": 4096}


def test_bench_straggler(benchmark, bench_seed):
    rows, text = run_once(
        benchmark, compare_straggler, seed=bench_seed, **SWEEP_KWARGS
    )
    save_artifact("straggler", rows, text)

    clean = next(r for r in rows if r["regime"] == "clean")["cycles"]
    frozen = [r for r in rows if r["regime"] == "frozen"]
    feedback = [r for r in rows if r["regime"] == "feedback"]
    assert frozen and len(frozen) == len(feedback), text

    # (a) The frozen plan pays for the straggler in full.
    frozen_cycles = [r["cycles"] for r in frozen]
    assert all(c > clean for c in frozen_cycles), text
    assert frozen_cycles == sorted(frozen_cycles), text

    # (b) Feedback strictly beats the frozen plan at every factor, with
    # at least one migration doing the work.
    for fr, fb in zip(frozen, feedback):
        assert fb["cycles"] < fr["cycles"], (fr["factor"], text)
        assert fb["migrated_blocks"] > 0, (fr["factor"], text)

    # (c) The recovery is substantial at every factor.
    for fb in feedback:
        assert float(fb["recovered"]) >= 0.10, (fb["factor"], text)
    assert "beats the frozen plan at every factor" in text, text
