"""Table 1 — sparsity and dimensions of the GCN matrices.

Claims checked (paper Sec. 2.2): A is ultra sparse (>= 99% zeros); X1 is
sparse for the citation graphs; X2 densifies after the first layer; W is
dense; feature widths shrink drastically layer over layer.
"""

from conftest import run_once, save_artifact

from repro.analysis import table1_profile


def test_table1_profiling(benchmark, bench_preset, bench_seed):
    rows, text = run_once(
        benchmark, table1_profile, preset=bench_preset, seed=bench_seed
    )
    save_artifact("table1_profiling", rows, text)

    by_name = {r["dataset"]: r for r in rows}
    for row in rows:
        # "A is quite sparse (sparsity >= 99%)"
        assert row["a_density"] <= 0.011, row["dataset"]
        # W is dense.
        assert row["w_density"] == 1.0
        # Feature widths shrink drastically: F1 >> F2 >= F3 is not
        # universal (Nell has F3 > F2) but F1 >> F2 always holds.
        assert row["f1"] > 4 * row["f2"]
    # X1 sparse for citation graphs (sparsity >= 90%).
    for name in ("cora", "citeseer"):
        assert by_name[name]["x1_density"] <= 0.10
    # X2 much denser than X1 ("X2 becomes much denser").
    for name in ("cora", "citeseer", "pubmed", "nell"):
        assert by_name[name]["x2_density"] > 5 * by_name[name]["x1_density"]
