"""Rebalancing-core speedups — vectorized EDF transport + batched tuning.

Claims checked: the vectorized rebalancing core is (a) *correct* — the
comparison harness itself refuses to time divergent results, and the
rows carry the tuner convergence round as a semantic fingerprint; (b)
*fast where it matters* — ``share_effective_loads`` beats the retired
heap transport by >= 5x at 1024+ PEs (the regime where the Python loop
hurt), and the batched Eq. 5 tuning driver never loses to the
sequential reference at any swept width.
"""

from conftest import run_once, save_artifact

from repro.analysis import compare_rebalance

PE_COUNTS = (64, 256, 1024, 4096)


def test_bench_rebalance(benchmark, bench_seed):
    rows, text = run_once(
        benchmark,
        compare_rebalance,
        pe_counts=PE_COUNTS,
        seed=bench_seed,
    )
    save_artifact("bench_rebalance", rows, text)

    assert [r["n_pes"] for r in rows] == list(PE_COUNTS)

    # The acceptance floor: the EDF transport rewrite pays off >= 5x on
    # wide arrays (timed under the hot-path contract, cap precomputed).
    for row in rows:
        if row["n_pes"] >= 1024:
            assert row["transport_speedup"] >= 5.0, (row, text)

    # The batched tuning driver must never lose to the sequential
    # reference (0.8 leaves headroom for timer noise on tiny widths
    # where both are sub-millisecond).
    for row in rows:
        assert row["tuning_speedup"] >= 0.8, (row, text)
