"""Streaming latency — SLO-aware scheduling under Poisson arrivals.

Claims checked: with requests arriving over simulated time under a
latency SLO, the event-driven service (a) keeps SLO attainment high by
cutting batches on deadline slack — visible as *more* batches than pure
size-capped batching would produce; (b) reports sane tail percentiles
(p50 <= p95 <= p99, all within the makespan); and (c) the autotune
cache stays semantically invisible: cached runs are cycle-identical
AND timeline-identical to cold runs (scheduling runs on the simulated
clock, which caching cannot touch), while still cutting the wall-clock
simulation cost severalfold.
"""

from conftest import run_once, save_artifact

from repro.serve import compare_latency

N_REQUESTS = 96
MAX_BATCH = 8


def test_serve_latency(benchmark, bench_seed):
    rows, text = run_once(
        benchmark,
        compare_latency,
        n_requests=N_REQUESTS,
        n_graphs=4,
        n_nodes=4096,
        n_pes=96,
        n_workers=2,
        seed=bench_seed,
        arrival_rate=400.0,
        slo_ms=20.0,
        max_batch=MAX_BATCH,
    )
    save_artifact("serve_latency", rows, text)

    table = {r["mode"]: r for r in rows}
    cold, warm, cmp_row = table["no-cache"], table["cache"], table["speedup"]

    # Caching must be invisible to the model AND to the simulated
    # clock: identical cycles, identical start/finish timestamps.
    assert cmp_row["makespan_s"] == "identical"  # cycle identity
    assert cmp_row["p50_ms"] == "identical"      # timeline identity
    for key in ("p50_ms", "p95_ms", "p99_ms", "queue_ms", "slo_attained",
                "makespan_s", "batches"):
        assert warm[key] == cold[key], key

    # Tail percentiles are ordered and the SLO mostly holds under a
    # load where batches routinely fill before their deadline.
    assert cold["p50_ms"] <= cold["p95_ms"] <= cold["p99_ms"]
    assert cold["slo_attained"] >= 0.9, text

    # Deadline-slack cutting is live: the schedule holds more batches
    # than pure size-capped batching (96 requests / max_batch 8 = 12)
    # because slack expiry seals some batches before they fill.
    assert cold["batches"] > N_REQUESTS // MAX_BATCH, text

    # The cache still pays for itself in wall-clock simulation cost
    # (measured ~7x; 3 leaves headroom for noisy CI machines).
    assert warm["hit_rate"] > 0.9
    assert cmp_row["wall_s"] >= 3.0, text
