"""Weak/strong scaling of sharded multi-chip execution (``shard-bench``).

Claims checked: on a hub-heavy power-law graph, (a) chip-level runtime
rebalancing (boundary-diffusion block migration driven by the Eq. 5
load signal) strictly beats the naive static equal-rows partition at
every multi-chip point, in both weak and strong scaling; (b) sharding
itself scales — every regime's strong-scaling speedup grows
monotonically with the chip count.

``REPRO_SHARD_SMOKE=1`` shrinks the sweep to a seconds-long
configuration (CI runs it so the harness cannot rot) while asserting
the same claims.
"""

import os

from conftest import run_once, save_artifact

from repro.analysis import compare_shard_scaling

SMOKE = os.environ.get("REPRO_SHARD_SMOKE") == "1"
CHIP_COUNTS = (1, 2, 4) if SMOKE else (1, 2, 4, 8)
# The smoke sweep drops the 8-chip points and the 16K-node weak graph
# but keeps >= 1024 rows per chip — below that, drain overhead and halo
# traffic dominate and sharding (rebalanced or not) stops paying at
# all, which is not the regime the scaling claims are about.
SWEEP_KWARGS = (
    {"chip_counts": CHIP_COUNTS, "n_nodes": 4096,
     "weak_nodes_per_chip": 2048}
    if SMOKE
    else {"chip_counts": CHIP_COUNTS}
)


HETERO_RING_KWARGS = (
    {"chip_counts": (1, 2, 4), "n_nodes": 4096, "weak_nodes_per_chip": 2048}
    if SMOKE
    else {"chip_counts": (1, 2, 4, 8)}
)


def test_bench_shard_scaling_hetero_ring(benchmark, bench_seed):
    """One heterogeneous big/little cluster on a ring fabric with halo
    overlap and cycle-feedback rebalancing — the full new-model stack in
    one sweep. The core claim carries over: runtime rebalancing beats
    the naive static partition at every multi-chip point, now measuring
    *time* on unequal chips instead of load on equal ones."""
    rows, text = run_once(
        benchmark, compare_shard_scaling, seed=bench_seed,
        topology="ring", hetero=True, overlap=True, feedback=True,
        hop_latency_cycles=8, **HETERO_RING_KWARGS,
    )
    save_artifact("shard_scaling_hetero", rows, text)

    by_cell = {
        (r["mode"], r["regime"], r["chips"]): r for r in rows
    }
    for mode in ("strong", "weak"):
        for chips in HETERO_RING_KWARGS["chip_counts"]:
            if chips == 1:
                continue
            static = by_cell[(mode, "rows", chips)]
            rebal = by_cell[(mode, "rows+rebal", chips)]
            assert rebal["cycles"] < static["cycles"], (mode, chips, text)
            assert rebal["migrated_blocks"] > 0, (mode, chips, text)


def test_bench_shard_scaling(benchmark, bench_seed):
    rows, text = run_once(
        benchmark, compare_shard_scaling, seed=bench_seed, **SWEEP_KWARGS
    )
    save_artifact("shard_scaling", rows, text)

    by_cell = {
        (r["mode"], r["regime"], r["chips"]): r for r in rows
    }
    modes = ("strong", "weak")

    # (a) Runtime rebalancing beats the naive static partition at every
    # multi-chip point — the subsystem's acceptance claim.
    for mode in modes:
        for chips in CHIP_COUNTS:
            if chips == 1:
                continue
            static = by_cell[(mode, "rows", chips)]
            rebal = by_cell[(mode, "rows+rebal", chips)]
            assert rebal["cycles"] < static["cycles"], (mode, chips, text)
            assert rebal["migrated_blocks"] > 0, (mode, chips, text)

    # (b) Strong scaling is monotone for every regime: more chips never
    # slow the fixed graph down.
    for regime in ("rows", "nnz", "rows+rebal"):
        cycles = [
            by_cell[("strong", regime, chips)]["cycles"]
            for chips in CHIP_COUNTS
        ]
        assert all(a >= b for a, b in zip(cycles, cycles[1:])), (
            regime, cycles, text
        )

    # Single-chip cells are identical across regimes (no partition, no
    # communication — the shared baseline).
    for mode in modes:
        base = {
            by_cell[(mode, regime, 1)]["cycles"]
            for regime in ("rows", "nnz", "rows+rebal")
        }
        assert len(base) == 1, (mode, base)
