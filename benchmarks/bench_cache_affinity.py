"""Cache-affinity routing sweep (``compare_cache_affinity``).

Claims checked on identical Zipf repeat-heavy streaming traces served
twice per arrival rate by the same partitioned instance pool — once
under the historical cache-blind dispatch, once under warm-aware
affinity routing with demand-driven hot-entry replication:

(a) at *every* swept arrival rate, affinity routing improves the
    aggregate cache hit rate AND wall-clock serving throughput, with
    SLO attainment no worse (the sweep's verdict line asserts this
    internally; the bench re-checks the rows);
(b) the improvement is placement, not semantics: the sweep raises if
    any per-request cycle count differs between the two modes;
(c) ``cache_mode="shared"`` stays the oracle: serving a trace with the
    explicit default kwargs is bit-identical (cycles, timestamps,
    cache stats) to a call that never mentions the new knobs.

``REPRO_AFFINITY_SMOKE=1`` shrinks the sweep to a seconds-long
configuration (CI runs it) while asserting the same claims.
"""

import os

from conftest import run_once, save_artifact

from repro.analysis import compare_cache_affinity
from repro.serve.service import serve_requests
from repro.serve.traffic import streaming_traffic

SMOKE = os.environ.get("REPRO_AFFINITY_SMOKE") == "1"
SWEEP_KWARGS = (
    {"n_requests": 48, "rates": (4000.0, 8000.0), "n_nodes": 2048}
    if SMOKE else {"n_requests": 96}
)


def test_bench_cache_affinity(benchmark, bench_seed):
    rows, text = run_once(
        benchmark, compare_cache_affinity, seed=bench_seed, **SWEEP_KWARGS
    )
    save_artifact("cache_affinity", rows, text)

    blind_rows = [r for r in rows if r["mode"] == "blind"]
    affinity_rows = [r for r in rows if r["mode"] == "affinity"]
    assert blind_rows and len(blind_rows) == len(affinity_rows), text

    # (a) Affinity wins hit rate and throughput at every swept rate,
    # SLO attainment no worse; the verdict line records the same.
    for blind, affinity in zip(blind_rows, affinity_rows):
        assert affinity["hit_rate"] > blind["hit_rate"], (blind["rate"], text)
        assert affinity["req_per_s"] > blind["req_per_s"], (
            blind["rate"], text,
        )
        assert affinity["slo_attainment"] >= blind["slo_attainment"], (
            blind["rate"], text,
        )
        # Placement columns only exist (and replication only fires) in
        # affinity mode.
        assert blind["placement_hit_rate"] == "", text
        assert affinity["placement_hit_rate"] != "", text
    assert "beats cache-blind dispatch at every swept rate" in text, text

    # (b) compare_cache_affinity raises on any per-request cycle
    # mismatch between modes, so reaching here proves cycle identity.

    # (c) Shared-mode identity: explicit default kwargs are a no-op.
    requests = streaming_traffic(
        12, arrival_rate=800.0, slo_ms=50.0, n_graphs=3, n_nodes=512,
        seed=bench_seed,
    )
    for request in requests:
        request.resolve_graph()
    oracle = serve_requests(requests, n_workers=2, cache=True, max_batch=4)
    explicit = serve_requests(
        requests, n_workers=2, cache=True, max_batch=4,
        cache_mode="shared", replicate_k=2, demand_half_life=0.05,
    )
    assert [(r.total_cycles, r.start_time, r.finish_time)
            for r in oracle.results] == [
        (r.total_cycles, r.start_time, r.finish_time)
        for r in explicit.results
    ]
    assert oracle.stats.cache_hits == explicit.stats.cache_hits
    assert oracle.stats.n_routed == explicit.stats.n_routed == 0
