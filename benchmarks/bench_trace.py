"""Trace-export smoke: ``repro trace`` on the mixed co-scheduled load.

Claims checked on the canned ``mixed`` scenario (the sharded trio that
forces an EASY backfill, ahead of a co-scheduled Poisson stream of
critical smalls, SLO'd batches and oversized sharded jobs):

(a) the exported document is valid Chrome-trace / Perfetto JSON (the
    schema validator returns no problems) and loads back intact;
(b) the stream carries the multi-tenant machinery: at least one
    backfill span, at least one preemption (with its ``request.resume``
    patch), per-layer ``cluster.chip_util`` counter events and a
    non-empty round-timeline CSV;
(c) the span tree is well formed, the stats views rebuilt from the
    stream alone equal the service's hand-folded aggregates, and the
    ``workers=4`` parallel replay records a bit-identical stream.

``REPRO_TRACE_SMOKE=1`` (the CI configuration) is accepted for
symmetry with the other smoke jobs; the scenario is already
seconds-long, so smoke and full runs are the same configuration.
"""

from conftest import RESULTS_DIR, run_once, save_artifact

from repro.analysis import run_trace_scenario, trace_summary
from repro.obs import (
    check_span_tree,
    latency_stats_view,
    load_chrome_trace,
    round_timeline_rows,
    service_stats_view,
    stream_fingerprint,
    validate_chrome_trace,
    write_chrome_trace,
)


def test_bench_trace(benchmark):
    outcome, tracer = run_once(
        benchmark, run_trace_scenario, name="mixed"
    )

    # (a) Valid, loadable Chrome-trace JSON.
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = write_chrome_trace(
        RESULTS_DIR / "trace_mixed.json", tracer.events,
        wall_events=tracer.wall_events,
    )
    doc = load_chrome_trace(path)
    assert validate_chrome_trace(doc) == [], path
    assert any(e["ph"] == "X" for e in doc["traceEvents"])

    # (b) The multi-tenant machinery is all present in the stream.
    names = {e.name for e in tracer.events}
    assert "backfill" in names and "preempt" in names, sorted(names)
    assert "request.resume" in names and "gang.claim" in names
    assert "cluster.chip_util" in names
    timeline = round_timeline_rows(tracer.events)
    assert timeline
    save_artifact(
        "trace_mixed_rounds", timeline,
        trace_summary("mixed", outcome, tracer),
    )

    # (c) Well-formed spans, stream-derived views, parallel identity.
    assert check_span_tree(tracer.events) == []
    assert service_stats_view(
        tracer.events, wall_seconds=outcome.stats.wall_seconds
    ) == outcome.stats
    assert latency_stats_view(tracer.events) == outcome.latency
    _, pooled = run_trace_scenario("mixed", workers=4)
    assert stream_fingerprint(pooled.events) == stream_fingerprint(
        tracer.events
    )
