"""Ablation — exact vs hardware-efficient Eq. 5 evaluation.

Sec. 4.2: "To reduce the hardware cost of division and multiplication
in calculating Gi/G1 x (R/2), we also design a hardware-efficient
approximation approach". This bench quantifies the cost of that
approximation (shift-based power-of-two ratios) against the exact
arithmetic on every dataset's layer-1 A-SPMM.
"""

from conftest import run_once, save_artifact

from repro.accel import ArchConfig, SpmmJob, simulate_spmm
from repro.analysis.report import ascii_table
from repro.datasets import dataset_names, load_dataset


def sweep_eq5(*, preset, seed, n_pes):
    rows = []
    for name in dataset_names():
        ds = load_dataset(name, preset, seed=seed)
        hop = 2 if name == "nell" else 1
        job = SpmmJob(
            name="A(XW)",
            row_nnz=ds.adjacency.row_nnz(),
            n_rounds=ds.feature_dims[1],
        )
        static = simulate_spmm(job, ArchConfig(n_pes=n_pes, hop=hop))
        exact = simulate_spmm(
            job, ArchConfig(n_pes=n_pes, hop=hop, remote_switching=True)
        )
        approx = simulate_spmm(
            job,
            ArchConfig(
                n_pes=n_pes, hop=hop, remote_switching=True,
                eq5_approximate=True,
            ),
        )
        rows.append(
            {
                "dataset": name,
                "static_cycles": static.total_cycles,
                "exact_cycles": exact.total_cycles,
                "approx_cycles": approx.total_cycles,
                "approx_penalty": approx.total_cycles / exact.total_cycles,
            }
        )
    text = ascii_table(
        ["dataset", "no-remote", "exact Eq.5", "shift Eq.5", "penalty"],
        [
            [
                r["dataset"], r["static_cycles"], r["exact_cycles"],
                r["approx_cycles"], f"{r['approx_penalty']:.3f}x",
            ]
            for r in rows
        ],
        title="Ablation — exact vs shift-approximated Eq. 5 (layer-1 A-SPMM)",
    )
    return rows, text


def test_ablation_eq5_approx(benchmark, bench_preset, bench_seed, bench_pes):
    rows, text = run_once(
        benchmark, sweep_eq5,
        preset=bench_preset, seed=bench_seed, n_pes=bench_pes,
    )
    save_artifact("ablation_eq5_approx", rows, text)

    for row in rows:
        # The approximation never loses the remote-switching benefit...
        assert row["approx_cycles"] <= row["static_cycles"] * 1.001, (
            row["dataset"]
        )
        # ...and costs at most a third over the exact arithmetic
        # (power-of-two ratio rounding is within sqrt(2) per step).
        assert row["approx_penalty"] <= 1.35, row["dataset"]
