"""Legacy setuptools shim.

This environment is offline and lacks the ``wheel`` package, so PEP 660
editable installs fail with ``invalid command 'bdist_wheel'``. Keeping a
``setup.py`` lets ``pip install -e . --no-build-isolation`` (and plain
``python setup.py develop``) work with the stock setuptools.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
