"""Straggler-event tests: mid-run slowdowns and feedback recovery.

A :class:`StragglerEvent` slows one chip's simulated compute by a
factor from a (possibly fractional) feedback round onward. These tests
pin the multiplier model (pre-onset clean, post-onset full factor,
onset-round coverage blend), the config validation, the bit-identity
of ``stragglers=None`` with the pre-straggler code path, and the
headline behavior: cycle-feedback rebalancing observes the slowdown
and beats the frozen load-signal plan.
"""

import numpy as np
import pytest

from repro.accel import ArchConfig
from repro.cluster import (
    ClusterConfig,
    StragglerEvent,
    simulate_multichip_gcn,
)
from repro.cluster.multichip import _straggler_multipliers
from repro.errors import ConfigError
from repro.serve import RmatGraphSpec

CHIP = ArchConfig(n_pes=32, hop=1, remote_switching=True)


def _cluster(signal="load", stragglers=None, **kwargs):
    return ClusterConfig(
        n_chips=4, chip=CHIP, strategy="nnz", rebalance_signal=signal,
        feedback_rounds=6, stragglers=stragglers, **kwargs
    )


def _dataset(n_nodes=1024, seed=7):
    return RmatGraphSpec(
        n_nodes=n_nodes, avg_degree=6, f1=16, f2=8, f3=4, seed=seed
    ).build()


class TestStragglerEvent:
    def test_defaults(self):
        ev = StragglerEvent(chip=1)
        assert ev.onset_round == 0.0
        assert ev.factor == 2.0

    def test_negative_chip_rejected(self):
        with pytest.raises(ConfigError):
            StragglerEvent(chip=-1)

    def test_factor_below_one_rejected(self):
        with pytest.raises(ConfigError):
            StragglerEvent(chip=0, factor=0.5)

    def test_negative_onset_rejected(self):
        with pytest.raises(ConfigError):
            StragglerEvent(chip=0, onset_round=-1.0)

    def test_non_finite_rejected(self):
        with pytest.raises(ConfigError):
            StragglerEvent(chip=0, factor=float("inf"))
        with pytest.raises(ConfigError):
            StragglerEvent(chip=0, onset_round=float("nan"))

    def test_cluster_coerces_tuples(self):
        cluster = _cluster(stragglers=((2, 1.5, 3.0),))
        ev = cluster.stragglers[0]
        assert isinstance(ev, StragglerEvent)
        assert (ev.chip, ev.onset_round, ev.factor) == (2, 1.5, 3.0)

    def test_cluster_rejects_out_of_range_chip(self):
        with pytest.raises(ConfigError):
            _cluster(stragglers=(StragglerEvent(chip=4),))


class TestMultiplierModel:
    def test_none_when_no_stragglers(self):
        assert _straggler_multipliers(_cluster()) is None

    def test_none_before_onset(self):
        cluster = _cluster(
            stragglers=(StragglerEvent(chip=1, onset_round=1.5, factor=3.0),)
        )
        # Round 0 covers [0, 1): entirely before the onset.
        assert _straggler_multipliers(cluster, 0) is None

    def test_blend_in_onset_round(self):
        cluster = _cluster(
            stragglers=(StragglerEvent(chip=1, onset_round=1.5, factor=3.0),)
        )
        # Round 1 covers [1, 2); the last half runs 3x slow, so the
        # measured rate is 0.5 + 0.5 * 3 = 2.0.
        mult = _straggler_multipliers(cluster, 1)
        assert mult is not None
        assert mult[1] == pytest.approx(2.0)
        assert np.all(mult[[0, 2, 3]] == 1.0)

    def test_full_factor_after_onset(self):
        cluster = _cluster(
            stragglers=(StragglerEvent(chip=1, onset_round=1.5, factor=3.0),)
        )
        mult = _straggler_multipliers(cluster, 2)
        assert mult[1] == pytest.approx(3.0)

    def test_steady_state_applies_full_factor(self):
        cluster = _cluster(
            stragglers=(StragglerEvent(chip=1, onset_round=99.0, factor=3.0),)
        )
        mult = _straggler_multipliers(cluster)
        assert mult[1] == pytest.approx(3.0)

    def test_factor_one_collapses_to_none(self):
        cluster = _cluster(
            stragglers=(StragglerEvent(chip=1, factor=1.0),)
        )
        assert _straggler_multipliers(cluster) is None


class TestStragglerSimulation:
    def test_none_is_bit_identical_to_default(self):
        dataset = _dataset()
        for signal in ("load", "cycles"):
            base = simulate_multichip_gcn(dataset, _cluster(signal))
            explicit = simulate_multichip_gcn(
                dataset, _cluster(signal, stragglers=None)
            )
            assert base.total_cycles == explicit.total_cycles
            assert np.array_equal(base.plan.owner, explicit.plan.owner)

    def test_straggler_slows_frozen_plan(self):
        dataset = _dataset()
        clean = simulate_multichip_gcn(dataset, _cluster("load"))
        ev = (StragglerEvent(chip=0, onset_round=1.5, factor=3.0),)
        frozen = simulate_multichip_gcn(dataset, _cluster("load", ev))
        assert frozen.total_cycles > clean.total_cycles
        # The load signal never observes measured cycles: same plan.
        assert np.array_equal(frozen.plan.owner, clean.plan.owner)

    def test_feedback_recovers_part_of_the_slowdown(self):
        dataset = _dataset()
        clean = simulate_multichip_gcn(dataset, _cluster("load"))
        ev = (StragglerEvent(chip=0, onset_round=1.5, factor=3.0),)
        frozen = simulate_multichip_gcn(dataset, _cluster("load", ev))
        feedback = simulate_multichip_gcn(dataset, _cluster("cycles", ev))
        assert feedback.total_cycles < frozen.total_cycles
        assert feedback.rebalance.migrated_blocks > 0
        gap = frozen.total_cycles - clean.total_cycles
        recovered = (frozen.total_cycles - feedback.total_cycles) / gap
        assert recovered > 0.10

    def test_mid_round_onset_observed(self):
        # An onset past the last feedback round is invisible to the
        # measurements; the same event landing mid-loop must produce a
        # different (migrated) plan than the frozen one.
        dataset = _dataset()
        late = simulate_multichip_gcn(
            dataset,
            _cluster(
                "cycles",
                (StragglerEvent(chip=0, onset_round=99.0, factor=3.0),),
            ),
        )
        mid = simulate_multichip_gcn(
            dataset,
            _cluster(
                "cycles",
                (StragglerEvent(chip=0, onset_round=1.5, factor=3.0),),
            ),
        )
        assert mid.total_cycles < late.total_cycles
        assert not np.array_equal(mid.plan.owner, late.plan.owner)

    def test_steady_multipliers_charged_in_total(self):
        # Non-feedback composition charges the full steady factor.
        dataset = _dataset()
        ev = (StragglerEvent(chip=0, onset_round=0.0, factor=2.0),)
        clean = simulate_multichip_gcn(
            dataset, _cluster("load", rebalance=False)
        )
        slowed = simulate_multichip_gcn(
            dataset, _cluster("load", ev, rebalance=False)
        )
        slow_chip0 = slowed.chip_compute_per_layer[:, 0]
        clean_chip0 = clean.chip_compute_per_layer[:, 0]
        assert np.all(slow_chip0 >= 2 * clean_chip0)
        assert np.all(slow_chip0 <= 2 * clean_chip0 + 1)
