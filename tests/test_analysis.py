"""The analysis harness: report rendering, tables, figures, export."""

import json

import pytest

from repro.analysis import (
    ascii_table,
    fig14_overall,
    fig14_per_spmm,
    fig14_resources,
    fig15_scalability,
    fig_nnz_distribution,
    format_quantity,
    rows_to_csv,
    rows_to_json,
    table1_profile,
    table2_ordering,
    table3_crossplatform,
)
from repro.analysis.crossplatform import mean_speedups
from repro.errors import ConfigError


class TestReportRendering:
    def test_ascii_table_basic(self):
        text = ascii_table(["a", "b"], [[1, 2], [3, 4]])
        assert "| a " in text
        assert text.count("\n") >= 4

    def test_ascii_table_title(self):
        text = ascii_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ConfigError):
            ascii_table(["a", "b"], [[1]])

    @pytest.mark.parametrize(
        "value,expected",
        [
            (1_330_000, "1.33M"),
            (257e9, "257G"),
            (62_300, "62.3K"),
            (999, "999"),
            (None, "-"),
            (2.5e12, "2.5T"),
        ],
    )
    def test_format_quantity(self, value, expected):
        assert format_quantity(value) == expected


class TestTables:
    def test_table1_rows(self):
        rows, text = table1_profile(preset="tiny", datasets=["cora"], seed=3)
        assert rows[0]["dataset"] == "cora"
        assert 0 < rows[0]["a_density"] < 1
        assert rows[0]["w_density"] == 1.0
        assert "Table 1" in text

    def test_table1_x2_measured_vs_forecast(self):
        measured, _ = table1_profile(
            preset="tiny", datasets=["cora"], seed=3, measure_x2=True
        )
        forecast, _ = table1_profile(
            preset="tiny", datasets=["cora"], seed=3, measure_x2=False
        )
        assert measured[0]["x2_density"] != forecast[0]["x2_density"]

    def test_table2_a_xw_always_wins(self):
        rows, text = table2_ordering(
            preset="tiny", datasets=["cora", "nell"], seed=3
        )
        for row in rows:
            assert row["total_a_xw"] < row["total_ax_w"]
            assert row["ratio"] > 1
        assert "Table 2" in text

    def test_table3_platform_ordering(self):
        # The tiny preset has too few ops for the CPU/GPU overhead terms
        # to order correctly; scaled Cora is its full published size.
        rows, text = table3_crossplatform(
            preset="scaled", datasets=["cora"], seed=7, n_pes=64
        )
        latency = {r["platform"]: r["latency_ms"] for r in rows}
        # CPU slowest, the accelerator fastest.
        assert latency["cpu"] > latency["gpu"]
        assert latency["awb"] <= latency["baseline"]
        assert "Table 3" in text

    def test_table3_mean_speedups(self):
        rows, _ = table3_crossplatform(
            preset="tiny", datasets=["cora", "nell"], seed=3, n_pes=16
        )
        means = mean_speedups(rows)
        assert means["awb"] == pytest.approx(1.0)
        assert means["cpu"] > means["baseline"] >= 1.0


class TestFigures:
    def test_nnz_distribution_rows(self):
        rows, text = fig_nnz_distribution(
            preset="tiny", datasets=["nell"], seed=3, n_bins=6
        )
        assert sum(r["rows"] for r in rows) > 0
        assert "nell" in text

    def test_fig14_overall_shape(self):
        rows, text = fig14_overall(
            preset="tiny", datasets=["nell"], seed=3, n_pes=16
        )
        designs = [r["design"] for r in rows]
        assert designs[0] == "baseline"
        base = rows[0]
        best = rows[-1]
        assert best["total_cycles"] <= base["total_cycles"]
        assert best["utilization"] >= base["utilization"]
        assert "Fig. 14" in text

    def test_fig14_per_spmm_four_jobs(self):
        rows, _ = fig14_per_spmm(
            preset="tiny", datasets=["cora"], seed=3, n_pes=16,
            designs=["baseline"],
        )
        assert len(rows) == 4
        for row in rows:
            assert row["total_cycles"] == (
                row["ideal_cycles"] + row["sync_cycles"]
            )

    def test_fig14_resources_tq_shrinks(self):
        rows, _ = fig14_resources(
            preset="tiny", datasets=["nell"], seed=3, n_pes=16,
            designs=["baseline", "design_d"],
        )
        by_design = {r["design"]: r for r in rows}
        assert (
            by_design["design_d"]["tq_depth"]
            < by_design["baseline"]["tq_depth"]
        )

    def test_fig15_scalability_shape(self):
        rows, _ = fig15_scalability(
            preset="tiny", datasets=["nell"], seed=3, pe_counts=(8, 16)
        )
        base8 = next(
            r for r in rows
            if r["variant"] == "baseline" and r["n_pes"] == 8
        )
        both16 = next(
            r for r in rows
            if r["variant"] == "local+remote" and r["n_pes"] == 16
        )
        assert both16["utilization"] > base8["utilization"] * 0.8
        assert both16["relative_perf"] >= 1.0


class TestExport:
    def test_csv_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = rows_to_csv(rows, tmp_path / "out.csv")
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert len(content) == 3

    def test_json_round_trip(self, tmp_path):
        rows = [{"a": 1.5}]
        path = rows_to_json(rows, tmp_path / "out.json")
        assert json.loads(path.read_text()) == [{"a": 1.5}]

    def test_empty_rows_raise(self, tmp_path):
        with pytest.raises(ConfigError):
            rows_to_csv([], tmp_path / "out.csv")
        with pytest.raises(ConfigError):
            rows_to_json([], tmp_path / "out.json")

    def test_nested_directories_created(self, tmp_path):
        path = rows_to_csv([{"a": 1}], tmp_path / "deep" / "dir" / "o.csv")
        assert path.exists()
