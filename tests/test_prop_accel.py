"""Property-based tests on the accelerator model's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import ArchConfig, GcnAccelerator, SpmmJob, simulate_spmm
from repro.accel.resources import estimate_resources
from repro.datasets import build_dataset


@st.composite
def spmm_jobs(draw):
    n_rows = draw(st.integers(4, 80))
    base = draw(
        st.lists(st.integers(0, 12), min_size=n_rows, max_size=n_rows)
    )
    row_nnz = np.asarray(base, dtype=np.int64)
    if draw(st.booleans()):
        hub = draw(st.integers(0, n_rows - 1))
        row_nnz[hub] += draw(st.integers(50, 400))
    if row_nnz.sum() == 0:
        row_nnz[0] = 1
    n_rounds = draw(st.integers(1, 12))
    return SpmmJob(name="prop", row_nnz=row_nnz, n_rounds=n_rounds)


@settings(max_examples=50, deadline=None)
@given(spmm_jobs(), st.integers(1, 5), st.integers(0, 3), st.booleans())
def test_simulate_spmm_invariants(job, pes_log, hop, remote):
    n_pes = 2 ** pes_log
    config = ArchConfig(n_pes=n_pes, hop=hop, remote_switching=remote)
    result = simulate_spmm(job, config)
    # Work conservation and bounds.
    assert result.total_work == job.total_work
    assert result.total_cycles * n_pes >= job.total_work
    assert 0.0 <= result.utilization <= 1.0
    # Every round costs at least the ideal share plus drain.
    assert int(result.cycles_per_round.min()) >= (
        result.ideal_cycles_per_round + config.drain_cycles
    ) or job.work_per_round == 0
    # The final owner map is a valid assignment of every row.
    assert result.final_owner.size == job.row_nnz.size
    assert result.final_owner.min() >= 0
    assert result.final_owner.max() < n_pes


@settings(max_examples=30, deadline=None)
@given(spmm_jobs(), st.integers(2, 5))
def test_sharing_monotone_in_hop(job, pes_log):
    n_pes = 2 ** pes_log
    previous = None
    for hop in (0, 1, 2, 3):
        result = simulate_spmm(job, ArchConfig(n_pes=n_pes, hop=hop))
        if previous is not None:
            assert result.total_cycles <= previous
        previous = result.total_cycles


@settings(max_examples=25, deadline=None)
@given(spmm_jobs(), st.integers(2, 4))
def test_remote_switching_never_worse_at_end(job, pes_log):
    """Once frozen, the map is never worse than the static one.

    The best-restore guarantee only exists after convergence: a job with
    too few rounds ends mid-tuning (converged_round is None), exactly as
    the hardware would — tuning costs rounds.
    """
    n_pes = 2 ** pes_log
    static = simulate_spmm(job, ArchConfig(n_pes=n_pes))
    tuned = simulate_spmm(
        job, ArchConfig(n_pes=n_pes, remote_switching=True)
    )
    if tuned.converged_round is None or tuned.converged_round >= job.n_rounds:
        # Never converged, or converged on the very last round: no
        # frozen-map round was ever recorded.
        return
    # Compare steady-state (final-round) cost, excluding tuning rounds.
    assert tuned.cycles_per_round[-1] <= static.cycles_per_round[-1]


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 64), st.integers(0, 3), st.booleans(),
       st.integers(0, 5000))
def test_resource_model_monotone(n_pes, hop, remote, tq_depth):
    config = ArchConfig(n_pes=n_pes, hop=hop, remote_switching=remote)
    small = estimate_resources(config, tq_depth=tq_depth)
    large = estimate_resources(config, tq_depth=tq_depth + 100)
    assert large.total_clb > small.total_clb
    assert small.total_clb > 0
    # Rebalance hardware costs something whenever enabled.
    if hop > 0 or remote:
        assert small.rebalance_clb > 0


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 1000))
def test_dataset_determinism(seed):
    a = build_dataset("cora", "tiny", seed=seed)
    b = build_dataset("cora", "tiny", seed=seed)
    assert a.adjacency == b.adjacency
    assert np.array_equal(a.x1_row_nnz, b.x1_row_nnz)
    assert np.array_equal(a.weights[1], b.weights[1])


@settings(max_examples=8, deadline=None)
@given(st.integers(3, 4), st.integers(1, 2))
def test_pipeline_bounded_by_serial_and_work(pes_log, a_hops):
    ds = build_dataset("cora", "tiny", seed=5)
    n_pes = 2 ** pes_log
    on = GcnAccelerator(
        ds, ArchConfig(n_pes=n_pes, pipeline_spmm=True), a_hops=a_hops
    ).run()
    off = GcnAccelerator(
        ds, ArchConfig(n_pes=n_pes, pipeline_spmm=False), a_hops=a_hops
    ).run()
    assert on.total_cycles <= off.total_cycles
    assert on.total_cycles * n_pes >= on.total_work
