"""Distribution statistics and partition loads."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sparse import distribution_stats, partition_loads, row_nnz_histogram
from repro.sparse.stats import equal_rows_owner


class TestDistributionStats:
    def test_uniform_counts(self):
        stats = distribution_stats(np.full(10, 5))
        assert stats.cv == 0.0
        assert stats.gini == pytest.approx(0.0, abs=1e-12)
        assert stats.max_over_mean == pytest.approx(1.0)

    def test_concentrated_counts(self):
        counts = np.zeros(100, dtype=int)
        counts[0] = 1000
        stats = distribution_stats(counts)
        assert stats.gini > 0.95
        assert stats.max_over_mean == pytest.approx(100.0)

    def test_total_and_extremes(self):
        stats = distribution_stats([1, 2, 3, 10])
        assert stats.total == 16
        assert stats.max == 10
        assert stats.min == 1

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            distribution_stats([])

    def test_negative_raises(self):
        with pytest.raises(ConfigError):
            distribution_stats([-1, 2])

    def test_all_zero(self):
        stats = distribution_stats([0, 0, 0])
        assert stats.cv == 0.0
        assert stats.gini == 0.0

    def test_describe_is_string(self):
        assert "gini" in distribution_stats([1, 2, 3]).describe()

    def test_gini_ordering(self):
        # More skew must increase gini.
        mild = distribution_stats([4, 5, 6, 5])
        wild = distribution_stats([0, 0, 1, 19])
        assert wild.gini > mild.gini


class TestHistogram:
    def test_counts_conserved(self):
        counts = np.array([0, 1, 1, 2, 5, 9, 100])
        _edges, hist = row_nnz_histogram(counts, n_bins=5)
        assert hist.sum() == counts.size

    def test_log_bins_monotone(self):
        edges, _ = row_nnz_histogram(np.arange(100), n_bins=8)
        assert np.all(np.diff(edges) > 0)

    def test_linear_bins(self):
        edges, hist = row_nnz_histogram(
            np.arange(100), n_bins=10, log_bins=False
        )
        assert hist.sum() == 100

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            row_nnz_histogram([])


class TestPartitioning:
    def test_equal_rows_owner_contiguous(self):
        owner = equal_rows_owner(10, 3)
        assert owner.tolist() == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_owner_covers_all_pes_when_possible(self):
        owner = equal_rows_owner(100, 7)
        assert set(owner.tolist()) == set(range(7))

    def test_more_pes_than_rows(self):
        owner = equal_rows_owner(3, 8)
        assert owner.tolist() == [0, 1, 2]

    def test_zero_rows(self):
        assert equal_rows_owner(0, 4).size == 0

    def test_partition_loads_sum(self):
        row_nnz = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        loads = partition_loads(row_nnz, 3)
        assert loads.sum() == row_nnz.sum()

    def test_partition_loads_values(self):
        row_nnz = np.array([1, 2, 3, 4])
        loads = partition_loads(row_nnz, 2)
        assert loads.tolist() == [3, 7]

    def test_bad_partitions_raises(self):
        with pytest.raises(ConfigError):
            partition_loads([1, 2], 0)
