"""The Fig. 9 toy example: the paper's own numbers, reproduced exactly."""

import numpy as np

from repro.analysis.toy import (
    IDEAL_CYCLES,
    LOCAL_IMBALANCE_CYCLES,
    REMOTE_IMBALANCE_CYCLES,
    fig9_local_loads,
    fig9_remote_loads,
    toy_after_remote_switching,
    toy_round_cycles,
)


class TestPaperNumbers:
    def test_both_workloads_have_16_tasks(self):
        # 8x8 at 75% sparsity = 16 non-zeros (2 per PE when balanced).
        assert fig9_local_loads().sum() == 16
        assert fig9_remote_loads().sum() == 16

    def test_ideal_round_is_two_cycles(self):
        balanced = np.full(8, 2)
        assert toy_round_cycles(balanced) == IDEAL_CYCLES

    def test_local_imbalance_costs_five_cycles(self):
        # "the delay increases from the expected 2 cycles to 5"
        assert toy_round_cycles(fig9_local_loads()) == LOCAL_IMBALANCE_CYCLES

    def test_remote_imbalance_costs_seven_cycles(self):
        # "... and 7 cycles, respectively"
        assert toy_round_cycles(fig9_remote_loads()) == REMOTE_IMBALANCE_CYCLES


class TestRemedies:
    def test_local_sharing_fixes_local_imbalance(self):
        # 1-hop sharing: every heavy PE borrows its light neighbour.
        assert toy_round_cycles(fig9_local_loads(), hop=1) <= 3
        assert toy_round_cycles(fig9_local_loads(), hop=2) == IDEAL_CYCLES

    def test_local_sharing_cannot_fix_remote_imbalance(self):
        # The hot region's neighbourhood stays saturated at 1 hop.
        assert toy_round_cycles(fig9_remote_loads(), hop=1) >= 4

    def test_remote_switching_fixes_remote_imbalance(self):
        switched = toy_after_remote_switching(fig9_remote_loads())
        assert toy_round_cycles(switched) == IDEAL_CYCLES

    def test_switching_conserves_work(self):
        switched = toy_after_remote_switching(fig9_remote_loads())
        assert switched.sum() == 16

    def test_remote_alone_insufficient_for_local_type(self):
        # Both mechanisms exist because each covers the other's blind
        # spot; after flattening, local imbalance is gone too (the toy
        # flat state), but the *path* differs: sharing acts within a
        # round, switching across rounds.
        local_fixed_fast = toy_round_cycles(fig9_local_loads(), hop=2)
        assert local_fixed_fast == IDEAL_CYCLES
