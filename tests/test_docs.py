"""Documentation stays healthy: links resolve, cli.md tracks the CLI.

The cheap halves of the CI docs job, run in tier-1 so a broken link or
a CLI flag change without a ``docs/cli.md`` regeneration fails locally
too. The README quickstart snippets (which actually simulate) run only
in the CI docs job — see ``tools/check_docs.py --quickstart``.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_tool(script, *args):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / script), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=120,
    )


class TestDocs:
    def test_readme_and_docs_exist(self):
        assert (REPO_ROOT / "README.md").exists()
        assert (REPO_ROOT / "docs" / "architecture.md").exists()
        assert (REPO_ROOT / "docs" / "cli.md").exists()

    def test_internal_links_resolve(self):
        result = _run_tool("check_docs.py", "--links")
        assert result.returncode == 0, result.stderr

    def test_cli_reference_in_sync(self):
        result = _run_tool("gen_cli_docs.py", "--check")
        assert result.returncode == 0, (
            result.stderr
            + "\nregenerate with: PYTHONPATH=src python tools/gen_cli_docs.py"
        )

    def test_readme_has_quickstart_fence(self):
        text = (REPO_ROOT / "README.md").read_text()
        assert "```python" in text
        assert "bench-rebalance" in text, (
            "README must document the perf-harness CLI entry point"
        )
