"""End-to-end integration: numerics + timing + the paper's claims.

These tests exercise the full stack the way the benchmark harness does,
and pin the *qualitative* results the paper reports (see DESIGN.md
Sec. 3: who wins, in which order, and roughly by how much).
"""

import numpy as np
import pytest

from repro.accel import ArchConfig, GcnAccelerator, run_design_suite
from repro.accel.designs import DESIGN_NAMES
from repro.datasets import load_dataset
from repro.hw import simulate_spmm_detailed
from repro.model import build_model
from repro.sparse import coo_to_csc, coo_to_csr, spmm_csc_dense, spmm_csr_dense


class TestNumericEquivalence:
    def test_reference_model_on_tiny_dataset(self, tiny_cora):
        """Dense numpy, sparse kernels and both orders agree end to end."""
        model = build_model(tiny_cora)
        trace = model.forward(tiny_cora.features)
        trace_alt = model.forward_ax_w(tiny_cora.features)
        assert np.allclose(trace.probabilities, trace_alt.probabilities)

        # Manual evaluation with raw kernels.
        a_csc = coo_to_csc(tiny_cora.adjacency)
        x_csr = coo_to_csr(tiny_cora.features)
        w1, w2 = tiny_cora.weights
        h1 = np.maximum(spmm_csc_dense(a_csc, spmm_csr_dense(x_csr, w1)), 0)
        logits = spmm_csc_dense(a_csc, h1 @ w2)
        assert np.allclose(logits, trace.logits)

    def test_detailed_hw_computes_layer(self, tiny_cora):
        """The cycle-level engine produces the exact layer-1 product."""
        w1 = tiny_cora.weights[0]
        xw = spmm_csr_dense(coo_to_csr(tiny_cora.features), w1)
        expected = spmm_csc_dense(coo_to_csc(tiny_cora.adjacency), xw)
        result, stats = simulate_spmm_detailed(
            tiny_cora.adjacency, xw[:, :3], n_pes=8, hop=1
        )
        assert np.allclose(result, expected[:, :3])
        assert stats.cycles > 0


class TestPaperClaims:
    @pytest.fixture(scope="class")
    def suite(self):
        reports = {}
        base = ArchConfig(n_pes=64)
        for name in ("cora", "nell"):
            ds = load_dataset(name, "tiny", seed=3)
            reports[name] = run_design_suite(ds, base=base)
        return reports

    def test_rebalancing_always_helps(self, suite):
        for name, reports in suite.items():
            base_cycles = reports["baseline"].total_cycles
            for design in DESIGN_NAMES[1:]:
                assert reports[design].total_cycles <= base_cycles, (
                    name, design,
                )

    def test_utilization_ordering(self, suite):
        for reports in suite.values():
            assert (
                reports["design_d"].utilization
                >= reports["baseline"].utilization
            )

    def test_nell_needs_rebalancing_most(self, suite):
        """The clustered graph's A-SPMM gains the most from rebalancing
        (paper: 7.3x on Nell vs 2.7x average). Compared at the A(XW)
        job level because tiny-preset layer dims let the balanced X2 W
        job dominate the overall number."""
        def a_gain(reports):
            base = sum(l.axw.total_cycles for l in reports["baseline"].layers)
            best = sum(l.axw.total_cycles for l in reports["design_d"].layers)
            return base / best

        assert a_gain(suite["nell"]) > a_gain(suite["cora"])

    def test_nell_baseline_a_spmm_utilization_lowest(self, suite):
        """Fig. 14 F-J: the imbalance lives in the A(XW) SPMM, and it is
        worst on the clustered Nell graph."""
        def a_util(reports):
            return reports["baseline"].layers[0].axw.utilization

        assert a_util(suite["nell"]) < a_util(suite["cora"])

    def test_scaled_cora_utilization_band(self, scaled_cora):
        """Full-size Cora at 256 PEs reproduces the paper's utilization
        band: baseline around 0.5, full design around 0.9."""
        reports = run_design_suite(scaled_cora, base=ArchConfig(n_pes=256))
        assert 0.3 <= reports["baseline"].utilization <= 0.65
        assert reports["design_d"].utilization >= 0.85

    def test_speedup_band_scaled_cora(self, scaled_cora):
        """Paper: Cora full design is ~2.1x over baseline."""
        reports = run_design_suite(
            scaled_cora,
            base=ArchConfig(n_pes=256),
            designs=["baseline", "design_d"],
        )
        speedup = (
            reports["baseline"].total_cycles
            / reports["design_d"].total_cycles
        )
        assert 1.5 <= speedup <= 3.0


class TestWarmStartAcrossLayers:
    def test_layer2_a_spmm_reuses_converged_map(self, tiny_nell):
        config = ArchConfig(n_pes=16, hop=2, remote_switching=True)
        report = GcnAccelerator(tiny_nell, config).run()
        l1_a = report.layers[0].axw
        l2_a = report.layers[1].axw
        # Layer 2 starts from layer 1's converged map: its first round
        # is no worse than layer 1's first (untuned) round.
        assert l2_a.cycles_per_round[0] <= l1_a.cycles_per_round[0]
