"""Table 2 op-count formulas, checked against the published numbers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.model.ordering import (
    count_ops_a_xw,
    count_ops_ax_w,
    expected_product_nnz,
    layer_ordering_ops,
    structural_product_nnz,
)
from repro.sparse import CooMatrix, coo_to_csr


class TestCountFormulas:
    def test_a_xw_formula(self):
        # (nnz(X) + nnz(A)) * f_out
        assert count_ops_a_xw(100, 50, 4) == 600

    def test_ax_w_formula(self):
        a_col = np.array([2, 0, 1])
        x_row = np.array([3, 5, 1])
        # spgemm = 2*3 + 0*5 + 1*1 = 7; gemm = 4 rows * 3 cols * 2 = 24
        assert count_ops_ax_w(a_col, x_row, 4, 3, 2) == 31

    def test_axis_mismatch_raises(self):
        with pytest.raises(ShapeError):
            count_ops_ax_w(np.ones(3), np.ones(4), 2, 2, 2)

    def test_paper_cora_layer2(self):
        """Reproduce Table 2 Cora layer 2 from the published statistics.

        nnz(A) = 13264, nnz(X2) = 0.78 * 2708 * 16 = 33796,
        A(XW) = (33796 + 13264) * 7 = 329.4K (paper: 329.3K);
        (AX)W = spgemm + 2708 * 16 * 7 = 303.3K + spgemm (paper: 468.2K,
        implying spgemm ~ 165K = nnz(A) * avg row nnz of X2 ~ 12.5).
        """
        a_nnz = 13264
        x2_nnz = int(0.78 * 2708 * 16)
        assert count_ops_a_xw(a_nnz, x2_nnz, 7) == pytest.approx(
            329.3e3, rel=0.01
        )
        gemm_only = 2708 * 16 * 7
        assert gemm_only == pytest.approx(303.3e3, rel=0.01)

    def test_paper_nell_layer1_gemm_term(self):
        # Table 2 reports 257G for Nell layer 1 under (AX)W; the dense
        # GEMM term alone is 65755 * 61278 * 64 = 257.9G.
        assert 65755 * 61278 * 64 == pytest.approx(257e9, rel=0.01)


class TestProductNnz:
    def test_structural_exact(self, rng):
        a = (rng.random((10, 8)) < 0.3).astype(float)
        x = (rng.random((8, 12)) < 0.3).astype(float)
        a_csr = coo_to_csr(CooMatrix.from_dense(a))
        x_csr = coo_to_csr(CooMatrix.from_dense(x))
        expected = np.count_nonzero(a @ x)
        assert structural_product_nnz(a_csr, x_csr) == expected

    def test_structural_shape_mismatch(self, rng):
        a = coo_to_csr(CooMatrix.from_dense(np.eye(3)))
        b = coo_to_csr(CooMatrix.from_dense(np.eye(4)))
        with pytest.raises(ShapeError):
            structural_product_nnz(a, b)

    def test_expected_saturates_with_degree(self):
        row_nnz = np.full(100, 50)
        dense_estimate = expected_product_nnz(row_nnz, 0.5, 20)
        # With 50 neighbours at 50% density, essentially every output
        # cell is non-zero.
        assert dense_estimate == pytest.approx(100 * 20, rel=0.01)

    def test_expected_zero_density(self):
        assert expected_product_nnz(np.ones(10), 0.0, 5) == 0

    def test_expected_monotone_in_density(self):
        row_nnz = np.array([1, 2, 3, 4])
        low = expected_product_nnz(row_nnz, 0.1, 10)
        high = expected_product_nnz(row_nnz, 0.5, 10)
        assert high >= low

    def test_expected_bad_density_raises(self):
        with pytest.raises(ShapeError):
            expected_product_nnz(np.ones(3), 1.5, 4)


class TestLayerOrderingOps:
    def test_a_xw_wins_for_sparse_inputs(self, tiny_cora):
        ops = layer_ordering_ops(
            tiny_cora.adjacency,
            tiny_cora.x1_row_nnz,
            tiny_cora.feature_dims[0],
            tiny_cora.feature_dims[1],
        )
        assert ops.winner == "A(XW)"
        assert ops.ratio > 1.0

    def test_length_mismatch_raises(self, tiny_cora):
        with pytest.raises(ShapeError):
            layer_ordering_ops(tiny_cora.adjacency, np.ones(3), 8, 4)

    def test_requires_coo(self):
        with pytest.raises(ShapeError):
            layer_ordering_ops(np.eye(3), np.ones(3), 3, 2)
