"""Unit tests for the graph partitioner and halo-exchange sets."""

import numpy as np
import pytest

from repro.cluster import (
    PARTITION_STRATEGIES,
    ShardPlan,
    halo_exchange,
    make_plan,
)
from repro.errors import ConfigError, ShapeError
from repro.sparse import CooMatrix, coo_to_csr


def _rng_row_nnz(n, seed=0, hub=None):
    rng = np.random.default_rng(seed)
    row_nnz = rng.integers(0, 9, size=n).astype(np.int64)
    if hub is not None:
        row_nnz[hub] += 300
    return row_nnz


class TestMakePlan:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("n_chips", [1, 2, 3, 7])
    def test_plan_covers_every_row_once(self, strategy, n_chips):
        row_nnz = _rng_row_nnz(97)
        plan = make_plan(row_nnz, n_chips, strategy=strategy)
        counted = np.zeros(97, dtype=np.int64)
        for chip in range(n_chips):
            counted[plan.chip_rows(chip)] += 1
        assert np.all(counted == 1)
        assert plan.chip_row_counts().sum() == 97

    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_blocks_identical_across_strategies(self, strategy):
        # Both strategies share one block structure; only the
        # assignment differs — that isolates the comparison.
        row_nnz = _rng_row_nnz(64, hub=0)
        reference = make_plan(row_nnz, 4, strategy="rows")
        plan = make_plan(row_nnz, 4, strategy=strategy)
        assert np.array_equal(plan.block_bounds, reference.block_bounds)

    def test_nnz_strategy_balances_hub_graph(self):
        row_nnz = _rng_row_nnz(256, hub=3)
        rows = make_plan(row_nnz, 4, strategy="rows").chip_loads(row_nnz)
        nnz = make_plan(row_nnz, 4, strategy="nnz").chip_loads(row_nnz)
        assert nnz.max() < rows.max()

    def test_owner_is_contiguous_runs(self):
        row_nnz = _rng_row_nnz(128, hub=10)
        for strategy in PARTITION_STRATEGIES:
            plan = make_plan(row_nnz, 4, strategy=strategy)
            assert np.all(np.diff(plan.owner) >= 0)

    def test_chip_loads_match_row_sums(self):
        row_nnz = _rng_row_nnz(77)
        plan = make_plan(row_nnz, 3, strategy="nnz")
        for chip in range(3):
            assert plan.chip_loads(row_nnz)[chip] == (
                row_nnz[plan.chip_rows(chip)].sum()
            )

    def test_more_chips_than_rows_rejected(self):
        with pytest.raises(ConfigError):
            make_plan(np.ones(3, dtype=np.int64), 4)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            make_plan(np.ones(16, dtype=np.int64), 2, strategy="magic")

    def test_every_chip_owns_a_block(self):
        # Extremely skewed profile: the greedy sweep must still leave
        # one block for every chip.
        row_nnz = np.zeros(32, dtype=np.int64)
        row_nnz[0] = 10_000
        plan = make_plan(row_nnz, 8, strategy="nnz")
        assert np.unique(plan.owner).size == 8


class TestShardPlanValidation:
    def test_rejects_gap_in_bounds(self):
        with pytest.raises(ConfigError):
            ShardPlan(n_rows=10, n_chips=2,
                      block_bounds=np.array([0, 5, 5, 10]),
                      owner=np.array([0, 1, 1]))

    def test_rejects_missing_chip(self):
        with pytest.raises(ConfigError):
            ShardPlan(n_rows=10, n_chips=3,
                      block_bounds=np.array([0, 5, 10]),
                      owner=np.array([0, 1]))

    def test_rejects_owner_out_of_range(self):
        with pytest.raises(ConfigError):
            ShardPlan(n_rows=10, n_chips=2,
                      block_bounds=np.array([0, 5, 10]),
                      owner=np.array([0, 2]))

    def test_with_owner_roundtrip(self):
        plan = make_plan(_rng_row_nnz(40), 2)
        flipped = plan.with_owner(1 - plan.owner)
        assert np.array_equal(
            flipped.chip_rows(0), plan.chip_rows(1)
        )


def _random_adjacency(n, seed=1, density=0.05):
    rng = np.random.default_rng(seed)
    nnz = max(int(n * n * density), n)
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    return CooMatrix((n, n), rows, cols, np.ones(nnz))


class TestHaloExchange:
    def test_halo_rows_are_exactly_the_remote_references(self):
        adj = _random_adjacency(60)
        csr = coo_to_csr(adj)
        plan = make_plan(csr.row_nnz(), 3, strategy="rows")
        halo = halo_exchange(adj, plan)
        row_owner = plan.row_owner()
        for chip in range(3):
            rows = plan.chip_rows(chip)
            referenced = np.unique(csr.take_rows(rows).col_ids)
            expected = referenced[row_owner[referenced] != chip]
            assert np.array_equal(np.sort(halo.rows[chip]), expected)

    def test_words_matrix_counts_rows_by_source(self):
        adj = _random_adjacency(50, seed=5)
        plan = make_plan(coo_to_csr(adj).row_nnz(), 4)
        halo = halo_exchange(adj, plan)
        row_owner = plan.row_owner()
        for dest in range(4):
            sources = row_owner[halo.rows[dest]]
            for src in range(4):
                assert halo.words[dest, src] == int((sources == src).sum())
        assert np.array_equal(halo.in_rows, halo.words.sum(axis=1))
        assert np.array_equal(halo.out_rows, halo.words.sum(axis=0))

    def test_no_self_halo(self):
        adj = _random_adjacency(40, seed=9)
        plan = make_plan(coo_to_csr(adj).row_nnz(), 2)
        halo = halo_exchange(adj, plan)
        assert halo.words[0, 0] == 0 and halo.words[1, 1] == 0

    def test_single_chip_has_empty_halo(self):
        adj = _random_adjacency(30, seed=2)
        plan = make_plan(coo_to_csr(adj).row_nnz(), 1)
        halo = halo_exchange(adj, plan)
        assert halo.total_rows == 0

    def test_shape_mismatch_rejected(self):
        adj = _random_adjacency(30)
        plan = make_plan(np.ones(20, dtype=np.int64), 2)
        with pytest.raises(ConfigError):
            halo_exchange(adj, plan)


class TestCsrBlockSlicing:
    def test_row_block_matches_dense_slice(self, small_coo):
        csr = coo_to_csr(small_coo)
        block = csr.row_block(4, 11)
        assert np.array_equal(block.to_dense(), csr.to_dense()[4:11])

    def test_take_rows_matches_dense_gather(self, small_coo):
        csr = coo_to_csr(small_coo)
        rows = np.array([12, 0, 7, 7, 3])
        assert np.array_equal(
            csr.take_rows(rows).to_dense(), csr.to_dense()[rows]
        )

    def test_take_rows_empty(self, small_coo):
        csr = coo_to_csr(small_coo)
        sub = csr.take_rows(np.empty(0, dtype=np.int64))
        assert sub.shape == (0, csr.shape[1]) and sub.nnz == 0

    def test_out_of_range_rejected(self, small_coo):
        csr = coo_to_csr(small_coo)
        with pytest.raises(ShapeError):
            csr.row_block(0, csr.shape[0] + 1)
        with pytest.raises(ShapeError):
            csr.take_rows(np.array([csr.shape[0]]))
