"""Tests for serve-layer admission control, reconfiguration cost,
sharded dispatch and cache-recency persistence."""

import numpy as np
import pytest

from repro.accel import ArchConfig
from repro.accel.gcnaccel import CachedTuning
from repro.errors import ConfigError
from repro.serve import (
    AutotuneCache,
    InferenceRequest,
    InferenceService,
    RmatGraphSpec,
    serve_requests,
)

CFG_A = ArchConfig(n_pes=16, hop=1, remote_switching=True)
CFG_B = ArchConfig(n_pes=24, hop=1, remote_switching=True)
SPEC = RmatGraphSpec(n_nodes=192, avg_degree=6, f1=16, f2=8, f3=4, seed=5)
BIG = RmatGraphSpec(n_nodes=1024, avg_degree=6, f1=16, f2=8, f3=4, seed=6)


def _req(graph=SPEC, config=CFG_A, **kwargs):
    return InferenceRequest(graph=graph, config=config, **kwargs)


class TestShedExpired:
    def _overload(self):
        # One instance, tight SLOs, a burst: later requests expire
        # while queueing behind the first.
        return [
            _req(arrival_time=0.0, slo_ms=0.01) for _ in range(6)
        ]

    def test_sheds_expired_requests(self):
        outcome = serve_requests(
            self._overload(), n_workers=1, max_batch=1, shed_expired=True
        )
        shed = [r for r in outcome.results if r.shed]
        assert shed, "expected expired requests to be shed"
        assert outcome.stats.n_shed == len(shed)
        assert outcome.stats.shed_rate == pytest.approx(len(shed) / 6)

    def test_shed_results_are_recorded_outcomes(self):
        outcome = serve_requests(
            self._overload(), n_workers=1, max_batch=1, shed_expired=True
        )
        for result in outcome.results:
            if result.shed:
                assert result.total_cycles == 0
                assert result.worker == -1
                assert result.finish_time >= result.deadline
                assert result.slo_met is False

    def test_results_keep_submission_alignment(self):
        requests = self._overload()
        outcome = serve_requests(
            requests, n_workers=1, max_batch=1, shed_expired=True
        )
        assert len(outcome.results) == len(requests)
        assert [r.request_id for r in outcome.results] == list(range(6))

    def test_latency_stats_exclude_shed(self):
        outcome = serve_requests(
            self._overload(), n_workers=1, max_batch=1, shed_expired=True
        )
        served = [r for r in outcome.results if not r.shed]
        assert outcome.latency.n == len(served)

    def test_default_serves_late_identically(self):
        # shed_expired=False must remain bit-identical to the
        # historical behavior: everything served, just late.
        requests = self._overload()
        off = serve_requests(requests, n_workers=1, max_batch=1)
        explicit = serve_requests(
            requests, n_workers=1, max_batch=1, shed_expired=False
        )
        assert off.stats.n_shed == explicit.stats.n_shed == 0
        assert [r.finish_time for r in off.results] == [
            r.finish_time for r in explicit.results
        ]

    def test_no_slo_never_shed(self):
        requests = [_req(arrival_time=0.0) for _ in range(5)]
        outcome = serve_requests(
            requests, n_workers=1, max_batch=1, shed_expired=True
        )
        assert outcome.stats.n_shed == 0

    def test_flag_is_noop_when_deadlines_loose(self):
        requests = [_req(arrival_time=0.0, slo_ms=1e6) for _ in range(4)]
        on = serve_requests(requests, n_workers=2, shed_expired=True)
        off = serve_requests(requests, n_workers=2)
        assert on.stats.n_shed == 0
        assert [r.total_cycles for r in on.results] == [
            r.total_cycles for r in off.results
        ]
        assert [r.finish_time for r in on.results] == [
            r.finish_time for r in off.results
        ]


class TestReconfigCycles:
    def _alternating(self, n=4):
        return [
            _req(config=CFG_A if i % 2 == 0 else CFG_B) for i in range(n)
        ]

    def test_default_zero_is_free(self):
        requests = self._alternating()
        charged = serve_requests(requests, n_workers=1, max_batch=1)
        assert charged.workers[0].reconfigs == 3  # switches counted
        base = serve_requests(
            requests, n_workers=1, max_batch=1, reconfig_cycles=0
        )
        assert base.stats.makespan_seconds == charged.stats.makespan_seconds

    def test_switch_penalty_delays_service(self):
        requests = self._alternating()
        free = serve_requests(requests, n_workers=1, max_batch=1)
        penalty_cycles = 500_000
        charged = serve_requests(
            requests, n_workers=1, max_batch=1,
            reconfig_cycles=penalty_cycles,
        )
        # Three switches, each charged at the incoming config's clock.
        expected = (
            CFG_B.cycles_to_seconds(penalty_cycles) * 2
            + CFG_A.cycles_to_seconds(penalty_cycles)
        )
        assert charged.stats.makespan_seconds == pytest.approx(
            free.stats.makespan_seconds + expected
        )

    def test_same_config_never_charged(self):
        requests = [_req() for _ in range(4)]
        charged = serve_requests(
            requests, n_workers=1, max_batch=1, reconfig_cycles=10 ** 9
        )
        assert charged.workers[0].reconfigs == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            InferenceService(reconfig_cycles=-1)


class TestShardedDispatch:
    def test_oversized_graph_gang_schedules(self):
        outcome = serve_requests(
            [_req(graph=BIG), _req(graph=SPEC)],
            n_workers=4, chip_capacity=256,
        )
        big, small = outcome.results
        assert big.n_shards == 4
        assert small.n_shards == 1
        assert outcome.stats.n_sharded == 1

    def test_shard_count_clamped_to_pool(self):
        outcome = serve_requests(
            [_req(graph=BIG)], n_workers=2, chip_capacity=128
        )
        assert outcome.results[0].n_shards == 2

    def test_capacity_none_disables_sharding(self):
        outcome = serve_requests([_req(graph=BIG)], n_workers=4)
        assert outcome.results[0].n_shards == 1
        assert outcome.stats.n_sharded == 0

    def test_sharded_job_occupies_all_participants(self):
        outcome = serve_requests(
            [_req(graph=BIG)], n_workers=3, chip_capacity=256
        )
        result = outcome.results[0]
        busy = [w for w in outcome.workers if w.modeled_busy_seconds > 0]
        assert len(busy) == result.n_shards == 3
        assert all(
            w.modeled_busy_seconds
            == pytest.approx(result.finish_time - result.start_time)
            for w in busy
        )

    def test_sharded_results_deterministic_and_cached(self):
        service = InferenceService(
            n_workers=4, chip_capacity=256, cache=True
        )
        service.submit_many([_req(graph=BIG)])
        cold = service.drain().results[0]
        service.submit_many([_req(graph=BIG)])
        warm = service.drain().results[0]
        assert not cold.cache_hit and warm.cache_hit
        assert warm.total_cycles == cold.total_cycles

    def test_mixed_traffic_all_answered(self):
        requests = [
            _req(graph=SPEC, arrival_time=0.0),
            _req(graph=BIG, arrival_time=0.0),
            _req(graph=SPEC, arrival_time=0.0),
        ]
        outcome = serve_requests(
            requests, n_workers=4, chip_capacity=512
        )
        assert len(outcome.results) == 3
        assert [r.n_shards for r in outcome.results] == [1, 2, 1]

    def test_cluster_options_forwarded(self):
        slow = serve_requests(
            [_req(graph=BIG)], n_workers=4, chip_capacity=256,
            cluster_options={"link_words_per_cycle": 0.25},
        )
        fast = serve_requests(
            [_req(graph=BIG)], n_workers=4, chip_capacity=256,
            cluster_options={"link_words_per_cycle": 64.0},
        )
        assert slow.results[0].total_cycles > fast.results[0].total_cycles

    def test_reserved_cluster_options_rejected(self):
        with pytest.raises(ConfigError):
            InferenceService(chip_capacity=64,
                             cluster_options={"n_chips": 3})
        with pytest.raises(ConfigError):
            InferenceService(chip_capacity=64,
                             cluster_options={"chips": (CFG_A,)})

    def test_topology_cluster_options_forwarded(self):
        # Hop latency makes the ring's multi-hop routes strictly more
        # expensive than the single-hop all-to-all regardless of how
        # the capacity-ceiling-constrained plan distributes traffic
        # (contention alone can favor either fabric on a forced
        # equal-rows plan, since all-to-all serializes a chip's whole
        # ingress on one link while a ring splits it two ways).
        ring = serve_requests(
            [_req(graph=BIG)], n_workers=4, chip_capacity=256,
            cluster_options={"topology": "ring",
                             "link_words_per_cycle": 2.0,
                             "hop_latency_cycles": 512},
        )
        a2a = serve_requests(
            [_req(graph=BIG)], n_workers=4, chip_capacity=256,
            cluster_options={"link_words_per_cycle": 2.0},
        )
        assert ring.results[0].total_cycles > a2a.results[0].total_cycles


class TestGangCeilings:
    def test_ceilings_threaded_into_sharded_run(self):
        # The sharded run must execute under the gang members' node
        # capacities as hard row ceilings: its cycle count matches a
        # direct ceiling-constrained simulation, not the unconstrained
        # plan (which hands one chip 704 of BIG's 1024 rows).
        from repro.cluster import ClusterConfig, simulate_multichip_gcn

        req = _req(graph=BIG)
        outcome = serve_requests([req], n_workers=2, chip_capacity=512)
        dataset = BIG.build()
        constrained = simulate_multichip_gcn(
            dataset,
            ClusterConfig(n_chips=2, chip=CFG_A, row_ceilings=(512, 512)),
            a_hops=req.a_hops,
        )
        unconstrained = simulate_multichip_gcn(
            dataset,
            ClusterConfig(n_chips=2, chip=CFG_A),
            a_hops=req.a_hops,
        )
        assert np.any(unconstrained.plan.chip_row_counts() > 512)
        assert outcome.results[0].total_cycles == constrained.total_cycles
        assert outcome.results[0].total_cycles != unconstrained.total_cycles

    def test_regangs_wider_when_real_plan_overfills(self):
        # The proportional-share screen accepts the two-member gang
        # (shares 614/410 fit 630/420) but the actual block-granular
        # constrained plan does not exist at those ceilings — the job
        # must re-gang wider instead of overfilling a member.
        outcome = serve_requests(
            [_req(graph=BIG)], n_workers=4,
            chip_capacity=[630, 420, 630, 420],
            worker_configs=[CFG_B, CFG_A, CFG_B, CFG_A],
        )
        assert outcome.results[0].n_shards == 3

    def test_pool_clamp_still_serves_best_effort(self):
        # A pool that physically cannot cover the graph clamps onto
        # every instance with the capacities demoted to best-effort;
        # the request is still answered.
        outcome = serve_requests(
            [_req(graph=BIG)], n_workers=2, chip_capacity=128
        )
        result = outcome.results[0]
        assert result.n_shards == 2
        assert result.total_cycles > 0
        assert not result.shed

    def test_row_ceilings_is_reserved_cluster_option(self):
        with pytest.raises(ConfigError):
            InferenceService(chip_capacity=64,
                             cluster_options={"row_ceilings": (32, 32)})


class TestShardedQueueEdf:
    def test_tight_deadline_jumps_fifo_order(self):
        # Two sharded jobs queue while the pool is too busy to gang;
        # the later-arriving tighter deadline dispatches first.
        requests = [
            _req(graph=BIG, arrival_time=0.0, slo_ms=500.0,
                 request_id="loose"),
            _req(graph=BIG, arrival_time=0.0, slo_ms=5.0,
                 request_id="tight"),
        ]
        outcome = serve_requests(requests, n_workers=4, chip_capacity=256)
        starts = {r.request_id: r.start_time for r in outcome.results}
        assert starts["tight"] < starts["loose"]

    def test_no_slo_stays_fifo(self):
        requests = [
            _req(graph=BIG, arrival_time=0.0, request_id=f"r{i}")
            for i in range(3)
        ]
        outcome = serve_requests(requests, n_workers=4, chip_capacity=256)
        starts = [r.start_time for r in outcome.results]
        assert starts == sorted(starts)

    def test_equal_deadlines_break_by_arrival(self):
        requests = [
            _req(graph=BIG, arrival_time=0.0, slo_ms=50.0,
                 request_id="first"),
            _req(graph=BIG, arrival_time=0.0, slo_ms=50.0,
                 request_id="second"),
        ]
        outcome = serve_requests(requests, n_workers=4, chip_capacity=256)
        starts = {r.request_id: r.start_time for r in outcome.results}
        assert starts["first"] <= starts["second"]

    def test_expired_edf_head_shed(self):
        # The first job occupies the whole pool; the doomed job arrives
        # while it runs and its microsecond deadline expires before any
        # instance frees, so admission control sheds it at dispatch.
        requests = [
            _req(graph=BIG, arrival_time=0.0, request_id="first"),
            _req(graph=BIG, arrival_time=1e-6, slo_ms=0.001,
                 request_id="doomed"),
            _req(graph=BIG, arrival_time=1e-6, request_id="fine"),
        ]
        outcome = serve_requests(
            requests, n_workers=4, chip_capacity=256, shed_expired=True
        )
        by_id = {r.request_id: r for r in outcome.results}
        assert by_id["doomed"].shed
        assert not by_id["first"].shed
        assert not by_id["fine"].shed


class TestHeterogeneousPool:
    def test_per_worker_capacity_sizes_the_gang(self):
        # 1024 nodes over capacities [512, 256, 256, 512], equal
        # compute: the partitioner splits work (hence rows, roughly)
        # evenly, so every member's equal share must fit its declared
        # capacity — 3 chips would hand ~341 nodes to a 256-capacity
        # chip; 4 chips bring the share down to 256.
        outcome = serve_requests(
            [_req(graph=BIG)], n_workers=4,
            chip_capacity=[512, 256, 256, 512],
        )
        assert outcome.results[0].n_shards == 4

    def test_undersized_worker_pruned_from_gang(self):
        # A free under-capacity worker must not poison the gang (or
        # hang the event loop): the 40-node chip is pruned and the two
        # 512-node chips serve the 1024-node graph without it.
        outcome = serve_requests(
            [_req(graph=BIG)], n_workers=4,
            chip_capacity=[512, 40, 512, 512],
        )
        assert outcome.results[0].n_shards == 2
        assert outcome.workers[1].batches_served == 0
        assert outcome.workers[1].modeled_busy_seconds == 0.0

    def test_fits_largest_chip_no_sharding(self):
        outcome = serve_requests(
            [_req(graph=SPEC)], n_workers=2, chip_capacity=[128, 256],
        )
        assert outcome.results[0].n_shards == 1  # 192 nodes <= 256

    def test_worker_configs_build_hetero_cluster(self):
        uniform = serve_requests(
            [_req(graph=BIG, config=CFG_A)], n_workers=2,
            chip_capacity=512,
        )
        hetero = serve_requests(
            [_req(graph=BIG, config=CFG_A)], n_workers=2,
            chip_capacity=512, worker_configs=[CFG_B, CFG_A],
        )
        assert uniform.results[0].n_shards == 2
        assert hetero.results[0].n_shards == 2
        # The hetero pool simulates on its own (bigger) chips, so the
        # outcome differs from replicating the request config.
        assert (
            hetero.results[0].total_cycles
            != uniform.results[0].total_cycles
        )

    def test_batches_avoid_undersized_instances(self):
        # 192-node graphs fit the pool's big chip (no sharding) but
        # exceed worker 0's declared 128-node capacity: every batch
        # must land on worker 1 even while worker 0 idles.
        requests = [_req(graph=SPEC) for _ in range(3)]
        outcome = serve_requests(
            requests, n_workers=2, chip_capacity=[128, 256],
        )
        assert all(r.n_shards == 1 for r in outcome.results)
        assert {r.worker for r in outcome.results} == {1}
        assert outcome.workers[0].requests_served == 0

    def test_capacity_list_length_checked(self):
        with pytest.raises(ConfigError):
            InferenceService(n_workers=2, chip_capacity=[256])

    def test_worker_configs_validated(self):
        with pytest.raises(ConfigError):
            InferenceService(n_workers=2, worker_configs=[CFG_A])
        with pytest.raises(ConfigError):
            InferenceService(n_workers=2, worker_configs=[CFG_A, "cfg"])


class TestCacheRecencyPersistence:
    def _entry(self):
        return CachedTuning(layers=())

    def _warm_cache(self):
        cache = AutotuneCache(max_entries=3)
        for key in "abc":
            cache.store(key, CFG_A, self._entry())
        # Touch "a": recency order is now b < c < a.
        assert cache.lookup("a", CFG_A) is not None
        return cache

    def test_recency_survives_roundtrip(self, tmp_path):
        path = self._warm_cache().save(tmp_path / "cache")
        restored = AutotuneCache.load(path, max_entries=3)
        restored.store("d", CFG_A, self._entry())
        # True LRU ("b") evicted — not the alphabetically-first key.
        assert AutotuneCache.key("b", CFG_A) not in restored
        for kept in "cad":
            assert AutotuneCache.key(kept, CFG_A) in restored

    def test_bounded_load_keeps_most_recent(self, tmp_path):
        path = self._warm_cache().save(tmp_path / "cache")
        restored = AutotuneCache.load(path, max_entries=2)
        assert AutotuneCache.key("b", CFG_A) not in restored
        for kept in "ca":
            assert AutotuneCache.key(kept, CFG_A) in restored

    def test_multiple_roundtrips_preserve_order(self, tmp_path):
        cache = self._warm_cache()
        for hop in range(3):
            path = cache.save(tmp_path / f"hop{hop}")
            cache = AutotuneCache.load(path, max_entries=3)
        cache.store("d", CFG_A, self._entry())
        assert AutotuneCache.key("b", CFG_A) not in cache