"""Reference kernels against dense numpy arithmetic."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import (
    CooMatrix,
    coo_to_csc,
    coo_to_csr,
    spgemm_csr,
    spmm_csc_dense,
    spmm_csr_dense,
    spmv_csr,
    transpose_csr,
)
from repro.sparse.ops import _FLAT_KERNEL_THRESHOLD


@pytest.fixture
def operands(rng):
    dense = rng.normal(size=(23, 17))
    dense[rng.random(dense.shape) > 0.3] = 0.0
    b = rng.normal(size=(17, 6))
    return dense, b


class TestSpmm:
    def test_csc_dense_matches_numpy(self, operands):
        dense, b = operands
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        assert np.allclose(spmm_csc_dense(csc, b), dense @ b)

    def test_csr_dense_matches_numpy(self, operands):
        dense, b = operands
        csr = coo_to_csr(CooMatrix.from_dense(dense))
        assert np.allclose(spmm_csr_dense(csr, b), dense @ b)

    def test_csc_column_loop_kernel(self, operands, monkeypatch):
        # Force the large-matrix code path and check it agrees.
        import repro.sparse.ops as ops

        dense, b = operands
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        monkeypatch.setattr(ops, "_FLAT_KERNEL_THRESHOLD", 0)
        assert np.allclose(ops.spmm_csc_dense(csc, b), dense @ b)

    def test_empty_matrix(self):
        csc = coo_to_csc(CooMatrix.empty((4, 5)))
        out = spmm_csc_dense(csc, np.ones((5, 2)))
        assert np.array_equal(out, np.zeros((4, 2)))

    def test_zero_columns_operand(self, operands):
        dense, _ = operands
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        out = spmm_csc_dense(csc, np.zeros((17, 0)))
        assert out.shape == (23, 0)

    def test_shape_mismatch_raises(self, operands):
        dense, _ = operands
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        with pytest.raises(ShapeError):
            spmm_csc_dense(csc, np.ones((99, 2)))

    def test_wrong_type_raises(self):
        with pytest.raises(ShapeError):
            spmm_csc_dense(np.ones((2, 2)), np.ones((2, 2)))

    def test_duplicate_accumulation_semantics(self):
        # Two entries on the same row accumulate into the same output row
        # through different columns — the RaW-hazard pattern in hardware.
        dense = np.array([[1.0, 2.0], [0.0, 0.0]])
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        b = np.array([[10.0], [100.0]])
        assert np.allclose(spmm_csc_dense(csc, b), [[210.0], [0.0]])


class TestSpmv:
    def test_matches_numpy(self, operands):
        dense, _ = operands
        csr = coo_to_csr(CooMatrix.from_dense(dense))
        x = np.arange(17, dtype=float)
        assert np.allclose(spmv_csr(csr, x), dense @ x)

    def test_length_mismatch_raises(self, operands):
        dense, _ = operands
        csr = coo_to_csr(CooMatrix.from_dense(dense))
        with pytest.raises(ShapeError):
            spmv_csr(csr, np.ones(3))


class TestSpgemm:
    def test_matches_numpy(self, rng):
        a = rng.normal(size=(9, 7))
        a[rng.random(a.shape) > 0.4] = 0.0
        b = rng.normal(size=(7, 11))
        b[rng.random(b.shape) > 0.4] = 0.0
        a_csr = coo_to_csr(CooMatrix.from_dense(a))
        b_csr = coo_to_csr(CooMatrix.from_dense(b))
        out = spgemm_csr(a_csr, b_csr)
        assert np.allclose(out.to_dense(), a @ b)

    def test_inner_mismatch_raises(self, rng):
        a = coo_to_csr(CooMatrix.from_dense(np.eye(3)))
        b = coo_to_csr(CooMatrix.from_dense(np.eye(4)))
        with pytest.raises(ShapeError):
            spgemm_csr(a, b)


class TestTranspose:
    def test_matches_numpy(self, operands):
        dense, _ = operands
        csr = coo_to_csr(CooMatrix.from_dense(dense))
        assert np.array_equal(transpose_csr(csr).to_dense(), dense.T)
