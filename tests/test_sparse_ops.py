"""Reference kernels against dense numpy arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.sparse import (
    CooMatrix,
    coo_to_csc,
    coo_to_csr,
    spgemm_csr,
    spmm_csc_dense,
    spmm_csr_dense,
    spmv_csr,
    transpose_csr,
)
from repro.sparse.ops import _FLAT_KERNEL_THRESHOLD


@pytest.fixture
def operands(rng):
    dense = rng.normal(size=(23, 17))
    dense[rng.random(dense.shape) > 0.3] = 0.0
    b = rng.normal(size=(17, 6))
    return dense, b


class TestSpmm:
    def test_csc_dense_matches_numpy(self, operands):
        dense, b = operands
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        assert np.allclose(spmm_csc_dense(csc, b), dense @ b)

    def test_csr_dense_matches_numpy(self, operands):
        dense, b = operands
        csr = coo_to_csr(CooMatrix.from_dense(dense))
        assert np.allclose(spmm_csr_dense(csr, b), dense @ b)

    def test_csc_column_loop_kernel(self, operands, monkeypatch):
        # Force the large-matrix code path and check it agrees.
        import repro.sparse.ops as ops

        dense, b = operands
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        monkeypatch.setattr(ops, "_FLAT_KERNEL_THRESHOLD", 0)
        assert np.allclose(ops.spmm_csc_dense(csc, b), dense @ b)

    def test_empty_matrix(self):
        csc = coo_to_csc(CooMatrix.empty((4, 5)))
        out = spmm_csc_dense(csc, np.ones((5, 2)))
        assert np.array_equal(out, np.zeros((4, 2)))

    def test_zero_columns_operand(self, operands):
        dense, _ = operands
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        out = spmm_csc_dense(csc, np.zeros((17, 0)))
        assert out.shape == (23, 0)

    def test_shape_mismatch_raises(self, operands):
        dense, _ = operands
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        with pytest.raises(ShapeError):
            spmm_csc_dense(csc, np.ones((99, 2)))

    def test_wrong_type_raises(self):
        with pytest.raises(ShapeError):
            spmm_csc_dense(np.ones((2, 2)), np.ones((2, 2)))

    def test_duplicate_accumulation_semantics(self):
        # Two entries on the same row accumulate into the same output row
        # through different columns — the RaW-hazard pattern in hardware.
        dense = np.array([[1.0, 2.0], [0.0, 0.0]])
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        b = np.array([[10.0], [100.0]])
        assert np.allclose(spmm_csc_dense(csc, b), [[210.0], [0.0]])


class TestSpmv:
    def test_matches_numpy(self, operands):
        dense, _ = operands
        csr = coo_to_csr(CooMatrix.from_dense(dense))
        x = np.arange(17, dtype=float)
        assert np.allclose(spmv_csr(csr, x), dense @ x)

    def test_length_mismatch_raises(self, operands):
        dense, _ = operands
        csr = coo_to_csr(CooMatrix.from_dense(dense))
        with pytest.raises(ShapeError):
            spmv_csr(csr, np.ones(3))


class TestFlatKernelBoundary:
    """The two spmm_csc_dense kernels agree across the dispatch boundary.

    The flat scatter-add and the column-loop kernels must be drop-in
    replacements for each other; the property is checked by running the
    same operands with the patchable threshold pinned to each side of
    the actual ``nnz * k`` product (including exactly at it, which takes
    the flat path — the comparison is ``<=``).
    """

    @given(
        st.integers(1, 14),
        st.integers(1, 14),
        st.integers(1, 6),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_kernels_agree_across_threshold(self, m, n, k, seed):
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(m, n))
        dense[rng.random((m, n)) > 0.4] = 0.0
        b = rng.normal(size=(n, k))
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        work = csc.nnz * k
        flat = spmm_csc_dense(csc, b, flat_kernel_threshold=work)
        column_loop = spmm_csc_dense(csc, b, flat_kernel_threshold=work - 1)
        assert np.allclose(flat, column_loop)
        assert np.allclose(flat, dense @ b)

    def test_default_threshold_is_module_constant(self, operands,
                                                  monkeypatch):
        import repro.sparse.ops as ops

        dense, b = operands
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        expected = dense @ b
        # Patching the module constant still steers the default path.
        monkeypatch.setattr(ops, "_FLAT_KERNEL_THRESHOLD", 0)
        assert np.allclose(ops.spmm_csc_dense(csc, b), expected)
        monkeypatch.setattr(ops, "_FLAT_KERNEL_THRESHOLD", 10**12)
        assert np.allclose(ops.spmm_csc_dense(csc, b), expected)


class TestSpgemm:
    def test_matches_numpy(self, rng):
        a = rng.normal(size=(9, 7))
        a[rng.random(a.shape) > 0.4] = 0.0
        b = rng.normal(size=(7, 11))
        b[rng.random(b.shape) > 0.4] = 0.0
        a_csr = coo_to_csr(CooMatrix.from_dense(a))
        b_csr = coo_to_csr(CooMatrix.from_dense(b))
        out = spgemm_csr(a_csr, b_csr)
        assert np.allclose(out.to_dense(), a @ b)

    def test_inner_mismatch_raises(self, rng):
        a = coo_to_csr(CooMatrix.from_dense(np.eye(3)))
        b = coo_to_csr(CooMatrix.from_dense(np.eye(4)))
        with pytest.raises(ShapeError):
            spgemm_csr(a, b)

    @given(
        st.integers(1, 12),
        st.integers(1, 12),
        st.integers(1, 12),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_products_match_dense_oracle(self, m, k, n, seed):
        # Timing-insensitive correctness: the vectorized expansion-merge
        # must agree with dense matmul for arbitrary sparsity patterns,
        # including duplicate accumulation and cancellation.
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, k))
        a[rng.random((m, k)) > 0.35] = 0.0
        b = rng.normal(size=(k, n))
        b[rng.random((k, n)) > 0.35] = 0.0
        out = spgemm_csr(
            coo_to_csr(CooMatrix.from_dense(a)),
            coo_to_csr(CooMatrix.from_dense(b)),
        )
        assert out.shape == (m, n)
        assert np.allclose(out.to_dense(), a @ b)

    def test_chunked_path_matches_single_pass(self, rng, monkeypatch):
        import repro.sparse.ops as ops

        a = rng.normal(size=(31, 23))
        a[rng.random(a.shape) > 0.4] = 0.0
        b = rng.normal(size=(23, 19))
        b[rng.random(b.shape) > 0.4] = 0.0
        a_csr = coo_to_csr(CooMatrix.from_dense(a))
        b_csr = coo_to_csr(CooMatrix.from_dense(b))
        single = spgemm_csr(a_csr, b_csr)
        monkeypatch.setattr(ops, "_SPGEMM_CHUNK_PRODUCTS", 17)
        chunked = ops.spgemm_csr(a_csr, b_csr)
        assert chunked.shape == single.shape
        assert np.allclose(chunked.to_dense(), single.to_dense())
        assert np.allclose(chunked.to_dense(), a @ b)

    def test_empty_operands(self):
        a = coo_to_csr(CooMatrix.empty((3, 4)))
        b = coo_to_csr(CooMatrix.from_dense(np.ones((4, 2))))
        assert spgemm_csr(a, b).nnz == 0
        assert spgemm_csr(a, b).shape == (3, 2)

    def test_structural_zero_rows_and_columns(self):
        # A's only non-zeros hit an empty B row -> empty product.
        a = coo_to_csr(CooMatrix((2, 3), [0, 1], [1, 1], [5.0, 7.0]))
        b = coo_to_csr(CooMatrix((3, 2), [0, 2], [0, 1], [1.0, 2.0]))
        out = spgemm_csr(a, b)
        assert out.nnz == 0


class TestTranspose:
    def test_matches_numpy(self, operands):
        dense, _ = operands
        csr = coo_to_csr(CooMatrix.from_dense(dense))
        assert np.array_equal(transpose_csr(csr).to_dense(), dense.T)
