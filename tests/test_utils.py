"""RNG helpers and argument validation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.utils import (
    check_1d_int_array,
    check_fraction,
    check_non_negative_int,
    check_positive_int,
    rng_from_seed,
    spawn_rngs,
)


class TestRngFromSeed:
    def test_int_seed_is_deterministic(self):
        a = rng_from_seed(42).random(5)
        b = rng_from_seed(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(1)
        assert rng_from_seed(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(rng_from_seed(None), np.random.Generator)

    def test_bad_seed_raises(self):
        with pytest.raises(ConfigError):
            rng_from_seed("not a seed")


class TestSpawnRngs:
    def test_children_are_independent(self):
        children = spawn_rngs(7, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_deterministic_across_calls(self):
        a = [c.random(3).tolist() for c in spawn_rngs(7, 2)]
        b = [c.random(3).tolist() for c in spawn_rngs(7, 2)]
        assert a == b

    def test_negative_count_raises(self):
        with pytest.raises(ConfigError):
            spawn_rngs(7, -1)

    def test_zero_count_ok(self):
        assert spawn_rngs(7, 0) == []


class TestValidation:
    def test_positive_int_accepts(self):
        assert check_positive_int(5, "x") == 5
        assert check_positive_int(np.int64(5), "x") == 5

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3", True])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ConfigError):
            check_positive_int(bad, "x")

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_non_negative_int_rejects_negative(self):
        with pytest.raises(ConfigError):
            check_non_negative_int(-1, "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_fraction_accepts(self, value):
        assert check_fraction(value, "x") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_fraction_rejects_out_of_range(self, value):
        with pytest.raises(ConfigError):
            check_fraction(value, "x")

    def test_fraction_exclusive_bounds(self):
        with pytest.raises(ConfigError):
            check_fraction(0.0, "x", inclusive_low=False)
        with pytest.raises(ConfigError):
            check_fraction(1.0, "x", inclusive_high=False)

    def test_1d_int_array_converts(self):
        out = check_1d_int_array([1, 2, 3], "x")
        assert out.dtype == np.int64
        assert out.tolist() == [1, 2, 3]

    def test_1d_int_array_accepts_whole_floats(self):
        out = check_1d_int_array(np.array([1.0, 2.0]), "x")
        assert out.tolist() == [1, 2]

    def test_1d_int_array_rejects_2d(self):
        with pytest.raises(ConfigError):
            check_1d_int_array(np.zeros((2, 2)), "x")

    def test_1d_int_array_rejects_fractional(self):
        with pytest.raises(ConfigError):
            check_1d_int_array([1.5], "x")
