"""Extension features: multi-hop aggregation, deep GCNs, Eq. 5 approx."""

import numpy as np
import pytest

from repro.accel import (
    ArchConfig,
    GcnAccelerator,
    build_spmm_jobs,
    jobs_for_layers,
)
from repro.accel.remote import _shift_approx_step
from repro.datasets import gcn_normalize
from repro.errors import ConfigError, ShapeError
from repro.model import GcnModel
from repro.model.layers import GcnLayer
from repro.sparse import CooMatrix


@pytest.fixture
def graph(rng):
    dense = (rng.random((14, 14)) < 0.3).astype(float)
    dense = np.maximum(dense, dense.T)
    return gcn_normalize(CooMatrix.from_dense(dense))


class TestMultiHopModel:
    def test_two_hop_matches_numpy(self, graph, rng):
        w = rng.normal(size=(6, 4))
        x = rng.normal(size=(14, 6))
        layer = GcnLayer(graph, w, a_hops=2)
        a = graph.to_dense()
        expected = np.maximum(a @ (a @ (x @ w)), 0.0)
        assert np.allclose(layer.forward(x).output, expected)

    def test_orders_agree_with_hops(self, graph, rng):
        w = rng.normal(size=(6, 4))
        x = rng.normal(size=(14, 6))
        layer = GcnLayer(graph, w, a_hops=3)
        assert np.allclose(
            layer.forward(x).output, layer.forward_ax_w(x).output
        )

    def test_model_level_hops(self, graph, rng):
        weights = [rng.normal(size=(6, 5)), rng.normal(size=(5, 3))]
        x = rng.normal(size=(14, 6))
        model = GcnModel(graph, weights, a_hops=2)
        a = graph.to_dense()
        h1 = np.maximum(a @ (a @ (x @ weights[0])), 0.0)
        logits = a @ (a @ (h1 @ weights[1]))
        assert np.allclose(model.forward(x).logits, logits)

    def test_bad_hops_raises(self, graph, rng):
        with pytest.raises(ShapeError):
            GcnLayer(graph, rng.normal(size=(6, 4)), a_hops=0)


class TestDeepGcnModel:
    def test_five_layer_forward(self, graph, rng):
        dims = [6, 8, 8, 8, 8, 3]
        weights = [
            rng.normal(size=(dims[i], dims[i + 1])) for i in range(5)
        ]
        model = GcnModel(graph, weights)
        trace = model.forward(rng.normal(size=(14, 6)))
        assert len(trace.layer_results) == 5
        assert trace.probabilities.shape == (14, 3)


class TestMultiHopJobs:
    def test_job_count_per_layer(self, tiny_cora):
        layers = build_spmm_jobs(tiny_cora, a_hops=2)
        assert [len(stages) for stages in layers] == [3, 3]
        assert layers[0][2].name == "L1:A^2(XW)"

    def test_bad_hops_raises(self, tiny_cora):
        with pytest.raises(ConfigError):
            build_spmm_jobs(tiny_cora, a_hops=0)

    def test_accelerator_runs_two_hop(self, tiny_cora):
        report = GcnAccelerator(
            tiny_cora, ArchConfig(n_pes=16), a_hops=2
        ).run()
        assert len(report.spmm_results) == 6
        assert 0 < report.utilization <= 1.0

    def test_two_hop_costs_more_than_one(self, tiny_cora):
        one = GcnAccelerator(tiny_cora, ArchConfig(n_pes=16), a_hops=1).run()
        two = GcnAccelerator(tiny_cora, ArchConfig(n_pes=16), a_hops=2).run()
        assert two.total_cycles > one.total_cycles
        # ...but less than 2x: the extra A stage pipelines into the rest.
        assert two.total_cycles < 2 * one.total_cycles

    def test_a_map_reused_across_stages(self, tiny_nell):
        config = ArchConfig(n_pes=16, hop=2, remote_switching=True)
        report = GcnAccelerator(tiny_nell, config, a_hops=2).run()
        first_a = report.layers[0].stages[1]
        second_a = report.layers[0].stages[2]
        # The second A stage starts from the first one's converged map.
        assert (
            second_a.cycles_per_round[0] <= first_a.cycles_per_round[0]
        )


class TestDeepGcnJobs:
    def test_jobs_for_layers(self, tiny_cora):
        a_nnz = tiny_cora.adjacency.row_nnz()
        x_nnz = tiny_cora.x1_row_nnz
        specs = [(f"L{i + 1}", x_nnz, 8) for i in range(6)]
        layers = jobs_for_layers(a_nnz, specs)
        assert len(layers) == 6
        report = GcnAccelerator.from_jobs(
            layers, ArchConfig(n_pes=16), name="deep"
        ).run()
        assert len(report.layers) == 6
        assert report.dataset == "deep"

    def test_from_jobs_validates_config(self, tiny_cora):
        with pytest.raises(ConfigError):
            GcnAccelerator.from_jobs([], "nope")


class TestEq5Approximation:
    def test_shift_step_matches_exact_at_powers_of_two(self):
        exact = (0.5 / 1.0) * (64 / 2.0)
        assert _shift_approx_step(50, 100, 64) == pytest.approx(exact)

    def test_shift_step_within_sqrt2_of_exact(self):
        for gap, g1 in ((30, 100), (75, 100), (99, 100), (10, 100)):
            exact = (gap / g1) * 32.0
            approx = _shift_approx_step(gap, g1, 64)
            assert exact / np.sqrt(2) <= approx <= exact * np.sqrt(2)

    def test_zero_gap_gives_zero(self):
        assert _shift_approx_step(0, 100, 64) == 0.0

    def test_approximate_tuner_still_converges(self, rng):
        from repro.accel import SpmmJob, simulate_spmm

        row_nnz = rng.integers(1, 5, size=256)
        row_nnz[7] = 500
        job = SpmmJob(name="j", row_nnz=row_nnz, n_rounds=16)
        exact = simulate_spmm(
            job, ArchConfig(n_pes=16, remote_switching=True)
        )
        approx = simulate_spmm(
            job,
            ArchConfig(n_pes=16, remote_switching=True, eq5_approximate=True),
        )
        static = simulate_spmm(job, ArchConfig(n_pes=16))
        assert approx.total_cycles < static.total_cycles
        # The approximation costs little vs the exact Eq. 5.
        assert approx.total_cycles <= exact.total_cycles * 1.35
