"""The exception hierarchy contract."""

import pytest

from repro.errors import (
    ConfigError,
    DatasetError,
    FormatError,
    ReproError,
    ShapeError,
    SimulationError,
)


@pytest.mark.parametrize(
    "exc", [ShapeError, FormatError, ConfigError, SimulationError, DatasetError]
)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_value_errors_are_value_errors():
    # Callers should be able to catch bad-input errors as ValueError.
    for exc in (ShapeError, FormatError, ConfigError, DatasetError):
        assert issubclass(exc, ValueError)


def test_simulation_error_is_runtime_error():
    assert issubclass(SimulationError, RuntimeError)


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise FormatError("bad format")
