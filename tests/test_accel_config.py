"""ArchConfig validation and derived quantities."""

import pytest

from repro.accel import ArchConfig
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        cfg = ArchConfig()
        assert cfg.n_pes == 256
        assert cfg.hop == 0
        assert not cfg.remote_switching

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_pes": 0},
            {"n_pes": -4},
            {"hop": -1},
            {"mac_latency": 0},
            {"queues_per_pe": 0},
            {"tracking_window": 0},
            {"frequency_mhz": 0},
            {"sharing_efficiency": 0.0},
            {"sharing_efficiency": 1.5},
            {"switch_damping": 0},
            {"convergence_patience": 0},
            {"drain_cycles": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ArchConfig(**kwargs)

    def test_drain_derived_from_pes_and_mac(self):
        cfg = ArchConfig(n_pes=256, mac_latency=5)
        assert cfg.drain_cycles == 8 + 5  # log2(256) + T

    def test_drain_explicit(self):
        assert ArchConfig(drain_cycles=3).drain_cycles == 3

    def test_immutable(self):
        cfg = ArchConfig()
        with pytest.raises(Exception):
            cfg.n_pes = 2


class TestDerived:
    def test_raw_cooldown_hidden_at_defaults(self):
        # T=5 with 4 queues: hazards fully hidden.
        assert ArchConfig().raw_cooldown == 1

    def test_raw_cooldown_binds_for_deep_mac(self):
        cfg = ArchConfig(mac_latency=12, queues_per_pe=4)
        assert cfg.raw_cooldown == 8

    def test_cycles_to_ms(self):
        cfg = ArchConfig(frequency_mhz=275.0)
        assert cfg.cycles_to_ms(275000) == pytest.approx(1.0)

    def test_with_updates(self):
        cfg = ArchConfig().with_updates(hop=2, remote_switching=True)
        assert cfg.hop == 2
        assert cfg.remote_switching
        assert cfg.n_pes == 256  # untouched
