"""Tests for the inter-chip fabric topologies and their pricing."""

import numpy as np
import pytest

from repro.cluster import TOPOLOGY_KINDS, Topology, make_topology
from repro.errors import ConfigError


def _traffic(n, entries):
    """A traffic matrix from ``{(dst, src): words}``."""
    words = np.zeros((n, n), dtype=np.int64)
    for (dst, src), w in entries.items():
        words[dst, src] = w
    return words


class TestMakeTopology:
    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    def test_builds_every_kind(self, kind):
        topo = make_topology(kind, 4)
        assert isinstance(topo, Topology)
        assert topo.n_chips == 4
        assert topo.n_links > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            make_topology("torus", 4)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_bandwidth_rejected(self, bad):
        with pytest.raises(ConfigError):
            make_topology("ring", 4, link_words_per_cycle=bad)

    def test_negative_hop_latency_rejected(self):
        with pytest.raises(ConfigError):
            make_topology("ring", 4, hop_latency_cycles=-1)

    def test_link_counts(self):
        assert make_topology("all-to-all", 4).n_links == 4
        assert make_topology("ring", 4).n_links == 8
        # 2x2 mesh: 2 horizontal + 2 vertical edges, both directions.
        assert make_topology("mesh2d", 4).n_links == 8
        # 2x3 mesh: 4 horizontal + 3 vertical edges, both directions.
        assert make_topology("mesh2d", 6).n_links == 14

    def test_wrong_traffic_shape_rejected(self):
        topo = make_topology("ring", 4)
        with pytest.raises(ConfigError):
            topo.comm_cycles(np.zeros((3, 3)))


class TestAllToAll:
    def test_matches_scalar_ingress_model(self):
        # The PR 4 model: chip d pays ceil(total inbound words / bw).
        topo = make_topology("all-to-all", 3, link_words_per_cycle=4.0)
        words = _traffic(3, {(0, 1): 10, (0, 2): 6, (2, 1): 3})
        comm = topo.comm_cycles(words)
        assert comm.tolist() == [4, 0, 1]  # ceil(16/4), 0, ceil(3/4)

    def test_single_hop_latency(self):
        topo = make_topology(
            "all-to-all", 3, link_words_per_cycle=4.0, hop_latency_cycles=5
        )
        comm = topo.comm_cycles(_traffic(3, {(0, 1): 4}))
        assert comm[0] == 1 + 5
        assert topo.hops(1, 0) == 1
        assert topo.hops(1, 1) == 0


class TestRing:
    def test_shortest_direction_hops(self):
        topo = make_topology("ring", 5)
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 4) == 1  # wraps counter-clockwise
        assert topo.hops(0, 2) == 2
        assert topo.hops(0, 3) == 2

    def test_antipodal_tie_goes_clockwise(self):
        topo = make_topology("ring", 4)
        assert topo.hops(0, 2) == 2
        # Clockwise links are ids 0..n-1: 0->1 is link 0, 1->2 link 1.
        assert topo.routes[2][0] == (0, 1)

    def test_contended_link_sums_traffic(self):
        # Flows 0->2 and 1->2 (clockwise) share link 1->2; each flow
        # sees the link's total load, not just its own words.
        topo = make_topology("ring", 4, link_words_per_cycle=1.0)
        words = _traffic(4, {(2, 0): 8, (2, 1): 8})
        comm = topo.comm_cycles(words)
        assert comm[2] == 16 + 0  # both bottleneck on the shared link
        alone = topo.comm_cycles(_traffic(4, {(2, 1): 8}))
        assert alone[2] == 8

    def test_two_ring_is_two_links(self):
        topo = make_topology("ring", 2)
        assert topo.n_links == 2
        assert topo.hops(0, 1) == 1
        assert topo.hops(1, 0) == 1


class TestMesh2d:
    def test_xy_route_hops_match_manhattan(self):
        topo = make_topology("mesh2d", 6)  # 2 x 3 grid
        # chip r * 3 + c at (r, c); 0 at (0,0), 5 at (1,2).
        assert topo.hops(0, 5) == 3
        assert topo.hops(0, 2) == 2
        assert topo.hops(0, 3) == 1
        assert topo.max_hops == 3

    def test_prime_count_degenerates_to_line(self):
        topo = make_topology("mesh2d", 5)  # 1 x 5
        assert topo.hops(0, 4) == 4
        assert topo.n_links == 8

    def test_disjoint_flows_overlap(self):
        # 2x2 mesh: 1->0 and 2->3 touch disjoint links, so each pays
        # only its own transfer.
        topo = make_topology("mesh2d", 4, link_words_per_cycle=2.0)
        words = _traffic(4, {(0, 1): 8, (3, 2): 8})
        comm = topo.comm_cycles(words)
        assert comm.tolist() == [4, 0, 0, 4]


class TestPricing:
    def test_transfer_cycles_uncontended(self):
        topo = make_topology(
            "ring", 4, link_words_per_cycle=2.0, hop_latency_cycles=3
        )
        assert topo.transfer_cycles(0, 2, 10) == 5 + 2 * 3
        assert topo.transfer_cycles(0, 2, 0) == 0

    def test_aggregate_bandwidth(self):
        topo = make_topology("ring", 4, link_words_per_cycle=2.5)
        assert topo.aggregate_bandwidth == pytest.approx(8 * 2.5)

    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    def test_zero_traffic_is_free(self, kind):
        topo = make_topology(kind, 4)
        assert topo.comm_cycles(np.zeros((4, 4))).sum() == 0

    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    def test_single_flow_never_beats_all_to_all(self, kind):
        # One uncontended flow bottlenecks on its own words everywhere;
        # multi-hop fabrics can only add hop latency on top. (A full
        # traffic matrix CAN favor a ring at equal per-link bandwidth —
        # two inbound directions split what all-to-all funnels through
        # one ingress link — which is why the equal-aggregate-bandwidth
        # comparison is the fair one; see compare_shard_topology.)
        a2a = make_topology(
            "all-to-all", 6, link_words_per_cycle=4.0, hop_latency_cycles=2
        )
        topo = make_topology(
            kind, 6, link_words_per_cycle=4.0, hop_latency_cycles=2
        )
        for src in range(6):
            for dst in range(6):
                if src == dst:
                    continue
                words = _traffic(6, {(dst, src): 23})
                assert (
                    topo.comm_cycles(words)[dst]
                    >= a2a.comm_cycles(words)[dst]
                )
