"""Full-inference accelerator model: jobs, pipelining, reports, designs."""

import numpy as np
import pytest

from repro.accel import (
    ArchConfig,
    GcnAccelerator,
    build_spmm_jobs,
    design_config,
    design_hops,
    run_design_suite,
)
from repro.accel.designs import DESIGN_NAMES
from repro.errors import ConfigError


class TestJobConstruction:
    def test_four_jobs_two_layers(self, tiny_cora):
        jobs = build_spmm_jobs(tiny_cora)
        flat = [job for pair in jobs for job in pair]
        assert [j.name for j in flat] == [
            "L1:XW", "L1:A(XW)", "L2:XW", "L2:A(XW)",
        ]

    def test_round_counts_follow_dims(self, tiny_cora):
        _f1, f2, f3 = tiny_cora.feature_dims
        jobs = build_spmm_jobs(tiny_cora)
        assert jobs[0][0].n_rounds == f2
        assert jobs[0][1].n_rounds == f2
        assert jobs[1][0].n_rounds == f3
        assert jobs[1][1].n_rounds == f3

    def test_tdq_selection(self, tiny_cora):
        jobs = build_spmm_jobs(tiny_cora)
        assert jobs[0][0].tdq == "tdq1"  # X W: general sparse
        assert jobs[0][1].tdq == "tdq2"  # A (XW): ultra sparse CSC

    def test_a_jobs_share_row_profile(self, tiny_cora):
        jobs = build_spmm_jobs(tiny_cora)
        assert np.array_equal(jobs[0][1].row_nnz, jobs[1][1].row_nnz)

    def test_x2_override(self, tiny_cora):
        custom = np.full(tiny_cora.n_nodes, 3, dtype=np.int64)
        jobs = build_spmm_jobs(tiny_cora, x2_row_nnz=custom)
        assert jobs[1][0].work_per_round == 3 * tiny_cora.n_nodes

    def test_x2_wrong_length_raises(self, tiny_cora):
        with pytest.raises(ConfigError):
            build_spmm_jobs(tiny_cora, x2_row_nnz=np.ones(3, dtype=int))


class TestAcceleratorRun:
    def test_report_structure(self, tiny_cora):
        report = GcnAccelerator(tiny_cora, ArchConfig(n_pes=16)).run()
        assert len(report.layers) == 2
        assert len(report.spmm_results) == 4
        assert report.total_cycles > 0
        assert 0 < report.utilization <= 1.0
        assert report.latency_ms > 0

    def test_per_layer_cycles_sum_to_total(self, tiny_cora):
        report = GcnAccelerator(tiny_cora, ArchConfig(n_pes=16)).run()
        assert sum(report.per_layer_cycles()) == report.total_cycles

    def test_work_respects_aggregate_bandwidth(self, tiny_cora):
        # Utilization can never exceed 1: cycles >= work / PEs.
        for design in DESIGN_NAMES:
            cfg = design_config(design, dataset_name="cora",
                                base=ArchConfig(n_pes=16))
            report = GcnAccelerator(tiny_cora, cfg).run()
            assert report.total_cycles * 16 >= report.total_work

    def test_pipelining_never_slower(self, tiny_cora):
        on = GcnAccelerator(
            tiny_cora, ArchConfig(n_pes=16, pipeline_spmm=True)
        ).run()
        off = GcnAccelerator(
            tiny_cora, ArchConfig(n_pes=16, pipeline_spmm=False)
        ).run()
        assert on.total_cycles <= off.total_cycles

    def test_pipeline_speedup_property(self, tiny_cora):
        report = GcnAccelerator(tiny_cora, ArchConfig(n_pes=16)).run()
        for layer in report.layers:
            assert layer.pipeline_speedup >= 1.0

    def test_bad_config_raises(self, tiny_cora):
        with pytest.raises(ConfigError):
            GcnAccelerator(tiny_cora, object())


class TestDesignPresets:
    def test_design_names(self):
        assert DESIGN_NAMES[0] == "baseline"
        assert len(DESIGN_NAMES) == 5

    def test_nell_hop_override(self):
        assert design_hops("nell") == (2, 3)
        assert design_hops("cora") == (1, 2)

    def test_design_config_fields(self):
        cfg = design_config("design_c", dataset_name="cora")
        assert cfg.hop == 1 and cfg.remote_switching
        cfg = design_config("design_d", dataset_name="nell")
        assert cfg.hop == 3 and cfg.remote_switching
        cfg = design_config("baseline", dataset_name="nell")
        assert cfg.hop == 0 and not cfg.remote_switching

    def test_unknown_design_raises(self):
        with pytest.raises(ConfigError):
            design_config("design_z")

    def test_suite_monotone_improvement(self, tiny_nell):
        reports = run_design_suite(
            tiny_nell, base=ArchConfig(n_pes=16)
        )
        cycles = [reports[d].total_cycles for d in DESIGN_NAMES]
        # Every rebalanced design beats the baseline.
        assert all(c <= cycles[0] for c in cycles[1:])
        # Utilization improves from baseline to the full design.
        assert (
            reports["design_d"].utilization
            > reports["baseline"].utilization
        )

    def test_suite_subset(self, tiny_cora):
        reports = run_design_suite(
            tiny_cora,
            base=ArchConfig(n_pes=8),
            designs=["baseline", "design_d"],
        )
        assert set(reports) == {"baseline", "design_d"}
