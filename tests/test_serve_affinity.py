"""Cache-affinity routing, demand histograms and cache metadata.

Three contracts pinned here:

* ``cache_mode="shared"`` (the default) is the historical oracle: a
  hypothesis property serves identical traces — batch, streaming and
  mixed/sharded/co-scheduled, at 1/2/4 instances — once with the
  pre-PR call shape and once spelling every new knob's default
  explicitly, and requires bit-identical results, latency traces,
  cache stats and LRU order.
* Affinity routing is an optimization, never a semantics change: it
  only picks among *feasible* instances for the batch EDF already
  chose — a warm instance whose wait would break the batch's deadline
  (or, SLO-less, exceed one estimated service time) is skipped for the
  first-free fallback, so no batch is ever stranded waiting for warmth.
* Cache metadata (per-entry hit counts and last-use stamps) rides the
  archive format compatibly: version-3 archives round-trip it,
  version-2 archives still load cold, and ``merge`` only disturbs the
  receiver's recency order when the incoming duplicate is strictly
  fresher.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import ArchConfig
from repro.accel.gcnaccel import GcnAccelerator
from repro.errors import ConfigError
from repro.obs import RecordingTracer
from repro.obs.views import service_stats_view
from repro.serve.cache import AutotuneCache
from repro.serve.demand import DemandHistogram
from repro.serve.request import InferenceRequest
from repro.serve.scheduler import QueuedRequest
from repro.serve.service import InferenceService, serve_requests
from repro.serve.traffic import (
    RmatGraphSpec,
    mixed_traffic,
    streaming_traffic,
    synthetic_traffic,
)

CFG = ArchConfig(n_pes=32, hop=1, remote_switching=True)
CFG16 = ArchConfig(n_pes=16, hop=1, remote_switching=True)
TINY = {"f1": 16, "f2": 8, "f3": 4}


def _spec(seed, n_nodes=128):
    return RmatGraphSpec(n_nodes=n_nodes, avg_degree=4, seed=seed, **TINY)


def _accel(seed, n_nodes=128):
    return GcnAccelerator(_spec(seed, n_nodes).build(), CFG)


class _StubStream:
    """A scheduler stand-in exposing only the EWMA estimate."""

    def __init__(self, estimate):
        self._estimate = estimate

    def estimate(self, config, a_hops):
        return self._estimate


class TestDemandHistogram:
    def test_decay_halves_per_half_life(self):
        hist = DemandHistogram(half_life=0.1)
        hist.record("fam", 0.0, weight=4.0)
        assert hist.demand("fam", 0.0) == 4.0
        assert hist.demand("fam", 0.1) == pytest.approx(2.0)
        assert hist.demand("fam", 0.3) == pytest.approx(0.5)
        assert hist.demand("missing", 0.3) == 0.0

    def test_record_decays_then_accumulates(self):
        hist = DemandHistogram(half_life=0.1)
        hist.record("fam", 0.0)
        assert hist.record("fam", 0.1) == pytest.approx(1.5)
        # Reads never advance the decay anchor.
        hist.demand("fam", 99.0)
        assert hist.demand("fam", 0.1) == pytest.approx(1.5)

    def test_hot_threshold_in_first_observation_order(self):
        hist = DemandHistogram(half_life=0.1)
        for family, count in (("b", 3), ("a", 1), ("c", 2)):
            for _ in range(count):
                hist.record(family, 0.0)
        assert hist.hot(0.0, threshold=2.0) == ["b", "c"]
        assert hist.hot(0.1, threshold=1.4) == ["b"]
        assert hist.snapshot(0.0) == {"b": 3.0, "a": 1.0, "c": 2.0}
        assert len(hist) == 3 and "a" in hist and "z" not in hist

    def test_half_life_validated(self):
        with pytest.raises(ConfigError):
            DemandHistogram(half_life=0.0)
        with pytest.raises(ConfigError):
            DemandHistogram(half_life=-1.0)


class TestCacheMetadata:
    def test_lookup_counts_hits_and_stamps_clock(self):
        cache = AutotuneCache()
        a = _accel(11)
        a.run(cache=cache)
        cache.clock = 2.5
        assert cache.lookup(a.fingerprint(), a.config) is not None
        (info,) = cache.snapshot()
        assert info.fingerprint == a.fingerprint()
        assert info.config == a.config
        assert info.hits == 1 and info.last_used == 2.5
        assert info.key == AutotuneCache.key(a.fingerprint(), a.config)
        # peek is invisible to the metadata too.
        cache.clock = 9.0
        assert cache.peek(a.fingerprint(), a.config) is not None
        (info,) = cache.snapshot()
        assert info.hits == 1 and info.last_used == 2.5

    def test_v3_archive_roundtrips_metadata(self, tmp_path):
        cache = AutotuneCache()
        a, b = _accel(21), _accel(22)
        a.run(cache=cache)
        b.run(cache=cache)
        cache.clock = 4.0
        cache.lookup(a.fingerprint(), a.config)
        path = cache.save(tmp_path / "cache")
        restored = AutotuneCache.load(path)
        assert restored.snapshot() == cache.snapshot()

    def test_v2_archive_loads_with_cold_metadata(self, tmp_path):
        cache = AutotuneCache()
        a, b = _accel(31), _accel(32)
        a.run(cache=cache)
        b.run(cache=cache)
        cache.clock = 4.0
        cache.lookup(a.fingerprint(), a.config)
        path = cache.save(tmp_path / "cache")
        # Rewrite the archive as a pre-metadata version-2 index.
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        index = json.loads(bytes(arrays["index"]).decode())
        index["version"] = 2
        for entry in index["entries"]:
            del entry["hits"], entry["last_used"]
        arrays["index"] = np.frombuffer(
            json.dumps(index).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        restored = AutotuneCache.load(path)
        # Same entries in the same LRU order (lookup promoted a)...
        assert [info.key for info in restored.snapshot()] == [
            info.key for info in cache.snapshot()
        ]
        # ...with metadata defaulting to cold.
        assert all(
            info.hits == 0 and info.last_used == 0.0
            for info in restored.snapshot()
        )

    def test_merge_duplicate_not_fresher_keeps_recency(self):
        left = AutotuneCache()
        a, b = _accel(41), _accel(42)
        a.run(cache=left)
        b.run(cache=left)
        left.lookup(a.fingerprint(), a.config)  # order [b, a], a hits 1
        order = [info.key for info in left.snapshot()]
        donor = AutotuneCache()
        a.run(cache=donor)  # last_used 0.0 — not fresher
        assert left.merge(donor) == 1
        assert [info.key for info in left.snapshot()] == order
        by_key = {info.key: info for info in left.snapshot()}
        key_a = AutotuneCache.key(a.fingerprint(), a.config)
        assert by_key[key_a].hits == 1  # receiver history untouched

    def test_merge_fresher_duplicate_promotes_and_restamps(self):
        left = AutotuneCache()
        a, b, c = _accel(51), _accel(52), _accel(53)
        a.run(cache=left)
        left.clock = 1.0
        left.lookup(a.fingerprint(), a.config)  # a hits 1, stamp 1.0
        b.run(cache=left)
        c.run(cache=left)  # order [a, b, c]
        donor = AutotuneCache()
        donor.clock = 5.0
        a.run(cache=donor)  # last_used 5.0 — strictly fresher
        assert left.merge(donor) == 1
        key = AutotuneCache.key(a.fingerprint(), a.config)
        assert [info.key for info in left.snapshot()][-1] == key
        info = {info.key: info for info in left.snapshot()}[key]
        # Fresher stamp adopted, local hit history carried.
        assert info.last_used == 5.0 and info.hits == 1


class TestAffinityRouting:
    def _service(self, **kwargs):
        kwargs.setdefault("n_workers", 2)
        return InferenceService(cache=True, cache_mode="affinity", **kwargs)

    def _item(self, seed=1, slo_ms=None):
        request = InferenceRequest(
            graph=_spec(seed), config=CFG, arrival_time=0.0, slo_ms=slo_ms
        )
        return QueuedRequest(seq=0, request=request)

    def _warm(self, service, worker_index, item):
        dataset = item.request.resolve_graph()
        accel = GcnAccelerator(dataset, item.request.config)
        accel.run(cache=service.workers[worker_index].cache)

    def test_prefers_free_warm_worker_over_lower_index(self):
        service = self._service()
        item = self._item(slo_ms=50.0)
        self._warm(service, 1, item)
        worker = service._route_worker(
            [item], 0.0, 128, frozenset(), _StubStream(0.001)
        )
        assert worker is service.workers[1]
        assert service._drain_routes == 1
        assert service._drain_route_hits == 1

    def test_waits_for_busy_warm_worker_within_slack(self):
        service = self._service()
        item = self._item(slo_ms=50.0)  # deadline 0.05
        self._warm(service, 1, item)
        service.workers[1].free_at = 0.01
        worker = service._route_worker(
            [item], 0.0, 128, frozenset(), _StubStream(0.005)
        )
        assert worker is service.workers[1]  # 0.01 + 0.005 <= 0.05

    def test_never_strands_past_deadline_on_a_warm_worker(self):
        service = self._service()
        item = self._item(slo_ms=5.0)  # deadline 0.005
        self._warm(service, 1, item)
        service.workers[1].free_at = 0.004
        worker = service._route_worker(
            [item], 0.0, 128, frozenset(), _StubStream(0.002)
        )
        # Waiting would blow the deadline (0.004 + 0.002 > 0.005):
        # EDF feasibility wins, the free cold instance serves now.
        assert worker is service.workers[0]
        assert service._drain_route_hits == 0
        # With every instance busy the router reports none rather than
        # queueing the batch on warmth it cannot safely wait for.
        service.workers[0].free_at = 0.02
        assert service._route_worker(
            [item], 0.0, 128, frozenset(), _StubStream(0.002)
        ) is None

    def test_slo_less_wait_bounded_by_service_estimate(self):
        service = self._service()
        item = self._item()  # no SLO: deadline inf
        self._warm(service, 1, item)
        service.workers[1].free_at = 0.01
        # Wait (0.01) within one estimated service (0.02): warm wins.
        assert service._route_worker(
            [item], 0.0, 128, frozenset(), _StubStream(0.02)
        ) is service.workers[1]
        # Estimate 0.0 — a cold scheduler — means never wait.
        assert service._route_worker(
            [item], 0.0, 128, frozenset(), _StubStream(0.0)
        ) is service.workers[0]

    def test_claimed_workers_skipped(self):
        service = self._service()
        item = self._item(slo_ms=50.0)
        self._warm(service, 1, item)
        worker = service._route_worker(
            [item], 0.0, 128, frozenset({1}), _StubStream(0.001)
        )
        assert worker is service.workers[0]

    def test_affinity_changes_no_modeled_number(self):
        requests = streaming_traffic(
            16, arrival_rate=2000.0, slo_ms=50.0, n_graphs=3, n_nodes=256,
            seed=3, configs=(CFG,), graph_kwargs=TINY,
        )
        blind = serve_requests(
            requests, n_workers=2, cache=True, max_batch=4,
            cache_mode="partitioned",
        )
        affinity = serve_requests(
            requests, n_workers=2, cache=True, max_batch=4,
            cache_mode="affinity", replicate_threshold=2.0,
        )
        assert [r.total_cycles for r in blind.results] == [
            r.total_cycles for r in affinity.results
        ]
        assert [r.shed for r in blind.results] == [
            r.shed for r in affinity.results
        ]
        assert blind.stats.n_batches == affinity.stats.n_batches

    def test_views_rebuild_placement_stats_from_event_stream(self):
        requests = streaming_traffic(
            16, arrival_rate=2000.0, slo_ms=50.0, n_graphs=3, n_nodes=256,
            seed=3, configs=(CFG,), graph_kwargs=TINY,
        )
        tracer = RecordingTracer()
        outcome = serve_requests(
            requests, n_workers=2, cache=True, max_batch=4,
            cache_mode="affinity", replicate_threshold=2.0, tracer=tracer,
        )
        names = {event.name for event in tracer.events}
        assert {"cache.route", "cache.replicate"} <= names
        view = service_stats_view(
            tracer.events, wall_seconds=outcome.stats.wall_seconds
        )
        assert view == outcome.stats
        assert view.placement_hit_rate == outcome.stats.placement_hit_rate
        assert outcome.stats.n_routed > 0
        assert outcome.stats.n_replications > 0


def _trace(kind, seed):
    if kind == "batch":
        return synthetic_traffic(
            8, n_graphs=2, n_nodes=128, seed=seed, configs=(CFG,),
            graph_kwargs=TINY,
        ), {}
    if kind == "streaming":
        return streaming_traffic(
            8, arrival_rate=800.0, slo_ms=20.0, n_graphs=2, n_nodes=128,
            seed=seed, configs=(CFG,), graph_kwargs=TINY,
        ), {"max_batch": 4}
    return mixed_traffic(
        8, arrival_rate=1500.0, chip_capacity=256, seed=seed,
        configs=(CFG16,), sharded_nodes=600, sharded_fraction=0.3,
        critical_fraction=0.3, graph_kwargs=TINY,
    ), {"chip_capacity": 256, "coschedule": True, "critical_slo_ms": 1.0}


class TestSharedModeIsTheOracle:
    @settings(max_examples=10, deadline=None)
    @given(
        kind=st.sampled_from(["batch", "streaming", "mixed"]),
        n_workers=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 3),
    )
    def test_default_bit_identical_to_explicit_shared(
        self, kind, n_workers, seed
    ):
        requests, kwargs = _trace(kind, seed)
        oracle_cache, explicit_cache = AutotuneCache(), AutotuneCache()
        # The pre-PR call shape: no affinity-era kwargs at all.
        oracle = serve_requests(
            requests, n_workers=n_workers, cache=oracle_cache, **kwargs
        )
        # Every new knob spelled at its default.
        explicit = serve_requests(
            requests, n_workers=n_workers, cache=explicit_cache,
            cache_mode="shared", worker_cache_entries=None,
            replicate_threshold=None, replicate_k=2,
            demand_half_life=0.05, **kwargs
        )
        for a, b in zip(oracle.results, explicit.results):
            assert a.total_cycles == b.total_cycles
            assert a.start_time == b.start_time
            assert a.finish_time == b.finish_time
            assert a.latency_ms == b.latency_ms
            assert a.cache_hit == b.cache_hit
            assert a.worker == b.worker and a.batch == b.batch
            assert a.shed == b.shed and a.n_shards == b.n_shards
        assert oracle.latency == explicit.latency
        # wall_seconds is host wall-clock — the one legitimately
        # nondeterministic column; everything else must match exactly.
        assert dataclasses.replace(
            oracle.stats, wall_seconds=0.0
        ) == dataclasses.replace(explicit.stats, wall_seconds=0.0)
        assert oracle.stats.n_routed == 0
        assert oracle.stats.placement_hit_rate is None
        assert oracle_cache.stats == explicit_cache.stats
        # Contents, LRU order and per-entry metadata all match.
        assert oracle_cache.snapshot() == explicit_cache.snapshot()
