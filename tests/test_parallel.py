"""The multiprocessing backend and its bit-identity contract.

``workers=N`` is a host-execution knob: it may only change how long the
simulation takes on the wall clock, never a modeled number. These tests
pin that contract end to end — cycles, timestamps, latency traces,
cache contents, cache *stats* and LRU order all bit-identical to the
sequential oracle — plus the accounting/persistence bugfixes that
shipped with the backend (gang attribution, atomic cache saves,
reconfiguration busy time).
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import parallel
from repro.accel.config import ArchConfig
from repro.accel.gcnaccel import GcnAccelerator
from repro.cluster.multichip import ClusterConfig, simulate_multichip_gcn
from repro.errors import ConfigError
from repro.serve.cache import AutotuneCache
from repro.serve.service import InferenceService, serve_requests
from repro.serve.traffic import (
    RmatGraphSpec,
    streaming_traffic,
    synthetic_traffic,
)

CFG = ArchConfig(n_pes=32, hop=1, remote_switching=True)
CFG_BIG = ArchConfig(n_pes=64, hop=1, remote_switching=True)


def _graph(seed, n_nodes=256):
    return RmatGraphSpec(
        n_nodes=n_nodes, avg_degree=6, f1=16, f2=8, f3=4, seed=seed
    ).build()


def _accel(seed, config=CFG, n_nodes=256):
    return GcnAccelerator(_graph(seed, n_nodes), config)


def _entries_equal(a, b):
    """Whether two caches hold identical entries in identical LRU order."""
    if list(a._entries.keys()) != list(b._entries.keys()):
        return False
    for ea, eb in zip(a._entries.values(), b._entries.values()):
        for la, lb in zip(ea.layers, eb.layers):
            for sa, sb in zip(la, lb):
                if not np.array_equal(sa.owner, sb.owner):
                    return False
                if (sa.warmup_costs, sa.converged_round, sa.final_backlog,
                        sa.total_backlog) != (
                        sb.warmup_costs, sb.converged_round,
                        sb.final_backlog, sb.total_backlog):
                    return False
    return True


def _reports_equal(a, b):
    if a.total_cycles != b.total_cycles or a.cache_hit != b.cache_hit:
        return False
    if a.dataset != b.dataset or a.config != b.config:
        return False
    for la, lb in zip(a.layers, b.layers):
        if la.pipelined_cycles != lb.pipelined_cycles:
            return False
        for sa, sb in zip(la.stages, lb.stages):
            if sa.total_cycles != sb.total_cycles:
                return False
            if not np.array_equal(sa.final_owner, sb.final_owner):
                return False
    return True


class TestWorkersKnob:
    def test_workers_validated(self):
        with pytest.raises(ConfigError):
            parallel.check_workers(0)
        with pytest.raises(ConfigError):
            parallel.check_workers(-1)
        with pytest.raises(ConfigError):
            ClusterConfig(n_chips=2, workers=0)
        with pytest.raises(ConfigError):
            InferenceService(workers=0)

    def test_disable_switch_forces_sequential(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_DISABLE", "1")
        assert parallel.effective_workers(8) == 1
        monkeypatch.delenv("REPRO_PARALLEL_DISABLE")
        assert parallel.effective_workers(8) == 8

    def test_service_reserves_workers_cluster_option(self):
        with pytest.raises(ConfigError):
            InferenceService(cluster_options={"workers": 2})


class TestSimulateAccels:
    def test_matches_sequential_reports_and_cache(self):
        accels = [_accel(s) for s in (1, 2, 3, 1)]  # seed 1 repeats
        seq_cache, par_cache = AutotuneCache(), AutotuneCache()
        seq = [a.run(cache=seq_cache) for a in accels]
        par = parallel.simulate_accels(
            [_accel(s) for s in (1, 2, 3, 1)],
            cache=par_cache, workers=2,
        )
        assert all(_reports_equal(a, b) for a, b in zip(seq, par))
        assert seq_cache.stats == par_cache.stats
        assert _entries_equal(seq_cache, par_cache)
        # The repeated workload is a hit in both backends.
        assert not seq[0].cache_hit and seq[3].cache_hit
        assert not par[0].cache_hit and par[3].cache_hit

    def test_matches_sequential_without_cache(self):
        seq = [a.run() for a in [_accel(4), _accel(5)]]
        par = parallel.simulate_accels(
            [_accel(4), _accel(5)], workers=2
        )
        assert all(_reports_equal(a, b) for a, b in zip(seq, par))

    def test_bounded_cache_evictions_identical(self):
        # Three distinct workloads through a 2-entry cache: the third
        # store evicts, and the parallel replay must evict the same key.
        seq_cache = AutotuneCache(max_entries=2)
        par_cache = AutotuneCache(max_entries=2)
        accels = [_accel(s) for s in (11, 12, 13)]
        seq = [a.run(cache=seq_cache) for a in accels]
        par = parallel.simulate_accels(
            [_accel(s) for s in (11, 12, 13)],
            cache=par_cache, workers=2,
        )
        assert all(_reports_equal(a, b) for a, b in zip(seq, par))
        assert seq_cache.stats == par_cache.stats
        assert seq_cache.stats.evictions == 1
        assert _entries_equal(seq_cache, par_cache)

    def test_replay_falls_back_when_presim_missing(self):
        accel = _accel(21)
        cache = AutotuneCache()
        report = parallel.replay_simulation(accel, cache, {})
        assert not report.cache_hit
        assert cache.stats.misses == 1 and cache.stats.entries == 1
        again = parallel.replay_simulation(_accel(21), cache, {})
        assert again.cache_hit

    def test_warm_cache_skips_presimulation(self):
        cache = AutotuneCache()
        _accel(31).run(cache=cache)
        presim = parallel.presimulate(
            [_accel(31)], cache=cache, workers=2
        )
        assert presim == {}
        # Probing for the warm entry must not have touched the stats.
        assert cache.stats.lookups == 1


class TestClusterParallel:
    def test_multichip_bit_identical(self):
        ds = _graph(7, n_nodes=1024)
        seq_cache, par_cache = AutotuneCache(), AutotuneCache()
        seq = simulate_multichip_gcn(
            ds, ClusterConfig(n_chips=4, workers=1), cache=seq_cache
        )
        par = simulate_multichip_gcn(
            ds, ClusterConfig(n_chips=4, workers=2), cache=par_cache
        )
        assert seq.total_cycles == par.total_cycles
        assert seq.comm_cycles == par.comm_cycles
        assert seq_cache.stats == par_cache.stats
        assert _entries_equal(seq_cache, par_cache)

    def test_feedback_rebalance_bit_identical(self):
        ds = _graph(9, n_nodes=1024)
        cluster = dict(n_chips=4, rebalance_signal="cycles",
                       feedback_rounds=2)
        seq = simulate_multichip_gcn(
            ds, ClusterConfig(workers=1, **cluster)
        )
        par = simulate_multichip_gcn(
            ds, ClusterConfig(workers=4, **cluster)
        )
        assert seq.total_cycles == par.total_cycles
        assert (seq.rebalance.migrated_blocks
                == par.rebalance.migrated_blocks)

    def test_straggler_ceiling_cluster_bit_identical(self):
        # Stragglers and hard row ceilings both perturb the feedback
        # rebalancer — the seam the parallel presimulation cuts across.
        # The multiprocessing backend must replay that config exactly.
        ds = _graph(8, n_nodes=1024)
        cluster = dict(
            n_chips=4, rebalance_signal="cycles", feedback_rounds=3,
            stragglers=((1, 1.0, 2.0),),
            row_ceilings=(384, 384, 384, 384),
        )
        seq_cache, par_cache = AutotuneCache(), AutotuneCache()
        seq = simulate_multichip_gcn(
            ds, ClusterConfig(workers=1, **cluster), cache=seq_cache
        )
        par = simulate_multichip_gcn(
            ds, ClusterConfig(workers=4, **cluster), cache=par_cache
        )
        assert seq.total_cycles == par.total_cycles
        assert seq.layer_cycles == par.layer_cycles
        assert seq.comm_cycles == par.comm_cycles
        assert [r.total_cycles for r in seq.chip_reports] == [
            r.total_cycles for r in par.chip_reports
        ]
        assert (seq.rebalance.migrated_blocks
                == par.rebalance.migrated_blocks)
        assert seq_cache.stats == par_cache.stats
        assert _entries_equal(seq_cache, par_cache)


class TestGangAccounting:
    def test_gang_members_accounted_identically(self):
        # Every request needs 2 shards, so each batch gangs up the
        # whole 2-instance pool — both members see identical traffic.
        outcome = serve_requests(
            synthetic_traffic(3, n_graphs=1, n_nodes=1024, seed=3,
                              configs=(CFG,)),
            n_workers=2, chip_capacity=512,
        )
        assert outcome.stats.n_sharded == 3
        gang = [w for w in outcome.workers if w.batches_served]
        assert len(gang) == 2
        # The invariant the skew bug violated: every gang member
        # records the same requests, batches and modeled busy time, and
        # the wall-clock cost splits evenly instead of piling onto
        # workers[0].
        assert len({w.requests_served for w in gang}) == 1
        assert len({w.batches_served for w in gang}) == 1
        assert gang[0].requests_served == gang[0].batches_served == 3
        modeled = {round(w.modeled_busy_seconds, 12) for w in gang}
        assert len(modeled) == 1
        busy = [w.busy_seconds for w in gang]
        assert max(busy) == pytest.approx(min(busy))

    def test_reconfig_interval_counts_as_busy(self):
        # Two back-to-back batches under different configs on one
        # instance: the config switch charges reconfig_cycles, and the
        # instance is occupied for that interval too — modeled busy
        # time must equal its continuous span from first claim to last
        # finish, reconfiguration included.
        requests = synthetic_traffic(
            2, n_graphs=1, n_nodes=256, seed=5, configs=(CFG, CFG_BIG),
        )
        outcome = serve_requests(
            requests, n_workers=1, reconfig_cycles=50_000,
        )
        worker = outcome.workers[0]
        assert worker.reconfigs == 1
        last_finish = max(r.finish_time for r in outcome.results)
        assert worker.modeled_busy_seconds == pytest.approx(last_finish)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 2 ** 16),
    n_graphs=st.integers(1, 3),
    workers=st.sampled_from((2, 4)),
    streaming=st.booleans(),
)
def test_service_bit_identical_property(seed, n_graphs, workers, streaming):
    """workers=N serves any traffic bit-identically to the oracle."""
    if streaming:
        requests = streaming_traffic(
            10, arrival_rate=500.0, slo_ms=40, n_graphs=n_graphs,
            n_nodes=512, seed=seed, configs=(CFG,),
        )
    else:
        requests = synthetic_traffic(
            10, n_graphs=n_graphs, n_nodes=512, seed=seed, configs=(CFG,),
        )
    for request in requests:
        request.resolve_graph()
    kwargs = dict(n_workers=2, chip_capacity=300, shed_expired=streaming)
    seq_cache, par_cache = AutotuneCache(), AutotuneCache()
    seq = serve_requests(requests, cache=seq_cache, workers=1, **kwargs)
    par = serve_requests(requests, cache=par_cache, workers=workers,
                         **kwargs)
    for a, b in zip(seq.results, par.results):
        assert a.total_cycles == b.total_cycles
        assert a.start_time == b.start_time
        assert a.finish_time == b.finish_time
        assert a.latency_ms == b.latency_ms
        assert a.cache_hit == b.cache_hit
        assert a.worker == b.worker and a.batch == b.batch
        assert a.shed == b.shed and a.n_shards == b.n_shards
    assert seq.latency == par.latency
    assert seq.stats.cache_hits == par.stats.cache_hits
    assert seq.stats.cache_misses == par.stats.cache_misses
    assert seq.stats.n_shed == par.stats.n_shed
    assert seq.stats.n_sharded == par.stats.n_sharded
    assert seq_cache.stats == par_cache.stats
    assert _entries_equal(seq_cache, par_cache)


class TestCachePeekAndMerge:
    def test_peek_has_no_side_effects(self):
        cache = AutotuneCache()
        a, b = _accel(41), _accel(42)
        a.run(cache=cache)
        b.run(cache=cache)
        before = cache.stats
        order = list(cache._entries.keys())
        assert cache.peek(a.fingerprint(), a.config) is not None
        assert cache.peek("missing", CFG) is None
        assert cache.stats == before
        assert list(cache._entries.keys()) == order

    def test_merge_contents_and_recency(self):
        left, right = AutotuneCache(), AutotuneCache()
        a, b, c = _accel(51), _accel(52), _accel(53)
        a.run(cache=left)
        b.run(cache=left)
        b.run(cache=right)  # duplicates left's entry; not fresher
        c.run(cache=right)
        merged = left.merge(right)
        assert merged == 2
        assert len(left) == 3
        # New keys land most recent; the duplicate (equal last-use
        # stamps, so not fresher) keeps its receiver-side position.
        keys = list(left._entries.keys())
        assert keys[0][0] == a.fingerprint()
        assert keys[1][0] == b.fingerprint()
        assert keys[2][0] == c.fingerprint()
        # Counters describe the receiver's own history only.
        assert left.stats.misses == 2

    def test_merge_respects_lru_bound(self):
        left = AutotuneCache(max_entries=2)
        right = AutotuneCache()
        a, b, c = _accel(61), _accel(62), _accel(63)
        a.run(cache=left)
        b.run(cache=right)
        c.run(cache=right)
        left.merge(right)
        assert len(left) == 2
        assert left.stats.evictions == 1
        # The receiver's own (least recent) entry was evicted first.
        assert left.peek(a.fingerprint(), a.config) is None

    def test_merge_type_checked(self):
        with pytest.raises(ConfigError):
            AutotuneCache().merge({})


class TestAtomicSave:
    def test_failed_save_leaves_old_archive_readable(self, tmp_path,
                                                     monkeypatch):
        cache = AutotuneCache()
        a = _accel(71)
        a.run(cache=cache)
        path = cache.save(tmp_path / "tuning")
        assert AutotuneCache.load(path).stats.entries == 1

        b = _accel(72)
        b.run(cache=cache)

        def boom(path, **arrays):
            # Simulate a crash mid-write: leave a truncated temp file.
            with open(path, "wb") as fh:
                fh.write(b"partial")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", boom)
        with pytest.raises(OSError):
            cache.save(tmp_path / "tuning")
        monkeypatch.undo()

        # The published archive is the old, complete one — and the
        # aborted temp file did not leak beside it.
        restored = AutotuneCache.load(path)
        assert restored.stats.entries == 1
        assert restored.peek(a.fingerprint(), a.config) is not None
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp" in p]
        assert leftovers == []

    def test_save_still_roundtrips(self, tmp_path):
        cache = AutotuneCache()
        a = _accel(73)
        a.run(cache=cache)
        path = cache.save(tmp_path / "roundtrip.npz")
        restored = AutotuneCache.load(path)
        assert _entries_equal(cache, restored)


class TestParallelBenchHarness:
    def test_compare_parallel_scaling_smoke(self):
        from repro.analysis import compare_parallel_scaling

        rows, text = compare_parallel_scaling(
            worker_counts=(1, 2), chip_counts=(2,), n_nodes=512,
            weak_nodes_per_chip=256, pes_per_chip=32, seed=3,
        )
        assert [r["workers"] for r in rows] == [1, 2]
        assert all(r["identical"] in ("oracle", "yes") for r in rows)
        assert "bit-identical" in text

    def test_cli_parallel_bench(self, capsys, tmp_path):
        from repro.cli import main

        code = main([
            "parallel-bench", "--worker-counts", "1,2", "--chips", "2",
            "--nodes", "512", "--weak-nodes-per-chip", "256",
            "--pes-per-chip", "32", "--seed", "3",
            "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
        assert (tmp_path / "parallel_scaling.csv").exists()

    def test_cli_shard_bench_workers_flag(self, capsys):
        from repro.cli import main

        code = main([
            "shard-bench", "--chips", "1,2", "--nodes", "512",
            "--weak-nodes-per-chip", "256", "--pes-per-chip", "32",
            "--workers", "2",
        ])
        assert code == 0
        assert "Sharded scaling" in capsys.readouterr().out
