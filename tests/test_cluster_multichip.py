"""Tests for the multi-chip cycle model and chip-level rebalancer."""

import numpy as np
import pytest

from repro.accel import ArchConfig, GcnAccelerator, SpmmJob, slice_jobs
from repro.accel.gcnaccel import build_spmm_jobs
from repro.analysis import compare_shard_scaling
from repro.cluster import (
    ClusterConfig,
    make_plan,
    rebalance_plan,
    simulate_multichip_gcn,
    simulate_sharded_spmm,
)
from repro.errors import ConfigError
from repro.serve import AutotuneCache, RmatGraphSpec

CHIP = ArchConfig(n_pes=32, hop=1, remote_switching=True)
SPEC = RmatGraphSpec(
    n_nodes=1024, avg_degree=10, f1=24, f2=16, f3=4, seed=77,
    abcd=(0.6, 0.15, 0.15, 0.1),
)


@pytest.fixture(scope="module")
def dataset():
    return SPEC.build()


class TestSliceJobs:
    def test_slices_cover_the_workload(self, dataset):
        layers = build_spmm_jobs(dataset)
        plan = make_plan(dataset.adjacency_row_nnz(), 3)
        total = 0
        for chip in range(3):
            sliced = slice_jobs(layers, plan.chip_rows(chip))
            total += sum(
                job.total_work for stage in sliced for job in stage
            )
        full = sum(job.total_work for stage in layers for job in stage)
        assert total == full

    def test_preserves_rounds_and_tdq(self, dataset):
        layers = build_spmm_jobs(dataset)
        sliced = slice_jobs(layers, np.arange(10), suffix="@s")
        for stage_full, stage_sliced in zip(layers, sliced):
            for job, sub in zip(stage_full, stage_sliced):
                assert sub.n_rounds == job.n_rounds
                assert sub.tdq == job.tdq
                assert sub.name == job.name + "@s"
                assert sub.row_nnz.size == 10

    def test_empty_shard_rejected(self, dataset):
        layers = build_spmm_jobs(dataset)
        with pytest.raises(ConfigError):
            slice_jobs(layers, np.empty(0, dtype=np.int64))

    def test_for_shard_matches_sliced_run(self, dataset):
        plan = make_plan(dataset.adjacency_row_nnz(), 2)
        rows = plan.chip_rows(0)
        direct = GcnAccelerator.for_shard(dataset, CHIP, rows).run()
        layers = build_spmm_jobs(dataset)
        via_jobs = GcnAccelerator.from_jobs(
            slice_jobs(layers, rows), CHIP
        ).run()
        assert direct.total_cycles == via_jobs.total_cycles


class TestRebalancePlan:
    def _skewed(self, n=512, seed=4):
        rng = np.random.default_rng(seed)
        row_nnz = rng.integers(0, 6, size=n).astype(np.int64)
        row_nnz[: n // 8] += rng.integers(20, 60, size=n // 8)
        return row_nnz

    def test_reduces_max_chip_load(self):
        row_nnz = self._skewed()
        plan = make_plan(row_nnz, 4, strategy="rows")
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        balanced, info = rebalance_plan(plan, row_nnz, cluster)
        assert info.migrated
        assert (
            balanced.chip_loads(row_nnz).max()
            < plan.chip_loads(row_nnz).max()
        )

    def test_preserves_contiguity(self):
        row_nnz = self._skewed()
        plan = make_plan(row_nnz, 4, strategy="rows")
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        balanced, _info = rebalance_plan(plan, row_nnz, cluster)
        assert np.all(np.diff(balanced.owner) >= 0)

    def test_never_worse_than_start(self):
        # Best-map restore: the returned plan's max load can't exceed
        # the starting plan's.
        for seed in range(6):
            rng = np.random.default_rng(seed)
            row_nnz = rng.integers(0, 50, size=256).astype(np.int64)
            plan = make_plan(row_nnz, 4, strategy="rows")
            cluster = ClusterConfig(n_chips=4, chip=CHIP)
            balanced, _ = rebalance_plan(plan, row_nnz, cluster)
            assert (
                balanced.chip_loads(row_nnz).max()
                <= plan.chip_loads(row_nnz).max()
            )

    def test_single_chip_noop(self):
        row_nnz = self._skewed()
        plan = make_plan(row_nnz, 1)
        cluster = ClusterConfig(n_chips=1, chip=CHIP)
        balanced, info = rebalance_plan(plan, row_nnz, cluster)
        assert balanced is plan and not info.migrated

    def test_scattered_plan_rejected(self):
        row_nnz = self._skewed()
        plan = make_plan(row_nnz, 2)
        scattered = plan.with_owner(
            np.where(np.arange(plan.n_blocks) % 2 == 0, 0, 1)
        )
        with pytest.raises(ConfigError):
            rebalance_plan(scattered, row_nnz,
                           ClusterConfig(n_chips=2, chip=CHIP))


class TestShardedSpmm:
    def test_work_conserved_and_barrier_bound(self, dataset):
        job = SpmmJob(
            name="A", row_nnz=dataset.adjacency_row_nnz(), n_rounds=8
        )
        plan = make_plan(job.row_nnz, 4)
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        result = simulate_sharded_spmm(
            job, cluster, plan, adjacency=dataset.adjacency
        )
        assert sum(
            r.total_work for r in result.chip_results
        ) == job.total_work
        assert result.total_cycles == int(
            (result.compute_cycles + result.comm_cycles).max()
        )

    def test_no_adjacency_means_no_comm(self, dataset):
        job = SpmmJob(
            name="XW", row_nnz=dataset.x1_row_nnz, n_rounds=8, tdq="tdq1"
        )
        plan = make_plan(dataset.adjacency_row_nnz(), 4)
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        result = simulate_sharded_spmm(job, cluster, plan)
        assert result.comm_cycles.sum() == 0


class TestSimulateMultichipGcn:
    def test_single_chip_matches_accelerator(self, dataset):
        cluster = ClusterConfig(n_chips=1, chip=CHIP)
        report = simulate_multichip_gcn(dataset, cluster)
        single = GcnAccelerator(dataset, CHIP).run()
        assert report.total_cycles == single.total_cycles
        assert report.comm_cycles == 0

    def test_deterministic(self, dataset):
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        a = simulate_multichip_gcn(dataset, cluster)
        b = simulate_multichip_gcn(dataset, cluster)
        assert a.total_cycles == b.total_cycles
        assert np.array_equal(a.plan.owner, b.plan.owner)

    def test_work_conserved_across_chips(self, dataset):
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        report = simulate_multichip_gcn(dataset, cluster)
        single = GcnAccelerator(dataset, CHIP).run()
        assert report.total_work == single.total_work

    def test_layer_costs_are_barrier_synchronized(self, dataset):
        cluster = ClusterConfig(n_chips=4, chip=CHIP, rebalance=False)
        report = simulate_multichip_gcn(dataset, cluster)
        for layer, cost in enumerate(report.layer_cycles):
            compute = np.asarray([
                r.layers[layer].pipelined_cycles
                for r in report.chip_reports
            ])
            expected = int(
                (compute + report.comm_cycles_per_layer[layer]).max()
            ) + cluster.barrier_cycles
            assert cost == expected
        assert report.total_cycles == (
            sum(report.layer_cycles) + report.migration_cycles
        )

    def test_rebalancing_beats_static_on_hub_graph(self, dataset):
        static = simulate_multichip_gcn(
            dataset,
            ClusterConfig(n_chips=4, chip=CHIP, strategy="rows",
                          rebalance=False),
        )
        rebalanced = simulate_multichip_gcn(
            dataset,
            ClusterConfig(n_chips=4, chip=CHIP, strategy="rows",
                          rebalance=True),
        )
        assert rebalanced.rebalance.migrated
        assert rebalanced.total_cycles < static.total_cycles

    def test_cache_replay_is_cycle_identical(self, dataset):
        cache = AutotuneCache()
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        cold = simulate_multichip_gcn(dataset, cluster, cache=cache)
        warm = simulate_multichip_gcn(dataset, cluster, cache=cache)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.total_cycles == cold.total_cycles
        assert warm.layer_cycles == cold.layer_cycles

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_chips=2, chip=CHIP, link_words_per_cycle=0)

    def test_mismatched_plan_rejected(self, dataset):
        plan = make_plan(np.ones(64, dtype=np.int64), 2)
        cluster = ClusterConfig(n_chips=2, chip=CHIP)
        with pytest.raises(ConfigError):
            simulate_multichip_gcn(dataset, cluster, plan=plan)

    def test_utilization_in_unit_interval(self, dataset):
        report = simulate_multichip_gcn(
            dataset, ClusterConfig(n_chips=4, chip=CHIP)
        )
        assert 0.0 < report.utilization <= 1.0
        assert 0.0 <= report.comm_fraction < 1.0


class TestShardScalingHarness:
    def test_tiny_sweep_shape_and_claims(self):
        rows, text = compare_shard_scaling(
            chip_counts=(1, 2), n_nodes=2048, weak_nodes_per_chip=1024,
            pes_per_chip=32, seed=3,
        )
        assert {r["mode"] for r in rows} == {"strong", "weak"}
        assert {r["regime"] for r in rows} == {"rows", "nnz", "rows+rebal"}
        for row in rows:
            assert row["cycles"] > 0
            if row["chips"] == 1:
                assert row["speedup"] == 1
                assert row["comm_frac"] == 0
        assert "rebalancing" in text