"""Tests for the multi-chip cycle model and chip-level rebalancer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import ArchConfig, GcnAccelerator, SpmmJob, slice_jobs
from repro.accel.gcnaccel import build_spmm_jobs
from repro.analysis import compare_shard_scaling, compare_shard_topology
from repro.cluster import (
    ClusterConfig,
    make_plan,
    make_topology,
    rebalance_plan,
    simulate_multichip_gcn,
    simulate_sharded_spmm,
)
from repro.errors import ConfigError
from repro.serve import AutotuneCache, RmatGraphSpec

CHIP = ArchConfig(n_pes=32, hop=1, remote_switching=True)
SPEC = RmatGraphSpec(
    n_nodes=1024, avg_degree=10, f1=24, f2=16, f3=4, seed=77,
    abcd=(0.6, 0.15, 0.15, 0.1),
)


@pytest.fixture(scope="module")
def dataset():
    return SPEC.build()


class TestSliceJobs:
    def test_slices_cover_the_workload(self, dataset):
        layers = build_spmm_jobs(dataset)
        plan = make_plan(dataset.adjacency_row_nnz(), 3)
        total = 0
        for chip in range(3):
            sliced = slice_jobs(layers, plan.chip_rows(chip))
            total += sum(
                job.total_work for stage in sliced for job in stage
            )
        full = sum(job.total_work for stage in layers for job in stage)
        assert total == full

    def test_preserves_rounds_and_tdq(self, dataset):
        layers = build_spmm_jobs(dataset)
        sliced = slice_jobs(layers, np.arange(10), suffix="@s")
        for stage_full, stage_sliced in zip(layers, sliced):
            for job, sub in zip(stage_full, stage_sliced):
                assert sub.n_rounds == job.n_rounds
                assert sub.tdq == job.tdq
                assert sub.name == job.name + "@s"
                assert sub.row_nnz.size == 10

    def test_empty_shard_rejected(self, dataset):
        layers = build_spmm_jobs(dataset)
        with pytest.raises(ConfigError):
            slice_jobs(layers, np.empty(0, dtype=np.int64))

    def test_for_shard_matches_sliced_run(self, dataset):
        plan = make_plan(dataset.adjacency_row_nnz(), 2)
        rows = plan.chip_rows(0)
        direct = GcnAccelerator.for_shard(dataset, CHIP, rows).run()
        layers = build_spmm_jobs(dataset)
        via_jobs = GcnAccelerator.from_jobs(
            slice_jobs(layers, rows), CHIP
        ).run()
        assert direct.total_cycles == via_jobs.total_cycles


class TestRebalancePlan:
    def _skewed(self, n=512, seed=4):
        rng = np.random.default_rng(seed)
        row_nnz = rng.integers(0, 6, size=n).astype(np.int64)
        row_nnz[: n // 8] += rng.integers(20, 60, size=n // 8)
        return row_nnz

    def test_reduces_max_chip_load(self):
        row_nnz = self._skewed()
        plan = make_plan(row_nnz, 4, strategy="rows")
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        balanced, info = rebalance_plan(plan, row_nnz, cluster)
        assert info.migrated
        assert (
            balanced.chip_loads(row_nnz).max()
            < plan.chip_loads(row_nnz).max()
        )

    def test_preserves_contiguity(self):
        row_nnz = self._skewed()
        plan = make_plan(row_nnz, 4, strategy="rows")
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        balanced, _info = rebalance_plan(plan, row_nnz, cluster)
        assert np.all(np.diff(balanced.owner) >= 0)

    def test_never_worse_than_start(self):
        # Best-map restore: the returned plan's max load can't exceed
        # the starting plan's.
        for seed in range(6):
            rng = np.random.default_rng(seed)
            row_nnz = rng.integers(0, 50, size=256).astype(np.int64)
            plan = make_plan(row_nnz, 4, strategy="rows")
            cluster = ClusterConfig(n_chips=4, chip=CHIP)
            balanced, _ = rebalance_plan(plan, row_nnz, cluster)
            assert (
                balanced.chip_loads(row_nnz).max()
                <= plan.chip_loads(row_nnz).max()
            )

    def test_single_chip_noop(self):
        row_nnz = self._skewed()
        plan = make_plan(row_nnz, 1)
        cluster = ClusterConfig(n_chips=1, chip=CHIP)
        balanced, info = rebalance_plan(plan, row_nnz, cluster)
        assert balanced is plan and not info.migrated

    def test_scattered_plan_rejected(self):
        row_nnz = self._skewed()
        plan = make_plan(row_nnz, 2)
        scattered = plan.with_owner(
            np.where(np.arange(plan.n_blocks) % 2 == 0, 0, 1)
        )
        with pytest.raises(ConfigError):
            rebalance_plan(scattered, row_nnz,
                           ClusterConfig(n_chips=2, chip=CHIP))


class TestShardedSpmm:
    def test_work_conserved_and_barrier_bound(self, dataset):
        job = SpmmJob(
            name="A", row_nnz=dataset.adjacency_row_nnz(), n_rounds=8
        )
        plan = make_plan(job.row_nnz, 4)
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        result = simulate_sharded_spmm(
            job, cluster, plan, adjacency=dataset.adjacency
        )
        assert sum(
            r.total_work for r in result.chip_results
        ) == job.total_work
        assert result.total_cycles == int(
            (result.compute_cycles + result.comm_cycles).max()
        )

    def test_no_adjacency_means_no_comm(self, dataset):
        job = SpmmJob(
            name="XW", row_nnz=dataset.x1_row_nnz, n_rounds=8, tdq="tdq1"
        )
        plan = make_plan(dataset.adjacency_row_nnz(), 4)
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        result = simulate_sharded_spmm(job, cluster, plan)
        assert result.comm_cycles.sum() == 0


class TestSimulateMultichipGcn:
    def test_single_chip_matches_accelerator(self, dataset):
        cluster = ClusterConfig(n_chips=1, chip=CHIP)
        report = simulate_multichip_gcn(dataset, cluster)
        single = GcnAccelerator(dataset, CHIP).run()
        assert report.total_cycles == single.total_cycles
        assert report.comm_cycles == 0

    def test_deterministic(self, dataset):
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        a = simulate_multichip_gcn(dataset, cluster)
        b = simulate_multichip_gcn(dataset, cluster)
        assert a.total_cycles == b.total_cycles
        assert np.array_equal(a.plan.owner, b.plan.owner)

    def test_work_conserved_across_chips(self, dataset):
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        report = simulate_multichip_gcn(dataset, cluster)
        single = GcnAccelerator(dataset, CHIP).run()
        assert report.total_work == single.total_work

    def test_layer_costs_are_barrier_synchronized(self, dataset):
        cluster = ClusterConfig(n_chips=4, chip=CHIP, rebalance=False)
        report = simulate_multichip_gcn(dataset, cluster)
        for layer, cost in enumerate(report.layer_cycles):
            compute = np.asarray([
                r.layers[layer].pipelined_cycles
                for r in report.chip_reports
            ])
            expected = int(
                (compute + report.comm_cycles_per_layer[layer]).max()
            ) + cluster.barrier_cycles
            assert cost == expected
        assert report.total_cycles == (
            sum(report.layer_cycles) + report.migration_cycles
        )

    def test_rebalancing_beats_static_on_hub_graph(self, dataset):
        static = simulate_multichip_gcn(
            dataset,
            ClusterConfig(n_chips=4, chip=CHIP, strategy="rows",
                          rebalance=False),
        )
        rebalanced = simulate_multichip_gcn(
            dataset,
            ClusterConfig(n_chips=4, chip=CHIP, strategy="rows",
                          rebalance=True),
        )
        assert rebalanced.rebalance.migrated
        assert rebalanced.total_cycles < static.total_cycles

    def test_cache_replay_is_cycle_identical(self, dataset):
        cache = AutotuneCache()
        cluster = ClusterConfig(n_chips=4, chip=CHIP)
        cold = simulate_multichip_gcn(dataset, cluster, cache=cache)
        warm = simulate_multichip_gcn(dataset, cluster, cache=cache)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.total_cycles == cold.total_cycles
        assert warm.layer_cycles == cold.layer_cycles

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_chips=2, chip=CHIP, link_words_per_cycle=0)

    def test_mismatched_plan_rejected(self, dataset):
        plan = make_plan(np.ones(64, dtype=np.int64), 2)
        cluster = ClusterConfig(n_chips=2, chip=CHIP)
        with pytest.raises(ConfigError):
            simulate_multichip_gcn(dataset, cluster, plan=plan)

    def test_utilization_in_unit_interval(self, dataset):
        report = simulate_multichip_gcn(
            dataset, ClusterConfig(n_chips=4, chip=CHIP)
        )
        assert 0.0 < report.utilization <= 1.0
        assert 0.0 <= report.comm_fraction < 1.0


class TestHeterogeneousCluster:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(0, 2 ** 16),
        st.integers(2, 5),
        st.sampled_from(["rows", "nnz"]),
        st.integers(2, 8),
    )
    def test_identical_chips_reproduce_homogeneous_bit_for_bit(
        self, seed, n_chips, strategy, blocks_per_chip
    ):
        # The heterogeneous machinery (capacity normalization,
        # reference-clock conversion, per-chip configs) must be exactly
        # the identity when every chip equals the reference chip.
        spec = RmatGraphSpec(
            n_nodes=512, avg_degree=8, f1=16, f2=8, f3=4, seed=seed,
            abcd=(0.6, 0.15, 0.15, 0.1),
        )
        dataset = spec.build()
        common = dict(
            n_chips=n_chips, strategy=strategy,
            blocks_per_chip=blocks_per_chip, link_words_per_cycle=8.0,
        )
        homog = simulate_multichip_gcn(
            dataset, ClusterConfig(chip=CHIP, **common)
        )
        hetero = simulate_multichip_gcn(
            dataset,
            ClusterConfig(chips=(CHIP,) * n_chips, topology="all-to-all",
                          **common),
        )
        assert hetero.total_cycles == homog.total_cycles
        assert hetero.layer_cycles == homog.layer_cycles
        assert hetero.migration_cycles == homog.migration_cycles
        assert np.array_equal(hetero.plan.owner, homog.plan.owner)
        assert np.array_equal(
            hetero.comm_cycles_per_layer, homog.comm_cycles_per_layer
        )
        assert [r.total_cycles for r in hetero.chip_reports] == [
            r.total_cycles for r in homog.chip_reports
        ]
        assert hetero.utilization == homog.utilization

    def test_capacities_scale_with_pes_and_frequency(self):
        big = CHIP
        half_pes = CHIP.with_updates(n_pes=CHIP.n_pes // 2)
        half_clock = CHIP.with_updates(
            frequency_mhz=CHIP.frequency_mhz / 2
        )
        cluster = ClusterConfig(
            n_chips=3, chips=(big, half_pes, half_clock)
        )
        assert cluster.capacities().tolist() == [1.0, 0.5, 0.5]
        assert cluster.chip == big  # chips[0] is the reference

    def test_nnz_partition_feeds_faster_chips_more(self, dataset):
        big = CHIP.with_updates(n_pes=CHIP.n_pes * 4)
        cluster = ClusterConfig(n_chips=2, chips=(big, CHIP))
        report = simulate_multichip_gcn(dataset, cluster)
        loads = report.plan.chip_loads(dataset.adjacency_row_nnz())
        assert loads[0] > loads[1]

    def test_slow_clock_chip_stretches_reference_cycles(self, dataset):
        slow = CHIP.with_updates(frequency_mhz=CHIP.frequency_mhz / 2)
        cluster = ClusterConfig(
            n_chips=2, chips=(CHIP, slow), rebalance=False,
            strategy="rows",
        )
        report = simulate_multichip_gcn(dataset, cluster)
        # Chip 1's own-clock compute doubles when priced at the
        # (faster) reference clock.
        own = report.chip_reports[1].layers[0].pipelined_cycles
        assert report.chip_compute_per_layer[0][1] == own * 2

    def test_chips_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_chips=3, chips=(CHIP, CHIP))

    def test_chips_type_checked(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_chips=2, chips=(CHIP, "chip"))


class TestTopologyAndOverlap:
    def test_ring_equal_aggregate_bandwidth_is_slower(self, dataset):
        a2a = ClusterConfig(
            n_chips=4, chip=CHIP, link_words_per_cycle=16.0
        )
        ring = ClusterConfig(
            n_chips=4, chip=CHIP, link_words_per_cycle=8.0,
            topology="ring",
        )
        assert (
            simulate_multichip_gcn(dataset, ring).total_cycles
            > simulate_multichip_gcn(dataset, a2a).total_cycles
        )

    def test_overlap_never_loses_and_hides_comm(self, dataset):
        serial = ClusterConfig(
            n_chips=4, chip=CHIP, link_words_per_cycle=4.0
        )
        overlapped = ClusterConfig(
            n_chips=4, chip=CHIP, link_words_per_cycle=4.0, overlap=True
        )
        r_serial = simulate_multichip_gcn(dataset, serial)
        r_overlap = simulate_multichip_gcn(dataset, overlapped)
        assert r_overlap.total_cycles <= r_serial.total_cycles
        assert r_overlap.comm_cycles < r_serial.comm_cycles

    @pytest.mark.parametrize("bw,lat", [(0.05, 64), (0.1, 32), (1.0, 8)])
    def test_overlap_never_loses_when_comm_dominates(self, dataset, bw, lat):
        # The regime where a naive max(compute, comm) + exposed-round
        # composition double-counts the first buffer: per-layer compute
        # sits below one round's halo cost, so the exposed round must
        # be part of the total, not added on top of it.
        common = dict(
            n_chips=4, chip=CHIP, rebalance=False,
            link_words_per_cycle=bw, hop_latency_cycles=lat,
        )
        r_serial = simulate_multichip_gcn(
            dataset, ClusterConfig(**common)
        )
        r_overlap = simulate_multichip_gcn(
            dataset, ClusterConfig(overlap=True, **common)
        )
        assert r_overlap.total_cycles <= r_serial.total_cycles

    def test_overlap_single_chip_is_identity(self, dataset):
        base = ClusterConfig(n_chips=1, chip=CHIP)
        over = ClusterConfig(n_chips=1, chip=CHIP, overlap=True)
        assert (
            simulate_multichip_gcn(dataset, base).total_cycles
            == simulate_multichip_gcn(dataset, over).total_cycles
        )

    def test_prebuilt_topology_instance_accepted(self, dataset):
        fabric = make_topology(
            "mesh2d", 4, link_words_per_cycle=8.0, hop_latency_cycles=4
        )
        cluster = ClusterConfig(n_chips=4, chip=CHIP, topology=fabric)
        report = simulate_multichip_gcn(dataset, cluster)
        assert report.total_cycles > 0

    def test_topology_chip_count_mismatch_rejected(self):
        fabric = make_topology("ring", 3)
        with pytest.raises(ConfigError):
            ClusterConfig(n_chips=4, chip=CHIP, topology=fabric)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_chips=4, chip=CHIP, topology="hypercube")


class TestCycleFeedbackRebalance:
    def test_never_worse_than_load_signal(self, dataset):
        for strategy in ("rows", "nnz"):
            common = dict(
                n_chips=4, chip=CHIP, strategy=strategy,
                blocks_per_chip=4, link_words_per_cycle=16.0,
            )
            load = simulate_multichip_gcn(
                dataset, ClusterConfig(**common)
            )
            feedback = simulate_multichip_gcn(
                dataset,
                ClusterConfig(rebalance_signal="cycles", **common),
            )
            assert feedback.total_cycles <= load.total_cycles
            assert feedback.rebalance.signal == "cycles"

    def test_feedback_deterministic(self, dataset):
        cluster = ClusterConfig(
            n_chips=4, chip=CHIP, rebalance_signal="cycles",
        )
        a = simulate_multichip_gcn(dataset, cluster)
        b = simulate_multichip_gcn(dataset, cluster)
        assert a.total_cycles == b.total_cycles
        assert np.array_equal(a.plan.owner, b.plan.owner)

    def test_feedback_cache_replay_is_cycle_identical(self, dataset):
        cache = AutotuneCache()
        cluster = ClusterConfig(
            n_chips=4, chip=CHIP, rebalance_signal="cycles",
        )
        cold = simulate_multichip_gcn(dataset, cluster, cache=cache)
        warm = simulate_multichip_gcn(dataset, cluster, cache=cache)
        assert warm.cache_hit
        assert warm.total_cycles == cold.total_cycles

    def test_feedback_stores_only_winner_entries(self, dataset):
        # Exploration rounds must not pollute a shared (possibly
        # bounded) cache with tuning state of discarded plans: after a
        # cold feedback run the cache holds exactly one entry per chip
        # of the winning plan.
        cache = AutotuneCache()
        cluster = ClusterConfig(
            n_chips=4, chip=CHIP, strategy="rows",
            rebalance_signal="cycles",
        )
        report = simulate_multichip_gcn(dataset, cluster, cache=cache)
        assert report.rebalance.signal == "cycles"
        assert len(cache) == cluster.n_chips

    def test_signal_reported_when_feedback_gate_closed(self, dataset):
        # blocks_per_chip=1 leaves nothing to migrate: the controller
        # no-ops, but the report must still name the configured signal.
        report = simulate_multichip_gcn(
            dataset,
            ClusterConfig(n_chips=4, chip=CHIP, blocks_per_chip=1,
                          rebalance_signal="cycles"),
        )
        assert not report.rebalance.migrated
        assert report.rebalance.signal == "cycles"

    def test_bad_signal_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_chips=2, chip=CHIP, rebalance_signal="vibes")

    def test_negative_hop_latency_rejected_at_init(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_chips=4, chip=CHIP, topology="ring",
                          hop_latency_cycles=-5)


class TestValidationGaps:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0, -2.0])
    def test_non_finite_link_bandwidth_rejected(self, bad):
        with pytest.raises(ConfigError):
            ClusterConfig(n_chips=2, chip=CHIP, link_words_per_cycle=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0, -1])
    def test_non_finite_migration_price_rejected(self, bad):
        with pytest.raises(ConfigError):
            ClusterConfig(n_chips=2, chip=CHIP, migration_words_per_nnz=bad)

    def test_fractional_migration_price_accepted(self, dataset):
        cluster = ClusterConfig(
            n_chips=4, chip=CHIP, migration_words_per_nnz=0.5,
            strategy="rows",
        )
        report = simulate_multichip_gcn(dataset, cluster)
        assert report.migration_cycles >= 0

    def test_plan_cluster_chip_count_mismatch_rejected(self):
        row_nnz = np.ones(64, dtype=np.int64)
        plan = make_plan(row_nnz, 2)
        with pytest.raises(ConfigError):
            rebalance_plan(plan, row_nnz,
                           ClusterConfig(n_chips=4, chip=CHIP))

    def test_shard_count_exceeding_block_count_named(self):
        # make_plan names the failure instead of letting ShardPlan's
        # ownership invariant (or downstream indexing) trip over it.
        with pytest.raises(ConfigError, match="block count|rows across"):
            make_plan(np.ones(3, dtype=np.int64), 4)


class TestShardScalingHarness:
    def test_tiny_sweep_shape_and_claims(self):
        rows, text = compare_shard_scaling(
            chip_counts=(1, 2), n_nodes=2048, weak_nodes_per_chip=1024,
            pes_per_chip=32, seed=3,
        )
        assert {r["mode"] for r in rows} == {"strong", "weak"}
        assert {r["regime"] for r in rows} == {"rows", "nnz", "rows+rebal"}
        for row in rows:
            assert row["cycles"] > 0
            if row["chips"] == 1:
                assert row["speedup"] == 1
                assert row["comm_frac"] == 0
        assert "rebalancing" in text

    def test_flavored_sweep_runs(self):
        rows, text = compare_shard_scaling(
            chip_counts=(1, 2), n_nodes=1024, weak_nodes_per_chip=512,
            pes_per_chip=32, seed=3, topology="ring",
            hop_latency_cycles=4, hetero=True, overlap=True,
            feedback=True,
        )
        assert all(r["cycles"] > 0 for r in rows)
        assert "ring" in text and "cycle feedback" in text

    def test_topology_sweep_shape(self):
        rows, _text = compare_shard_topology(
            n_chips=4, n_nodes=1024, pes_per_chip=32, seed=3,
        )
        assert len(rows) == 12  # 3 topologies x 2 signals x 2 overlap
        assert {r["topology"] for r in rows} == {
            "all-to-all", "ring", "mesh2d"
        }
        by_cell = {
            (r["topology"], r["signal"], r["overlap"]): r["cycles"]
            for r in rows
        }
        for topology in ("all-to-all", "ring", "mesh2d"):
            for overlap in (False, True):
                assert (
                    by_cell[(topology, "cycles", overlap)]
                    <= by_cell[(topology, "load", overlap)]
                )