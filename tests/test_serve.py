"""The batched inference service: scheduler, autotune cache, service."""

import numpy as np
import pytest

from repro.accel import ArchConfig, CachedTuning, GcnAccelerator
from repro.datasets import dataset_fingerprint, load_dataset
from repro.datasets.rmat import edges_fingerprint
from repro.errors import ConfigError
from repro.serve import (
    AutotuneCache,
    InferenceRequest,
    InferenceService,
    RequestQueue,
    RmatGraphSpec,
    Scheduler,
    serve_requests,
    synthetic_traffic,
)

CFG_A = ArchConfig(n_pes=16, hop=1, remote_switching=True)
CFG_B = ArchConfig(n_pes=32, hop=1, remote_switching=True)
SPEC = RmatGraphSpec(n_nodes=384, f1=24, f2=12, f3=4, seed=5)
SPEC2 = RmatGraphSpec(n_nodes=384, f1=24, f2=12, f3=4, seed=6)


def _requests(pattern):
    """Requests with graph SPEC under the configs named by ``pattern``."""
    configs = {"a": CFG_A, "b": CFG_B}
    return [
        InferenceRequest(graph=SPEC, config=configs[token])
        for token in pattern
    ]


class TestRequestQueue:
    def test_assigns_sequential_ids(self):
        queue = RequestQueue()
        ids = queue.submit_many(_requests("aaa"))
        assert ids == [0, 1, 2]
        assert len(queue) == 3

    def test_explicit_id_preserved(self):
        queue = RequestQueue()
        rid = queue.submit(InferenceRequest(
            graph=SPEC, config=CFG_A, request_id="tenant-1/42"
        ))
        assert rid == "tenant-1/42"

    def test_drain_empties_in_arrival_order(self):
        queue = RequestQueue()
        queue.submit_many(_requests("ab"))
        drained = queue.drain()
        assert [q.seq for q in drained] == [0, 1]
        assert len(queue) == 0

    def test_rejects_non_request(self):
        with pytest.raises(ConfigError):
            RequestQueue().submit("not a request")


class TestSchedulerOrdering:
    def plan(self, pattern, **kwargs):
        queue = RequestQueue()
        queue.submit_many(_requests(pattern))
        return Scheduler(**kwargs).plan(queue.drain())

    def test_groups_by_config(self):
        batches = self.plan("aabba")
        assert len(batches) == 2
        assert [q.seq for q in batches[0].items] == [0, 1, 4]
        assert [q.seq for q in batches[1].items] == [2, 3]

    def test_batches_ordered_by_oldest_member(self):
        # b arrives first even though a has more requests: the b batch
        # must come out first.
        batches = self.plan("baaa")
        assert batches[0].config == CFG_B
        assert batches[1].config == CFG_A

    def test_within_batch_fifo(self):
        batches = self.plan("abababab")
        for batch in batches:
            seqs = [q.seq for q in batch.items]
            assert seqs == sorted(seqs)

    def test_max_batch_splits_in_order(self):
        batches = self.plan("aaaaa", max_batch=2)
        sizes = [len(b) for b in batches]
        assert sizes == [2, 2, 1]
        seqs = [q.seq for b in batches for q in b.items]
        assert seqs == [0, 1, 2, 3, 4]

    def test_a_hops_is_part_of_the_affinity_key(self):
        queue = RequestQueue()
        queue.submit(InferenceRequest(graph=SPEC, config=CFG_A, a_hops=1))
        queue.submit(InferenceRequest(graph=SPEC, config=CFG_A, a_hops=2))
        batches = Scheduler().plan(queue.drain())
        assert len(batches) == 2

    def test_batch_indices_are_consecutive(self):
        batches = self.plan("abab")
        assert [b.index for b in batches] == [0, 1]


class TestSchedulerValidation:
    def test_rejects_zero_max_batch(self):
        with pytest.raises(ConfigError):
            Scheduler(max_batch=0)

    def test_rejects_negative_max_batch(self):
        with pytest.raises(ConfigError):
            Scheduler(max_batch=-3)

    def test_rejects_non_int_max_batch(self):
        with pytest.raises(ConfigError):
            Scheduler(max_batch=2.5)

    def test_plan_rejects_zero_max_batch_override(self):
        # max_batch=0 used to fall through `size = max_batch or len(items)`
        # and silently mean "unbounded"; it must be rejected instead.
        queue = RequestQueue()
        queue.submit_many(_requests("aaa"))
        with pytest.raises(ConfigError):
            Scheduler().plan(queue.drain(), max_batch=0)

    def test_queue_rejects_non_monotonic_arrivals(self):
        queue = RequestQueue()
        queue.submit(InferenceRequest(
            graph=SPEC, config=CFG_A, arrival_time=2.0
        ))
        with pytest.raises(ConfigError):
            queue.submit(InferenceRequest(
                graph=SPEC, config=CFG_A, arrival_time=1.0
            ))

    def test_queue_accepts_equal_arrivals(self):
        # A burst: several requests sharing one timestamp is legal.
        queue = RequestQueue()
        for _ in range(3):
            queue.submit(InferenceRequest(
                graph=SPEC, config=CFG_A, arrival_time=1.5
            ))
        assert len(queue) == 3


class TestAutotuneCacheLRU:
    def _entry(self):
        return CachedTuning(layers=())

    def _filled(self, max_entries, n):
        cache = AutotuneCache(max_entries=max_entries)
        for i in range(n):
            cache.store(f"g{i}", CFG_A, self._entry())
        return cache

    def test_rejects_bad_bound(self):
        for bad in (0, -1, 1.5, "big"):
            with pytest.raises(ConfigError):
                AutotuneCache(max_entries=bad)

    def test_unbounded_by_default(self):
        cache = self._filled(None, 50)
        assert len(cache) == 50
        assert cache.stats.evictions == 0

    def test_evicts_oldest_first(self):
        cache = self._filled(3, 4)
        assert len(cache) == 3
        assert cache.stats.evictions == 1
        assert AutotuneCache.key("g0", CFG_A) not in cache
        for kept in ("g1", "g2", "g3"):
            assert AutotuneCache.key(kept, CFG_A) in cache

    def test_lookup_refreshes_recency(self):
        cache = self._filled(3, 3)
        # Touch g0: it becomes most-recent, so g1 is evicted next.
        assert cache.lookup("g0", CFG_A) is not None
        cache.store("g3", CFG_A, self._entry())
        assert AutotuneCache.key("g0", CFG_A) in cache
        assert AutotuneCache.key("g1", CFG_A) not in cache

    def test_store_overwrite_refreshes_recency(self):
        cache = self._filled(3, 3)
        cache.store("g0", CFG_A, self._entry())
        cache.store("g3", CFG_A, self._entry())
        assert AutotuneCache.key("g0", CFG_A) in cache
        assert AutotuneCache.key("g1", CFG_A) not in cache

    def test_miss_does_not_refresh(self):
        cache = self._filled(3, 3)
        assert cache.lookup("nope", CFG_A) is None
        cache.store("g3", CFG_A, self._entry())
        assert AutotuneCache.key("g0", CFG_A) not in cache

    def test_clear_resets_evictions(self):
        cache = self._filled(2, 4)
        assert cache.stats.evictions == 2
        cache.clear()
        assert cache.stats.evictions == 0

    def test_bound_holds_under_service_traffic(self):
        # A bounded cache serving more unique (graph, config) pairs than
        # it can hold must keep working — just with more misses.
        cache = AutotuneCache(max_entries=1)
        outcome = serve_requests(_requests("abab"), n_workers=1,
                                 cache=cache, max_batch=1)
        assert len(cache) == 1
        assert cache.stats.evictions >= 1
        assert outcome.stats.n_requests == 4

    def test_load_applies_bound(self, tiny_nell, tmp_path):
        cache = AutotuneCache()
        GcnAccelerator(tiny_nell, CFG_A).run(cache=cache)
        GcnAccelerator(tiny_nell, CFG_B).run(cache=cache)
        path = cache.save(tmp_path / "cache.npz")
        restored = AutotuneCache.load(path, max_entries=1)
        assert len(restored) == 1
        assert restored.max_entries == 1


class TestAutotuneCache:
    def test_miss_then_hit(self, tiny_cora):
        cache = AutotuneCache()
        accel = GcnAccelerator(tiny_cora, CFG_A)
        first = accel.run(cache=cache)
        assert not first.cache_hit
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        second = GcnAccelerator(tiny_cora, CFG_A).run(cache=cache)
        assert second.cache_hit
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_different_config_is_a_miss(self, tiny_cora):
        cache = AutotuneCache()
        GcnAccelerator(tiny_cora, CFG_A).run(cache=cache)
        report = GcnAccelerator(tiny_cora, CFG_B).run(cache=cache)
        assert not report.cache_hit
        assert len(cache) == 2

    def test_different_graph_is_a_miss(self):
        cache = AutotuneCache()
        GcnAccelerator(SPEC.build(), CFG_A).run(cache=cache)
        report = GcnAccelerator(SPEC2.build(), CFG_A).run(cache=cache)
        assert not report.cache_hit

    def test_hit_is_cycle_identical_to_cold_run(self, tiny_nell):
        # The core soundness property: replaying the cached converged
        # row map must reproduce the cold run bit-for-bit.
        for config in (CFG_A, CFG_B,
                       ArchConfig(n_pes=16, hop=0, remote_switching=False)):
            cache = AutotuneCache()
            cold = GcnAccelerator(tiny_nell, config).run(cache=cache)
            hit = GcnAccelerator(tiny_nell, config).run(cache=cache)
            assert hit.cache_hit
            assert hit.total_cycles == cold.total_cycles
            assert hit.utilization == cold.utilization
            for a, b in zip(cold.spmm_results, hit.spmm_results):
                assert np.array_equal(a.cycles_per_round, b.cycles_per_round)
                assert np.array_equal(a.final_owner, b.final_owner)
                assert a.converged_round == b.converged_round
                assert a.max_queue_backlog == b.max_queue_backlog
                assert a.final_backlog == b.final_backlog
                assert a.total_backlog == b.total_backlog

    def test_incompatible_entry_falls_back_to_cold(self, tiny_cora,
                                                   tiny_nell):
        # A (hypothetical) colliding fingerprint with the wrong shape
        # must not crash the accelerator — it re-runs cold and re-stores.
        cache = AutotuneCache()
        cold = GcnAccelerator(tiny_nell, CFG_A).run()
        wrong_entry = CachedTuning.from_report(cold)
        accel = GcnAccelerator(tiny_cora, CFG_A)
        cache.store(accel.fingerprint(), CFG_A, wrong_entry)
        report = accel.run(cache=cache)
        assert not report.cache_hit
        assert GcnAccelerator(tiny_cora, CFG_A).run(cache=cache).cache_hit

    def test_save_load_round_trip(self, tiny_nell, tmp_path):
        cache = AutotuneCache()
        cold = GcnAccelerator(tiny_nell, CFG_A).run(cache=cache)
        GcnAccelerator(tiny_nell, CFG_B).run(cache=cache)
        path = cache.save(tmp_path / "cache.npz")
        restored = AutotuneCache.load(path)
        assert len(restored) == 2
        hit = GcnAccelerator(tiny_nell, CFG_A).run(cache=restored)
        assert hit.cache_hit
        assert hit.total_cycles == cold.total_cycles
        assert restored.stats.hits == 1

    def test_save_without_suffix_returns_real_path(self, tiny_cora,
                                                   tmp_path):
        cache = AutotuneCache()
        GcnAccelerator(tiny_cora, CFG_A).run(cache=cache)
        # numpy appends .npz to suffix-less paths; save must return the
        # path that actually exists so save -> load round-trips.
        path = cache.save(tmp_path / "autotune")
        assert str(path).endswith(".npz")
        assert AutotuneCache.load(path).stats.entries == 1

    def test_clear(self, tiny_cora):
        cache = AutotuneCache()
        GcnAccelerator(tiny_cora, CFG_A).run(cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0


class TestFingerprints:
    def test_dataset_fingerprint_stable_and_distinct(self):
        a = dataset_fingerprint(load_dataset("cora", "tiny", seed=3))
        b = dataset_fingerprint(load_dataset("cora", "tiny", seed=3))
        c = dataset_fingerprint(load_dataset("nell", "tiny", seed=3))
        assert a == b
        assert a != c

    def test_accelerator_fingerprint_covers_a_hops(self, tiny_cora):
        one = GcnAccelerator(tiny_cora, CFG_A, a_hops=1).fingerprint()
        two = GcnAccelerator(tiny_cora, CFG_A, a_hops=2).fingerprint()
        assert one != two

    def test_edges_fingerprint_order_insensitive(self):
        src = np.array([0, 3, 1]); dst = np.array([2, 1, 0])
        fwd = edges_fingerprint(src, dst, 4)
        perm = edges_fingerprint(src[::-1], dst[::-1], 4)
        assert fwd == perm
        assert fwd != edges_fingerprint(dst, src, 4)

    def test_edges_fingerprint_validates(self):
        with pytest.raises(ConfigError):
            edges_fingerprint([0, 9], [1, 1], 4)


class TestInferenceService:
    def test_results_in_arrival_order_with_hits(self):
        outcome = serve_requests(
            _requests("abababab"), n_workers=2, cache=True
        )
        assert [r.request_id for r in outcome.results] == list(range(8))
        # First request per config is a miss, the rest hit.
        assert [r.cache_hit for r in outcome.results] == (
            [False, False] + [True] * 6
        )
        assert outcome.stats.cache_hits == 6
        assert outcome.stats.n_batches == 2

    def test_cache_disabled_never_hits(self):
        outcome = serve_requests(_requests("aaaa"), cache=None)
        assert outcome.stats.cache_hits == 0
        assert outcome.stats.hit_rate == 0.0

    def test_cached_results_identical_to_uncached(self):
        requests = synthetic_traffic(
            10, n_graphs=2, n_nodes=384, seed=3,
            configs=(CFG_A,), graph_kwargs={"f1": 24, "f2": 12, "f3": 4},
        )
        cold = serve_requests(requests, cache=None)
        warm = serve_requests(requests, cache=True)
        for a, b in zip(cold.results, warm.results):
            assert a.total_cycles == b.total_cycles
            assert a.utilization == b.utilization

    def test_workers_round_robin_batches(self):
        outcome = serve_requests(_requests("ab"), n_workers=2, cache=True)
        assert {r.worker for r in outcome.results} == {0, 1}
        assert all(w.batches_served == 1 for w in outcome.workers)

    def test_single_config_mix_spreads_over_the_pool(self):
        # One giant config group must not serialize on instance 0: the
        # service splits it so every instance takes a contiguous share.
        outcome = serve_requests(_requests("aaaaaa"), n_workers=3,
                                 cache=True)
        assert {r.worker for r in outcome.results} == {0, 1, 2}
        assert all(w.requests_served == 2 for w in outcome.workers)

    def test_explicit_max_batch_still_wins(self):
        outcome = serve_requests(_requests("aaaa"), n_workers=2,
                                 cache=True, max_batch=4)
        assert {r.worker for r in outcome.results} == {0}

    def test_shared_cache_across_drains(self):
        cache = AutotuneCache()
        service = InferenceService(n_workers=1, cache=cache)
        service.submit_many(_requests("aa"))
        first = service.drain()
        service.submit_many(_requests("aa"))
        second = service.drain()
        assert first.stats.cache_hits == 1
        assert second.stats.cache_hits == 2  # warm from the first drain

    def test_rejects_bad_cache(self):
        with pytest.raises(ConfigError):
            InferenceService(cache="yes please")

    def test_stats_throughput_positive(self):
        outcome = serve_requests(_requests("aa"), cache=True)
        assert outcome.stats.requests_per_second > 0
        assert outcome.stats.total_cycles > 0
        assert 0.0 < outcome.stats.mean_utilization <= 1.0


class TestSyntheticTraffic:
    def test_mix_is_deterministic(self):
        mix1 = synthetic_traffic(8, n_graphs=3, n_nodes=256, seed=11)
        mix2 = synthetic_traffic(8, n_graphs=3, n_nodes=256, seed=11)
        assert [r.graph for r in mix1] == [r.graph for r in mix2]

    def test_repeats_graphs(self):
        mix = synthetic_traffic(30, n_graphs=3, n_nodes=256, seed=11)
        assert len({r.graph for r in mix}) <= 3
        assert len(mix) == 30

    def test_spec_build_memoized(self):
        assert SPEC.build() is SPEC.build()
