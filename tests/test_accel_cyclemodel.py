"""The per-SPMM cycle model."""

import numpy as np
import pytest

from repro.accel import ArchConfig, SpmmJob, simulate_spmm
from repro.errors import ConfigError


@pytest.fixture
def skewed_job(rng):
    row_nnz = rng.integers(1, 6, size=256)
    row_nnz[10] = 400
    return SpmmJob(name="test", row_nnz=row_nnz, n_rounds=12)


class TestSpmmJob:
    def test_work_accounting(self):
        job = SpmmJob(name="j", row_nnz=[1, 2, 3], n_rounds=4)
        assert job.work_per_round == 6
        assert job.total_work == 24

    def test_bad_tdq_raises(self):
        with pytest.raises(ConfigError):
            SpmmJob(name="j", row_nnz=[1], n_rounds=1, tdq="tdq9")

    def test_empty_rows_raises(self):
        with pytest.raises(ConfigError):
            SpmmJob(name="j", row_nnz=[], n_rounds=1)

    def test_negative_nnz_raises(self):
        with pytest.raises(ConfigError):
            SpmmJob(name="j", row_nnz=[-1], n_rounds=1)

    def test_zero_rounds_raises(self):
        with pytest.raises(ConfigError):
            SpmmJob(name="j", row_nnz=[1], n_rounds=0)


class TestStaticSimulation:
    def test_baseline_cycles_bounded_below_by_max_load(self, skewed_job):
        cfg = ArchConfig(n_pes=16, hop=0)
        result = simulate_spmm(skewed_job, cfg)
        # The PE owning the 400-nnz row needs >= 400 cycles per round.
        per_round = result.cycles_per_round[0] - cfg.drain_cycles
        assert per_round >= 400

    def test_rounds_identical_without_tuning(self, skewed_job):
        result = simulate_spmm(skewed_job, ArchConfig(n_pes=16, hop=1))
        assert len(set(result.cycles_per_round.tolist())) == 1

    def test_utilization_in_unit_range(self, skewed_job):
        for hop in (0, 1, 2):
            result = simulate_spmm(skewed_job, ArchConfig(n_pes=16, hop=hop))
            assert 0.0 < result.utilization <= 1.0

    def test_sharing_reduces_cycles(self, skewed_job):
        base = simulate_spmm(skewed_job, ArchConfig(n_pes=16, hop=0))
        shared = simulate_spmm(skewed_job, ArchConfig(n_pes=16, hop=2))
        assert shared.total_cycles < base.total_cycles

    def test_ideal_cycles(self, skewed_job):
        result = simulate_spmm(skewed_job, ArchConfig(n_pes=16))
        expected = -(-skewed_job.work_per_round // 16) * 12
        assert result.ideal_total_cycles == expected

    def test_sync_cycles_non_negative(self, skewed_job):
        result = simulate_spmm(skewed_job, ArchConfig(n_pes=16, hop=2))
        assert result.sync_cycles >= 0

    def test_initial_owner_respected(self, skewed_job):
        owner = np.zeros(256, dtype=np.int64)  # everything on PE 0
        result = simulate_spmm(
            skewed_job, ArchConfig(n_pes=16, hop=0), initial_owner=owner
        )
        per_round = result.cycles_per_round[0] - ArchConfig(n_pes=16).drain_cycles
        assert per_round >= skewed_job.work_per_round

    def test_backlog_measured(self, skewed_job):
        result = simulate_spmm(skewed_job, ArchConfig(n_pes=16, hop=0))
        assert result.final_backlog > 0
        assert result.total_backlog >= result.final_backlog

    def test_bad_job_type_raises(self):
        with pytest.raises(ConfigError):
            simulate_spmm("job", ArchConfig())

    def test_bad_config_type_raises(self, skewed_job):
        with pytest.raises(ConfigError):
            simulate_spmm(skewed_job, "config")


class TestTunedSimulation:
    def test_remote_improves_skewed_job(self, skewed_job):
        static = simulate_spmm(skewed_job, ArchConfig(n_pes=16, hop=0))
        tuned = simulate_spmm(
            skewed_job, ArchConfig(n_pes=16, hop=0, remote_switching=True)
        )
        assert tuned.total_cycles < static.total_cycles
        assert tuned.converged_round is not None

    def test_final_owner_differs_after_tuning(self, skewed_job):
        tuned = simulate_spmm(
            skewed_job, ArchConfig(n_pes=16, hop=0, remote_switching=True)
        )
        static = simulate_spmm(skewed_job, ArchConfig(n_pes=16, hop=0))
        assert not np.array_equal(tuned.final_owner, static.final_owner)

    def test_warm_start_skips_tuning_cost(self, skewed_job):
        cfg = ArchConfig(n_pes=16, hop=0, remote_switching=True)
        cold = simulate_spmm(skewed_job, cfg)
        warm = simulate_spmm(skewed_job, cfg, initial_owner=cold.final_owner)
        # Warm-started run begins at (or near) the converged makespan.
        assert warm.cycles_per_round[0] <= cold.cycles_per_round[0]
        assert warm.total_cycles <= cold.total_cycles

    def test_balanced_job_unaffected_by_tuning(self):
        job = SpmmJob(name="flat", row_nnz=np.full(64, 4), n_rounds=8)
        static = simulate_spmm(job, ArchConfig(n_pes=8, hop=0))
        tuned = simulate_spmm(
            job, ArchConfig(n_pes=8, hop=0, remote_switching=True)
        )
        assert tuned.total_cycles == static.total_cycles


class TestRawHazardBound:
    def test_deep_mac_binds_on_heavy_row(self):
        row_nnz = np.full(32, 2)
        row_nnz[0] = 100
        job = SpmmJob(name="raw", row_nnz=row_nnz, n_rounds=2)
        shallow = simulate_spmm(
            job, ArchConfig(n_pes=32, hop=2, mac_latency=5)
        )
        deep = simulate_spmm(
            job, ArchConfig(n_pes=32, hop=2, mac_latency=20)
        )
        # cooldown = 20 - 4 = 16 -> bound (100-1)*16 + 1 cycles/round.
        assert deep.total_cycles > shallow.total_cycles
        assert deep.cycles_per_round[0] >= (100 - 1) * 16 + 1

    def test_default_config_hides_hazards(self):
        row_nnz = np.full(32, 2)
        row_nnz[0] = 100
        job = SpmmJob(name="raw", row_nnz=row_nnz, n_rounds=2)
        result = simulate_spmm(job, ArchConfig(n_pes=32, hop=0))
        # At default T=5 / 4 queues the bound never exceeds the max load.
        assert result.cycles_per_round[0] - ArchConfig(n_pes=32).drain_cycles \
            == pytest.approx(104, abs=6)


class TestBatchedTuningDriver:
    """The chunked tuning driver is bit-identical to the sequential loop.

    ``batched_tuning=True`` (the default) speculates the switch-only
    load trajectory and prices whole round batches in one Hall-bound
    kernel call; ``False`` keeps the original one-bound-per-round loop
    as the oracle. Every :class:`SpmmResult` field the model exposes
    must agree between the two.
    """

    def _assert_identical(self, job, config):
        batched = simulate_spmm(job, config, batched_tuning=True)
        sequential = simulate_spmm(job, config, batched_tuning=False)
        assert np.array_equal(
            batched.cycles_per_round, sequential.cycles_per_round
        )
        assert batched.converged_round == sequential.converged_round
        assert np.array_equal(batched.final_owner, sequential.final_owner)
        assert batched.max_queue_backlog == sequential.max_queue_backlog
        assert batched.final_backlog == sequential.final_backlog
        assert batched.total_backlog == sequential.total_backlog
        return batched

    def test_identical_on_skewed_job(self, skewed_job):
        config = ArchConfig(n_pes=16, hop=1, remote_switching=True)
        result = self._assert_identical(skewed_job, config)
        assert result.tuned

    def test_identical_when_rounds_run_out_mid_tuning(self, rng):
        # Patient tuner, few rounds: convergence never happens, so the
        # chunk loop must consume exactly n_rounds and keep the final
        # (still-mutating) owner map.
        row_nnz = rng.integers(0, 12, size=96)
        row_nnz[3] = 300
        job = SpmmJob(name="short", row_nnz=row_nnz, n_rounds=3)
        config = ArchConfig(
            n_pes=12, hop=1, remote_switching=True,
            convergence_patience=50,
        )
        result = self._assert_identical(job, config)
        assert result.converged_round is None

    def test_identical_across_random_configs(self, rng):
        for _ in range(25):
            n_rows = int(rng.integers(8, 200))
            row_nnz = rng.integers(0, 25, size=n_rows)
            if rng.random() < 0.5:
                row_nnz[rng.integers(0, n_rows)] += int(
                    rng.integers(50, 400)
                )
            job = SpmmJob(
                name="rand", row_nnz=row_nnz,
                n_rounds=int(rng.integers(1, 24)),
            )
            config = ArchConfig(
                n_pes=int(rng.integers(2, 48)),
                hop=int(rng.integers(0, 3)),
                remote_switching=True,
                convergence_patience=int(rng.integers(1, 5)),
                switch_damping=float(rng.uniform(0.3, 1.0)),
                tracking_window=int(rng.integers(1, 4)),
                eq5_approximate=bool(rng.random() < 0.3),
            )
            self._assert_identical(job, config)

    def test_static_maps_ignore_the_flag(self, skewed_job):
        config = ArchConfig(n_pes=16, hop=1, remote_switching=False)
        a = simulate_spmm(skewed_job, config, batched_tuning=True)
        b = simulate_spmm(skewed_job, config, batched_tuning=False)
        assert np.array_equal(a.cycles_per_round, b.cycles_per_round)
        assert not a.tuned
