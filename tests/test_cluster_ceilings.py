"""Hard per-chip row-ceiling tests for planning and rebalancing.

The ceiling contract: a chip's row count never exceeds its ceiling —
not in the initial plan (the constrained sweep spills to later chips),
not after any number of migration sweeps (transfers are clamped at the
receiver), under both partition strategies and both rebalancing
signals. Infeasible ceilings raise :class:`CeilingError` (a
:class:`ConfigError`) instead of silently overfilling, and with
``row_ceilings=None`` the unconstrained code path is bit-identical to
an inline reimplementation of the pre-ceiling sweep.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import ArchConfig
from repro.cluster import (
    PARTITION_STRATEGIES,
    ClusterConfig,
    StragglerEvent,
    check_row_ceilings,
    make_plan,
    rebalance_plan,
    simulate_multichip_gcn,
)
from repro.errors import CeilingError, ConfigError
from repro.serve import RmatGraphSpec

CHIP = ArchConfig(n_pes=16, hop=1, remote_switching=True)


def _skewed_row_nnz(rng, n):
    """A hub-skewed per-row work profile (the overfill trigger)."""
    row_nnz = rng.integers(0, 8, size=n)
    hubs = rng.integers(0, n, size=max(1, n // 16))
    row_nnz[hubs] += rng.integers(32, 256, size=hubs.size)
    return row_nnz.astype(np.int64)


@st.composite
def ceiling_cases(draw):
    n = draw(st.integers(16, 160))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    row_nnz = _skewed_row_nnz(rng, n)
    n_chips = draw(st.integers(2, 6))
    blocks_per_chip = draw(st.integers(1, 6))
    strategy = draw(st.sampled_from(PARTITION_STRATEGIES))
    # Ceilings from near the equal share (tight, often infeasible with
    # coarse blocks) up to the whole graph (slack).
    share = -(-n // n_chips)
    ceilings = tuple(
        draw(st.integers(max(1, share // 2), n)) for _ in range(n_chips)
    )
    return row_nnz, n_chips, blocks_per_chip, strategy, ceilings


@settings(max_examples=60, deadline=None)
@given(ceiling_cases())
def test_make_plan_never_exceeds_ceilings(case):
    row_nnz, n_chips, blocks_per_chip, strategy, ceilings = case
    try:
        plan = make_plan(
            row_nnz, n_chips, strategy=strategy,
            blocks_per_chip=blocks_per_chip, row_ceilings=ceilings,
        )
    except CeilingError:
        return
    counts = plan.chip_row_counts()
    assert np.all(counts <= np.asarray(ceilings)), (counts, ceilings)
    assert np.all(counts >= 1)


@settings(max_examples=60, deadline=None)
@given(ceiling_cases())
def test_rebalance_plan_never_exceeds_ceilings(case):
    row_nnz, n_chips, blocks_per_chip, strategy, ceilings = case
    try:
        plan = make_plan(
            row_nnz, n_chips, strategy=strategy,
            blocks_per_chip=blocks_per_chip, row_ceilings=ceilings,
        )
    except CeilingError:
        return
    cluster = ClusterConfig(
        n_chips=n_chips, chip=CHIP, strategy=strategy,
        blocks_per_chip=blocks_per_chip, row_ceilings=ceilings,
    )
    rebalanced, info = rebalance_plan(plan, row_nnz, cluster)
    counts = rebalanced.chip_row_counts()
    assert np.all(counts <= np.asarray(ceilings)), (counts, ceilings)
    assert info.migrated_blocks >= 0


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2 ** 10), st.sampled_from(PARTITION_STRATEGIES))
def test_cycles_signal_respects_ceilings_end_to_end(seed, strategy):
    # The feedback controller migrates on measured cycles — with a
    # straggler pushing work off one chip, the clamp is what keeps the
    # receivers under their ceilings.
    dataset = RmatGraphSpec(
        n_nodes=256, avg_degree=6, f1=16, f2=8, f3=4, seed=seed
    ).build()
    ceilings = (96, 96, 96)
    cluster = ClusterConfig(
        n_chips=3, chip=CHIP, strategy=strategy,
        rebalance_signal="cycles", feedback_rounds=4,
        row_ceilings=ceilings,
        stragglers=(StragglerEvent(chip=0, onset_round=0.5, factor=3.0),),
    )
    report = simulate_multichip_gcn(dataset, cluster)
    counts = report.plan.chip_row_counts()
    assert np.all(counts <= np.asarray(ceilings)), counts


def _legacy_owner(row_nnz, n_chips, strategy, blocks_per_chip):
    """Inline reimplementation of the pre-ceiling unconstrained sweep."""
    n_rows = row_nnz.size
    n_blocks = min(n_chips * blocks_per_chip, n_rows)
    bounds = np.floor(
        np.arange(n_blocks + 1) * (n_rows / n_blocks)
    ).astype(np.int64)
    bounds[-1] = n_rows
    if strategy == "rows":
        owner = np.arange(n_blocks, dtype=np.int64) * n_chips // n_blocks
        return bounds, owner
    weights = np.add.reduceat(row_nnz, bounds[:-1]).astype(np.float64)
    total = float(weights.sum())
    owner = np.empty(n_blocks, dtype=np.int64)
    cum = 0.0
    block = 0
    for chip in range(n_chips):
        target = total * (chip + 1) / n_chips
        start = block
        ceiling = n_blocks - (n_chips - chip - 1)
        while block < ceiling and (block == start or cum < target):
            cum += weights[block]
            block += 1
        owner[start:block] = chip
    owner[block:] = n_chips - 1
    return bounds, owner


@settings(max_examples=60, deadline=None)
@given(
    st.integers(0, 2 ** 16),
    st.integers(8, 160),
    st.integers(2, 6),
    st.integers(1, 6),
    st.sampled_from(PARTITION_STRATEGIES),
)
def test_unconstrained_path_bit_identical(seed, n, n_chips, bpc, strategy):
    if n < n_chips:
        n = n_chips
    rng = np.random.default_rng(seed)
    row_nnz = _skewed_row_nnz(rng, n)
    bounds, owner = _legacy_owner(row_nnz, n_chips, strategy, bpc)
    plan = make_plan(
        row_nnz, n_chips, strategy=strategy, blocks_per_chip=bpc
    )
    assert np.array_equal(plan.block_bounds, bounds)
    assert np.array_equal(plan.owner, owner)
    # Fully slack ceilings must reproduce the unconstrained plan
    # exactly: the constrained sweep's stopping rule is the same.
    slack = make_plan(
        row_nnz, n_chips, strategy=strategy, blocks_per_chip=bpc,
        row_ceilings=(n,) * n_chips,
    )
    assert np.array_equal(slack.owner, owner)


class TestCeilingValidation:
    def test_infeasible_sum_raises(self):
        row_nnz = np.ones(100, dtype=np.int64)
        with pytest.raises(CeilingError):
            make_plan(row_nnz, 4, row_ceilings=(20, 20, 20, 20))

    def test_granularity_infeasible_raises(self):
        # 4 blocks of 25 rows: a 10-row ceiling cannot hold any block.
        row_nnz = np.ones(100, dtype=np.int64)
        with pytest.raises(CeilingError):
            make_plan(
                row_nnz, 4, blocks_per_chip=1,
                row_ceilings=(10, 100, 100, 100),
            )

    def test_ceiling_error_is_config_error(self):
        assert issubclass(CeilingError, ConfigError)

    def test_non_positive_ceiling_rejected(self):
        with pytest.raises(ConfigError):
            check_row_ceilings((0, 10), 2)

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigError):
            check_row_ceilings((10, 10, 10), 2)

    def test_none_passes_through(self):
        assert check_row_ceilings(None, 4) is None

    def test_rebalance_rejects_overfull_input_plan(self):
        row_nnz = np.ones(96, dtype=np.int64)
        plan = make_plan(row_nnz, 2, strategy="rows")
        cluster = ClusterConfig(
            n_chips=2, chip=CHIP, row_ceilings=(40, 96)
        )
        with pytest.raises(CeilingError):
            rebalance_plan(plan, row_nnz, cluster)

    def test_simulate_rejects_overfull_supplied_plan(self):
        dataset = RmatGraphSpec(
            n_nodes=192, avg_degree=6, f1=16, f2=8, f3=4, seed=3
        ).build()
        plan = make_plan(dataset.adjacency_row_nnz(), 2, strategy="rows")
        cluster = ClusterConfig(
            n_chips=2, chip=CHIP, row_ceilings=(64, 192)
        )
        with pytest.raises(CeilingError):
            simulate_multichip_gcn(dataset, cluster, plan=plan)


class TestCeilingSpill:
    def test_sweep_spills_across_chips(self):
        # All the weight is at the head: the unconstrained nnz sweep
        # gives the early chips tiny row counts and dumps the
        # weightless tail on the last chip — the overfill the ceilings
        # exist to stop.
        row_nnz = np.zeros(128, dtype=np.int64)
        row_nnz[:16] = 1000
        unconstrained = make_plan(row_nnz, 4, strategy="nnz")
        assert unconstrained.chip_row_counts().max() > 40
        plan = make_plan(
            row_nnz, 4, strategy="nnz", row_ceilings=(40, 40, 40, 40)
        )
        counts = plan.chip_row_counts()
        assert np.all(counts <= 40)
        assert int(counts.sum()) == 128

    def test_defaults_unchanged_without_ceilings(self):
        row_nnz = np.arange(128, dtype=np.int64)
        a = make_plan(row_nnz, 4)
        b = make_plan(row_nnz, 4, row_ceilings=None)
        assert np.array_equal(a.owner, b.owner)
        assert np.array_equal(a.block_bounds, b.block_bounds)
