"""Dataset persistence and the Fig. 10 heat-strip rendering."""

import numpy as np
import pytest

from repro.analysis.heatmap import (
    heat_strip,
    rebalancing_heat_story,
    render_heat_story,
)
from repro.datasets.io import load_dataset_file, save_dataset
from repro.errors import ConfigError, DatasetError


class TestDatasetIo:
    def test_round_trip(self, tiny_cora, tmp_path):
        path = save_dataset(tiny_cora, tmp_path / "cora.npz")
        loaded = load_dataset_file(path)
        assert loaded.name == tiny_cora.name
        assert loaded.adjacency == tiny_cora.adjacency
        assert loaded.features == tiny_cora.features
        assert np.array_equal(loaded.weights[0], tiny_cora.weights[0])
        assert np.array_equal(loaded.x2_row_nnz, tiny_cora.x2_row_nnz)

    def test_round_trip_pattern_only(self, tmp_path):
        from repro.datasets import build_dataset

        ds = build_dataset("cora", "tiny", seed=4, materialize=False)
        path = save_dataset(ds, tmp_path / "p.npz")
        loaded = load_dataset_file(path)
        assert not loaded.has_numeric_features
        assert np.array_equal(loaded.x1_row_nnz, ds.x1_row_nnz)

    def test_loaded_dataset_runs_inference(self, tiny_cora, tmp_path):
        from repro.model import build_model

        loaded = load_dataset_file(
            save_dataset(tiny_cora, tmp_path / "c.npz")
        )
        reference = build_model(tiny_cora).forward(tiny_cora.features)
        reloaded = build_model(loaded).forward(loaded.features)
        assert np.allclose(
            reference.probabilities, reloaded.probabilities
        )

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset_file(tmp_path / "absent.npz")

    def test_save_rejects_non_dataset(self, tmp_path):
        with pytest.raises(DatasetError):
            save_dataset("not a dataset", tmp_path / "x.npz")

    def test_version_check(self, tiny_cora, tmp_path):
        path = save_dataset(tiny_cora, tmp_path / "v.npz")
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.array(99)
        np.savez_compressed(path, **data)
        with pytest.raises(DatasetError):
            load_dataset_file(path)


class TestHeatStrip:
    def test_length_matches_pes(self):
        assert len(heat_strip([1, 2, 3, 4])) == 4

    def test_idle_pe_is_space(self):
        strip = heat_strip([0, 10], ideal=5)
        assert strip[0] == " "

    def test_overloaded_pe_is_at_sign(self):
        strip = heat_strip([20, 0], ideal=5)
        assert strip[0] == "@"

    def test_balanced_mid_grade(self):
        strip = heat_strip([5, 5], ideal=5)
        assert strip[0] == strip[1]
        assert strip[0] not in (" ", "@")

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            heat_strip([])

    def test_bad_ideal_raises(self):
        with pytest.raises(ConfigError):
            heat_strip([1], ideal=0)


class TestHeatStory:
    def test_story_structure(self, rng):
        row_nnz = rng.integers(0, 6, size=64)
        row_nnz[0] = 120
        story = rebalancing_heat_story(row_nnz, 8, hop=1)
        labels = [label for label, _ in story]
        assert labels[0] == "equal partition"
        assert "after remote switching" in labels
        assert all(len(strip) == 8 for _label, strip in story)

    def test_rebalancing_cools_hotspot(self, rng):
        # Eight medium rows all on PE 0: a *divisible* hotspot, so the
        # tuner can actually flatten it (a single atomic super-row could
        # not drop below its sharing-window share — see the robustness
        # tests).
        row_nnz = rng.integers(0, 4, size=64)
        row_nnz[0:8] = 40
        story = dict(rebalancing_heat_story(row_nnz, 8, hop=1))
        first = story["equal partition"]
        switched = story["after remote switching"]
        assert first[0] == "@"          # the hotspot glows initially
        # After remote switching the hotspot has cooled below "red".
        assert switched[0] != "@"
        assert switched.count("@") < first.count("@")

    def test_render_has_legend(self, rng):
        story = rebalancing_heat_story(rng.integers(0, 9, size=32), 4)
        text = render_heat_story(story)
        assert "legend" in text
        assert "200%" in text
