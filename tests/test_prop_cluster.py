"""Exact-reassembly property tests for sharded execution.

The cluster's core guarantee: for every partitioner and shard count,
shard-local execution over the halo sets reassembles the single-chip
result **bit-for-bit** — ``==``, not ``allclose``. Hypothesis drives
random graphs, dense operands, partitioners and shard counts through
:func:`sharded_spmm` (bit-equal to the unsharded sparse kernels) and
the full multi-layer :func:`sharded_gcn_forward` (bit-equal to
:func:`reference_forward` under every plan; equal to
:class:`~repro.model.gcn.GcnModel` exactly on pure sparse-kernel
stages and to float64 round-off beyond the model's BLAS dense
products — see the :mod:`repro.cluster.exec` docstring).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    PARTITION_STRATEGIES,
    make_plan,
    reference_forward,
    sharded_gcn_forward,
    sharded_spmm,
)
from repro.model.gcn import GcnModel
from repro.serve import RmatGraphSpec
from repro.sparse import CooMatrix, coo_to_csr, spmm_csc_dense, coo_to_csc


@st.composite
def graphs_and_plans(draw):
    n = draw(st.integers(8, 64))
    nnz = draw(st.integers(n, 4 * n))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    adj = CooMatrix(
        (n, n),
        rng.integers(0, n, size=nnz),
        rng.integers(0, n, size=nnz),
        rng.standard_normal(nnz),
    )
    n_chips = draw(st.integers(1, min(6, n)))
    strategy = draw(st.sampled_from(PARTITION_STRATEGIES))
    blocks_per_chip = draw(st.integers(1, 6))
    plan = make_plan(
        coo_to_csr(adj).row_nnz(), n_chips, strategy=strategy,
        blocks_per_chip=blocks_per_chip,
    )
    k = draw(st.integers(1, 5))
    b_dense = rng.standard_normal((n, k))
    return adj, plan, b_dense


@settings(max_examples=60, deadline=None)
@given(graphs_and_plans())
def test_sharded_spmm_bit_exact(case):
    adj, plan, b_dense = case
    full = spmm_csc_dense(coo_to_csc(adj), b_dense)
    assert np.array_equal(sharded_spmm(adj, b_dense, plan), full)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, 2 ** 16),
    st.integers(2, 5),
    st.sampled_from(PARTITION_STRATEGIES),
    st.integers(1, 3),
)
def test_sharded_gcn_forward_bit_exact(seed, n_chips, strategy, a_hops):
    spec = RmatGraphSpec(
        n_nodes=96, avg_degree=6, f1=12, f2=8, f3=4, seed=seed
    )
    dataset = spec.build()
    rng = np.random.default_rng(seed)
    # Pattern-only serve graphs carry no numeric X1; make one.
    features = CooMatrix.from_dense(
        rng.standard_normal((96, 12))
        * (rng.random((96, 12)) < 0.3)
    )
    plan = make_plan(
        dataset.adjacency_row_nnz(), n_chips, strategy=strategy
    )
    logits, probs = sharded_gcn_forward(
        dataset.adjacency, dataset.weights, features, plan, a_hops=a_hops
    )
    ref_logits, ref_probs = reference_forward(
        dataset.adjacency, dataset.weights, features, a_hops=a_hops
    )
    assert np.array_equal(logits, ref_logits)
    assert np.array_equal(probs, ref_probs)
    # Against the (BLAS-based) reference model: exact up to its dense
    # layer-2 product, round-off exact overall.
    trace = GcnModel(
        dataset.adjacency, dataset.weights, a_hops=a_hops
    ).forward(features)
    np.testing.assert_allclose(logits, trace.logits, rtol=0, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2 ** 16), st.integers(2, 5), st.integers(1, 2))
def test_single_layer_matches_model_bit_for_bit(seed, n_chips, a_hops):
    # A 1-layer GCN over sparse features touches only the sparse
    # kernels, where the sharded pipeline and the reference model are
    # bit-identical (no BLAS involved).
    rng = np.random.default_rng(seed)
    n, f_in, f_out = 64, 10, 6
    adj = CooMatrix.from_dense(
        rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.1)
    )
    features = CooMatrix.from_dense(
        rng.standard_normal((n, f_in)) * (rng.random((n, f_in)) < 0.4)
    )
    weights = [rng.standard_normal((f_in, f_out))]
    trace = GcnModel(adj, weights, a_hops=a_hops).forward(features)
    plan = make_plan(coo_to_csr(adj).row_nnz(), n_chips)
    logits, probs = sharded_gcn_forward(
        adj, weights, features, plan, a_hops=a_hops
    )
    assert np.array_equal(logits, trace.logits)
    assert np.array_equal(probs, trace.probabilities)


class TestShardedForwardOnDatasets:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("n_chips", [2, 3, 5])
    def test_tiny_cora_exact(self, tiny_cora, strategy, n_chips):
        ref = reference_forward(
            tiny_cora.adjacency, tiny_cora.weights, tiny_cora.features
        )
        plan = make_plan(
            tiny_cora.adjacency_row_nnz(), n_chips, strategy=strategy
        )
        logits, probs = sharded_gcn_forward(
            tiny_cora.adjacency, tiny_cora.weights, tiny_cora.features,
            plan,
        )
        assert np.array_equal(logits, ref[0])
        assert np.array_equal(probs, ref[1])

    def test_tiny_nell_clustered_exact(self, tiny_nell):
        # Nell's clustered skew is the worst case for halo sets (hub
        # columns referenced by every shard).
        ref_logits, _ = reference_forward(
            tiny_nell.adjacency, tiny_nell.weights, tiny_nell.features
        )
        plan = make_plan(tiny_nell.adjacency_row_nnz(), 4)
        logits, _probs = sharded_gcn_forward(
            tiny_nell.adjacency, tiny_nell.weights, tiny_nell.features,
            plan,
        )
        assert np.array_equal(logits, ref_logits)

    def test_matches_reference_model_to_roundoff(self, tiny_nell):
        trace = GcnModel(tiny_nell.adjacency, tiny_nell.weights).forward(
            tiny_nell.features
        )
        plan = make_plan(tiny_nell.adjacency_row_nnz(), 4)
        logits, _ = sharded_gcn_forward(
            tiny_nell.adjacency, tiny_nell.weights, tiny_nell.features,
            plan,
        )
        np.testing.assert_allclose(
            logits, trace.logits, rtol=0, atol=1e-12
        )

    def test_dense_feature_input_exact(self, tiny_cora):
        # The dense-features path (layer-2-style input) through the
        # same plan machinery.
        dense = tiny_cora.features.to_dense()
        ref_logits, _ = reference_forward(
            tiny_cora.adjacency, tiny_cora.weights, dense
        )
        plan = make_plan(tiny_cora.adjacency_row_nnz(), 3)
        logits, _ = sharded_gcn_forward(
            tiny_cora.adjacency, tiny_cora.weights, dense, plan
        )
        assert np.array_equal(logits, ref_logits)
