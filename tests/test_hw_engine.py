"""Detailed SPMM engine: numeric exactness and timing behaviour."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hw import simulate_spmm_detailed
from repro.sparse import CooMatrix


@pytest.fixture
def random_case(rng):
    dense = rng.normal(size=(24, 18))
    dense[rng.random(dense.shape) > 0.3] = 0.0
    b = rng.normal(size=(18, 4))
    return dense, b


class TestNumericExactness:
    @pytest.mark.parametrize("tdq", ["tdq1", "tdq2"])
    @pytest.mark.parametrize("hop", [0, 1, 2])
    def test_matches_numpy(self, random_case, tdq, hop):
        dense, b = random_case
        a = CooMatrix.from_dense(dense)
        result, _stats = simulate_spmm_detailed(
            a, b, n_pes=8, hop=hop, tdq=tdq
        )
        assert np.allclose(result, dense @ b)

    def test_empty_matrix(self):
        a = CooMatrix.empty((8, 8))
        result, stats = simulate_spmm_detailed(a, np.ones((8, 2)), n_pes=4)
        assert np.array_equal(result, np.zeros((8, 2)))
        assert stats.tasks == 0

    def test_single_nonzero(self):
        a = CooMatrix((4, 4), [2], [3], [5.0])
        b = np.arange(8, dtype=float).reshape(4, 2)
        result, stats = simulate_spmm_detailed(a, b, n_pes=2)
        expected = a.to_dense() @ b
        assert np.allclose(result, expected)
        assert stats.tasks == 2

    def test_non_power_of_two_pes(self, random_case):
        dense, b = random_case
        a = CooMatrix.from_dense(dense)
        result, _ = simulate_spmm_detailed(a, b, n_pes=6, tdq="tdq2")
        assert np.allclose(result, dense @ b)

    def test_custom_owner_map(self, random_case, rng):
        dense, b = random_case
        a = CooMatrix.from_dense(dense)
        owner = rng.integers(0, 8, size=24)
        result, _ = simulate_spmm_detailed(a, b, n_pes=8, owner_of_row=owner)
        assert np.allclose(result, dense @ b)

    def test_bad_b_shape_raises(self, random_case):
        dense, _b = random_case
        a = CooMatrix.from_dense(dense)
        with pytest.raises(ConfigError):
            simulate_spmm_detailed(a, np.ones((3, 2)))

    def test_bad_tdq_raises(self, random_case):
        dense, b = random_case
        a = CooMatrix.from_dense(dense)
        with pytest.raises(ConfigError):
            simulate_spmm_detailed(a, b, tdq="tdq3")

    def test_bad_matrix_type_raises(self):
        with pytest.raises(ConfigError):
            simulate_spmm_detailed(np.eye(3), np.ones((3, 1)))


class TestTimingBehaviour:
    def test_stats_accounting(self, random_case):
        dense, b = random_case
        a = CooMatrix.from_dense(dense)
        _result, stats = simulate_spmm_detailed(a, b, n_pes=8)
        assert stats.tasks == a.nnz * b.shape[1]
        assert stats.busy_cycles.sum() == stats.tasks
        assert stats.cycles_per_round.sum() == stats.cycles
        assert 0 < stats.utilization <= 1.0

    def test_sharing_helps_hot_partition(self, rng):
        # All work lands on PE 0's rows; neighbours should relieve it.
        # A realistic MAC depth matters here: with a single-cycle MAC
        # the hot PE drains exactly as fast as its Omega port delivers,
        # queues never build, and the sharing logic (correctly) never
        # engages — it is the RaW-stall backlog that trips it.
        dense = np.zeros((32, 48))
        dense[0:4, :] = rng.normal(size=(4, 48))
        a = CooMatrix.from_dense(dense)
        b = rng.normal(size=(48, 2))
        base_result, base = simulate_spmm_detailed(
            a, b, n_pes=8, hop=0, mac_latency=5
        )
        share_result, share = simulate_spmm_detailed(
            a, b, n_pes=8, hop=2, mac_latency=5
        )
        assert np.allclose(base_result, share_result)
        assert share.cycles < base.cycles
        assert share.utilization > base.utilization

    def test_raw_stalls_counted_for_hot_row(self, rng):
        # A single output row with many tasks forces RaW spacing.
        dense = np.zeros((8, 64))
        dense[0, :] = 1.0
        a = CooMatrix.from_dense(dense)
        b = rng.normal(size=(64, 1))
        _res, stats = simulate_spmm_detailed(
            a, b, n_pes=4, mac_latency=8, queues_per_pe=1
        )
        assert stats.stall_events > 0

    def test_queue_high_water_positive(self, random_case):
        dense, b = random_case
        a = CooMatrix.from_dense(dense)
        _res, stats = simulate_spmm_detailed(a, b, n_pes=2)
        assert stats.max_queue_occupancy > 0
