"""COO format: canonicalization, invariants, views."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse import CooMatrix


class TestConstruction:
    def test_round_trip_dense(self, small_dense):
        coo = CooMatrix.from_dense(small_dense)
        assert np.array_equal(coo.to_dense(), small_dense)

    def test_duplicates_are_summed(self):
        coo = CooMatrix((2, 2), [0, 0, 1], [1, 1, 0], [2.0, 3.0, 4.0])
        assert coo.nnz == 2
        assert coo.to_dense()[0, 1] == 5.0

    def test_explicit_zeros_dropped(self):
        coo = CooMatrix((2, 2), [0, 1], [0, 1], [0.0, 1.0])
        assert coo.nnz == 1

    def test_keep_zeros_flag(self):
        coo = CooMatrix((2, 2), [0], [0], [0.0], keep_zeros=True)
        assert coo.nnz == 1

    def test_canonical_ordering_row_major(self):
        coo = CooMatrix((3, 3), [2, 0, 1, 0], [0, 2, 1, 0], [1, 2, 3, 4])
        rows = coo.rows.tolist()
        cols = coo.cols.tolist()
        keys = [r * 3 + c for r, c in zip(rows, cols)]
        assert keys == sorted(keys)

    def test_cancelling_duplicates_removed(self):
        coo = CooMatrix((2, 2), [0, 0], [0, 0], [1.0, -1.0])
        assert coo.nnz == 0

    def test_out_of_range_row_raises(self):
        with pytest.raises(FormatError):
            CooMatrix((2, 2), [2], [0], [1.0])

    def test_out_of_range_col_raises(self):
        with pytest.raises(FormatError):
            CooMatrix((2, 2), [0], [-1], [1.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(FormatError):
            CooMatrix((2, 2), [0, 1], [0], [1.0])

    def test_negative_shape_raises(self):
        with pytest.raises(ShapeError):
            CooMatrix((-1, 2), [], [], [])

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ShapeError):
            CooMatrix.from_dense(np.ones(4))


class TestViews:
    def test_row_nnz_matches_dense(self, small_dense, small_coo):
        expected = (small_dense != 0).sum(axis=1)
        assert np.array_equal(small_coo.row_nnz(), expected)

    def test_col_nnz_matches_dense(self, small_dense, small_coo):
        expected = (small_dense != 0).sum(axis=0)
        assert np.array_equal(small_coo.col_nnz(), expected)

    def test_density(self):
        coo = CooMatrix((2, 5), [0, 1], [0, 4], [1.0, 1.0])
        assert coo.density == pytest.approx(0.2)

    def test_density_empty_shape(self):
        assert CooMatrix.empty((0, 0)).density == 0.0

    def test_transpose(self, small_dense, small_coo):
        assert np.array_equal(small_coo.transpose().to_dense(), small_dense.T)

    def test_transpose_twice_identity(self, small_coo):
        assert small_coo.transpose().transpose() == small_coo

    def test_scaled(self, small_coo, small_dense):
        assert np.allclose(small_coo.scaled(2.5).to_dense(), small_dense * 2.5)

    def test_identity(self):
        eye = CooMatrix.identity(4)
        assert np.array_equal(eye.to_dense(), np.eye(4))

    def test_empty(self):
        empty = CooMatrix.empty((3, 4))
        assert empty.nnz == 0
        assert empty.to_dense().shape == (3, 4)


class TestSemantics:
    def test_equality(self, small_dense):
        a = CooMatrix.from_dense(small_dense)
        b = CooMatrix.from_dense(small_dense)
        assert a == b

    def test_inequality_different_values(self, small_dense):
        a = CooMatrix.from_dense(small_dense)
        b = a.scaled(2.0)
        assert a != b

    def test_immutable(self, small_coo):
        with pytest.raises(AttributeError):
            small_coo.shape = (1, 1)

    def test_repr_mentions_shape_and_nnz(self, small_coo):
        text = repr(small_coo)
        assert str(small_coo.nnz) in text
        assert str(small_coo.shape) in text
