"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.preset == "scaled"
        assert args.seed == 7
        assert args.datasets is None


class TestCommands:
    def test_summary(self, capsys):
        code = main(["summary", "--preset", "tiny", "--seed", "3",
                     "--datasets", "cora"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cora/tiny" in out

    def test_table1(self, capsys):
        code = main(["table1", "--preset", "tiny", "--seed", "3",
                     "--datasets", "cora"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_table2_with_csv_out(self, capsys, tmp_path):
        code = main([
            "table2", "--preset", "tiny", "--seed", "3",
            "--datasets", "cora", "--out", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "table2.csv").exists()
        assert "Table 2" in capsys.readouterr().out

    def test_table3(self, capsys):
        code = main(["table3", "--preset", "tiny", "--seed", "3",
                     "--datasets", "cora", "--pes", "16"])
        assert code == 0
        assert "Table 3" in capsys.readouterr().out

    def test_fig_dist(self, capsys):
        code = main(["fig-dist", "--preset", "tiny", "--seed", "3",
                     "--datasets", "nell"])
        assert code == 0
        assert "nell" in capsys.readouterr().out

    def test_fig14(self, capsys):
        code = main(["fig14", "--preset", "tiny", "--seed", "3",
                     "--datasets", "cora", "--pes", "16"])
        assert code == 0
        assert "Fig. 14" in capsys.readouterr().out

    def test_fig14_spmm(self, capsys):
        code = main(["fig14-spmm", "--preset", "tiny", "--seed", "3",
                     "--datasets", "cora", "--pes", "16"])
        assert code == 0
        assert "ideal" in capsys.readouterr().out

    def test_fig14_area(self, capsys):
        code = main(["fig14-area", "--preset", "tiny", "--seed", "3",
                     "--datasets", "cora", "--pes", "16"])
        assert code == 0
        assert "TQ" in capsys.readouterr().out

    def test_fig15(self, capsys):
        code = main(["fig15", "--preset", "tiny", "--seed", "3",
                     "--datasets", "cora", "--pe-counts", "8,16"])
        assert code == 0
        assert "Fig. 15" in capsys.readouterr().out

    def test_serve_bench(self, capsys, tmp_path):
        code = main([
            "serve-bench", "--requests", "8", "--graphs", "2",
            "--nodes", "384", "--pes", "16", "--workers", "2",
            "--seed", "3", "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Serving throughput" in out
        assert "cycle-identical" in out
        assert (tmp_path / "serve_bench.csv").exists()

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.requests == 96
        assert args.graphs == 4
        assert args.workers == 2
        assert args.arrival_rate is None
        assert args.slo_ms is None
        assert args.arrival is None

    def test_serve_bench_streaming_flags_need_arrival_rate(self, capsys):
        # --slo-ms etc. without --arrival-rate would silently fall
        # through to the offline throughput bench; reject instead.
        with pytest.raises(SystemExit):
            main(["serve-bench", "--slo-ms", "5"])
        assert "--arrival-rate" in capsys.readouterr().err

    def test_serve_bench_streaming_mode(self, capsys, tmp_path):
        code = main([
            "serve-bench", "--requests", "10", "--graphs", "2",
            "--nodes", "384", "--pes", "16", "--workers", "2",
            "--seed", "3", "--arrival-rate", "4000", "--slo-ms", "2",
            "--max-batch", "4", "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Serving latency" in out
        assert "p50" in out and "p99" in out
        assert "SLO" in out
        assert "timeline-identical" in out
        assert (tmp_path / "serve_latency.csv").exists()

    def test_serve_bench_bursty_arrivals(self, capsys):
        code = main([
            "serve-bench", "--requests", "8", "--graphs", "2",
            "--nodes", "384", "--pes", "16", "--seed", "3",
            "--arrival-rate", "2000", "--arrival", "bursty",
        ])
        assert code == 0
        assert "bursty arrivals" in capsys.readouterr().out

    def test_serve_bench_rejects_unknown_arrival(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve-bench", "--arrival", "psychic"]
            )

    def test_shard_bench_ceiling_and_straggler(self, capsys):
        code = main([
            "shard-bench", "--chips", "1,2", "--nodes", "512",
            "--weak-nodes-per-chip", "256", "--seed", "3",
            "--row-ceiling", "400", "--straggler", "1:1.5:2.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "row ceiling 400" in out
        assert "1 straggler(s)" in out

    def test_shard_bench_rejects_malformed_straggler(self, capsys):
        with pytest.raises(SystemExit):
            main(["shard-bench", "--straggler", "1:2"])
        assert "CHIP:ONSET:FACTOR" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["shard-bench", "--straggler", "a:b:c"])

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "summary", "--preset", "tiny",
             "--seed", "3", "--datasets", "cora"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "cora/tiny" in proc.stdout
