"""Event-driven streaming serving: admission, SLO scheduling, latency.

Covers the simulated-clock serving loop end to end: request arrival /
deadline semantics, the :class:`StreamingScheduler`'s batch-cutting
rules (size, deadline slack, batch timeout, flush) and EDF dispatch
order, per-request timeline accounting, seeded fairness property tests
(no time travel, within-batch FIFO, no config-group starvation), a
golden latency-percentile regression pinning one fixed trace (same
spirit as ``tests/test_golden_cycles.py``), and the cache-invariance
guarantee: enabling the autotune cache may only change wall-clock
simulation cost, never a cycle count or a simulated timestamp.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import ArchConfig
from repro.errors import ConfigError
from repro.serve import (
    AutotuneCache,
    InferenceRequest,
    LatencyStats,
    RequestQueue,
    StreamingScheduler,
    RmatGraphSpec,
    bursty_arrivals,
    percentile,
    poisson_arrivals,
    serve_requests,
    streaming_traffic,
)

CFG_A = ArchConfig(n_pes=16, hop=1, remote_switching=True)
CFG_B = ArchConfig(n_pes=32, hop=1, remote_switching=True)
SPEC = RmatGraphSpec(n_nodes=384, f1=24, f2=12, f3=4, seed=5)
SPEC2 = RmatGraphSpec(n_nodes=384, f1=24, f2=12, f3=4, seed=6)
TINY_GRAPH_KWARGS = {"f1": 24, "f2": 12, "f3": 4}

# One shared warm cache for the property tests: modeled cycles (and so
# every simulated timestamp) are cache-invariant, and reusing the frozen
# fast path keeps the randomized suite fast.
_SHARED_CACHE = AutotuneCache()


def _request(config=CFG_A, arrival=0.0, slo_ms=None, graph=SPEC):
    return InferenceRequest(
        graph=graph, config=config, arrival_time=arrival, slo_ms=slo_ms
    )


def _queued(requests):
    queue = RequestQueue()
    queue.submit_many(requests)
    return queue.drain()


class TestRequestStreamingFields:
    def test_arrival_must_be_finite_non_negative(self):
        for bad in (-1.0, math.inf, math.nan, "later"):
            with pytest.raises(ConfigError):
                _request(arrival=bad)

    def test_slo_must_be_positive_finite(self):
        for bad in (0.0, -5.0, math.inf, "fast"):
            with pytest.raises(ConfigError):
                _request(slo_ms=bad)

    def test_deadline_derives_from_slo(self):
        assert _request(arrival=2.0, slo_ms=500.0).deadline == 2.5
        assert _request(arrival=2.0).deadline == math.inf


class TestPercentile:
    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 75) == 30.0
        assert percentile(values, 100) == 40.0
        assert percentile(values, 1) == 10.0

    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_rejects_bad_q(self):
        for bad in (0, -5, 101):
            with pytest.raises(ConfigError):
                percentile([1.0], bad)


class TestStreamingSchedulerCuts:
    def test_size_cut_seals_at_max_batch(self):
        stream = StreamingScheduler(max_batch=2)
        items = _queued([_request(), _request(), _request()])
        for item in items:
            stream.admit(item)
        assert stream.ready == 1
        assert stream.pending == 1

    def test_deadline_cut_without_estimate_fires_at_deadline(self):
        stream = StreamingScheduler()
        item = _queued([_request(arrival=1.0, slo_ms=500.0)])[0]
        stream.admit(item)
        assert stream.next_cut_time() == pytest.approx(1.5)
        assert stream.cut_due(1.4) == 0
        assert stream.cut_due(1.5) == 1
        assert stream.ready == 1

    def test_estimate_pulls_the_cut_earlier(self):
        stream = StreamingScheduler()
        stream.observe(CFG_A, 1, 0.2)
        item = _queued([_request(arrival=1.0, slo_ms=500.0)])[0]
        stream.admit(item)
        # deadline 1.5s minus one estimated 0.2s service = cut at 1.3s.
        assert stream.next_cut_time() == pytest.approx(1.3)

    def test_estimate_scales_with_group_size(self):
        stream = StreamingScheduler()
        stream.observe(CFG_A, 1, 0.1)
        for item in _queued([
            _request(arrival=0.0, slo_ms=1000.0),
            _request(arrival=0.0, slo_ms=1000.0),
        ]):
            stream.admit(item)
        # Two queued members need two estimated services before the
        # tightest deadline: 1.0s - 2 * 0.1s.
        assert stream.next_cut_time() == pytest.approx(0.8)

    def test_max_wait_bounds_slo_less_requests(self):
        stream = StreamingScheduler(max_wait=0.25)
        item = _queued([_request(arrival=1.0)])[0]
        stream.admit(item)
        assert stream.next_cut_time() == pytest.approx(1.25)

    def test_no_deadline_no_timeout_never_cuts(self):
        stream = StreamingScheduler()
        stream.admit(_queued([_request(arrival=0.0)])[0])
        assert stream.next_cut_time() == math.inf
        assert stream.cut_due(1e9) == 0

    def test_flush_seals_everything(self):
        stream = StreamingScheduler()
        for item in _queued([_request(CFG_A), _request(CFG_B)]):
            stream.admit(item)
        stream.flush()
        assert stream.pending == 0
        assert stream.ready == 2

    def test_pop_is_edf_ordered(self):
        stream = StreamingScheduler()
        items = _queued([
            _request(CFG_A, arrival=0.0, slo_ms=900.0),
            _request(CFG_B, arrival=0.0, slo_ms=200.0),
        ])
        for item in items:
            stream.admit(item)
        stream.flush()
        first, second = stream.pop_ready(), stream.pop_ready()
        assert first.config == CFG_B  # tighter deadline wins
        assert second.config == CFG_A
        assert (first.index, second.index) == (0, 1)

    def test_pop_ties_break_by_oldest_arrival(self):
        stream = StreamingScheduler()
        for item in _queued([_request(CFG_A), _request(CFG_B)]):
            stream.admit(item)
        stream.flush()
        assert stream.pop_ready().config == CFG_A

    def test_pop_empty_raises(self):
        with pytest.raises(ConfigError):
            StreamingScheduler().pop_ready()

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            StreamingScheduler(max_batch=0)
        with pytest.raises(ConfigError):
            StreamingScheduler(max_wait=-0.5)
        with pytest.raises(ConfigError):
            StreamingScheduler(max_wait="soon")
        with pytest.raises(ConfigError):
            StreamingScheduler().admit("not queued")


class TestArrivalProcesses:
    def test_poisson_is_seeded_and_monotone(self):
        a = poisson_arrivals(50, rate=100.0, seed=3)
        b = poisson_arrivals(50, rate=100.0, seed=3)
        assert a.tolist() == b.tolist()
        assert all(x <= y for x, y in zip(a, a[1:]))
        assert a[0] > 0.0

    def test_poisson_mean_rate_roughly_holds(self):
        times = poisson_arrivals(2000, rate=100.0, seed=1)
        assert times[-1] == pytest.approx(20.0, rel=0.2)

    def test_bursty_shares_timestamps(self):
        times = bursty_arrivals(16, rate=100.0, burst_size=4, seed=3)
        assert len(set(times.tolist())) == 4
        assert all(x <= y for x, y in zip(times, times[1:]))

    def test_bursty_matches_mean_rate(self):
        fluid = poisson_arrivals(4000, rate=200.0, seed=5)
        spiky = bursty_arrivals(4000, rate=200.0, burst_size=8, seed=5)
        assert spiky[-1] == pytest.approx(fluid[-1], rel=0.3)

    def test_rate_validated(self):
        with pytest.raises(ConfigError):
            poisson_arrivals(5, rate=0.0)
        with pytest.raises(ConfigError):
            bursty_arrivals(5, rate=-2.0)

    def test_streaming_traffic_stamps_requests(self):
        requests = streaming_traffic(
            6, arrival_rate=1000.0, slo_ms=4.0, n_graphs=2, n_nodes=384,
            seed=11, configs=(CFG_A,), graph_kwargs=TINY_GRAPH_KWARGS,
        )
        assert len(requests) == 6
        assert all(r.slo_ms == 4.0 for r in requests)
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0.0

    def test_streaming_traffic_rejects_unknown_process(self):
        with pytest.raises(ConfigError):
            streaming_traffic(4, arrival_rate=10.0, arrival="psychic")


class TestStreamingService:
    def _serve(self, requests, **kwargs):
        kwargs.setdefault("cache", _SHARED_CACHE)
        return serve_requests(requests, **kwargs)

    def test_no_request_starts_before_arrival(self):
        requests = streaming_traffic(
            12, arrival_rate=3000.0, slo_ms=2.0, n_graphs=2, n_nodes=384,
            seed=3, configs=(CFG_A, CFG_B), graph_kwargs=TINY_GRAPH_KWARGS,
        )
        outcome = self._serve(requests, n_workers=2, max_batch=3)
        for result in outcome.results:
            assert result.start_time >= result.arrival_time
            assert result.finish_time > result.start_time

    def test_results_in_arrival_order(self):
        requests = streaming_traffic(
            10, arrival_rate=2000.0, n_graphs=2, n_nodes=384, seed=9,
            configs=(CFG_A,), graph_kwargs=TINY_GRAPH_KWARGS,
        )
        outcome = self._serve(requests, n_workers=2, max_batch=4)
        assert [r.request_id for r in outcome.results] == list(range(10))

    def test_workers_never_overlap_in_simulated_time(self):
        requests = streaming_traffic(
            16, arrival_rate=4000.0, slo_ms=1.0, n_graphs=2, n_nodes=384,
            seed=5, configs=(CFG_A, CFG_B), graph_kwargs=TINY_GRAPH_KWARGS,
        )
        outcome = self._serve(requests, n_workers=2, max_batch=4)
        for worker in outcome.workers:
            spans = sorted(
                (r.start_time, r.finish_time)
                for r in outcome.results if r.worker == worker.index
            )
            for (_, fin), (start, _) in zip(spans, spans[1:]):
                assert start >= fin

    def test_run_is_deterministic(self):
        requests = streaming_traffic(
            12, arrival_rate=2500.0, slo_ms=1.5, n_graphs=2, n_nodes=384,
            seed=21, configs=(CFG_A,), graph_kwargs=TINY_GRAPH_KWARGS,
        )
        first = self._serve(requests, n_workers=2, max_batch=3)
        second = self._serve(requests, n_workers=2, max_batch=3)
        for a, b in zip(first.results, second.results):
            assert a.total_cycles == b.total_cycles
            assert a.start_time == b.start_time
            assert a.finish_time == b.finish_time
            assert a.batch == b.batch and a.worker == b.worker

    def test_cache_changes_nothing_but_wall_cost(self):
        # The invariance guarantee: cached vs uncached runs report
        # identical cycle counts AND identical simulated timelines.
        requests = streaming_traffic(
            12, arrival_rate=2500.0, slo_ms=1.5, n_graphs=2, n_nodes=384,
            seed=13, configs=(CFG_A, CFG_B), graph_kwargs=TINY_GRAPH_KWARGS,
        )
        cold = serve_requests(requests, n_workers=2, cache=None,
                              max_batch=3)
        warm = serve_requests(requests, n_workers=2, cache=True,
                              max_batch=3)
        assert cold.stats.cache_hits == 0
        assert warm.stats.cache_hits > 0
        for a, b in zip(cold.results, warm.results):
            assert a.total_cycles == b.total_cycles
            assert a.utilization == b.utilization
            assert a.start_time == b.start_time
            assert a.finish_time == b.finish_time
        assert cold.latency == warm.latency

    def test_tight_slo_is_reported_missed(self):
        # An SLO shorter than one service time cannot be met; the
        # service must serve the request anyway and report the miss.
        base = self._serve([_request(CFG_A)], n_workers=1)
        service_ms = base.results[0].service_ms
        outcome = self._serve(
            [_request(CFG_A, slo_ms=service_ms / 10.0)], n_workers=1
        )
        assert outcome.results[0].slo_met is False
        assert outcome.latency.slo_requests == 1
        assert outcome.latency.slo_met == 0
        assert outcome.latency.slo_attainment == 0.0

    def test_max_wait_cuts_earlier_than_flush(self):
        # SLO-less requests trickling in: without max_wait the single
        # config group only flushes once the stream ends, so the first
        # request waits for the last arrival; with a small max_wait its
        # batch is sealed (and served) long before that.
        requests = [
            _request(CFG_A, arrival=0.1 * i) for i in range(6)
        ]
        lazy = self._serve(list(requests), n_workers=1)
        eager = self._serve(list(requests), n_workers=1, max_wait=0.05)
        assert eager.results[0].start_time < lazy.results[0].start_time
        assert eager.stats.n_batches > lazy.stats.n_batches

    def test_latency_stats_fold(self):
        outcome = self._serve(
            [_request(CFG_A, slo_ms=10000.0), _request(CFG_A)],
            n_workers=1,
        )
        latency = outcome.latency
        assert isinstance(latency, LatencyStats)
        assert latency.n == 2
        assert latency.slo_requests == 1
        assert latency.slo_attainment == 1.0
        assert latency.p50_ms <= latency.p95_ms <= latency.p99_ms
        assert latency.max_ms >= latency.p99_ms
        assert latency.mean_queue_ms >= 0.0

    def test_each_drain_is_a_fresh_simulation_epoch(self):
        # Instance free_at must not leak across drains: a second drain
        # of instant traffic starts with idle instances, so its
        # queueing delay and makespan match the first drain's exactly.
        from repro.serve import InferenceService

        service = InferenceService(n_workers=1, cache=_SHARED_CACHE)
        outcomes = []
        for _ in range(2):
            service.submit_many([_request(CFG_A), _request(CFG_A)])
            outcomes.append(service.drain())
        first, second = outcomes
        for a, b in zip(first.results, second.results):
            assert b.start_time == a.start_time
            assert b.finish_time == a.finish_time
        assert second.stats.makespan_seconds == (
            first.stats.makespan_seconds
        )

    def test_new_stream_can_start_at_zero_after_drain(self):
        # The queue's monotonicity watermark resets per drain, so a
        # fresh trace whose first arrival predates the previous
        # stream's last one is accepted.
        from repro.serve import InferenceService

        service = InferenceService(n_workers=1, cache=_SHARED_CACHE)
        service.submit(_request(CFG_A, arrival=5.0))
        service.drain()
        service.submit(_request(CFG_A, arrival=0.5))
        outcome = service.drain()
        assert outcome.results[0].start_time >= 0.5

    def test_service_validates_max_wait_eagerly(self):
        from repro.serve import InferenceService

        for bad in (-1.0, math.inf, "fast"):
            with pytest.raises(ConfigError):
                InferenceService(max_wait=bad)

    def test_offline_drain_still_works_through_the_event_loop(self):
        # arrival_time=0 everywhere degenerates to the batch regime.
        outcome = self._serve(
            [_request(CFG_A) for _ in range(4)], n_workers=2
        )
        assert outcome.stats.n_requests == 4
        assert outcome.stats.makespan_seconds > 0.0
        assert outcome.stats.modeled_requests_per_second > 0.0


class TestGoldenLatency:
    """Pinned latency percentiles for one fixed-seed streaming trace.

    Same spirit as ``tests/test_golden_cycles.py``: the trace is fully
    seeded and every scheduling decision runs on the simulated clock,
    so exact (float-deterministic) equality is the right assertion.
    Any legitimate change to admission, batch cutting or dispatch order
    must update these numbers consciously, in the same commit.
    """

    GOLDEN = {
        "p50_ms": 0.20591511947571933,
        "p95_ms": 0.5,
        "p99_ms": 0.5001045472301135,
        "mean_queue_ms": 0.23718951832800925,
        "slo_requests": 24,
        "slo_met": 23,
        "total_cycles": 117315,
        "n_batches": 10,
        "makespan_seconds": 0.004741903713308145,
    }

    def _trace(self):
        return streaming_traffic(
            24, arrival_rate=5000.0, slo_ms=0.5, n_graphs=2, n_nodes=384,
            seed=11, configs=(CFG_A,), graph_kwargs=TINY_GRAPH_KWARGS,
        )

    def _outcome(self, cache):
        return serve_requests(
            self._trace(), n_workers=2, cache=cache, max_batch=4
        )

    @pytest.mark.parametrize("cache", [None, True], ids=["cold", "warm"])
    def test_latency_percentiles_pinned(self, cache):
        latency = self._outcome(cache).latency
        for name in ("p50_ms", "p95_ms", "p99_ms", "mean_queue_ms"):
            assert getattr(latency, name) == pytest.approx(
                self.GOLDEN[name], abs=1e-12
            ), name

    @pytest.mark.parametrize("cache", [None, True], ids=["cold", "warm"])
    def test_slo_attainment_pinned(self, cache):
        latency = self._outcome(cache).latency
        assert latency.slo_requests == self.GOLDEN["slo_requests"]
        assert latency.slo_met == self.GOLDEN["slo_met"]
        assert latency.slo_attainment == pytest.approx(23 / 24, abs=1e-12)

    @pytest.mark.parametrize("cache", [None, True], ids=["cold", "warm"])
    def test_cycles_and_schedule_pinned(self, cache):
        stats = self._outcome(cache).stats
        assert stats.total_cycles == self.GOLDEN["total_cycles"]
        assert stats.n_batches == self.GOLDEN["n_batches"]
        assert stats.makespan_seconds == pytest.approx(
            self.GOLDEN["makespan_seconds"], abs=1e-12
        )


CONFIG_POOL = (CFG_A, CFG_B)
GRAPH_POOL = (SPEC, SPEC2)
SLO_POOL = (None, 0.5, 2.0, 50.0)


@st.composite
def traffic_cases(draw):
    """A randomized streaming scenario with uniform per-config SLOs."""
    n = draw(st.integers(1, 18))
    gaps = draw(st.lists(
        st.floats(0.0, 2e-3, allow_nan=False), min_size=n, max_size=n,
    ))
    config_picks = draw(st.lists(
        st.integers(0, len(CONFIG_POOL) - 1), min_size=n, max_size=n,
    ))
    graph_picks = draw(st.lists(
        st.integers(0, len(GRAPH_POOL) - 1), min_size=n, max_size=n,
    ))
    slo_by_config = [
        draw(st.sampled_from(SLO_POOL)) for _ in CONFIG_POOL
    ]
    requests = []
    now = 0.0
    for gap, c, g in zip(gaps, config_picks, graph_picks):
        now += gap
        requests.append(InferenceRequest(
            graph=GRAPH_POOL[g], config=CONFIG_POOL[c],
            arrival_time=now, slo_ms=slo_by_config[c],
        ))
    max_batch = draw(st.one_of(st.none(), st.integers(1, 4)))
    n_workers = draw(st.integers(1, 3))
    return requests, max_batch, n_workers


class TestFairnessProperties:
    @settings(max_examples=25, deadline=None)
    @given(traffic_cases())
    def test_no_time_travel_and_no_starvation(self, case):
        requests, max_batch, n_workers = case
        outcome = serve_requests(
            list(requests), n_workers=n_workers, cache=_SHARED_CACHE,
            max_batch=max_batch,
        )
        # (c) every request is served — EDF plus end-of-stream flush
        # never starves a config group, even under bursts.
        assert len(outcome.results) == len(requests)
        assert (
            [r.request_id for r in outcome.results]
            == sorted(r.request_id for r in outcome.results)
        )
        for result in outcome.results:
            # (a) no request is served before it arrives.
            assert result.start_time >= result.arrival_time
            assert math.isfinite(result.finish_time)

    @settings(max_examples=25, deadline=None)
    @given(traffic_cases())
    def test_within_batch_arrival_order_preserved(self, case):
        requests, max_batch, n_workers = case
        outcome = serve_requests(
            list(requests), n_workers=n_workers, cache=_SHARED_CACHE,
            max_batch=max_batch,
        )
        by_batch = {}
        for result in outcome.results:
            by_batch.setdefault(result.batch, []).append(result)
        for members in by_batch.values():
            ids = [r.request_id for r in members]
            # (b) members keep arrival order and run back-to-back.
            assert ids == sorted(ids)
            members.sort(key=lambda r: r.request_id)
            for earlier, later in zip(members, members[1:]):
                assert later.start_time == pytest.approx(
                    earlier.finish_time
                )

    @settings(max_examples=25, deadline=None)
    @given(traffic_cases())
    def test_uniform_slo_keeps_config_groups_fifo(self, case):
        # With one SLO per config, deadlines are monotone in arrival,
        # so EDF must *dispatch* each config group in arrival order:
        # batch indices (assigned in dispatch order) never decrease
        # along the group, and members sharing a batch start in arrival
        # order. Start times alone may still interleave across batches
        # — two batches of one config can legitimately run concurrently
        # on different instances of the pool — so only the
        # single-instance pool pins the full start-time ordering.
        requests, max_batch, n_workers = case
        outcome = serve_requests(
            list(requests), n_workers=n_workers, cache=_SHARED_CACHE,
            max_batch=max_batch,
        )
        by_config = {}
        for result, request in zip(outcome.results, requests):
            by_config.setdefault(request.config, []).append(result)
        for members in by_config.values():
            batches = [r.batch for r in members]
            assert batches == sorted(batches)
            for earlier, later in zip(members, members[1:]):
                if earlier.batch == later.batch:
                    assert earlier.start_time <= later.start_time
            if n_workers == 1:
                starts = [r.start_time for r in members]
                assert starts == sorted(starts)
