"""The Eq. 5 remote-switching auto-tuner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.localshare import share_makespan
from repro.accel.remote import RemoteAutoTuner, TrackedTuple
from repro.accel.workload import RowAssignment
from repro.errors import ConfigError


def run_tuner(row_nnz, n_pes, *, hop=0, max_rounds=40, **kwargs):
    """Drive a tuner on a static workload; returns (tuner, assignment)."""
    assignment = RowAssignment(row_nnz, n_pes)
    tuner = RemoteAutoTuner(
        assignment,
        rows_per_pe_equal=max(len(row_nnz) / n_pes, 1.0),
        **kwargs,
    )
    for _ in range(max_rounds):
        if tuner.converged:
            break
        span = share_makespan(assignment.loads, hop)
        tuner.observe_round(span)
    return tuner, assignment


class TestMechanics:
    def test_round_one_only_profiles(self):
        assignment = RowAssignment([10, 1, 1, 1], 4)
        tuner = RemoteAutoTuner(assignment, rows_per_pe_equal=1)
        switched = tuner.observe_round(10)
        assert not switched
        assert tuner.initial_gap == 9

    def test_requires_row_assignment(self):
        with pytest.raises(ConfigError):
            RemoteAutoTuner("nope", rows_per_pe_equal=1)

    def test_bad_rows_per_pe_raises(self):
        assignment = RowAssignment([1, 2], 2)
        with pytest.raises(ConfigError):
            RemoteAutoTuner(assignment, rows_per_pe_equal=0)

    def test_tracking_window_evicts_oldest(self):
        assignment = RowAssignment(np.arange(20), 10)
        tuner = RemoteAutoTuner(
            assignment, rows_per_pe_equal=2, tracking_window=2, patience=50
        )
        for span in (100, 90, 80, 70, 60):
            tuner.observe_round(span)
        assert len(tuner.tracked) <= 2

    def test_balanced_workload_freezes_immediately(self):
        tuner, _ = run_tuner(np.full(16, 3), 4)
        assert tuner.converged
        # No rows should ever move on a flat workload.
        assert all(slot.n_switched == 0 for slot in tuner.tracked)

    def test_converged_tuner_is_noop(self):
        tuner, assignment = run_tuner(np.full(16, 3), 4)
        owner_before = assignment.snapshot()
        assert tuner.observe_round(1) is False
        assert np.array_equal(assignment.snapshot(), owner_before)


class TestConvergence:
    def test_hotspot_workload_improves(self):
        rng = np.random.default_rng(0)
        row_nnz = rng.integers(1, 5, size=128)
        row_nnz[5] = 300  # one super row
        row_nnz[6] = 250
        assignment = RowAssignment(row_nnz, 16)
        gap_before = assignment.loads.max() - assignment.loads.min()
        tuner, assignment = run_tuner(row_nnz, 16)
        gap_after = assignment.loads.max() - assignment.loads.min()
        assert tuner.converged
        assert gap_after < gap_before

    def test_best_configuration_restored(self):
        rng = np.random.default_rng(1)
        row_nnz = rng.integers(0, 10, size=64)
        row_nnz[0] = 200
        assignment = RowAssignment(row_nnz, 8)
        tuner = RemoteAutoTuner(assignment, rows_per_pe_equal=8, patience=2)
        best = None
        for _ in range(30):
            if tuner.converged:
                break
            span = share_makespan(assignment.loads, 0)
            if best is None or span < best:
                best = span
            tuner.observe_round(span)
        final_span = share_makespan(assignment.loads, 0)
        assert final_span <= best

    def test_work_conserved_throughout(self):
        rng = np.random.default_rng(2)
        row_nnz = rng.integers(0, 50, size=100)
        total = row_nnz.sum()
        _tuner, assignment = run_tuner(row_nnz, 10)
        assert assignment.loads.sum() == total
        # every row still owned by exactly one in-range PE
        assert assignment.owner.min() >= 0
        assert assignment.owner.max() < 10

    def test_damping_slows_switching(self):
        rng = np.random.default_rng(3)
        row_nnz = rng.integers(0, 20, size=80)
        row_nnz[3] = 500
        fast, _ = run_tuner(row_nnz, 8, damping=1.0, max_rounds=6, patience=99)
        slow, _ = run_tuner(row_nnz, 8, damping=0.1, max_rounds=6, patience=99)
        moved_fast = sum(s.n_switched for s in fast.tracked)
        moved_slow = sum(s.n_switched for s in slow.tracked)
        assert moved_slow < moved_fast


class TestTrackedTuple:
    def test_key_identity(self):
        slot = TrackedTuple(hot=3, cold=7)
        assert slot.key == (3, 7)


class TestTuningOutcome:
    def test_converged_outcome_snapshot(self, rng):
        row_nnz = rng.integers(0, 40, size=64)
        tuner, assignment = run_tuner(row_nnz, 8)
        outcome = tuner.outcome()
        assert outcome.converged
        assert outcome.converged_round == tuner.converged_round
        assert outcome.rounds_observed == tuner.round_index
        assert np.array_equal(outcome.owner, assignment.snapshot())
        # Warm-up trace covers exactly the pre-freeze rounds.
        assert len(outcome.warmup_makespans) == outcome.converged_round
        assert list(outcome.warmup_makespans) == (
            tuner.makespan_history[:outcome.converged_round]
        )

    def test_unconverged_outcome_keeps_every_round(self, rng):
        row_nnz = rng.integers(0, 40, size=64)
        tuner, _assignment = run_tuner(row_nnz, 8, max_rounds=2)
        if tuner.converged:
            pytest.skip("converged too fast to exercise the branch")
        outcome = tuner.outcome()
        assert not outcome.converged
        assert len(outcome.warmup_makespans) == tuner.round_index


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 30), min_size=8, max_size=60),
    st.integers(2, 8),
)
def test_property_tuning_never_hurts_final_makespan(row_nnz, n_pes):
    """After convergence, the frozen map is never worse than the initial."""
    row_nnz = np.asarray(row_nnz)
    initial = RowAssignment(row_nnz, n_pes)
    initial_span = share_makespan(initial.loads, 0)
    _tuner, tuned = run_tuner(row_nnz, n_pes)
    tuned_span = share_makespan(tuned.loads, 0)
    assert tuned_span <= initial_span
    assert tuned.loads.sum() == row_nnz.sum()


class TestSpeculation:
    """speculate_loads / observe_rounds — the batched-driver surface."""

    def _fresh(self, row_nnz, n_pes):
        assignment = RowAssignment(row_nnz, n_pes)
        tuner = RemoteAutoTuner(
            assignment,
            rows_per_pe_equal=max(len(row_nnz) / n_pes, 1.0),
        )
        return tuner, assignment

    def test_speculation_is_pure(self, rng):
        row_nnz = rng.integers(1, 9, size=64)
        row_nnz[5] = 150
        tuner, assignment = self._fresh(row_nnz, 8)
        owner_before = assignment.snapshot()
        loads_before = assignment.loads.copy()
        matrix = tuner.speculate_loads(6)
        assert matrix.shape[1] == 8
        assert 1 <= matrix.shape[0] <= 6
        assert np.array_equal(assignment.owner, owner_before)
        assert np.array_equal(assignment.loads, loads_before)
        assert tuner.round_index == 0 and not tuner.converged

    def test_first_row_is_current_loads(self, rng):
        row_nnz = rng.integers(1, 9, size=64)
        tuner, assignment = self._fresh(row_nnz, 8)
        matrix = tuner.speculate_loads(4)
        assert np.array_equal(matrix[0], assignment.loads)

    def test_trajectory_matches_real_observations(self, rng):
        # Feeding the speculated rounds' true makespans through
        # observe_round must walk the exact speculated load trajectory.
        row_nnz = rng.integers(0, 10, size=96)
        row_nnz[11] = 220
        tuner, assignment = self._fresh(row_nnz, 12)
        matrix = tuner.speculate_loads(5)
        for k in range(matrix.shape[0]):
            if tuner.converged:
                break
            assert np.array_equal(assignment.loads, matrix[k])
            tuner.observe_round(share_makespan(assignment.loads, 0))

    def test_observe_rounds_stops_at_freeze(self, rng):
        row_nnz = rng.integers(1, 6, size=48)
        row_nnz[0] = 100
        tuner, assignment = self._fresh(row_nnz, 6)
        # Constant makespans stall the tuner into its patience freeze
        # (default patience 2) partway through the batch.
        consumed = tuner.observe_rounds([50, 50, 50, 50, 50, 50])
        assert tuner.converged
        assert consumed == tuner.converged_round
        assert consumed < 6
        # Further batches are no-ops once frozen.
        assert tuner.observe_rounds([40, 40]) == 0

    def test_observe_rounds_matches_observe_round(self, rng):
        row_nnz = rng.integers(0, 10, size=80)
        row_nnz[7] = 180
        batch_tuner, _ = self._fresh(row_nnz, 10)
        loop_tuner, _ = self._fresh(row_nnz, 10)
        makespans = [90, 70, 60, 60, 60, 55]
        consumed = batch_tuner.observe_rounds(makespans)
        for makespan in makespans[:consumed]:
            loop_tuner.observe_round(makespan)
        assert batch_tuner.makespan_history == loop_tuner.makespan_history
        assert batch_tuner.gap_history == loop_tuner.gap_history
        assert batch_tuner.converged == loop_tuner.converged
        assert np.array_equal(
            batch_tuner.assignment.snapshot(),
            loop_tuner.assignment.snapshot(),
        )

    def test_speculation_empty_when_converged_or_no_budget(self, rng):
        row_nnz = rng.integers(1, 5, size=32)
        tuner, _ = self._fresh(row_nnz, 4)
        assert tuner.speculate_loads(0).shape == (0, 4)
        tuner.freeze_now()
        assert tuner.speculate_loads(5).shape == (0, 4)
