"""Format conversions: round trips and the scipy bridge."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import FormatError
from repro.sparse import (
    CooMatrix,
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
    from_scipy,
    to_scipy_csc,
    to_scipy_csr,
)


class TestRoundTrips:
    def test_coo_csr_coo(self, small_coo):
        assert csr_to_coo(coo_to_csr(small_coo)) == small_coo

    def test_coo_csc_coo(self, small_coo):
        assert csc_to_coo(coo_to_csc(small_coo)) == small_coo

    def test_csr_csc_csr(self, small_coo, small_dense):
        csr = coo_to_csr(small_coo)
        back = csc_to_csr(csr_to_csc(csr))
        assert np.array_equal(back.to_dense(), small_dense)

    def test_empty_matrix(self):
        empty = CooMatrix.empty((4, 6))
        assert coo_to_csr(empty).nnz == 0
        assert coo_to_csc(empty).nnz == 0
        assert csr_to_coo(coo_to_csr(empty)) == empty

    def test_single_row_matrix(self):
        coo = CooMatrix((1, 5), [0, 0], [1, 3], [2.0, 4.0])
        assert np.array_equal(
            coo_to_csc(coo).to_dense(), coo.to_dense()
        )

    def test_single_col_matrix(self):
        coo = CooMatrix((5, 1), [1, 3], [0, 0], [2.0, 4.0])
        assert np.array_equal(
            coo_to_csr(coo).to_dense(), coo.to_dense()
        )


class TestScipyBridge:
    def test_from_scipy(self, small_dense):
        mat = sp.csr_matrix(small_dense)
        coo = from_scipy(mat)
        assert np.array_equal(coo.to_dense(), small_dense)

    def test_to_scipy_csr(self, small_coo, small_dense):
        assert np.array_equal(
            to_scipy_csr(small_coo).toarray(), small_dense
        )

    def test_to_scipy_csc_from_csr(self, small_coo, small_dense):
        csr = coo_to_csr(small_coo)
        assert np.array_equal(to_scipy_csc(csr).toarray(), small_dense)

    def test_to_scipy_from_csc(self, small_coo, small_dense):
        csc = coo_to_csc(small_coo)
        assert np.array_equal(to_scipy_csr(csc).toarray(), small_dense)

    def test_from_scipy_rejects_dense(self):
        with pytest.raises(FormatError):
            from_scipy(np.zeros((2, 2)))

    def test_to_scipy_rejects_foreign(self):
        with pytest.raises(FormatError):
            to_scipy_csr("nope")
