"""Cross-validation: the detailed simulator vs the fast cycle model.

The two models share the microarchitecture but differ in fidelity; on
random small matrices their cycle counts must agree within a modest
envelope (transport warm-up, arbitration noise), and their *relative*
verdicts (does sharing help? who is the bottleneck?) must agree exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import ArchConfig, SpmmJob, simulate_spmm
from repro.hw import simulate_spmm_detailed
from repro.sparse import CooMatrix


def build_matrix(rng, n_rows, n_cols, density, hot_rows=0):
    dense = rng.normal(size=(n_rows, n_cols))
    dense[rng.random(dense.shape) > density] = 0.0
    if hot_rows:
        dense[:hot_rows, :] = rng.normal(size=(hot_rows, n_cols))
    return dense


def run_both(dense, k, n_pes, hop, rng):
    a = CooMatrix.from_dense(dense)
    b = rng.normal(size=(dense.shape[1], k))
    _result, detailed = simulate_spmm_detailed(
        a, b, n_pes=n_pes, hop=hop, tdq="tdq2", mac_latency=1
    )
    job = SpmmJob(name="x", row_nnz=a.row_nnz(), n_rounds=k)
    config = ArchConfig(
        n_pes=n_pes, hop=hop, mac_latency=1, drain_cycles=0
    )
    fast = simulate_spmm(job, config)
    return detailed, fast


class TestAgreement:
    @pytest.mark.parametrize("hop", [0, 1, 2])
    def test_cycles_within_envelope(self, rng, hop):
        for _ in range(6):
            dense = build_matrix(rng, 32, 24, 0.25)
            detailed, fast = run_both(dense, 3, 8, hop, rng)
            # The fast model is a lower-bound-style estimate; the
            # detailed engine adds transport latency and arbitration
            # noise. They must stay within ~2x and the detailed run can
            # never beat the fast bound by more than the drain slack.
            assert detailed.cycles >= fast.total_cycles * 0.7
            assert detailed.cycles <= fast.total_cycles * 2.5 + 40 * 3

    def test_relative_sharing_verdict_agrees(self, rng):
        # Realistic MAC depth: the hot PE's RaW stalls build the queue
        # backlog that lets the sharing heuristic engage (see the
        # matching note in test_hw_engine).
        dense = build_matrix(rng, 32, 40, 0.05, hot_rows=4)
        a = CooMatrix.from_dense(dense)
        b = rng.normal(size=(40, 2))
        _r0, detailed_base = simulate_spmm_detailed(
            a, b, n_pes=8, hop=0, mac_latency=5
        )
        _r1, detailed_share = simulate_spmm_detailed(
            a, b, n_pes=8, hop=2, mac_latency=5
        )
        _d, fast_base = run_both(dense, 2, 8, 0, rng)
        _d, fast_share = run_both(dense, 2, 8, 2, rng)
        assert fast_share.total_cycles < fast_base.total_cycles
        assert detailed_share.cycles < detailed_base.cycles

    def test_utilization_direction_agrees(self, rng):
        dense = build_matrix(rng, 32, 40, 0.05, hot_rows=4)
        detailed, fast = run_both(dense, 2, 8, 0, rng)
        assert fast.utilization < 0.75
        assert detailed.utilization < 0.75


@settings(max_examples=12, deadline=None)
@given(
    st.integers(0, 2),
    st.integers(1, 3),
    st.integers(10, 40),
)
def test_property_models_track_each_other(hop, k, seed):
    rng = np.random.default_rng(seed)
    dense = build_matrix(rng, 24, 16, 0.3)
    if not dense.any():
        return
    detailed, fast = run_both(dense, k, 4, hop, rng)
    assert detailed.cycles >= 0.6 * fast.total_cycles
    assert detailed.cycles <= 2.5 * fast.total_cycles + 60 * k
