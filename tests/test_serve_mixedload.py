"""Multi-tenant co-scheduling: oracle identity and scheduling invariants.

Property-test hardening of the serving/cluster seams introduced by the
co-scheduling service (PR 8). Three pillars:

* **off ≡ sequential oracle** — with ``coschedule`` disabled (the
  default), the service must be bit-identical to an explicit
  ``coschedule=False`` run across batch, streaming and sharded traffic:
  same results, same latency trace, same cache entries in the same LRU
  order. The co-scheduling machinery must be invisible until asked for.
* **co-scheduling invariants** — with the flag on: no worker accrues
  more modeled-busy time than the simulated span (the observable
  signature of double-booking a gang member), preemption conserves the
  modeled cycle totals and the set of served work, and per-class SLO
  attainment is monotone in priority.
* **seam units** — the shared-fabric pricing (``background``,
  ``shared_comm_cycles``, ``subtopology`` link-id preservation), the
  :func:`mixed_traffic` generator, and the service's co-scheduling
  parameter validation.

Also pins the EASY-backfill stranding fix (satellite d): freeing
workers are no longer held idle behind a queue head that cannot fit
yet — a smaller sharded job behind the head starts immediately, and
the head still starts at the instant it would have anyway.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.accel import ArchConfig
from repro.cluster import Topology, make_topology, subtopology
from repro.errors import ConfigError
from repro.serve import (
    AutotuneCache,
    InferenceRequest,
    RmatGraphSpec,
    mixed_traffic,
    serve_requests,
    streaming_traffic,
    synthetic_traffic,
)

CFG = ArchConfig(n_pes=16, hop=1, remote_switching=True)
TINY = {"avg_degree": 6, "f1": 16, "f2": 8, "f3": 4}
SMALL = RmatGraphSpec(n_nodes=192, seed=5, **TINY)
BIG = RmatGraphSpec(n_nodes=700, seed=6, **TINY)
TINY_GK = {"f1": 16, "f2": 8, "f3": 4}
TRAFFIC_KW = {
    "n_nodes": 256, "configs": (CFG,), "avg_degree": 6,
    "graph_kwargs": TINY_GK,
}
MIXED_KW = {
    "arrival_rate": 800.0, "chip_capacity": 256, "configs": (CFG,),
    "sharded_nodes": 700, "avg_degree": 6, "graph_kwargs": TINY_GK,
}


def _req(graph=SMALL, arrival=0.0, slo_ms=None, priority=None):
    return InferenceRequest(
        graph=graph, config=CFG, arrival_time=arrival, slo_ms=slo_ms,
        priority=priority,
    )


def _result_key(result):
    """Every deterministic field of one result (``sim_seconds`` is wall
    clock and legitimately varies run to run)."""
    return (
        result.request_id, result.dataset, result.fingerprint,
        result.total_cycles, result.latency_ms, result.utilization,
        result.cache_hit, result.worker, result.batch,
        result.arrival_time, result.start_time, result.finish_time,
        result.slo_ms, result.shed, result.n_shards, result.priority,
        result.preemptions,
    )


def _latency_key(outcome):
    stats = outcome.latency
    return (
        stats.n, stats.p50_ms, stats.p95_ms, stats.p99_ms, stats.mean_ms,
        stats.max_ms, stats.mean_queue_ms, stats.slo_requests,
        stats.slo_met,
    )


def _assert_oracle_identity(requests, **kwargs):
    """Default-flag serving must be bit-identical to an explicit
    ``coschedule=False`` run: results, latency trace, cache LRU order."""
    cache_a, cache_b = AutotuneCache(), AutotuneCache()
    oracle = serve_requests(requests, cache=cache_a, **kwargs)
    off = serve_requests(
        requests, cache=cache_b, coschedule=False, critical_slo_ms=None,
        **kwargs,
    )
    assert [_result_key(r) for r in off.results] == [
        _result_key(r) for r in oracle.results
    ]
    assert _latency_key(off) == _latency_key(oracle)
    assert list(cache_b._entries) == list(cache_a._entries)
    assert cache_b.stats == cache_a.stats
    return oracle, off


class TestOffModeOracle:
    """``coschedule=False`` ≡ the sequential exclusive-gang oracle."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_batch_traffic_identity(self, seed):
        requests = synthetic_traffic(10, seed=seed, **TRAFFIC_KW)
        _assert_oracle_identity(requests, n_workers=2)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000), rate=st.sampled_from([200.0, 2000.0]))
    def test_streaming_traffic_identity(self, seed, rate):
        requests = streaming_traffic(
            12, arrival_rate=rate, slo_ms=8.0, seed=seed, **TRAFFIC_KW
        )
        _assert_oracle_identity(requests, n_workers=2, shed_expired=True)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_sharded_traffic_identity(self, seed):
        kwargs = dict(MIXED_KW)
        kwargs["sharded_fraction"] = 0.4
        requests = mixed_traffic(10, seed=seed, **kwargs)
        assume(any(r.graph.n_nodes > 256 for r in requests))
        _assert_oracle_identity(requests, n_workers=4, chip_capacity=256)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_off_repeat_runs_identical(self, seed):
        requests = mixed_traffic(8, seed=seed, **MIXED_KW)
        first = serve_requests(requests, n_workers=3, chip_capacity=256)
        second = serve_requests(requests, n_workers=3, chip_capacity=256)
        assert [_result_key(r) for r in first.results] == [
            _result_key(r) for r in second.results
        ]

    def test_off_results_carry_no_priority(self):
        requests = mixed_traffic(8, seed=3, **MIXED_KW)
        outcome = serve_requests(requests, n_workers=4, chip_capacity=256)
        assert all(r.priority is None for r in outcome.results)
        assert all(r.preemptions == 0 for r in outcome.results)
        assert outcome.stats.n_preemptions == 0

    def test_critical_slo_requires_coschedule_consistency(self):
        # critical_slo_ms alone (coschedule off) must not change results.
        requests = streaming_traffic(
            10, arrival_rate=500.0, slo_ms=2.0, seed=4, **TRAFFIC_KW
        )
        base = serve_requests(requests, n_workers=2)
        scoped = serve_requests(requests, n_workers=2, critical_slo_ms=1.0)
        assert [_result_key(r) for r in scoped.results] == [
            _result_key(r) for r in base.results
        ]


def _worker_busy_bounded(outcome):
    """No instance accrues more modeled-busy time than the simulated
    span — the observable signature of a double-booked gang member."""
    span = outcome.stats.makespan_seconds
    for worker in outcome.workers:
        assert worker.modeled_busy_seconds <= span + 1e-9, (
            worker.index, worker.modeled_busy_seconds, span
        )


def _served_nodes(outcome):
    return sorted(
        (r.request_id, r.total_cycles, r.n_shards)
        for r in outcome.results if not r.shed
    )


class TestCoscheduleInvariants:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_no_worker_overbooked(self, seed):
        requests = mixed_traffic(10, seed=seed, **MIXED_KW)
        outcome = serve_requests(
            requests, n_workers=4, chip_capacity=256,
            coschedule=True, critical_slo_ms=1.0,
        )
        _worker_busy_bounded(outcome)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_on_serves_same_work_as_off(self, seed):
        requests = mixed_traffic(10, seed=seed, **MIXED_KW)
        off = serve_requests(requests, n_workers=4, chip_capacity=256)
        on = serve_requests(
            requests, n_workers=4, chip_capacity=256,
            coschedule=True, critical_slo_ms=1.0,
        )
        # Work conservation: same requests served, same modeled cycle
        # total per request, same sharded count. Only timelines differ.
        assert _served_nodes(on) == _served_nodes(off)
        assert on.stats.n_sharded == off.stats.n_sharded

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_on_results_carry_priority_class(self, seed):
        requests = mixed_traffic(8, seed=seed, **MIXED_KW)
        outcome = serve_requests(
            requests, n_workers=4, chip_capacity=256,
            coschedule=True, critical_slo_ms=1.0,
        )
        assert all(r.priority in (0, 1, 2) for r in outcome.results)

    def _preemption_pair(self):
        """Two workers, a pool-wide sharded job, then a critical small
        arriving mid-job: the canonical boundary-preemption scenario."""
        requests = [
            _req(graph=RmatGraphSpec(n_nodes=1800, seed=6, **TINY)),
            _req(graph=SMALL, arrival=1e-5, slo_ms=1.0),
        ]
        kwargs = dict(n_workers=2, chip_capacity=1024)
        off = serve_requests(requests, **kwargs)
        on = serve_requests(
            requests, coschedule=True, critical_slo_ms=1.0, **kwargs
        )
        return off, on

    def test_preemption_fires_in_canonical_scenario(self):
        off, on = self._preemption_pair()
        assert off.stats.n_preemptions == 0
        assert on.stats.n_preemptions == 1
        sharded = next(r for r in on.results if r.n_shards > 1)
        assert sharded.preemptions == 1

    def test_preemption_conserves_cycles_and_work(self):
        off, on = self._preemption_pair()
        # The modeled cycle total of every request is untouched by
        # preemption — only the serving timeline stretches.
        assert _served_nodes(on) == _served_nodes(off)
        _worker_busy_bounded(on)

    def test_preemption_helps_the_critical_request(self):
        off, on = self._preemption_pair()
        crit_off = next(r for r in off.results if r.slo_ms is not None)
        crit_on = next(r for r in on.results if r.slo_ms is not None)
        sh_off = next(r for r in off.results if r.n_shards > 1)
        sh_on = next(r for r in on.results if r.n_shards > 1)
        assert crit_on.start_time < crit_off.start_time
        assert sh_on.finish_time >= sh_off.finish_time
        assert sh_on.total_cycles == sh_off.total_cycles

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_slo_attainment_monotone_in_priority(self, seed):
        # Identical work, identical SLOs, explicit classes, one worker:
        # higher-priority classes must reach at-least-as-high SLO
        # attainment (class 0 served before 1 before 2).
        rng = np.random.default_rng(seed)
        classes = rng.integers(0, 3, size=9)
        requests = [
            _req(graph=SMALL, arrival=0.0, slo_ms=3.0, priority=int(cls))
            for cls in classes
        ]
        outcome = serve_requests(
            requests, n_workers=1, max_batch=1,
            coschedule=True, critical_slo_ms=1.0,
        )
        att = {}
        for cls in (0, 1, 2):
            scoped = [r for r in outcome.results if r.priority == cls]
            if scoped:
                att[cls] = (
                    sum(1 for r in scoped if r.slo_met) / len(scoped)
                )
        present = sorted(att)
        for hi, lo in zip(present, present[1:]):
            assert att[hi] >= att[lo], (att, list(classes))


class TestBackfillStranding:
    """Satellite (d): freeing workers must not idle behind a blocked
    queue head — the EASY backfill screen dispatches a smaller sharded
    job immediately, without delaying the head's start."""

    def _scenario(self, **kwargs):
        # 4 workers x 256 rows. A (400 rows -> 2 chips) and B (700 rows
        # -> 3 chips) arrive at t=0; B is the head-of-line once A holds
        # workers 0-1 and cannot fit on the 2 free workers. C (300 rows
        # -> 2 chips) fits on the free pair right now.
        graphs = {
            "A": RmatGraphSpec(n_nodes=400, seed=11, **TINY),
            "B": RmatGraphSpec(n_nodes=700, seed=12, **TINY),
            "C": RmatGraphSpec(n_nodes=300, seed=13, **TINY),
        }
        requests = [
            InferenceRequest(
                graph=graphs[name], config=CFG, arrival_time=0.0,
                request_id=name,
            )
            for name in ("A", "B", "C")
        ]
        outcome = serve_requests(
            requests, n_workers=4, chip_capacity=256, **kwargs
        )
        return {r.request_id: r for r in outcome.results}, outcome.stats

    def test_backfill_starts_small_job_immediately(self):
        by_id, stats = self._scenario()
        assert by_id["C"].start_time == 0.0
        assert stats.n_backfilled == 1

    def test_backfill_does_not_delay_the_head(self):
        by_id, _ = self._scenario()
        # B starts the instant A's gang frees — exactly when it would
        # have with C waiting behind it.
        assert by_id["B"].start_time == by_id["A"].finish_time

    def test_backfill_fires_identically_under_coschedule(self):
        plain, stats_plain = self._scenario()
        co, stats_co = self._scenario(coschedule=True)
        assert stats_co.n_backfilled == stats_plain.n_backfilled == 1
        for name in ("A", "B", "C"):
            assert co[name].start_time == plain[name].start_time
            assert co[name].total_cycles == plain[name].total_cycles


class TestFabricSharing:
    """The shared-fabric seam: background pricing and subtopologies."""

    @settings(max_examples=20, deadline=None)
    @given(
        kind=st.sampled_from(["all-to-all", "ring", "mesh2d"]),
        n=st.integers(2, 6),
        seed=st.integers(0, 10_000),
    )
    def test_shared_single_job_equals_exclusive(self, kind, n, seed):
        topo = make_topology(kind, n)
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 500, size=(n, n)).astype(np.float64)
        np.fill_diagonal(words, 0.0)
        (shared,) = topo.shared_comm_cycles([words])
        assert np.array_equal(shared, topo.comm_cycles(words))

    @settings(max_examples=20, deadline=None)
    @given(
        kind=st.sampled_from(["all-to-all", "ring", "mesh2d"]),
        seed=st.integers(0, 10_000),
    )
    def test_background_never_speeds_anything_up(self, kind, seed):
        topo = make_topology(kind, 4)
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 500, size=(4, 4)).astype(np.float64)
        np.fill_diagonal(words, 0.0)
        background = rng.integers(0, 300, size=max(topo.n_links, 1))
        alone = topo.comm_cycles(words)
        contended = topo.comm_cycles(
            words, background=background.astype(np.float64)
        )
        assert np.all(contended >= alone)

    def test_zero_background_is_exact_identity(self):
        topo = make_topology("ring", 5)
        words = np.full((5, 5), 64.0)
        np.fill_diagonal(words, 0.0)
        zeros = np.zeros(max(topo.n_links, 1))
        assert np.array_equal(
            topo.comm_cycles(words, background=zeros),
            topo.comm_cycles(words),
        )

    def test_background_validation(self):
        topo = make_topology("ring", 4)
        words = np.zeros((4, 4))
        with pytest.raises(ConfigError):
            topo.comm_cycles(words, background=np.zeros(3))
        with pytest.raises(ConfigError):
            topo.comm_cycles(
                words, background=np.full(max(topo.n_links, 1), -1.0)
            )
        with pytest.raises(ConfigError):
            topo.comm_cycles(
                words, background=np.full(max(topo.n_links, 1), math.nan)
            )

    @settings(max_examples=20, deadline=None)
    @given(
        kind=st.sampled_from(["all-to-all", "ring", "mesh2d"]),
        data=st.data(),
    )
    def test_subtopology_preserves_pool_link_ids(self, kind, data):
        pool = make_topology(kind, 6)
        chips = data.draw(
            st.lists(
                st.integers(0, 5), min_size=2, max_size=4, unique=True
            )
        )
        sub = subtopology(pool, chips)
        assert sub.n_links == pool.n_links
        assert sub.n_chips == len(chips)
        for i, src in enumerate(chips):
            for j, dst in enumerate(chips):
                assert sub.routes[j][i] == pool.routes[dst][src]

    def test_subtopology_validation(self):
        pool = make_topology("ring", 4)
        with pytest.raises(ConfigError):
            subtopology(pool, [])
        with pytest.raises(ConfigError):
            subtopology(pool, [0, 0])
        with pytest.raises(ConfigError):
            subtopology(pool, [0, 4])
        with pytest.raises(ConfigError):
            subtopology("ring", [0, 1])

    def test_sum_of_gang_loads_is_pool_background(self):
        # Two gangs on one pool: each gang's link loads live in the
        # pool's link-id space, so summing them yields a well-formed
        # background for a third tenant.
        pool = make_topology("mesh2d", 6)
        sub_a, sub_b = subtopology(pool, [0, 1, 2]), subtopology(pool, [3, 5])
        words_a = np.full((3, 3), 32.0)
        np.fill_diagonal(words_a, 0.0)
        words_b = np.full((2, 2), 16.0)
        np.fill_diagonal(words_b, 0.0)
        total = sub_a.link_loads(words_a) + sub_b.link_loads(words_b)
        assert total.shape == (max(pool.n_links, 1),)
        assert np.all(np.isfinite(total)) and np.all(total >= 0)
        # ...and that background prices without error on the pool.
        pool_words = np.full((6, 6), 8.0)
        np.fill_diagonal(pool_words, 0.0)
        assert np.all(
            pool.comm_cycles(pool_words, background=total)
            >= pool.comm_cycles(pool_words)
        )


class TestMixedTraffic:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_deterministic_per_seed(self, seed):
        def trace():
            return [
                (r.graph, r.arrival_time, r.slo_ms, r.priority)
                for r in mixed_traffic(20, seed=seed, **MIXED_KW)
            ]

        assert trace() == trace()

    def test_composition_and_sizing(self):
        requests = mixed_traffic(
            60, arrival_rate=500.0, chip_capacity=256, seed=9,
            critical_fraction=0.3, sharded_fraction=0.2,
            critical_slo_ms=1.0, batch_slo_ms=20.0,
            avg_degree=6, graph_kwargs=TINY_GK,
        )
        assert len(requests) == 60
        critical = [r for r in requests if r.slo_ms == 1.0]
        sharded = [r for r in requests if r.graph.n_nodes > 256]
        batch = [r for r in requests if r.slo_ms == 20.0]
        assert critical and sharded and batch
        assert all(r.graph.n_nodes <= 256 for r in critical)
        assert all(
            r.priority_class(1.0) == 0 for r in critical
        )

    def test_arrivals_sorted_and_non_negative(self):
        requests = mixed_traffic(30, seed=2, **MIXED_KW)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)

    def test_fraction_validation(self):
        for bad in ({"critical_fraction": -0.1},
                    {"sharded_fraction": 1.5},
                    {"critical_fraction": 0.7, "sharded_fraction": 0.6}):
            kwargs = dict(MIXED_KW)
            kwargs.update(bad)
            with pytest.raises(ConfigError):
                mixed_traffic(10, **kwargs)

    def test_sharded_nodes_must_exceed_capacity(self):
        kwargs = dict(MIXED_KW)
        kwargs["sharded_nodes"] = 256
        with pytest.raises(ConfigError):
            mixed_traffic(10, **kwargs)


class TestPriorityClassification:
    @settings(max_examples=30, deadline=None)
    @given(slo=st.one_of(st.none(), st.floats(0.01, 100.0)))
    def test_derived_class(self, slo):
        request = _req(slo_ms=slo)
        if slo is None:
            assert request.priority_class(1.0) == 2
        elif slo <= 1.0:
            assert request.priority_class(1.0) == 0
        else:
            assert request.priority_class(1.0) == 1
        # Without a critical threshold there is no class 0.
        assert request.priority_class() == (2 if slo is None else 1)

    @settings(max_examples=20, deadline=None)
    @given(
        explicit=st.integers(0, 5),
        slo=st.one_of(st.none(), st.floats(0.01, 100.0)),
    )
    def test_explicit_priority_wins(self, explicit, slo):
        request = _req(slo_ms=slo, priority=explicit)
        assert request.priority_class(1.0) == explicit

    def test_priority_validation(self):
        for bad in (-1, 1.5, "high"):
            with pytest.raises(ConfigError):
                _req(priority=bad)


class TestServiceValidation:
    def test_critical_slo_ms_must_be_positive_finite(self):
        for bad in (0.0, -1.0, math.inf, math.nan, "fast"):
            with pytest.raises(ConfigError):
                serve_requests([_req()], critical_slo_ms=bad)

    def test_coschedule_rejects_prebuilt_topology(self):
        topo = make_topology("ring", 4)
        with pytest.raises(ConfigError):
            serve_requests(
                [_req(graph=BIG)], n_workers=4, chip_capacity=256,
                coschedule=True, cluster_options={"topology": topo},
            )

    def test_background_link_loads_is_reserved(self):
        with pytest.raises(ConfigError):
            serve_requests(
                [_req(graph=BIG)], n_workers=4, chip_capacity=256,
                cluster_options={"background_link_loads": (1.0,)},
            )
