"""The CLB area model (Fig. 14 K-O)."""

import pytest

from repro.accel import ArchConfig, GcnAccelerator
from repro.accel.resources import (
    LOCAL_SHARING_OVERHEAD,
    REMOTE_SWITCHING_OVERHEAD,
    estimate_resources,
    report_tq_depth,
    report_tq_slots,
)
from repro.errors import ConfigError


class TestEstimate:
    def test_breakdown_sums(self):
        res = estimate_resources(ArchConfig(n_pes=64), tq_depth=100)
        assert res.total_clb == pytest.approx(
            res.pe_array_clb
            + res.network_clb
            + res.acc_clb
            + res.rebalance_clb
            + res.tq_clb
        )

    def test_baseline_has_no_rebalance_area(self):
        res = estimate_resources(
            ArchConfig(n_pes=64, hop=0, remote_switching=False), tq_depth=10
        )
        assert res.rebalance_clb == 0.0

    def test_published_overhead_fractions(self):
        base = estimate_resources(ArchConfig(n_pes=64, hop=0), tq_depth=0)
        one_hop = estimate_resources(ArchConfig(n_pes=64, hop=1), tq_depth=0)
        overhead = one_hop.rebalance_clb / base.other_clb
        assert overhead == pytest.approx(LOCAL_SHARING_OVERHEAD[1], rel=0.01)

    def test_remote_adds_published_fraction(self):
        local = estimate_resources(ArchConfig(n_pes=64, hop=1), tq_depth=0)
        both = estimate_resources(
            ArchConfig(n_pes=64, hop=1, remote_switching=True), tq_depth=0
        )
        delta = (both.rebalance_clb - local.rebalance_clb) / (
            local.pe_array_clb + local.network_clb + local.acc_clb
        )
        assert delta == pytest.approx(REMOTE_SWITCHING_OVERHEAD, rel=0.01)

    def test_hop_beyond_three_extrapolates(self):
        res3 = estimate_resources(ArchConfig(n_pes=64, hop=3), tq_depth=0)
        res4 = estimate_resources(ArchConfig(n_pes=64, hop=4), tq_depth=0)
        assert res4.rebalance_clb > res3.rebalance_clb

    def test_tq_area_scales_with_depth(self):
        small = estimate_resources(ArchConfig(n_pes=64), tq_depth=10)
        large = estimate_resources(ArchConfig(n_pes=64), tq_depth=10_000)
        assert large.tq_clb > 50 * small.tq_clb

    def test_negative_depth_raises(self):
        with pytest.raises(ConfigError):
            estimate_resources(ArchConfig(), tq_depth=-1)

    def test_tq_fraction(self):
        res = estimate_resources(ArchConfig(n_pes=64), tq_depth=100)
        assert 0 < res.tq_fraction < 1


class TestReportHelpers:
    def test_depth_and_slots_from_report(self, tiny_nell):
        report = GcnAccelerator(tiny_nell, ArchConfig(n_pes=16)).run()
        depth = report_tq_depth(report)
        slots = report_tq_slots(report)
        assert depth >= 0
        assert slots >= depth

    def test_rebalancing_shrinks_tq_depth(self, tiny_nell):
        base = GcnAccelerator(
            tiny_nell, ArchConfig(n_pes=16, hop=0)
        ).run()
        tuned = GcnAccelerator(
            tiny_nell,
            ArchConfig(n_pes=16, hop=2, remote_switching=True),
        ).run()
        assert report_tq_depth(tuned) < report_tq_depth(base)
