"""Robustness: degenerate inputs and failure injection across the stack."""

import numpy as np
import pytest

from repro.accel import ArchConfig, GcnAccelerator, SpmmJob, simulate_spmm
from repro.accel.localshare import share_makespan
from repro.accel.workload import RowAssignment
from repro.datasets import gcn_normalize
from repro.hw import simulate_spmm_detailed
from repro.hw.queues import TaskQueue
from repro.hw.task import Task
from repro.model import GcnModel
from repro.sparse import CooMatrix


class TestDegenerateGraphs:
    def test_single_node_graph(self, rng):
        adjacency = gcn_normalize(CooMatrix.empty((1, 1)))
        model = GcnModel(adjacency, [rng.normal(size=(4, 2))])
        trace = model.forward(rng.normal(size=(1, 4)))
        assert trace.probabilities.shape == (1, 2)

    def test_disconnected_graph(self, rng):
        # Two components; the normalized matrix is block diagonal.
        dense = np.zeros((6, 6))
        dense[0, 1] = dense[1, 0] = 1.0
        dense[4, 5] = dense[5, 4] = 1.0
        adjacency = gcn_normalize(CooMatrix.from_dense(dense))
        model = GcnModel(adjacency, [rng.normal(size=(3, 2))])
        trace = model.forward(rng.normal(size=(6, 3)))
        assert np.isfinite(trace.probabilities).all()

    def test_empty_feature_rows(self, rng):
        dense = np.zeros((5, 5))
        dense[0, 1] = dense[1, 0] = 1.0
        adjacency = gcn_normalize(CooMatrix.from_dense(dense))
        features = CooMatrix.empty((5, 3))
        model = GcnModel(adjacency, [rng.normal(size=(3, 2))])
        trace = model.forward(features)
        # All-zero input: softmax of zero logits is uniform.
        assert np.allclose(trace.probabilities, 0.5)

    def test_all_zero_row_nnz_job(self):
        # An SPMM whose sparse operand is empty still terminates.
        job = SpmmJob(name="z", row_nnz=np.zeros(16, dtype=int), n_rounds=3)
        result = simulate_spmm(job, ArchConfig(n_pes=4))
        assert result.total_work == 0
        assert result.total_cycles >= 0

    def test_more_pes_than_rows(self):
        job = SpmmJob(name="j", row_nnz=[3, 2, 1], n_rounds=2)
        result = simulate_spmm(job, ArchConfig(n_pes=64))
        assert 0 < result.utilization <= 1.0


class TestExtremeConfigs:
    def test_hop_larger_than_array(self):
        loads = np.array([10, 0, 0, 0])
        assert share_makespan(loads, hop=100) == 3  # ceil(10/4)

    def test_single_pe(self):
        job = SpmmJob(name="j", row_nnz=[5, 5], n_rounds=2)
        result = simulate_spmm(job, ArchConfig(n_pes=1, hop=1))
        assert result.utilization > 0.2

    def test_remote_switching_single_pe(self):
        job = SpmmJob(name="j", row_nnz=[5, 5], n_rounds=4)
        result = simulate_spmm(
            job, ArchConfig(n_pes=1, remote_switching=True)
        )
        assert result.total_cycles > 0

    def test_huge_single_row(self):
        row_nnz = np.zeros(32, dtype=int)
        row_nnz[0] = 10_000
        job = SpmmJob(name="hub", row_nnz=row_nnz, n_rounds=2)
        for hop in (0, 1, 3):
            result = simulate_spmm(job, ArchConfig(n_pes=32, hop=hop))
            # A single atomic row bounds the makespan by its share of
            # the neighbourhood, never below ideal.
            assert result.cycles_per_round[0] >= 10_000 // (2 * hop + 1)


class TestBackPressure:
    def test_bounded_queue_rejects_when_full(self):
        queue = TaskQueue(capacity=2)
        task = Task(row=0, a_val=1.0, b_val=1.0, owner=0)
        assert queue.push(task) and queue.push(task)
        assert not queue.push(task)
        queue.pop()
        assert queue.push(task)

    def test_detailed_engine_with_tiny_network_buffers(self, rng):
        # Buffer depth 1 forces constant back-pressure; the round must
        # still complete with exact numerics.
        dense = rng.normal(size=(16, 12))
        dense[rng.random(dense.shape) > 0.4] = 0.0
        a = CooMatrix.from_dense(dense)
        b = rng.normal(size=(12, 2))
        result, stats = simulate_spmm_detailed(
            a, b, n_pes=8, buffer_depth=1
        )
        assert np.allclose(result, dense @ b)
        assert stats.cycles > 0

    def test_assignment_rejects_foreign_rows(self):
        asg = RowAssignment([1, 2, 3], 2)
        with pytest.raises(IndexError):
            asg.move_rows([99], 0)


class TestAcceleratorEdgeCases:
    def test_tiny_dataset_many_pes(self, tiny_cora):
        report = GcnAccelerator(tiny_cora, ArchConfig(n_pes=1024)).run()
        assert report.total_cycles > 0
        assert report.utilization <= 1.0

    def test_zero_drain_config(self, tiny_cora):
        report = GcnAccelerator(
            tiny_cora, ArchConfig(n_pes=16, drain_cycles=0)
        ).run()
        assert report.total_cycles * 16 >= report.total_work

    def test_sharing_efficiency_penalty(self, tiny_nell):
        ideal = GcnAccelerator(
            tiny_nell, ArchConfig(n_pes=16, hop=2, sharing_efficiency=1.0)
        ).run()
        lossy = GcnAccelerator(
            tiny_nell, ArchConfig(n_pes=16, hop=2, sharing_efficiency=0.7)
        ).run()
        assert lossy.total_cycles >= ideal.total_cycles
