"""Local-sharing makespan bound: exactness and achievability.

The bound is cross-checked against a brute-force evaluation of every
window (the Hall certificate) and the EDF transport construction proves
achievability — together they pin the bound from both sides.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.localshare import (
    share_effective_loads,
    share_makespan,
    share_window_bounds,
)
from repro.errors import ConfigError


def brute_force_bound(loads, hop):
    """max over all windows of ceil(work / receivers)."""
    n = len(loads)
    best = 0
    prefix = np.concatenate(([0], np.cumsum(loads)))
    for i in range(n):
        for j in range(i, n):
            work = prefix[j + 1] - prefix[i]
            receivers = min(n - 1, j + hop) - max(0, i - hop) + 1
            best = max(best, -(-int(work) // receivers))
    return best


class TestBasicCases:
    def test_hop_zero_is_max(self):
        assert share_makespan([5, 1, 9, 2], 0) == 9

    def test_uniform_loads_unchanged(self):
        assert share_makespan([4, 4, 4, 4], 2) == 4

    def test_single_hot_pe_spreads(self):
        # 30 units on one of 7 PEs: 1-hop -> 3 receivers.
        loads = [0, 0, 0, 30, 0, 0, 0]
        assert share_makespan(loads, 1) == 10
        assert share_makespan(loads, 2) == 6
        assert share_makespan(loads, 3) == -(-30 // 7)

    def test_boundary_pe_has_fewer_receivers(self):
        loads = [30, 0, 0, 0, 0, 0, 0]
        assert share_makespan(loads, 1) == 15  # only PEs 0 and 1

    def test_total_over_pes_lower_bound(self):
        loads = [10, 10, 10, 10]
        assert share_makespan(loads, 3) == 10

    def test_single_pe(self):
        assert share_makespan([7], 2) == 7

    def test_efficiency_inflates(self):
        loads = [0, 0, 30, 0, 0]
        ideal = share_makespan(loads, 1)
        lossy = share_makespan(loads, 1, efficiency=0.5)
        assert lossy == 2 * ideal

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            share_makespan([], 1)

    def test_negative_hop_raises(self):
        with pytest.raises(ConfigError):
            share_makespan([1], -1)

    def test_bad_efficiency_raises(self):
        with pytest.raises(ConfigError):
            share_makespan([1], 1, efficiency=0.0)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("hop", [0, 1, 2, 3])
    def test_random_instances(self, hop, rng):
        for _ in range(40):
            n = int(rng.integers(1, 24))
            loads = rng.integers(0, 40, size=n)
            if rng.random() < 0.4:
                loads[rng.integers(0, n)] += int(rng.integers(100, 500))
            assert share_makespan(loads, hop) == brute_force_bound(loads, hop)

    def test_window_bounds_components(self):
        loads = np.array([100, 0, 0, 0, 50, 0])
        interior, prefix, suffix = share_window_bounds(loads, 1)
        assert max(interior, prefix, suffix) == brute_force_bound(loads, 1)


class TestEffectiveLoads:
    def test_conservation_and_cap(self, rng):
        for _ in range(30):
            n = int(rng.integers(1, 30))
            hop = int(rng.integers(0, 4))
            loads = rng.integers(0, 60, size=n)
            cap = share_makespan(loads, hop)
            effective = share_effective_loads(loads, hop)
            assert effective.sum() == pytest.approx(float(loads.sum()))
            assert effective.max() <= cap + 1e-9

    def test_hop_zero_identity(self):
        loads = np.array([3, 7, 1])
        assert np.allclose(share_effective_loads(loads, 0), loads)

    def test_locality_respected(self):
        # Work can only appear within hop distance of some original owner.
        loads = np.array([0, 0, 0, 0, 0, 0, 50, 0, 0, 0, 0, 0, 0])
        effective = share_effective_loads(loads, 2)
        outside = np.concatenate([effective[:4], effective[9:]])
        assert np.all(outside == 0)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(0, 100), min_size=1, max_size=20),
    st.integers(0, 4),
)
def test_property_bound_matches_brute_force(loads, hop):
    assert share_makespan(loads, hop) == brute_force_bound(loads, hop)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 100), min_size=1, max_size=16),
    st.integers(0, 3),
)
def test_property_construction_achieves_bound(loads, hop):
    loads = np.asarray(loads)
    cap = share_makespan(loads, hop)
    effective = share_effective_loads(loads, hop)
    assert effective.sum() == pytest.approx(float(loads.sum()))
    assert effective.max() <= cap + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 50), min_size=2, max_size=16),
    st.integers(0, 3),
)
def test_property_monotone_in_hop(loads, hop):
    # More hops can never make the makespan worse.
    assert share_makespan(loads, hop + 1) <= share_makespan(loads, hop)
