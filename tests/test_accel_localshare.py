"""Local-sharing makespan bound: exactness and achievability.

The bound is cross-checked against a brute-force evaluation of every
window (the Hall certificate) and the EDF transport construction proves
achievability — together they pin the bound from both sides.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.accel.localshare
from repro.accel.localshare import (
    _share_effective_loads_reference,
    share_effective_loads,
    share_makespan,
    share_makespan_batch,
    share_window_bounds,
    share_window_bounds_batch,
)
from repro.errors import ConfigError


def brute_force_bound(loads, hop):
    """max over all windows of ceil(work / receivers)."""
    n = len(loads)
    best = 0
    prefix = np.concatenate(([0], np.cumsum(loads)))
    for i in range(n):
        for j in range(i, n):
            work = prefix[j + 1] - prefix[i]
            receivers = min(n - 1, j + hop) - max(0, i - hop) + 1
            best = max(best, -(-int(work) // receivers))
    return best


class TestBasicCases:
    def test_hop_zero_is_max(self):
        assert share_makespan([5, 1, 9, 2], 0) == 9

    def test_uniform_loads_unchanged(self):
        assert share_makespan([4, 4, 4, 4], 2) == 4

    def test_single_hot_pe_spreads(self):
        # 30 units on one of 7 PEs: 1-hop -> 3 receivers.
        loads = [0, 0, 0, 30, 0, 0, 0]
        assert share_makespan(loads, 1) == 10
        assert share_makespan(loads, 2) == 6
        assert share_makespan(loads, 3) == -(-30 // 7)

    def test_boundary_pe_has_fewer_receivers(self):
        loads = [30, 0, 0, 0, 0, 0, 0]
        assert share_makespan(loads, 1) == 15  # only PEs 0 and 1

    def test_total_over_pes_lower_bound(self):
        loads = [10, 10, 10, 10]
        assert share_makespan(loads, 3) == 10

    def test_single_pe(self):
        assert share_makespan([7], 2) == 7

    def test_efficiency_inflates(self):
        loads = [0, 0, 30, 0, 0]
        ideal = share_makespan(loads, 1)
        lossy = share_makespan(loads, 1, efficiency=0.5)
        assert lossy == 2 * ideal

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            share_makespan([], 1)

    def test_negative_hop_raises(self):
        with pytest.raises(ConfigError):
            share_makespan([1], -1)

    def test_bad_efficiency_raises(self):
        with pytest.raises(ConfigError):
            share_makespan([1], 1, efficiency=0.0)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("hop", [0, 1, 2, 3])
    def test_random_instances(self, hop, rng):
        for _ in range(40):
            n = int(rng.integers(1, 24))
            loads = rng.integers(0, 40, size=n)
            if rng.random() < 0.4:
                loads[rng.integers(0, n)] += int(rng.integers(100, 500))
            assert share_makespan(loads, hop) == brute_force_bound(loads, hop)

    def test_window_bounds_components(self):
        loads = np.array([100, 0, 0, 0, 50, 0])
        interior, prefix, suffix = share_window_bounds(loads, 1)
        assert max(interior, prefix, suffix) == brute_force_bound(loads, 1)


class TestEffectiveLoads:
    def test_conservation_and_cap(self, rng):
        for _ in range(30):
            n = int(rng.integers(1, 30))
            hop = int(rng.integers(0, 4))
            loads = rng.integers(0, 60, size=n)
            cap = share_makespan(loads, hop)
            effective = share_effective_loads(loads, hop)
            assert effective.sum() == pytest.approx(float(loads.sum()))
            assert effective.max() <= cap + 1e-9

    def test_hop_zero_identity(self):
        loads = np.array([3, 7, 1])
        assert np.allclose(share_effective_loads(loads, 0), loads)

    def test_locality_respected(self):
        # Work can only appear within hop distance of some original owner.
        loads = np.array([0, 0, 0, 0, 0, 0, 50, 0, 0, 0, 0, 0, 0])
        effective = share_effective_loads(loads, 2)
        outside = np.concatenate([effective[:4], effective[9:]])
        assert np.all(outside == 0)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(0, 100), min_size=1, max_size=20),
    st.integers(0, 4),
)
def test_property_bound_matches_brute_force(loads, hop):
    assert share_makespan(loads, hop) == brute_force_bound(loads, hop)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 100), min_size=1, max_size=16),
    st.integers(0, 3),
)
def test_property_construction_achieves_bound(loads, hop):
    loads = np.asarray(loads)
    cap = share_makespan(loads, hop)
    effective = share_effective_loads(loads, hop)
    assert effective.sum() == pytest.approx(float(loads.sum()))
    assert effective.max() <= cap + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 50), min_size=2, max_size=16),
    st.integers(0, 3),
)
def test_property_monotone_in_hop(loads, hop):
    # More hops can never make the makespan worse.
    assert share_makespan(loads, hop + 1) <= share_makespan(loads, hop)


class TestCapValidation:
    """A caller-supplied cap must equal the Hall bound — no silent trust."""

    def test_exact_cap_accepted(self):
        loads = np.array([0, 0, 30, 0, 0, 7, 1])
        cap = share_makespan(loads, 1)
        expected = share_effective_loads(loads, 1)
        assert np.array_equal(
            share_effective_loads(loads, 1, cap=cap), expected
        )

    def test_float_cap_within_tolerance_accepted(self):
        loads = np.array([0, 0, 30, 0, 0])
        cap = share_makespan(loads, 1)
        share_effective_loads(loads, 1, cap=cap + 5e-10)

    @pytest.mark.parametrize("delta", [-1, 1, 7, 0.5])
    def test_wrong_cap_raises(self, delta):
        loads = np.array([4, 0, 30, 2, 0, 0, 9])
        cap = share_makespan(loads, 2) + delta
        with pytest.raises(ConfigError):
            share_effective_loads(loads, 2, cap=cap)

    def test_negative_and_non_numeric_cap_raise(self):
        loads = np.array([1, 2, 3])
        with pytest.raises(ConfigError):
            share_effective_loads(loads, 1, cap=-1)
        with pytest.raises(ConfigError):
            share_effective_loads(loads, 1, cap="big")

    def test_zero_cap_only_for_zero_loads(self):
        assert np.array_equal(
            share_effective_loads(np.zeros(4, dtype=int), 1, cap=0),
            np.zeros(4),
        )
        with pytest.raises(ConfigError):
            share_effective_loads(np.array([0, 1, 0]), 1, cap=0)


class TestVectorizedAgainstReference:
    """The NumPy sweep must reproduce the retired heap EDF exactly."""

    def test_reference_is_heap_based(self, rng):
        # Elementwise identity on a skewed instance, both cap modes.
        loads = rng.integers(0, 50, size=40)
        loads[7] += 1000
        for hop in (0, 1, 3):
            cap = share_makespan(loads, hop)
            ref = _share_effective_loads_reference(loads, hop)
            assert np.array_equal(share_effective_loads(loads, hop), ref)
            assert np.array_equal(
                share_effective_loads(loads, hop, cap=cap), ref
            )

    def test_infeasible_cap_fails_both(self):
        loads = np.array([0, 0, 50, 0, 0])
        bad = share_makespan(loads, 1) - 1
        with pytest.raises(AssertionError):
            _share_effective_loads_reference(loads, 1, cap=bad)
        with pytest.raises(ConfigError):
            share_effective_loads(loads, 1, cap=bad)


@settings(max_examples=120, deadline=None)
@given(
    st.lists(st.integers(0, 200), min_size=1, max_size=40),
    st.integers(0, 5),
    st.booleans(),
)
def test_property_vectorized_equals_reference(loads, hop, pass_cap):
    """Elementwise equality + conservation + feasibility, random inputs.

    Runs both with the Hall bound recomputed internally and with it
    passed as ``cap`` (the cycle model's hot-path contract).
    """
    loads = np.asarray(loads)
    cap = share_makespan(loads, hop)
    reference = _share_effective_loads_reference(loads, hop)
    effective = (
        share_effective_loads(loads, hop, cap=cap)
        if pass_cap else share_effective_loads(loads, hop)
    )
    assert np.array_equal(effective, reference)
    assert effective.sum() == pytest.approx(float(loads.sum()))
    assert effective.max() <= cap + 1e-9
    assert effective.min() >= 0.0


class TestBatchedKernel:
    """share_makespan_batch rows must match the scalar entry point."""

    def test_rows_match_scalar(self, rng):
        for _ in range(20):
            n_rounds = int(rng.integers(1, 8))
            n = int(rng.integers(1, 40))
            hop = int(rng.integers(0, 5))
            matrix = rng.integers(0, 300, size=(n_rounds, n))
            batch = share_makespan_batch(matrix, hop)
            assert batch.dtype == np.int64
            assert list(batch) == [
                share_makespan(matrix[r], hop) for r in range(n_rounds)
            ]

    def test_efficiency_forwarded(self):
        matrix = np.array([[0, 30, 0], [10, 10, 10]])
        lossy = share_makespan_batch(matrix, 1, efficiency=0.5)
        assert list(lossy) == [
            share_makespan(matrix[0], 1, efficiency=0.5),
            share_makespan(matrix[1], 1, efficiency=0.5),
        ]

    def test_empty_batch_allowed(self):
        assert share_makespan_batch(np.zeros((0, 5), dtype=int), 1).size == 0

    def test_zero_pes_rejected(self):
        with pytest.raises(ConfigError):
            share_makespan_batch(np.zeros((2, 0), dtype=int), 1)

    def test_bad_hop_and_efficiency_rejected(self):
        with pytest.raises(ConfigError):
            share_makespan_batch(np.ones((1, 3), dtype=int), -1)
        with pytest.raises(ConfigError):
            share_makespan_batch(np.ones((1, 3), dtype=int), 1,
                                 efficiency=0.0)

    def test_window_bounds_batch_max_matches_brute(self, rng):
        for _ in range(15):
            n = int(rng.integers(2, 20))
            hop = int(rng.integers(1, 4))
            matrix = rng.integers(0, 80, size=(3, n))
            interior, prefix, suffix = share_window_bounds_batch(matrix, hop)
            for r in range(3):
                assert max(
                    int(interior[r]), int(prefix[r]), int(suffix[r])
                ) == brute_force_bound(matrix[r], hop)


class TestWideArrayPath:
    """The binary-search interior path (n past the dense limit)."""

    @pytest.fixture(autouse=True)
    def _force_wide_path(self, monkeypatch):
        monkeypatch.setattr(
            repro.accel.localshare, "_DENSE_WINDOW_LIMIT", 0
        )

    def test_makespan_matches_brute_force(self, rng):
        for _ in range(40):
            n = int(rng.integers(1, 28))
            hop = int(rng.integers(0, 5))
            loads = rng.integers(0, 100, size=n)
            if rng.random() < 0.4:
                loads[rng.integers(0, n)] += int(rng.integers(100, 900))
            assert share_makespan(loads, hop) == brute_force_bound(loads, hop)

    def test_transport_matches_reference(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 24))
            hop = int(rng.integers(0, 4))
            loads = rng.integers(0, 60, size=n)
            assert np.array_equal(
                share_effective_loads(loads, hop),
                _share_effective_loads_reference(loads, hop),
            )
