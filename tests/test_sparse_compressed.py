"""CSR and CSC formats: invariants and accessors."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import (
    CooMatrix,
    CscMatrix,
    CsrMatrix,
    coo_to_csc,
    coo_to_csr,
)


@pytest.fixture
def csr(small_coo):
    return coo_to_csr(small_coo)


@pytest.fixture
def csc(small_coo):
    return coo_to_csc(small_coo)


class TestCsrInvariants:
    def test_indptr_length(self, csr):
        assert csr.indptr.size == csr.shape[0] + 1

    def test_indptr_ends_at_nnz(self, csr):
        assert csr.indptr[-1] == csr.nnz

    def test_bad_indptr_length_raises(self):
        with pytest.raises(FormatError):
            CsrMatrix((2, 2), [0, 1], [0], [1.0])

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(FormatError):
            CsrMatrix((2, 2), [1, 1, 1], [0], [1.0])

    def test_decreasing_indptr_raises(self):
        with pytest.raises(FormatError):
            CsrMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 2.0])

    def test_col_out_of_range_raises(self):
        with pytest.raises(FormatError):
            CsrMatrix((2, 2), [0, 1, 2], [0, 5], [1.0, 2.0])

    def test_unsorted_cols_within_row_raises(self):
        with pytest.raises(FormatError):
            CsrMatrix((1, 3), [0, 2], [2, 0], [1.0, 2.0])

    def test_duplicate_cols_within_row_raises(self):
        with pytest.raises(FormatError):
            CsrMatrix((1, 3), [0, 2], [1, 1], [1.0, 2.0])

    def test_boundary_descent_is_allowed(self):
        # Column index may drop across a row boundary.
        mat = CsrMatrix((2, 3), [0, 2, 3], [1, 2, 0], [1.0, 2.0, 3.0])
        assert mat.nnz == 3

    def test_indptr_must_match_nnz(self):
        with pytest.raises(FormatError):
            CsrMatrix((1, 3), [0, 3], [0, 1], [1.0, 2.0])


class TestCsrAccessors:
    def test_dense_round_trip(self, small_dense, csr):
        assert np.array_equal(csr.to_dense(), small_dense)

    def test_row_nnz(self, small_dense, csr):
        assert np.array_equal(csr.row_nnz(), (small_dense != 0).sum(axis=1))

    def test_row_slice(self, small_dense, csr):
        for row in range(small_dense.shape[0]):
            cols, vals = csr.row_slice(row)
            expected_cols = np.nonzero(small_dense[row])[0]
            assert np.array_equal(cols, expected_cols)
            assert np.allclose(vals, small_dense[row, expected_cols])

    def test_expand_rows_length(self, csr):
        assert csr.expand_rows().size == csr.nnz

    def test_immutable(self, csr):
        with pytest.raises(AttributeError):
            csr.shape = (1, 1)


class TestCscInvariants:
    def test_indptr_length(self, csc):
        assert csc.indptr.size == csc.shape[1] + 1

    def test_dense_round_trip(self, small_dense, csc):
        assert np.array_equal(csc.to_dense(), small_dense)

    def test_row_out_of_range_raises(self):
        with pytest.raises(FormatError):
            CscMatrix((2, 2), [0, 1, 2], [0, 9], [1.0, 2.0])

    def test_unsorted_rows_within_col_raises(self):
        with pytest.raises(FormatError):
            CscMatrix((3, 1), [0, 2], [2, 0], [1.0, 2.0])

    def test_col_nnz(self, small_dense, csc):
        assert np.array_equal(csc.col_nnz(), (small_dense != 0).sum(axis=0))

    def test_row_nnz(self, small_dense, csc):
        assert np.array_equal(csc.row_nnz(), (small_dense != 0).sum(axis=1))

    def test_col_slice(self, small_dense, csc):
        for col in range(small_dense.shape[1]):
            rows, vals = csc.col_slice(col)
            expected_rows = np.nonzero(small_dense[:, col])[0]
            assert np.array_equal(rows, expected_rows)
            assert np.allclose(vals, small_dense[expected_rows, col])

    def test_expand_cols_matches_fig4(self):
        # The Fig. 4 example from the paper.
        dense = np.array(
            [
                [1.0, 0, 6, 0, 9],
                [0, 0, 0, 2, 0],
                [0, 0, 0, 0, 7],
                [3, 0, 0, 0, 0],
                [0, 5, 0, 3, 0],
            ]
        )
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        assert csc.vals.tolist() == [1, 3, 5, 6, 2, 3, 9, 7]
        assert csc.row_ids.tolist() == [0, 3, 4, 0, 1, 4, 0, 2]
        assert csc.indptr.tolist() == [0, 2, 3, 4, 6, 8]
