"""Property-based tests for the sparse substrate (hypothesis).

The oracle is scipy; the properties are round-trip identity, value
conservation under canonicalization, and kernel agreement.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sparse import (
    CooMatrix,
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csr_to_coo,
    from_scipy,
    spmm_csc_dense,
    spmm_csr_dense,
    to_scipy_csr,
)


@st.composite
def sparse_dense_pairs(draw):
    """A random sparse-ish dense matrix."""
    n_rows = draw(st.integers(1, 12))
    n_cols = draw(st.integers(1, 12))
    dense = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=(n_rows, n_cols),
            elements=st.sampled_from([0.0, 0.0, 0.0, 1.0, -2.0, 0.5, 3.0]),
        )
    )
    return dense


@st.composite
def coo_triples(draw):
    """Raw (possibly duplicated, unsorted) COO triples."""
    n_rows = draw(st.integers(1, 10))
    n_cols = draw(st.integers(1, 10))
    nnz = draw(st.integers(0, 30))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-5, 5, allow_nan=False), min_size=nnz, max_size=nnz
        )
    )
    return (n_rows, n_cols), rows, cols, vals


@settings(max_examples=60, deadline=None)
@given(sparse_dense_pairs())
def test_dense_round_trip(dense):
    coo = CooMatrix.from_dense(dense)
    assert np.array_equal(coo.to_dense(), dense)
    assert np.array_equal(coo_to_csr(coo).to_dense(), dense)
    assert np.array_equal(coo_to_csc(coo).to_dense(), dense)


@settings(max_examples=60, deadline=None)
@given(coo_triples())
def test_canonicalization_matches_scipy(triple):
    shape, rows, cols, vals = triple
    ours = CooMatrix(shape, rows, cols, vals)
    theirs = sp.coo_matrix((vals, (rows, cols)), shape=shape).toarray()
    assert np.allclose(ours.to_dense(), theirs)


@settings(max_examples=60, deadline=None)
@given(coo_triples())
def test_format_conversions_preserve_matrix(triple):
    shape, rows, cols, vals = triple
    coo = CooMatrix(shape, rows, cols, vals)
    assert csr_to_coo(coo_to_csr(coo)) == coo
    assert csc_to_coo(coo_to_csc(coo)) == coo


@settings(max_examples=60, deadline=None)
@given(coo_triples())
def test_scipy_bridge_round_trip(triple):
    shape, rows, cols, vals = triple
    coo = CooMatrix(shape, rows, cols, vals)
    assert from_scipy(to_scipy_csr(coo)) == coo


@settings(max_examples=40, deadline=None)
@given(sparse_dense_pairs(), st.integers(1, 5))
def test_spmm_kernels_agree_with_numpy(dense, k):
    rng = np.random.default_rng(dense.shape[0] * 31 + dense.shape[1])
    b = rng.normal(size=(dense.shape[1], k))
    coo = CooMatrix.from_dense(dense)
    expected = dense @ b
    assert np.allclose(spmm_csc_dense(coo_to_csc(coo), b), expected)
    assert np.allclose(spmm_csr_dense(coo_to_csr(coo), b), expected)


@settings(max_examples=40, deadline=None)
@given(coo_triples())
def test_row_col_nnz_consistency(triple):
    shape, rows, cols, vals = triple
    coo = CooMatrix(shape, rows, cols, vals)
    assert coo.row_nnz().sum() == coo.nnz
    assert coo.col_nnz().sum() == coo.nnz
    assert np.array_equal(coo.transpose().row_nnz(), coo.col_nnz())
