"""Reference GCN model: activations, layers, multi-layer forward."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.model import GcnModel, build_model
from repro.model.activations import get_activation, identity, relu, row_softmax
from repro.model.layers import GcnLayer
from repro.sparse import CooMatrix


@pytest.fixture
def tiny_graph(rng):
    dense = (rng.random((12, 12)) < 0.25).astype(float)
    dense = np.maximum(dense, dense.T)  # symmetric
    from repro.datasets import gcn_normalize

    return gcn_normalize(CooMatrix.from_dense(dense))


@pytest.fixture
def tiny_features(rng):
    x = rng.normal(size=(12, 8))
    x[rng.random(x.shape) > 0.4] = 0.0
    return x


class TestActivations:
    def test_relu(self):
        assert np.array_equal(relu([-1.0, 0.0, 2.0]), [0.0, 0.0, 2.0])

    def test_identity(self):
        x = np.array([-1.0, 3.0])
        assert np.array_equal(identity(x), x)

    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(size=(5, 4)) * 10
        probs = row_softmax(x)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert probs.min() >= 0

    def test_softmax_stable_with_large_values(self):
        probs = row_softmax(np.array([[1e4, 1e4 + 1.0]]))
        assert np.isfinite(probs).all()

    def test_get_activation_unknown(self):
        with pytest.raises(KeyError):
            get_activation("swish")


class TestGcnLayer:
    def test_orders_agree_dense_features(self, tiny_graph, tiny_features, rng):
        w = rng.normal(size=(8, 4))
        layer = GcnLayer(tiny_graph, w)
        a = layer.forward(tiny_features)
        b = layer.forward_ax_w(tiny_features)
        assert np.allclose(a.output, b.output)

    def test_orders_agree_sparse_features(self, tiny_graph, tiny_features, rng):
        w = rng.normal(size=(8, 4))
        layer = GcnLayer(tiny_graph, w)
        sparse_x = CooMatrix.from_dense(tiny_features)
        a = layer.forward(sparse_x)
        b = layer.forward(tiny_features)
        assert np.allclose(a.output, b.output)

    def test_matches_direct_numpy(self, tiny_graph, tiny_features, rng):
        w = rng.normal(size=(8, 4))
        layer = GcnLayer(tiny_graph, w)
        expected = np.maximum(
            tiny_graph.to_dense() @ (tiny_features @ w), 0.0
        )
        assert np.allclose(layer.forward(tiny_features).output, expected)

    def test_relu_sparsifies(self, tiny_graph, tiny_features, rng):
        w = rng.normal(size=(8, 4))
        result = GcnLayer(tiny_graph, w).forward(tiny_features)
        assert 0.0 < result.output_density < 1.0

    def test_xw_intermediate_exposed(self, tiny_graph, tiny_features, rng):
        w = rng.normal(size=(8, 4))
        result = GcnLayer(tiny_graph, w).forward(tiny_features)
        assert np.allclose(result.xw, tiny_features @ w)

    def test_feature_dim_mismatch_raises(self, tiny_graph, rng):
        layer = GcnLayer(tiny_graph, rng.normal(size=(8, 4)))
        with pytest.raises(ShapeError):
            layer.forward(np.ones((12, 5)))

    def test_non_square_adjacency_raises(self, rng):
        adj = CooMatrix.empty((3, 4))
        with pytest.raises(ShapeError):
            GcnLayer(adj, rng.normal(size=(4, 2)))


class TestGcnModel:
    def test_two_layer_forward_shapes(self, tiny_graph, tiny_features, rng):
        model = GcnModel(
            tiny_graph,
            [rng.normal(size=(8, 6)), rng.normal(size=(6, 3))],
        )
        trace = model.forward(tiny_features)
        assert trace.probabilities.shape == (12, 3)
        assert len(trace.layer_results) == 2

    def test_orders_agree_end_to_end(self, tiny_graph, tiny_features, rng):
        model = GcnModel(
            tiny_graph,
            [rng.normal(size=(8, 6)), rng.normal(size=(6, 3))],
        )
        a = model.forward(tiny_features)
        b = model.forward_ax_w(tiny_features)
        assert np.allclose(a.probabilities, b.probabilities)

    def test_predict_returns_classes(self, tiny_graph, tiny_features, rng):
        model = GcnModel(
            tiny_graph,
            [rng.normal(size=(8, 6)), rng.normal(size=(6, 3))],
        )
        classes = model.predict(tiny_features)
        assert classes.shape == (12,)
        assert classes.max() < 3

    def test_no_softmax_option(self, tiny_graph, tiny_features, rng):
        model = GcnModel(
            tiny_graph,
            [rng.normal(size=(8, 3))],
            final_softmax=False,
        )
        trace = model.forward(tiny_features)
        assert np.array_equal(trace.probabilities, trace.logits)

    def test_layer_input_density(self, tiny_graph, tiny_features, rng):
        model = GcnModel(
            tiny_graph,
            [rng.normal(size=(8, 6)), rng.normal(size=(6, 3))],
        )
        trace = model.forward(tiny_features)
        assert 0 <= trace.layer_input_density(1) <= 1
        with pytest.raises(ValueError):
            trace.layer_input_density(0)

    def test_mismatched_chain_raises(self, tiny_graph, rng):
        with pytest.raises(ShapeError):
            GcnModel(
                tiny_graph,
                [rng.normal(size=(8, 6)), rng.normal(size=(5, 3))],
            )

    def test_empty_weights_raises(self, tiny_graph):
        with pytest.raises(ShapeError):
            GcnModel(tiny_graph, [])

    def test_build_model_from_dataset(self, tiny_cora):
        model = build_model(tiny_cora)
        trace = model.forward(tiny_cora.features)
        assert trace.probabilities.shape == (
            tiny_cora.n_nodes,
            tiny_cora.feature_dims[2],
        )
