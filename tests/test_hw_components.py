"""Detailed-simulator components: queues, Omega network, PE."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hw import OmegaNetwork, ProcessingElement, Task, TaskQueue
from repro.hw.queues import QueueGroup


class TestTaskQueue:
    def test_fifo_order(self):
        q = TaskQueue()
        t1 = Task(row=1, a_val=1, b_val=1, owner=0)
        t2 = Task(row=2, a_val=1, b_val=1, owner=0)
        q.push(t1)
        q.push(t2)
        assert q.pop() is t1
        assert q.pop() is t2
        assert q.pop() is None

    def test_capacity_enforced(self):
        q = TaskQueue(capacity=1)
        t = Task(row=0, a_val=1, b_val=1, owner=0)
        assert q.push(t)
        assert not q.push(t)
        assert q.full

    def test_high_water_tracks_peak(self):
        q = TaskQueue()
        t = Task(row=0, a_val=1, b_val=1, owner=0)
        q.push(t)
        q.push(t)
        q.pop()
        q.push(t)
        assert q.high_water == 2

    def test_empty_signal(self):
        q = TaskQueue()
        assert q.empty
        q.push(Task(row=0, a_val=1, b_val=1, owner=0))
        assert not q.empty

    def test_bad_capacity_raises(self):
        with pytest.raises(ConfigError):
            TaskQueue(capacity=0)


class TestQueueGroup:
    def test_round_robin_spread(self):
        group = QueueGroup(4)
        for i in range(8):
            group.push(Task(row=i, a_val=1, b_val=1, owner=0))
        assert [len(q) for q in group.queues] == [2, 2, 2, 2]

    def test_pop_skips_hazard(self):
        group = QueueGroup(2)
        group.push(Task(row=7, a_val=1, b_val=1, owner=0))
        group.push(Task(row=8, a_val=1, b_val=1, owner=0))
        task, stalled = group.pop_non_hazard({7})
        assert task.row == 8
        assert not stalled

    def test_pop_all_hazard_stalls(self):
        group = QueueGroup(2)
        group.push(Task(row=7, a_val=1, b_val=1, owner=0))
        task, stalled = group.pop_non_hazard({7})
        assert task is None
        assert stalled

    def test_pop_empty(self):
        task, stalled = QueueGroup(2).pop_non_hazard(set())
        assert task is None and not stalled


class TestOmegaNetwork:
    def test_power_of_two_required(self):
        with pytest.raises(ConfigError):
            OmegaNetwork(6)

    def test_single_task_routes_to_dest(self):
        net = OmegaNetwork(8)
        net.inject(0, 5, "payload")
        delivered = []
        for _ in range(10):
            delivered.extend(net.step())
            if delivered:
                break
        assert delivered == [(5, "payload")]

    def test_all_to_all_delivery(self):
        net = OmegaNetwork(8, buffer_depth=8)
        sent = []
        for port in range(8):
            for dest in range(8):
                # inject may back-pressure; retry while stepping
                while not net.inject(port, dest, (port, dest)):
                    net.step()
                sent.append((port, dest))
        received = []
        for _ in range(200):
            received.extend(payload for _dest, payload in net.step())
            if net.empty:
                break
        assert sorted(received) == sorted(sent)

    def test_dest_integrity(self):
        rng = np.random.default_rng(0)
        net = OmegaNetwork(16, buffer_depth=4)
        outstanding = 0
        mismatches = 0
        for _ in range(300):
            port = int(rng.integers(0, 16))
            dest = int(rng.integers(0, 16))
            if net.inject(port, dest, dest):
                outstanding += 1
            for exit_dest, payload in net.step():
                assert exit_dest == payload
                outstanding -= 1
        while not net.empty:
            for exit_dest, payload in net.step():
                assert exit_dest == payload
                outstanding -= 1
        assert outstanding == 0
        assert mismatches == 0

    def test_back_pressure_on_full_entry(self):
        net = OmegaNetwork(4, buffer_depth=1)
        assert net.inject(0, 0, "a")
        assert not net.inject(0, 1, "b")

    def test_bad_dest_raises(self):
        net = OmegaNetwork(4)
        with pytest.raises(ConfigError):
            net.inject(0, 9, "x")


class TestProcessingElement:
    def test_executes_and_accumulates(self):
        pe = ProcessingElement(0, mac_latency=2)
        acc = np.zeros(4)
        pe.queues.push(Task(row=1, a_val=3.0, b_val=2.0, owner=0))
        for cycle in range(5):
            pe.step(cycle, acc)
        assert acc[1] == 6.0
        assert pe.tasks_executed == 1

    def test_raw_hazard_stalls_same_row(self):
        pe = ProcessingElement(0, n_queues=1, mac_latency=5)
        acc = np.zeros(2)
        for _ in range(3):
            pe.queues.push(Task(row=0, a_val=1.0, b_val=1.0, owner=0))
        for cycle in range(30):
            pe.step(cycle, acc)
        assert acc[0] == 3.0
        assert pe.stall_events > 0

    def test_different_rows_no_stall(self):
        pe = ProcessingElement(0, n_queues=4, mac_latency=5)
        acc = np.zeros(8)
        for row in range(8):
            pe.queues.push(Task(row=row, a_val=1.0, b_val=1.0, owner=0))
        for cycle in range(20):
            pe.step(cycle, acc)
        assert acc.sum() == 8.0
        assert pe.busy_cycles == 8

    def test_idle_state(self):
        pe = ProcessingElement(0)
        assert pe.idle
        pe.queues.push(Task(row=0, a_val=1.0, b_val=1.0, owner=0))
        assert not pe.idle
