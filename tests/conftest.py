"""Shared fixtures for the test suite.

Datasets use the ``tiny`` preset (hundreds of nodes) so the whole suite
runs in seconds; a couple of integration tests use the small ``scaled``
presets (Cora/Citeseer are their full published sizes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.sparse import CooMatrix


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense(rng):
    """A small dense matrix with ~25% non-zeros (for format tests)."""
    dense = rng.normal(size=(17, 13))
    dense[rng.random((17, 13)) > 0.25] = 0.0
    return dense


@pytest.fixture
def small_coo(small_dense):
    """The COO form of ``small_dense``."""
    return CooMatrix.from_dense(small_dense)


@pytest.fixture(scope="session")
def tiny_cora():
    """Tiny Cora-like dataset with materialized features."""
    return load_dataset("cora", "tiny", seed=3)


@pytest.fixture(scope="session")
def tiny_nell():
    """Tiny Nell-like dataset (clustered skew profile)."""
    return load_dataset("nell", "tiny", seed=3)


@pytest.fixture(scope="session")
def scaled_cora():
    """Full-size Cora (it is small enough to be the scaled preset)."""
    return load_dataset("cora", "scaled", seed=7)
