"""Row assignment bookkeeping and the SLT row exchange."""

import numpy as np
import pytest

from repro.accel.workload import (
    RowAssignment,
    initial_assignment,
    per_pe_loads,
    per_pe_max_row,
)
from repro.errors import ConfigError


@pytest.fixture
def assignment():
    row_nnz = np.array([10, 1, 1, 1, 2, 2, 2, 2])
    return RowAssignment(row_nnz, 4)


class TestBasics:
    def test_initial_contiguous(self):
        owner = initial_assignment(8, 4)
        assert owner.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_loads(self, assignment):
        assert assignment.loads.tolist() == [11, 2, 4, 4]

    def test_total_work(self, assignment):
        assert assignment.total_work == 21

    def test_per_pe_max_row(self, assignment):
        assert assignment.max_rows().tolist() == [10, 1, 2, 2]

    def test_per_pe_loads_function(self):
        owner = np.array([0, 0, 1])
        loads = per_pe_loads(owner, np.array([1, 2, 3]), 2)
        assert loads.tolist() == [3, 3]

    def test_per_pe_max_row_function(self):
        owner = np.array([0, 0, 1])
        assert per_pe_max_row(owner, np.array([1, 2, 3]), 2).tolist() == [2, 3]

    def test_custom_owner(self):
        asg = RowAssignment([1, 2, 3], 3, owner=[2, 1, 0])
        assert asg.loads.tolist() == [3, 2, 1]

    def test_owner_out_of_range_raises(self):
        with pytest.raises(ConfigError):
            RowAssignment([1, 2], 2, owner=[0, 5])

    def test_negative_nnz_raises(self):
        with pytest.raises(ConfigError):
            RowAssignment([-1, 2], 2)


class TestMoves:
    def test_move_rows_updates_loads(self, assignment):
        assignment.move_rows([0], 3)
        assert assignment.loads.tolist() == [1, 2, 4, 14]
        assert assignment.owner[0] == 3

    def test_move_conserves_work(self, assignment):
        before = assignment.loads.sum()
        assignment.move_rows([0, 4, 6], 1)
        assert assignment.loads.sum() == before

    def test_move_empty_is_noop(self, assignment):
        before = assignment.loads.copy()
        assignment.move_rows([], 2)
        assert np.array_equal(assignment.loads, before)

    def test_snapshot_is_copy(self, assignment):
        snap = assignment.snapshot()
        assignment.move_rows([0], 2)
        assert snap[0] == 0

    def test_rows_of(self, assignment):
        assert assignment.rows_of(0).tolist() == [0, 1]


class TestSwapRows:
    def test_swap_moves_heaviest_and_lightest(self, assignment):
        # PE0 (rows 0:10, 1:1) is hot; PE1 (rows 2:1, 3:1) is cold.
        moved = assignment.swap_rows(0, 1, 1)
        assert moved == 1
        assert assignment.owner[0] == 1  # heaviest row left PE0
        assert assignment.loads.sum() == 21  # conservation

    def test_swap_reduces_gap(self):
        # PE0 owns rows of weight [6, 5]; PE1 owns [1, 1].
        asg = RowAssignment(np.array([6, 5, 1, 1]), 2)
        gap_before = asg.loads.max() - asg.loads.min()
        asg.swap_rows(0, 1, 2, work_target=gap_before / 2)
        gap_after = asg.loads.max() - asg.loads.min()
        assert gap_after < gap_before

    def test_work_target_limits_selection(self):
        row_nnz = np.array([9, 8, 1, 0, 0, 0])
        asg = RowAssignment(row_nnz, 2)  # PE0: 18, PE1: 0... rows 0-2 on PE0
        # Target 9: only the single heaviest row should move.
        moved = asg.swap_rows(0, 1, 3, work_target=9)
        assert moved == 1
        assert asg.loads.tolist() == [9, 9]

    def test_work_target_skips_overshooting_row(self):
        row_nnz = np.array([10, 3, 0, 0])
        asg = RowAssignment(row_nnz, 2)
        # Target 4: the 10-nnz row overshoots and is skipped; the 3-nnz
        # row fits and moves instead.
        moved = asg.swap_rows(0, 1, 2, work_target=4)
        assert moved == 1
        assert asg.owner[1] == 1  # the 3-nnz row moved, not the 10

    def test_all_rows_overshoot_moves_lightest(self):
        row_nnz = np.array([10, 20, 0, 0])
        asg = RowAssignment(row_nnz, 2)
        moved = asg.swap_rows(0, 1, 2, work_target=4)
        assert moved == 1
        assert asg.owner[0] == 1  # lightest overshooting row moved

    def test_swap_same_pe_is_noop(self, assignment):
        assert assignment.swap_rows(1, 1, 3) == 0

    def test_swap_zero_rows_is_noop(self, assignment):
        assert assignment.swap_rows(0, 1, 0) == 0

    def test_swap_bounded_by_owned_rows(self, assignment):
        moved = assignment.swap_rows(0, 1, 100)
        assert moved == 2  # PE0 only owned 2 rows
