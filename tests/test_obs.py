"""The unified tracing & metrics layer (:mod:`repro.obs`).

Four contracts pinned here:

* **Zero-overhead default** — an untraced run and a ``NULL_TRACER`` run
  are the same run; the recording tracer only ever *observes*.
* **Stream-as-truth** — ``ServiceStats`` / ``LatencyStats`` rebuilt
  from the recorded events alone are *equal* (bit-equal floats, not
  approximately) to the hand-folded originals.
* **Bit-identity across workers** — the simulated event stream is
  byte-identical for any host ``workers`` count, across batch,
  streaming, sharded and co-scheduled traffic (the parallel backend
  splices worker-recorded tuner events at the exact sequential point).
* **Valid export** — the Chrome-trace document passes the schema
  validator, the span tree is well formed, and the canned ``mixed``
  scenario carries at least one backfill and one preemption span.
"""

import json
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import ArchConfig
from repro.analysis.tracescenarios import (
    TRACE_SCENARIOS,
    run_trace_scenario,
    trace_scenario,
    trace_summary,
)
from repro.errors import ConfigError
from repro.obs import (
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    check_span_tree,
    chrome_trace,
    config_label,
    latency_stats_view,
    load_chrome_trace,
    metrics_view,
    render_round_heat,
    round_timeline_rows,
    service_stats_view,
    stream_fingerprint,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.serve.cache import AutotuneCache
from repro.serve.service import percentile, serve_requests
from repro.serve.traffic import (
    RmatGraphSpec,
    streaming_traffic,
    synthetic_traffic,
)

TINY = {"f1": 16, "f2": 8, "f3": 4}
CFG = ArchConfig(n_pes=32, hop=1, remote_switching=True)


def _streaming_requests(seed=7, n=12):
    return streaming_traffic(
        n, arrival_rate=500.0, slo_ms=10.0, n_graphs=3, n_nodes=256,
        seed=seed, configs=(CFG,), avg_degree=4, graph_kwargs=TINY,
    )


@lru_cache(maxsize=None)
def _scenario_run(name, workers=1):
    """One traced scenario replay, memoized across the module."""
    return run_trace_scenario(name, workers=workers)


@lru_cache(maxsize=None)
def _streaming_run():
    tracer = RecordingTracer()
    outcome = serve_requests(
        _streaming_requests(), n_workers=2, cache=True, max_batch=3,
        tracer=tracer,
    )
    return outcome, tracer


class TestTracerCore:
    def test_null_tracer_is_disabled_noop(self):
        tracer = NullTracer()
        assert not tracer.enabled
        assert tracer.instant("x") is None
        assert tracer.span("x", lane="a", start=0, end=1) is None
        assert tracer.counter("x") is None
        assert tracer.splice(()) is None
        assert tracer.wall("x") is None
        assert NULL_TRACER.enabled is False

    def test_instant_uses_anchor_and_offset(self):
        tracer = RecordingTracer()
        tracer.set_time(2.0)
        event = tracer.instant("tick", lane="l", offset=0.5)
        assert event.ts == 2.5 and event.kind == "instant"
        explicit = tracer.instant("tick", ts=1.25)
        assert explicit.ts == 1.25
        assert [e.seq for e in tracer.events] == [0, 1]

    def test_span_rejects_negative_duration(self):
        tracer = RecordingTracer()
        with pytest.raises(ConfigError):
            tracer.span("bad", lane="l", start=2.0, end=1.0)

    def test_span_is_mutable_for_preemption_patching(self):
        tracer = RecordingTracer()
        span = tracer.span("s", lane="l", start=0.0, end=4.0)
        span.dur = 1.5
        assert tracer.events[0].end == 1.5

    def test_counter_values_land_in_args(self):
        tracer = RecordingTracer()
        event = tracer.counter("q", values={"depth": 3})
        assert event.kind == "counter" and event.args == {"depth": 3}

    def test_splice_reanchors_and_resequences(self):
        worker = RecordingTracer()
        worker.instant("a", ts=0.0)
        worker.instant("b", ts=0.25)
        parent = RecordingTracer()
        parent.instant("before", ts=1.0)
        parent.set_time(2.0)
        parent.splice(worker.events)
        names = [(e.name, e.ts, e.seq) for e in parent.events]
        assert names == [("before", 1.0, 0), ("a", 2.0, 1),
                         ("b", 2.25, 2)]

    def test_wall_events_stay_out_of_the_stream(self):
        tracer = RecordingTracer()
        tracer.wall("profile", seconds=0.1)
        assert tracer.events == [] and len(tracer.wall_events) == 1

    def test_config_label(self):
        assert config_label(CFG) == f"32pe@{CFG.frequency_mhz:g}MHz"

    def test_stream_fingerprint_detects_any_difference(self):
        a, b = RecordingTracer(), RecordingTracer()
        a.instant("x", ts=1.0)
        b.instant("x", ts=1.0)
        assert stream_fingerprint(a.events) == stream_fingerprint(b.events)
        b.events[0].args["extra"] = 1
        assert stream_fingerprint(a.events) != stream_fingerprint(b.events)


class TestMetrics:
    def test_histogram_buckets_are_deterministic(self):
        hist = Histogram((1.0, 5.0))
        for value in (0.5, 1.0, 2.0, 9.0):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]
        snap = hist.snapshot()
        assert snap["count"] == 4 and snap["le:inf"] == 1
        assert hist.mean == pytest.approx(3.125)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            Histogram(())
        with pytest.raises(ConfigError):
            Histogram((2.0, 1.0))

    def test_registry_counters_never_decrease(self):
        registry = MetricsRegistry()
        registry.inc("n", 2)
        with pytest.raises(ConfigError):
            registry.inc("n", -1)
        assert registry.counters["n"] == 2

    def test_registry_folds_events(self):
        registry = MetricsRegistry()
        tracer = RecordingTracer(metrics=registry)
        tracer.instant("batch.cut")
        tracer.counter("queue", values={"depth": 4})
        assert registry.counters["events.instant.batch.cut"] == 1
        assert registry.gauges["queue.depth"] == 4.0

    def test_metrics_view_folds_a_recorded_run(self):
        _, tracer = _streaming_run()
        registry = metrics_view(tracer.events)
        assert registry.counters["events.instant.request.complete"] == 12
        assert registry.histograms["latency_ms"].n == 12
        snap = registry.snapshot()
        assert snap == metrics_view(tracer.events).snapshot()


class TestViews:
    def test_streaming_views_bit_equal(self):
        outcome, tracer = _streaming_run()
        assert service_stats_view(
            tracer.events, wall_seconds=outcome.stats.wall_seconds
        ) == outcome.stats
        assert latency_stats_view(tracer.events) == outcome.latency

    def test_mixed_views_bit_equal(self):
        outcome, tracer = _scenario_run("mixed")
        assert service_stats_view(
            tracer.events, wall_seconds=outcome.stats.wall_seconds
        ) == outcome.stats
        assert latency_stats_view(tracer.events) == outcome.latency

    def test_shard_views_bit_equal(self):
        outcome, tracer = _scenario_run("shard")
        assert service_stats_view(
            tracer.events, wall_seconds=outcome.stats.wall_seconds
        ) == outcome.stats
        assert latency_stats_view(tracer.events) == outcome.latency


class TestPercentileAndStats:
    def test_p999_is_nearest_rank(self):
        values = list(range(1, 1001))
        # Nearest-rank: always an observed value, between p99 and max.
        p999 = percentile(values, 99.9)
        assert p999 in values
        assert percentile(values, 99) <= p999 <= max(values)
        assert percentile([5.0], 99.9) == 5.0

    def test_p999_reported_and_ordered(self):
        outcome, _ = _streaming_run()
        latency = outcome.latency
        assert latency.p999_ms >= latency.p99_ms >= latency.p95_ms
        assert latency.p999_ms <= latency.max_ms

    def test_evictions_counted_per_drain(self):
        cache = AutotuneCache(max_entries=1)
        outcome = serve_requests(
            _streaming_requests(), n_workers=2, cache=cache, max_batch=3,
        )
        assert outcome.stats.n_evictions == cache.stats.evictions
        assert outcome.stats.n_evictions > 0

    def test_eviction_events_match_the_counter(self):
        cache = AutotuneCache(max_entries=1)
        tracer = RecordingTracer()
        outcome = serve_requests(
            _streaming_requests(), n_workers=2, cache=cache, max_batch=3,
            tracer=tracer,
        )
        view = service_stats_view(
            tracer.events, wall_seconds=outcome.stats.wall_seconds
        )
        assert view == outcome.stats
        assert view.n_evictions == outcome.stats.n_evictions


class TestSchedulerEvents:
    def test_batch_cuts_carry_reasons(self):
        _, tracer = _streaming_run()
        cuts = [e for e in tracer.events if e.name == "batch.cut"]
        assert cuts, "streaming run must cut batches"
        assert all(
            e.args["reason"] in {"size", "deadline", "timeout", "flush"}
            for e in cuts
        )
        # max_batch=3 under bursty-enough arrivals forces size cuts.
        assert any(e.args["reason"] == "size" for e in cuts)
        assert all(e.args["size"] >= 1 for e in cuts)

    def test_queue_counters_sampled(self):
        _, tracer = _streaming_run()
        samples = [e for e in tracer.events if e.name == "service.queue"]
        assert samples
        assert all(
            set(e.args) == {"pending", "ready", "sharded", "active"}
            for e in samples
        )


class TestSpanTrees:
    def test_real_streams_are_well_formed(self):
        for name in TRACE_SCENARIOS:
            _, tracer = _scenario_run(name)
            assert check_span_tree(tracer.events) == [], name

    def test_unclosed_arrival_is_flagged(self):
        tracer = RecordingTracer()
        tracer.instant("request.arrival", ts=0.0, args={"seq": 0})
        assert check_span_tree(tracer.events)

    def test_overlapping_lane_spans_are_flagged(self):
        tracer = RecordingTracer()
        tracer.span("a", lane="worker0", start=0.0, end=2.0)
        tracer.span("b", lane="worker0", start=1.0, end=3.0)
        assert check_span_tree(tracer.events)

    def test_preemption_patches_the_request_tree(self):
        outcome, tracer = _scenario_run("mixed")
        preempts = [e for e in tracer.events if e.name == "preempt"]
        assert len(preempts) == 1
        seq = preempts[0].args["seq"]
        gap = [e for e in tracer.events if e.name == "request.preempted"]
        assert len(gap) == 1 and gap[0].lane == f"req/{seq}"
        resumes = [e for e in tracer.events
                   if e.name == "sharded.resume"]
        assert resumes
        done = {e.args["seq"]: e for e in tracer.events
                if e.name == "request.complete"}
        assert done[seq].args["preemptions"] == 1
        # The patched completion instant sits at the span-tree finish
        # (results come back in arrival-sequence order, nothing shed).
        result = outcome.results[seq]
        assert done[seq].ts == result.finish_time
        req_span = next(e for e in tracer.events
                        if e.name == "request"
                        and e.lane == f"req/{seq}")
        assert req_span.end == result.finish_time

    def test_backfill_span_present_in_mixed(self):
        _, tracer = _scenario_run("mixed")
        assert any(e.name == "backfill" for e in tracer.events)
        assert any(e.name == "sharded.backfill" for e in tracer.events)


class TestChromeExport:
    def test_mixed_document_is_valid(self):
        _, tracer = _scenario_run("mixed")
        doc = chrome_trace(tracer.events, wall_events=tracer.wall_events)
        assert validate_chrome_trace(doc) == []
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "C", "i"} <= phases

    def test_wall_events_export_nondeterministic_pid(self):
        _, tracer = _scenario_run("shard")
        doc = chrome_trace(tracer.events, wall_events=tracer.wall_events)
        names = {
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "wall (nondeterministic)" in names

    def test_roundtrip_and_validator_catches_corruption(self, tmp_path):
        _, tracer = _streaming_run()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer.events,
                           wall_events=tracer.wall_events)
        doc = load_chrome_trace(path)
        assert validate_chrome_trace(doc) == []
        doc["traceEvents"] = [
            {k: v for k, v in e.items() if k != "dur"}
            if e["ph"] == "X" else e
            for e in doc["traceEvents"]
        ]
        assert validate_chrome_trace(doc)

    def test_write_creates_parent_dirs(self, tmp_path):
        _, tracer = _streaming_run()
        path = tmp_path / "nested" / "dir" / "trace.json"
        write_chrome_trace(path, tracer.events)
        assert json.loads(path.read_text())["traceEvents"]

    def test_round_timeline_rows_cover_layers_and_chips(self):
        _, tracer = _scenario_run("shard")
        rows = round_timeline_rows(tracer.events)
        assert rows
        util = [r for r in rows if r["signal"] == "cluster.chip_util"]
        assert util
        assert {"lane", "index", "chip", "value", "ts_s"} <= set(util[0])

    def test_render_round_heat(self):
        _, tracer = _scenario_run("shard")
        heat = render_round_heat(tracer.events)
        assert "legend" in heat
        assert render_round_heat(_streaming_run()[1].events) == ""


class TestScenarios:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            trace_scenario("nope")

    def test_mixed_scenario_fires_the_machinery(self):
        outcome, _ = _scenario_run("mixed")
        assert outcome.stats.n_backfilled >= 1
        assert outcome.stats.n_preemptions >= 1
        assert outcome.stats.n_sharded >= 2

    def test_summary_mentions_the_counters(self):
        outcome, tracer = _scenario_run("mixed")
        text = trace_summary("mixed", outcome, tracer)
        assert "backfilled=1" in text and "preemptions=1" in text
        assert "legend" in text  # heat strips present

    def test_tracing_is_observation_only(self):
        baseline = serve_requests(
            _streaming_requests(), n_workers=2, cache=True, max_batch=3,
        )
        traced, _ = _streaming_run()
        assert [r.total_cycles for r in traced.results] == [
            r.total_cycles for r in baseline.results
        ]
        assert [r.finish_time for r in traced.results] == [
            r.finish_time for r in baseline.results
        ]


class TestWorkersBitIdentity:
    @pytest.mark.parametrize("name", TRACE_SCENARIOS)
    def test_scenarios_identical_across_workers(self, name):
        _, sequential = _scenario_run(name)
        _, pooled = _scenario_run(name, workers=4)
        assert stream_fingerprint(pooled.events) == stream_fingerprint(
            sequential.events
        )

    def test_batch_traffic_identical_across_workers(self):
        requests = synthetic_traffic(
            10, n_graphs=3, n_nodes=256, seed=3, configs=(CFG,),
            avg_degree=4, graph_kwargs=TINY,
        )

        def run(workers):
            tracer = RecordingTracer()
            serve_requests(requests, n_workers=2, cache=True,
                           workers=workers, tracer=tracer)
            return stream_fingerprint(tracer.events)

        assert run(1) == run(2) == run(4)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 60))
    def test_streaming_identity_property(self, seed):
        requests = _streaming_requests(seed=seed, n=8)

        def run(workers):
            tracer = RecordingTracer()
            serve_requests(requests, n_workers=2, cache=True,
                           max_batch=3, workers=workers, tracer=tracer)
            return tracer

        sequential, pooled = run(1), run(2)
        assert stream_fingerprint(sequential.events) == stream_fingerprint(
            pooled.events
        )
        assert check_span_tree(sequential.events) == []
