"""Comparison-platform models: CPU, GPU, EIE, energy."""

import pytest

from repro.accel import ArchConfig, GcnAccelerator
from repro.baselines import (
    CpuModel,
    EieLikeModel,
    GpuModel,
    PLATFORM_POWER_WATTS,
    energy_joules,
    inferences_per_kilojoule,
    measure_cpu_latency_ms,
)
from repro.baselines.cpu import total_inference_ops
from repro.errors import ConfigError


class TestCpuModel:
    def test_reproduces_paper_cora(self):
        # Table 2: Cora total A(XW) ops = 1.33M -> Table 3: 3.90 ms.
        assert CpuModel().latency_ms(1.33e6) == pytest.approx(3.90, rel=0.2)

    def test_reproduces_paper_nell(self):
        # Nell: 782M ops -> 1.61 s.
        assert CpuModel().latency_ms(782e6) == pytest.approx(1610, rel=0.1)

    def test_monotone_in_ops(self):
        cpu = CpuModel()
        assert cpu.latency_ms(2e6) > cpu.latency_ms(1e6)

    def test_total_inference_ops(self, tiny_cora):
        ops = total_inference_ops(tiny_cora)
        f2, f3 = tiny_cora.feature_dims[1], tiny_cora.feature_dims[2]
        manual = (
            int(tiny_cora.x1_row_nnz.sum()) + tiny_cora.adjacency.nnz
        ) * f2 + (
            int(tiny_cora.x2_row_nnz.sum()) + tiny_cora.adjacency.nnz
        ) * f3
        assert ops == manual

    def test_evaluate_builds_result(self, tiny_cora):
        result = CpuModel().evaluate("cora", 1e6)
        assert result.platform == "cpu"
        assert result.power_watts == PLATFORM_POWER_WATTS["cpu"]

    def test_measured_mode_runs(self, tiny_cora):
        latency = measure_cpu_latency_ms(tiny_cora, repeats=1)
        assert latency > 0

    def test_measured_mode_needs_features(self):
        from repro.datasets import build_dataset

        ds = build_dataset("cora", "tiny", seed=1, materialize=False)
        with pytest.raises(ValueError):
            measure_cpu_latency_ms(ds)


class TestGpuModel:
    def test_reproduces_paper_nell(self):
        # Nell: 782M ops -> 130.65 ms on the P100.
        assert GpuModel().latency_ms(782e6) == pytest.approx(130.65, rel=0.1)

    def test_small_graph_overhead_bound(self):
        # Cora: 1.33M ops -> ~1.78 ms, dominated by launch overhead.
        assert GpuModel().latency_ms(1.33e6) == pytest.approx(1.78, rel=0.15)

    def test_large_graphs_use_degraded_throughput(self):
        gpu = GpuModel()
        just_below = gpu.latency_ms(0.99e9)
        just_above = gpu.latency_ms(1.01e9)
        assert just_above > just_below * 1.5

    def test_gpu_faster_than_cpu(self):
        for ops in (1e6, 1e8, 1e10):
            assert GpuModel().latency_ms(ops) < CpuModel().latency_ms(ops)


class TestEieModel:
    def test_runs_at_285mhz(self):
        assert EieLikeModel().config.frequency_mhz == 285.0

    def test_no_rebalancing(self):
        cfg = EieLikeModel().config
        assert cfg.hop == 0 and not cfg.remote_switching

    def test_close_to_baseline(self, tiny_nell):
        eie = EieLikeModel(n_pes=16).evaluate(tiny_nell)
        baseline = GcnAccelerator(
            tiny_nell, ArchConfig(n_pes=16, frequency_mhz=275.0)
        ).run()
        # Same cycles, different clocks: EIE is ~3.6% faster.
        assert eie.latency_ms == pytest.approx(
            baseline.latency_ms * 275.0 / 285.0, rel=0.01
        )


class TestEnergy:
    def test_energy_formula(self):
        assert energy_joules("cpu", 1000.0) == pytest.approx(135.0)

    def test_paper_cpu_cora_efficiency(self):
        # 3.90 ms at 135 W -> ~1.9E3 inferences/kJ (paper: 1.90E3).
        assert inferences_per_kilojoule("cpu", 3.90) == pytest.approx(
            1.90e3, rel=0.03
        )

    def test_paper_awb_cora_efficiency(self):
        # 0.011 ms at 38 W -> ~2.4E6 inferences/kJ (paper: 2.38E6).
        assert inferences_per_kilojoule("awb", 0.011) == pytest.approx(
            2.38e6, rel=0.03
        )

    def test_unknown_platform_raises(self):
        with pytest.raises(ConfigError):
            energy_joules("tpu", 1.0)

    def test_negative_latency_raises(self):
        with pytest.raises(ConfigError):
            energy_joules("cpu", -1.0)

    def test_zero_latency_infinite_efficiency(self):
        assert inferences_per_kilojoule("cpu", 0.0) == float("inf")
