"""Golden-value regression tests for the accelerator cycle model.

Three fixed-seed RMAT workloads through :class:`GcnAccelerator`, with
total cycles, per-layer cycles, utilization and tuner convergence rounds
pinned to the values the model produced when these tests were written.

These exist so performance refactors (vectorized kernels, cache fast
paths, Hall-bound rewrites) cannot silently change model *semantics*:
any legitimate modeling change must update these numbers in the same
commit, consciously. The inputs are fully seeded and the model is
deterministic, so exact equality is the right assertion — approximate
comparison would let off-by-one cycle drift through.
"""

import pytest

from repro.accel import ArchConfig, GcnAccelerator
from repro.serve import AutotuneCache, RmatGraphSpec

GOLDEN = [
    # (label, graph spec, arch config, expected)
    (
        "baseline-static",
        RmatGraphSpec(n_nodes=1024, avg_degree=8, f1=48, f2=16, f3=8,
                      seed=101),
        ArchConfig(n_pes=64, hop=0, remote_switching=False),
        {
            "total_cycles": 20408,
            "per_layer_cycles": [13511, 6897],
            "utilization": 0.2713886711093689,
            "converged_rounds": [None, None, None, None],
        },
    ),
    (
        "awb-balanced",
        RmatGraphSpec(n_nodes=1024, avg_degree=8, f1=48, f2=16, f3=8,
                      seed=202),
        ArchConfig(n_pes=64, hop=1, remote_switching=True),
        {
            "total_cycles": 6723,
            "per_layer_cycles": [4252, 2471],
            "utilization": 0.8286479250334672,
            "converged_rounds": [3, None, 3, 3],
        },
    ),
    (
        "awb-hub-heavy",
        RmatGraphSpec(n_nodes=2048, avg_degree=12, f1=32, f2=24, f3=4,
                      seed=303, abcd=(0.6, 0.15, 0.15, 0.1)),
        ArchConfig(n_pes=128, hop=2, remote_switching=True,
                   eq5_approximate=True),
        {
            "total_cycles": 15509,
            "per_layer_cycles": [13166, 2343],
            "utilization": 0.47160519698239733,
            "converged_rounds": [3, 6, 3, 3],
        },
    ),
]

IDS = [case[0] for case in GOLDEN]


@pytest.fixture(params=GOLDEN, ids=IDS)
def golden_case(request):
    label, spec, config, expected = request.param
    return GcnAccelerator(spec.build(), config), expected


class TestGoldenCycles:
    def test_total_cycles_pinned(self, golden_case):
        accel, expected = golden_case
        report = accel.run()
        assert report.total_cycles == expected["total_cycles"]

    def test_per_layer_cycles_pinned(self, golden_case):
        accel, expected = golden_case
        report = accel.run()
        assert report.per_layer_cycles() == expected["per_layer_cycles"]

    def test_utilization_pinned(self, golden_case):
        accel, expected = golden_case
        report = accel.run()
        # Utilization is cycles-derived, so it is equally deterministic;
        # the tolerance only absorbs float formatting, not model drift.
        assert report.utilization == pytest.approx(
            expected["utilization"], abs=1e-12
        )

    def test_convergence_rounds_pinned(self, golden_case):
        accel, expected = golden_case
        report = accel.run()
        rounds = [r.converged_round for r in report.spmm_results]
        assert rounds == expected["converged_rounds"]

    def test_rerun_is_bit_stable(self, golden_case):
        accel, _expected = golden_case
        assert accel.run().total_cycles == accel.run().total_cycles

    def test_cache_replay_matches_golden(self, golden_case):
        # The frozen fast path must hit the same pinned numbers — the
        # cache is a simulation shortcut, not a model change.
        accel, expected = golden_case
        cache = AutotuneCache()
        accel.run(cache=cache)
        replay = accel.run(cache=cache)
        assert replay.cache_hit
        assert replay.total_cycles == expected["total_cycles"]
        assert replay.per_layer_cycles() == expected["per_layer_cycles"]
