"""Golden-value regression tests for the accelerator cycle model.

Three fixed-seed RMAT workloads through :class:`GcnAccelerator`, with
total cycles, per-layer cycles, utilization and tuner convergence rounds
pinned to the values the model produced when these tests were written.

These exist so performance refactors (vectorized kernels, cache fast
paths, Hall-bound rewrites) cannot silently change model *semantics*:
any legitimate modeling change must update these numbers in the same
commit, consciously. The inputs are fully seeded and the model is
deterministic, so exact equality is the right assertion — approximate
comparison would let off-by-one cycle drift through.
"""

import pytest

from repro.accel import ArchConfig, GcnAccelerator
from repro.cluster import ClusterConfig, simulate_multichip_gcn
from repro.serve import AutotuneCache, RmatGraphSpec

GOLDEN = [
    # (label, graph spec, arch config, expected)
    (
        "baseline-static",
        RmatGraphSpec(n_nodes=1024, avg_degree=8, f1=48, f2=16, f3=8,
                      seed=101),
        ArchConfig(n_pes=64, hop=0, remote_switching=False),
        {
            "total_cycles": 20408,
            "per_layer_cycles": [13511, 6897],
            "utilization": 0.2713886711093689,
            "converged_rounds": [None, None, None, None],
        },
    ),
    (
        "awb-balanced",
        RmatGraphSpec(n_nodes=1024, avg_degree=8, f1=48, f2=16, f3=8,
                      seed=202),
        ArchConfig(n_pes=64, hop=1, remote_switching=True),
        {
            "total_cycles": 6723,
            "per_layer_cycles": [4252, 2471],
            "utilization": 0.8286479250334672,
            "converged_rounds": [3, None, 3, 3],
        },
    ),
    (
        "awb-hub-heavy",
        RmatGraphSpec(n_nodes=2048, avg_degree=12, f1=32, f2=24, f3=4,
                      seed=303, abcd=(0.6, 0.15, 0.15, 0.1)),
        ArchConfig(n_pes=128, hop=2, remote_switching=True,
                   eq5_approximate=True),
        {
            "total_cycles": 15509,
            "per_layer_cycles": [13166, 2343],
            "utilization": 0.47160519698239733,
            "converged_rounds": [3, 6, 3, 3],
        },
    ),
]

IDS = [case[0] for case in GOLDEN]


@pytest.fixture(params=GOLDEN, ids=IDS)
def golden_case(request):
    label, spec, config, expected = request.param
    return GcnAccelerator(spec.build(), config), expected


class TestGoldenCycles:
    def test_total_cycles_pinned(self, golden_case):
        accel, expected = golden_case
        report = accel.run()
        assert report.total_cycles == expected["total_cycles"]

    def test_per_layer_cycles_pinned(self, golden_case):
        accel, expected = golden_case
        report = accel.run()
        assert report.per_layer_cycles() == expected["per_layer_cycles"]

    def test_utilization_pinned(self, golden_case):
        accel, expected = golden_case
        report = accel.run()
        # Utilization is cycles-derived, so it is equally deterministic;
        # the tolerance only absorbs float formatting, not model drift.
        assert report.utilization == pytest.approx(
            expected["utilization"], abs=1e-12
        )

    def test_convergence_rounds_pinned(self, golden_case):
        accel, expected = golden_case
        report = accel.run()
        rounds = [r.converged_round for r in report.spmm_results]
        assert rounds == expected["converged_rounds"]

    def test_rerun_is_bit_stable(self, golden_case):
        accel, _expected = golden_case
        assert accel.run().total_cycles == accel.run().total_cycles

    def test_cache_replay_matches_golden(self, golden_case):
        # The frozen fast path must hit the same pinned numbers — the
        # cache is a simulation shortcut, not a model change.
        accel, expected = golden_case
        cache = AutotuneCache()
        accel.run(cache=cache)
        replay = accel.run(cache=cache)
        assert replay.cache_hit
        assert replay.total_cycles == expected["total_cycles"]
        assert replay.per_layer_cycles() == expected["per_layer_cycles"]


SHARDED_SPEC = RmatGraphSpec(
    n_nodes=2048, avg_degree=12, f1=32, f2=24, f3=4, seed=404,
    abcd=(0.62, 0.16, 0.16, 0.06),
)
SHARDED_CLUSTER = ClusterConfig(
    n_chips=4,
    chip=ArchConfig(n_pes=64, hop=1, remote_switching=True),
    link_words_per_cycle=16.0,
)
SHARDED_GOLDEN = {
    "total_cycles": 10974,
    "layer_cycles": (9320, 1622),
    "migration_cycles": 32,
    "migrated_blocks": 1,
    "utilization": 0.32811503326043373,
    "per_chip_cycles": [9198, 5799, 6247, 4854],
}


class TestGoldenShardedCycles:
    """Pinned multi-chip outcome for one hub-heavy sharded RMAT config.

    Covers the whole cluster pipeline: partitioning, chip-level Eq. 5
    boundary diffusion (one block migrates in this config), per-chip
    simulation, halo/barrier composition and migration pricing. Any
    legitimate change to the multi-chip model must update these numbers
    consciously, in the same commit.
    """

    def _report(self, cache=None):
        return simulate_multichip_gcn(
            SHARDED_SPEC.build(), SHARDED_CLUSTER, cache=cache
        )

    def test_total_and_layer_cycles_pinned(self):
        report = self._report()
        assert report.total_cycles == SHARDED_GOLDEN["total_cycles"]
        assert report.layer_cycles == SHARDED_GOLDEN["layer_cycles"]

    def test_rebalance_and_migration_pinned(self):
        report = self._report()
        assert report.migration_cycles == SHARDED_GOLDEN["migration_cycles"]
        assert (
            report.rebalance.migrated_blocks
            == SHARDED_GOLDEN["migrated_blocks"]
        )

    def test_per_chip_cycles_pinned(self):
        report = self._report()
        assert [
            r.total_cycles for r in report.chip_reports
        ] == SHARDED_GOLDEN["per_chip_cycles"]

    def test_utilization_pinned(self):
        assert self._report().utilization == pytest.approx(
            SHARDED_GOLDEN["utilization"], abs=1e-12
        )

    def test_cache_replay_matches_golden(self):
        cache = AutotuneCache()
        self._report(cache=cache)
        replay = self._report(cache=cache)
        assert replay.cache_hit
        assert replay.total_cycles == SHARDED_GOLDEN["total_cycles"]
        assert replay.layer_cycles == SHARDED_GOLDEN["layer_cycles"]


HETERO_CLUSTER = ClusterConfig(
    n_chips=4,
    chips=(
        ArchConfig(n_pes=64, hop=1, remote_switching=True),
        ArchConfig(n_pes=32, hop=1, remote_switching=True,
                   frequency_mhz=220.0),
        ArchConfig(n_pes=64, hop=1, remote_switching=True),
        ArchConfig(n_pes=32, hop=1, remote_switching=True,
                   frequency_mhz=220.0),
    ),
    link_words_per_cycle=8.0,
    topology="ring",
    hop_latency_cycles=8,
    overlap=True,
    rebalance_signal="cycles",
)
HETERO_GOLDEN = {
    "total_cycles": 10533,
    "layer_cycles": (7851, 2496),
    "migration_cycles": 186,
    "migrated_blocks": 1,
    "utilization": 0.4883609845248268,
    "per_chip_cycles": [8904, 5357, 7021, 6142],
    "comm_cycles": 439,
}


class TestGoldenHeteroRingCycles:
    """Pinned outcome for one heterogeneous ring-fabric overlapped config.

    Exercises every new cluster-model layer at once: big/little chips at
    different clocks (capacity-normalized partitioning plus
    reference-clock composition), shortest-path ring routing with
    per-hop latency and link contention, double-buffered halo overlap,
    and cycle-feedback rebalancing. Any legitimate change to any of
    those layers must update these numbers consciously, in the same
    commit.
    """

    def _report(self, cache=None):
        return simulate_multichip_gcn(
            SHARDED_SPEC.build(), HETERO_CLUSTER, cache=cache
        )

    def test_total_and_layer_cycles_pinned(self):
        report = self._report()
        assert report.total_cycles == HETERO_GOLDEN["total_cycles"]
        assert report.layer_cycles == HETERO_GOLDEN["layer_cycles"]

    def test_rebalance_and_migration_pinned(self):
        report = self._report()
        assert report.migration_cycles == HETERO_GOLDEN["migration_cycles"]
        assert (
            report.rebalance.migrated_blocks
            == HETERO_GOLDEN["migrated_blocks"]
        )
        assert report.rebalance.signal == "cycles"

    def test_per_chip_and_comm_cycles_pinned(self):
        report = self._report()
        assert [
            r.total_cycles for r in report.chip_reports
        ] == HETERO_GOLDEN["per_chip_cycles"]
        assert report.comm_cycles == HETERO_GOLDEN["comm_cycles"]

    def test_utilization_pinned(self):
        assert self._report().utilization == pytest.approx(
            HETERO_GOLDEN["utilization"], abs=1e-12
        )

    def test_cache_replay_matches_golden(self):
        cache = AutotuneCache()
        self._report(cache=cache)
        replay = self._report(cache=cache)
        assert replay.cache_hit
        assert replay.total_cycles == HETERO_GOLDEN["total_cycles"]
        assert replay.layer_cycles == HETERO_GOLDEN["layer_cycles"]
