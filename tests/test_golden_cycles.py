"""Golden-value regression tests for the accelerator cycle model.

Three fixed-seed RMAT workloads through :class:`GcnAccelerator`, with
total cycles, per-layer cycles, utilization and tuner convergence rounds
pinned to the values the model produced when these tests were written.

These exist so performance refactors (vectorized kernels, cache fast
paths, Hall-bound rewrites) cannot silently change model *semantics*:
any legitimate modeling change must update these numbers in the same
commit, consciously. The inputs are fully seeded and the model is
deterministic, so exact equality is the right assertion — approximate
comparison would let off-by-one cycle drift through.
"""

import pytest

from repro.accel import ArchConfig, GcnAccelerator
from repro.cluster import ClusterConfig, simulate_multichip_gcn
from repro.serve import (
    AutotuneCache,
    RmatGraphSpec,
    mixed_traffic,
    serve_requests,
)

GOLDEN = [
    # (label, graph spec, arch config, expected)
    (
        "baseline-static",
        RmatGraphSpec(n_nodes=1024, avg_degree=8, f1=48, f2=16, f3=8,
                      seed=101),
        ArchConfig(n_pes=64, hop=0, remote_switching=False),
        {
            "total_cycles": 20408,
            "per_layer_cycles": [13511, 6897],
            "utilization": 0.2713886711093689,
            "converged_rounds": [None, None, None, None],
        },
    ),
    (
        "awb-balanced",
        RmatGraphSpec(n_nodes=1024, avg_degree=8, f1=48, f2=16, f3=8,
                      seed=202),
        ArchConfig(n_pes=64, hop=1, remote_switching=True),
        {
            "total_cycles": 6723,
            "per_layer_cycles": [4252, 2471],
            "utilization": 0.8286479250334672,
            "converged_rounds": [3, None, 3, 3],
        },
    ),
    (
        "awb-hub-heavy",
        RmatGraphSpec(n_nodes=2048, avg_degree=12, f1=32, f2=24, f3=4,
                      seed=303, abcd=(0.6, 0.15, 0.15, 0.1)),
        ArchConfig(n_pes=128, hop=2, remote_switching=True,
                   eq5_approximate=True),
        {
            "total_cycles": 15509,
            "per_layer_cycles": [13166, 2343],
            "utilization": 0.47160519698239733,
            "converged_rounds": [3, 6, 3, 3],
        },
    ),
]

IDS = [case[0] for case in GOLDEN]


@pytest.fixture(params=GOLDEN, ids=IDS)
def golden_case(request):
    label, spec, config, expected = request.param
    return GcnAccelerator(spec.build(), config), expected


class TestGoldenCycles:
    def test_total_cycles_pinned(self, golden_case):
        accel, expected = golden_case
        report = accel.run()
        assert report.total_cycles == expected["total_cycles"]

    def test_per_layer_cycles_pinned(self, golden_case):
        accel, expected = golden_case
        report = accel.run()
        assert report.per_layer_cycles() == expected["per_layer_cycles"]

    def test_utilization_pinned(self, golden_case):
        accel, expected = golden_case
        report = accel.run()
        # Utilization is cycles-derived, so it is equally deterministic;
        # the tolerance only absorbs float formatting, not model drift.
        assert report.utilization == pytest.approx(
            expected["utilization"], abs=1e-12
        )

    def test_convergence_rounds_pinned(self, golden_case):
        accel, expected = golden_case
        report = accel.run()
        rounds = [r.converged_round for r in report.spmm_results]
        assert rounds == expected["converged_rounds"]

    def test_rerun_is_bit_stable(self, golden_case):
        accel, _expected = golden_case
        assert accel.run().total_cycles == accel.run().total_cycles

    def test_cache_replay_matches_golden(self, golden_case):
        # The frozen fast path must hit the same pinned numbers — the
        # cache is a simulation shortcut, not a model change.
        accel, expected = golden_case
        cache = AutotuneCache()
        accel.run(cache=cache)
        replay = accel.run(cache=cache)
        assert replay.cache_hit
        assert replay.total_cycles == expected["total_cycles"]
        assert replay.per_layer_cycles() == expected["per_layer_cycles"]


SHARDED_SPEC = RmatGraphSpec(
    n_nodes=2048, avg_degree=12, f1=32, f2=24, f3=4, seed=404,
    abcd=(0.62, 0.16, 0.16, 0.06),
)
SHARDED_CLUSTER = ClusterConfig(
    n_chips=4,
    chip=ArchConfig(n_pes=64, hop=1, remote_switching=True),
    link_words_per_cycle=16.0,
)
SHARDED_GOLDEN = {
    "total_cycles": 10974,
    "layer_cycles": (9320, 1622),
    "migration_cycles": 32,
    "migrated_blocks": 1,
    "utilization": 0.32811503326043373,
    "per_chip_cycles": [9198, 5799, 6247, 4854],
}


class TestGoldenShardedCycles:
    """Pinned multi-chip outcome for one hub-heavy sharded RMAT config.

    Covers the whole cluster pipeline: partitioning, chip-level Eq. 5
    boundary diffusion (one block migrates in this config), per-chip
    simulation, halo/barrier composition and migration pricing. Any
    legitimate change to the multi-chip model must update these numbers
    consciously, in the same commit.
    """

    def _report(self, cache=None):
        return simulate_multichip_gcn(
            SHARDED_SPEC.build(), SHARDED_CLUSTER, cache=cache
        )

    def test_total_and_layer_cycles_pinned(self):
        report = self._report()
        assert report.total_cycles == SHARDED_GOLDEN["total_cycles"]
        assert report.layer_cycles == SHARDED_GOLDEN["layer_cycles"]

    def test_rebalance_and_migration_pinned(self):
        report = self._report()
        assert report.migration_cycles == SHARDED_GOLDEN["migration_cycles"]
        assert (
            report.rebalance.migrated_blocks
            == SHARDED_GOLDEN["migrated_blocks"]
        )

    def test_per_chip_cycles_pinned(self):
        report = self._report()
        assert [
            r.total_cycles for r in report.chip_reports
        ] == SHARDED_GOLDEN["per_chip_cycles"]

    def test_utilization_pinned(self):
        assert self._report().utilization == pytest.approx(
            SHARDED_GOLDEN["utilization"], abs=1e-12
        )

    def test_cache_replay_matches_golden(self):
        cache = AutotuneCache()
        self._report(cache=cache)
        replay = self._report(cache=cache)
        assert replay.cache_hit
        assert replay.total_cycles == SHARDED_GOLDEN["total_cycles"]
        assert replay.layer_cycles == SHARDED_GOLDEN["layer_cycles"]


HETERO_CLUSTER = ClusterConfig(
    n_chips=4,
    chips=(
        ArchConfig(n_pes=64, hop=1, remote_switching=True),
        ArchConfig(n_pes=32, hop=1, remote_switching=True,
                   frequency_mhz=220.0),
        ArchConfig(n_pes=64, hop=1, remote_switching=True),
        ArchConfig(n_pes=32, hop=1, remote_switching=True,
                   frequency_mhz=220.0),
    ),
    link_words_per_cycle=8.0,
    topology="ring",
    hop_latency_cycles=8,
    overlap=True,
    rebalance_signal="cycles",
)
HETERO_GOLDEN = {
    "total_cycles": 10533,
    "layer_cycles": (7851, 2496),
    "migration_cycles": 186,
    "migrated_blocks": 1,
    "utilization": 0.4883609845248268,
    "per_chip_cycles": [8904, 5357, 7021, 6142],
    "comm_cycles": 439,
}


class TestGoldenHeteroRingCycles:
    """Pinned outcome for one heterogeneous ring-fabric overlapped config.

    Exercises every new cluster-model layer at once: big/little chips at
    different clocks (capacity-normalized partitioning plus
    reference-clock composition), shortest-path ring routing with
    per-hop latency and link contention, double-buffered halo overlap,
    and cycle-feedback rebalancing. Any legitimate change to any of
    those layers must update these numbers consciously, in the same
    commit.
    """

    def _report(self, cache=None):
        return simulate_multichip_gcn(
            SHARDED_SPEC.build(), HETERO_CLUSTER, cache=cache
        )

    def test_total_and_layer_cycles_pinned(self):
        report = self._report()
        assert report.total_cycles == HETERO_GOLDEN["total_cycles"]
        assert report.layer_cycles == HETERO_GOLDEN["layer_cycles"]

    def test_rebalance_and_migration_pinned(self):
        report = self._report()
        assert report.migration_cycles == HETERO_GOLDEN["migration_cycles"]
        assert (
            report.rebalance.migrated_blocks
            == HETERO_GOLDEN["migrated_blocks"]
        )
        assert report.rebalance.signal == "cycles"

    def test_per_chip_and_comm_cycles_pinned(self):
        report = self._report()
        assert [
            r.total_cycles for r in report.chip_reports
        ] == HETERO_GOLDEN["per_chip_cycles"]
        assert report.comm_cycles == HETERO_GOLDEN["comm_cycles"]

    def test_utilization_pinned(self):
        assert self._report().utilization == pytest.approx(
            HETERO_GOLDEN["utilization"], abs=1e-12
        )

    def test_cache_replay_matches_golden(self):
        cache = AutotuneCache()
        self._report(cache=cache)
        replay = self._report(cache=cache)
        assert replay.cache_hit
        assert replay.total_cycles == HETERO_GOLDEN["total_cycles"]
        assert replay.layer_cycles == HETERO_GOLDEN["layer_cycles"]


MIXED_GOLDEN = {
    "per_request_cycles": [
        1012, 1008, 1008, 1008, 2981, 1000, 1000, 1000, 1012, 563, 563,
        3012, 584, 3012,
    ],
    "dispatch_order": [0, 1, 2, 3, 4, 5, 6, 7, 8, 11, 9, 10, 13, 12],
    "n_sharded": 3,
    "n_backfilled": 0,
    "n_preemptions": 1,
    "n_batches": 7,
    "total_cycles": 18763,
    "makespan_seconds": 0.007122687585579903,
}


class TestGoldenMixedCoscheduled:
    """Pinned co-scheduled serving trace for one fixed-seed mixed load.

    One :func:`mixed_traffic` trace — critical smalls, batch queries and
    full-pool sharded jobs — through a 4-instance pool with
    ``coschedule=True``. Pins every request's modeled cycle total and
    the dispatch order (ties broken by request id), plus the scheduling
    counters: this trace fires one boundary preemption, so any change
    to the claim/preempt/resume machinery, the priority classes or the
    shared-fabric pricing must update these numbers consciously. The
    off-mode twin of this guarantee lives in the oracle-identity tests
    of ``tests/test_serve_mixedload.py``.
    """

    def _outcome(self):
        config = ArchConfig(n_pes=16, hop=1, remote_switching=True)
        requests = mixed_traffic(
            14, arrival_rate=1500.0, chip_capacity=256, seed=6,
            configs=(config,), sharded_nodes=900, sharded_fraction=0.3,
            critical_fraction=0.3, avg_degree=6,
            graph_kwargs={"f1": 16, "f2": 8, "f3": 4},
        )
        return serve_requests(
            requests, n_workers=4, chip_capacity=256,
            coschedule=True, critical_slo_ms=1.0,
        )

    def test_per_request_cycles_pinned(self):
        outcome = self._outcome()
        assert [
            r.total_cycles for r in outcome.results
        ] == MIXED_GOLDEN["per_request_cycles"]
        assert outcome.stats.total_cycles == MIXED_GOLDEN["total_cycles"]

    def test_dispatch_order_pinned(self):
        outcome = self._outcome()
        order = [
            r.request_id
            for r in sorted(
                outcome.results,
                key=lambda r: (r.start_time, r.request_id),
            )
        ]
        assert order == MIXED_GOLDEN["dispatch_order"]

    def test_scheduling_counters_pinned(self):
        stats = self._outcome().stats
        assert stats.n_sharded == MIXED_GOLDEN["n_sharded"]
        assert stats.n_backfilled == MIXED_GOLDEN["n_backfilled"]
        assert stats.n_preemptions == MIXED_GOLDEN["n_preemptions"]
        assert stats.n_batches == MIXED_GOLDEN["n_batches"]
        assert stats.makespan_seconds == pytest.approx(
            MIXED_GOLDEN["makespan_seconds"], abs=1e-15
        )

    def test_preempted_job_is_reported(self):
        results = self._outcome().results
        preempted = [r for r in results if r.preemptions > 0]
        assert len(preempted) == 1
        assert preempted[0].n_shards == 4
