"""Dataset assembly: normalization, features, specs, registry."""

import numpy as np
import pytest

from repro.datasets import (
    GcnDataset,
    add_self_loops,
    build_dataset,
    dataset_names,
    dense_weight_matrix,
    gcn_normalize,
    get_spec,
    load_dataset,
    sample_row_nnz,
    sparse_feature_matrix,
)
from repro.datasets.registry import cache_info, clear_dataset_cache
from repro.errors import DatasetError, ShapeError
from repro.sparse import CooMatrix


class TestNormalize:
    def test_self_loops_added(self):
        adj = CooMatrix((3, 3), [0, 1], [1, 2], [1.0, 1.0])
        with_loops = add_self_loops(adj)
        dense = with_loops.to_dense()
        assert np.all(np.diag(dense) == 1.0)

    def test_existing_loop_incremented(self):
        adj = CooMatrix((2, 2), [0], [0], [2.0])
        assert add_self_loops(adj).to_dense()[0, 0] == 3.0

    def test_normalization_formula(self):
        adj = CooMatrix((2, 2), [0, 1], [1, 0], [1.0, 1.0])
        norm = gcn_normalize(adj).to_dense()
        # A + I = [[1,1],[1,1]], D = diag(2,2) -> all entries 1/2.
        assert np.allclose(norm, np.full((2, 2), 0.5))

    def test_spectral_radius_bounded(self, tiny_cora):
        # Symmetric normalization bounds the spectral radius by 1.
        dense = tiny_cora.adjacency.to_dense()
        top = np.abs(np.linalg.eigvalsh(dense)).max()
        assert top <= 1.0 + 1e-9

    def test_isolated_node_stays_zero(self):
        adj = CooMatrix((3, 3), [0], [1], [1.0])
        norm = gcn_normalize(adj, add_loops=False).to_dense()
        assert np.all(norm[2] == 0.0)

    def test_non_square_raises(self):
        with pytest.raises(ShapeError):
            gcn_normalize(CooMatrix.empty((2, 3)))

    def test_symmetry_preserved(self, tiny_cora):
        dense = tiny_cora.adjacency.to_dense()
        assert np.allclose(dense, dense.T)


class TestFeatures:
    def test_density_close_to_target(self):
        feats = sparse_feature_matrix(500, 200, 0.05, rng=1)
        assert feats.density == pytest.approx(0.05, rel=0.25)

    def test_values_positive(self):
        feats = sparse_feature_matrix(100, 50, 0.1, rng=2)
        assert feats.vals.min() > 0

    def test_row_skew_zero_uniform(self):
        counts = sample_row_nnz(1000, 100, 0.1, rng=3, row_skew=0.0)
        assert counts.std() == 0

    def test_row_skew_positive_varies(self):
        counts = sample_row_nnz(1000, 100, 0.1, rng=4, row_skew=1.0)
        assert counts.std() > 0

    def test_counts_clipped_to_columns(self):
        counts = sample_row_nnz(100, 10, 0.99, rng=5, row_skew=2.0)
        assert counts.max() <= 10

    def test_weight_matrix_shape_and_scale(self):
        w = dense_weight_matrix(64, 16, rng=6)
        assert w.shape == (64, 16)
        limit = np.sqrt(6.0 / 80)
        assert np.abs(w).max() <= limit


class TestSpecs:
    def test_five_datasets(self):
        assert dataset_names() == [
            "cora", "citeseer", "pubmed", "nell", "reddit",
        ]

    def test_table1_dimensions(self):
        spec = get_spec("cora").full
        assert (spec.nodes, spec.f1, spec.f2, spec.f3) == (2708, 1433, 16, 7)
        spec = get_spec("nell").full
        assert (spec.nodes, spec.f1, spec.f2, spec.f3) == (
            65755, 61278, 64, 186,
        )
        spec = get_spec("reddit").full
        assert (spec.nodes, spec.f1) == (232965, 602)

    def test_case_insensitive(self):
        assert get_spec("CORA").name == "cora"

    def test_unknown_raises(self):
        with pytest.raises(DatasetError):
            get_spec("imagenet")

    def test_unknown_preset_raises(self):
        with pytest.raises(DatasetError):
            get_spec("cora").preset("huge")

    def test_mean_degree_preserved_in_scaled_reddit(self):
        spec = get_spec("reddit")
        full_degree = spec.full.mean_degree
        scaled_degree = spec.scaled.mean_degree
        assert scaled_degree == pytest.approx(full_degree, rel=0.35)


class TestBuildDataset:
    def test_summary_mentions_name(self, tiny_cora):
        assert "cora" in tiny_cora.summary()

    def test_deterministic(self):
        a = build_dataset("cora", "tiny", seed=11)
        b = build_dataset("cora", "tiny", seed=11)
        assert a.adjacency == b.adjacency
        assert np.array_equal(a.weights[0], b.weights[0])

    def test_seed_changes_graph(self):
        a = build_dataset("cora", "tiny", seed=11)
        b = build_dataset("cora", "tiny", seed=12)
        assert a.adjacency != b.adjacency

    def test_density_near_spec(self, tiny_cora):
        spec = get_spec("cora").tiny
        assert tiny_cora.adjacency.density == pytest.approx(
            spec.a_density, rel=0.5
        )

    def test_feature_dims(self, tiny_cora):
        f1, f2, f3 = tiny_cora.feature_dims
        spec = get_spec("cora").tiny
        assert (f1, f2, f3) == (spec.f1, spec.f2, spec.f3)

    def test_layer_dims_chain(self, tiny_cora):
        dims = tiny_cora.layer_dims()
        assert dims[0][2] == dims[1][1]

    def test_pattern_only_mode(self):
        ds = build_dataset("cora", "tiny", seed=5, materialize=False)
        assert not ds.has_numeric_features
        assert ds.features is None
        assert ds.x1_row_nnz.sum() > 0

    def test_nell_is_most_skewed(self, tiny_cora, tiny_nell):
        from repro.sparse import distribution_stats

        cora_gini = distribution_stats(tiny_cora.adjacency.row_nnz()).gini
        nell_gini = distribution_stats(tiny_nell.adjacency.row_nnz()).gini
        assert nell_gini > cora_gini


class TestRegistry:
    def test_cache_returns_same_object(self):
        clear_dataset_cache()
        a = load_dataset("cora", "tiny", seed=99)
        b = load_dataset("cora", "tiny", seed=99)
        assert a is b

    def test_cache_key_includes_seed(self):
        a = load_dataset("cora", "tiny", seed=98)
        b = load_dataset("cora", "tiny", seed=97)
        assert a is not b

    def test_cache_info_lists_keys(self):
        clear_dataset_cache()
        load_dataset("cora", "tiny", seed=96)
        assert any(key[0] == "cora" for key in cache_info())

    def test_unknown_preset_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("cora", "gigantic")

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("mnist")
