"""Direct unit tests for the TDQ-1 and TDQ-2 dispatchers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hw import OmegaNetwork, ProcessingElement, Tdq1Dispatcher, Tdq2Dispatcher
from repro.hw.dispatch import choose_target
from repro.sparse import CooMatrix, coo_to_csc


def make_pes(n, **kwargs):
    return [ProcessingElement(i, **kwargs) for i in range(n)]


class TestChooseTarget:
    def test_hop_zero_keeps_owner(self):
        pes = make_pes(4)
        assert choose_target(2, 0, pes) == 2

    def test_prefers_least_pending_neighbour(self):
        pes = make_pes(4)
        from repro.hw.task import Task

        for _ in range(5):
            pes[1].queues.push(Task(row=0, a_val=1, b_val=1, owner=1))
        assert choose_target(1, 1, pes) in (0, 2)

    def test_ties_break_to_owner(self):
        pes = make_pes(4)
        assert choose_target(1, 1, pes) == 1

    def test_window_clipped_at_edges(self):
        pes = make_pes(4)
        assert choose_target(0, 2, pes) in (0, 1, 2)
        assert choose_target(3, 2, pes) in (1, 2, 3)


class TestTdq1:
    @pytest.fixture
    def setup(self, rng):
        dense = rng.normal(size=(8, 6))
        dense[rng.random(dense.shape) > 0.5] = 0.0
        pes = make_pes(4)
        owner = np.repeat(np.arange(4), 2)
        dispatcher = Tdq1Dispatcher(dense, owner, pes, scan_bandwidth=16)
        return dense, pes, dispatcher

    def test_all_nonzeros_dispatched(self, setup):
        dense, pes, dispatcher = setup
        dispatcher.start_column(np.ones(6))
        while not dispatcher.exhausted:
            dispatcher.step()
        queued = sum(pe.queues.pending for pe in pes)
        assert queued == np.count_nonzero(dense)

    def test_tasks_carry_product_operands(self, setup):
        dense, pes, dispatcher = setup
        b_col = np.arange(6, dtype=float)
        dispatcher.start_column(b_col)
        while not dispatcher.exhausted:
            dispatcher.step()
        # Pull one task and check its payload against the matrix.
        for pe in pes:
            task, _ = pe.queues.pop_non_hazard(set())
            if task is not None:
                row = task.row
                col_matches = [
                    c for c in range(6)
                    if dense[row, c] == task.a_val and b_col[c] == task.b_val
                ]
                assert col_matches
                break

    def test_scan_bandwidth_limits_per_step(self, rng):
        dense = rng.normal(size=(8, 8))  # fully dense
        pes = make_pes(4)
        owner = np.repeat(np.arange(4), 2)
        dispatcher = Tdq1Dispatcher(dense, owner, pes, scan_bandwidth=8)
        dispatcher.start_column(np.ones(8))
        dispatcher.step()
        assert sum(pe.queues.pending for pe in pes) == 8

    def test_requires_start_column(self, setup):
        _dense, _pes, dispatcher = setup
        with pytest.raises(ConfigError):
            dispatcher.step()

    def test_default_bandwidth_scales_with_sparsity(self, rng):
        dense = np.zeros((8, 8))
        dense[0, 0] = 1.0  # extremely sparse
        pes = make_pes(4)
        owner = np.repeat(np.arange(4), 2)
        dispatcher = Tdq1Dispatcher(dense, owner, pes)
        # n_pes / (1 - sparsity): very sparse -> very wide scan.
        assert dispatcher.scan_bandwidth >= 8 * 8


class TestTdq2:
    @pytest.fixture
    def setup(self, rng):
        dense = rng.normal(size=(8, 6))
        dense[rng.random(dense.shape) > 0.5] = 0.0
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        pes = make_pes(8)
        owner = np.arange(8)
        network = OmegaNetwork(8)
        dispatcher = Tdq2Dispatcher(csc, owner, pes, network)
        return dense, csc, pes, network, dispatcher

    def test_stream_exhausts_after_nnz(self, setup):
        _dense, csc, _pes, network, dispatcher = setup
        dispatcher.start_column(np.ones(6))
        injected = 0
        for _ in range(100):
            injected += dispatcher.step()
            network.step()
            if dispatcher.exhausted:
                break
        assert injected == csc.nnz

    def test_delivery_reaches_owner_queues(self, setup):
        dense, csc, pes, network, dispatcher = setup
        dispatcher.start_column(np.ones(6))
        for _ in range(200):
            dispatcher.step()
            dispatcher.deliver(network.step())
            if dispatcher.exhausted and network.empty:
                break
        row_nnz = (dense != 0).sum(axis=1)
        for pe in range(8):
            assert pes[pe].queues.pending == row_nnz[pe]

    def test_owner_preserved_under_sharing(self, rng):
        dense = np.zeros((8, 8))
        dense[0, :] = rng.normal(size=8)  # all work owned by PE 0
        csc = coo_to_csc(CooMatrix.from_dense(dense))
        pes = make_pes(8)
        network = OmegaNetwork(8)
        dispatcher = Tdq2Dispatcher(
            csc, np.arange(8), pes, network, hop=2
        )
        dispatcher.start_column(np.ones(8))
        for _ in range(200):
            dispatcher.step()
            dispatcher.deliver(network.step())
            if dispatcher.exhausted and network.empty:
                break
        for pe in pes:
            task, _ = pe.queues.pop_non_hazard(set())
            while task is not None:
                assert task.owner == 0  # accumulation address unchanged
                task, _ = pe.queues.pop_non_hazard(set())
