"""RMAT generator: determinism, skew, hub injection."""

import numpy as np
import pytest

from repro.datasets import rmat_edges
from repro.datasets.rmat import inject_hub_cluster
from repro.errors import ConfigError


class TestRmatEdges:
    def test_edge_count_and_range(self):
        src, dst = rmat_edges(100, 300, rng=1)
        assert src.size == dst.size == 300
        assert src.min() >= 0 and src.max() < 100
        assert dst.min() >= 0 and dst.max() < 100

    def test_unique_pairs(self):
        src, dst = rmat_edges(64, 200, rng=2)
        keys = set(zip(src.tolist(), dst.tolist()))
        assert len(keys) == 200

    def test_deterministic(self):
        a = rmat_edges(128, 500, rng=3)
        b = rmat_edges(128, 500, rng=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_skew_increases_hub_concentration(self):
        flat = rmat_edges(256, 2000, abcd=(0.25, 0.25, 0.25, 0.25), rng=4)
        skewed = rmat_edges(256, 2000, abcd=(0.7, 0.1, 0.1, 0.1), rng=4)
        # Fraction of edges landing in the lowest-index quarter of rows.
        frac_flat = (flat[0] < 64).mean()
        frac_skew = (skewed[0] < 64).mean()
        assert frac_skew > frac_flat + 0.2

    def test_non_power_of_two_nodes(self):
        src, dst = rmat_edges(100, 150, rng=5)
        assert src.max() < 100 and dst.max() < 100

    def test_zero_edges(self):
        src, dst = rmat_edges(10, 0, rng=6)
        assert src.size == 0

    def test_dedupe_false_allows_duplicates(self):
        src, dst = rmat_edges(4, 40, rng=7, dedupe=False)
        assert src.size == 40  # 16 cells cannot hold 40 unique pairs

    def test_dense_request_returns_best_effort(self):
        # 16 cells, ask for 16 unique edges: should get close to all.
        src, _dst = rmat_edges(4, 16, rng=8)
        assert src.size >= 12

    def test_bad_abcd_raises(self):
        with pytest.raises(ConfigError):
            rmat_edges(10, 5, abcd=(0.5, 0.5, 0.5, 0.5))

    def test_negative_edges_raises(self):
        with pytest.raises(ConfigError):
            rmat_edges(10, -1)


class TestHubInjection:
    def test_hub_receives_fraction(self):
        src, dst = rmat_edges(300, 1000, rng=9)
        src2, dst2 = inject_hub_cluster(
            src, dst, 300, hub_nodes=10, fraction=0.5, rng=9
        )
        hub_start = 100
        in_hub = (
            (dst2 >= hub_start) & (dst2 < hub_start + 10)
        ).mean()
        assert in_hub >= 0.45

    def test_inputs_not_mutated(self):
        src, dst = rmat_edges(300, 500, rng=10)
        src_copy, dst_copy = src.copy(), dst.copy()
        inject_hub_cluster(src, dst, 300, hub_nodes=5, fraction=0.3, rng=1)
        assert np.array_equal(src, src_copy)
        assert np.array_equal(dst, dst_copy)

    def test_zero_fraction_is_identity(self):
        src, dst = rmat_edges(300, 500, rng=11)
        src2, dst2 = inject_hub_cluster(
            src, dst, 300, hub_nodes=5, fraction=0.0, rng=1
        )
        assert np.array_equal(src, src2) and np.array_equal(dst, dst2)

    def test_zipf_hub_degrees(self):
        # The first hub node must be much heavier than the last.
        src, dst = rmat_edges(1000, 5000, rng=12)
        _, dst2 = inject_hub_cluster(
            src, dst, 1000, hub_nodes=50, fraction=0.8, rng=2
        )
        hub_start = 1000 // 3
        first = (dst2 == hub_start).sum()
        last = (dst2 == hub_start + 49).sum()
        assert first > 5 * max(last, 1)

    def test_bad_fraction_raises(self):
        src, dst = rmat_edges(10, 5, rng=13)
        with pytest.raises(ConfigError):
            inject_hub_cluster(src, dst, 10, hub_nodes=2, fraction=1.5, rng=1)

    def test_hub_larger_than_graph_raises(self):
        src, dst = rmat_edges(10, 5, rng=14)
        with pytest.raises(ConfigError):
            inject_hub_cluster(src, dst, 10, hub_nodes=20, fraction=0.5, rng=1)
