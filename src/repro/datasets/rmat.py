"""Vectorized R-MAT edge generator.

R-MAT (recursive matrix) generators produce graphs whose degree
distribution follows a power law with tunable skew — the property the
paper identifies as the root cause of PE workload imbalance ("real-world
graphs often follow the power-law distribution"). Each edge is placed by
recursively descending a 2x2 quadrant grid with probabilities
``(a, b, c, d)``; uniform probabilities give an Erdos-Renyi-like graph,
skewed ones concentrate edges around low-index hub nodes.

The implementation draws all quadrant choices for all edges at one level
in a single vectorized pass, so Reddit-scale edge lists (tens of
millions) generate in seconds.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive_int


def edges_fingerprint(src, dst, n_nodes):
    """Structural hash of an edge list (order-insensitive).

    Two edge lists containing the same (src, dst) pairs — in any order,
    with duplicates collapsed — hash identically, so a regenerated RMAT
    graph can be recognized as "the same graph" by the serving layer's
    :class:`~repro.serve.AutotuneCache` without comparing edge lists.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.size != dst.size:
        raise ConfigError(
            f"src and dst must have equal length, got {src.size}, {dst.size}"
        )
    if src.size and (src.min() < 0 or src.max() >= n_nodes
                     or dst.min() < 0 or dst.max() >= n_nodes):
        raise ConfigError("edge endpoints out of range")
    keys = np.unique(src * np.int64(n_nodes) + dst)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.int64(n_nodes).tobytes())
    digest.update(np.ascontiguousarray(keys).tobytes())
    return digest.hexdigest()


def rmat_edges(n_nodes, n_edges, *, abcd=(0.45, 0.22, 0.22, 0.11), rng=None,
               dedupe=True, max_attempts=8):
    """Generate ``n_edges`` unique directed edges on ``n_nodes`` nodes.

    Parameters
    ----------
    n_nodes:
        Number of nodes; does not need to be a power of two (samples
        landing outside the range are redrawn).
    n_edges:
        Number of *unique* (src, dst) pairs requested. With very dense
        requests deduplication may converge slowly; after
        ``max_attempts`` oversampling rounds the function returns what it
        has (callers treat ``n_edges`` as a target, not a contract).
    abcd:
        RMAT quadrant probabilities; must sum to 1.
    dedupe:
        When False, duplicates are kept (useful for multigraph-style
        weighting).

    Returns
    -------
    (src, dst):
        Two int64 arrays of equal length.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    if n_edges < 0:
        raise ConfigError(f"n_edges must be >= 0, got {n_edges}")
    a, b, c, d = (float(x) for x in abcd)
    if min(a, b, c, d) < 0 or abs(a + b + c + d - 1.0) > 1e-9:
        raise ConfigError(f"abcd must be non-negative and sum to 1, got {abcd}")
    rng = rng_from_seed(rng)
    if n_edges == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty

    levels = max(int(np.ceil(np.log2(n_nodes))), 1)
    src_parts = []
    dst_parts = []
    seen = None
    need = n_edges
    for _attempt in range(max_attempts):
        batch = int(need * 1.35) + 16
        src, dst = _rmat_batch(batch, levels, (a, b, c, d), rng)
        in_range = (src < n_nodes) & (dst < n_nodes)
        src, dst = src[in_range], dst[in_range]
        if not dedupe:
            src_parts.append(src[:need])
            dst_parts.append(dst[:need])
            need -= min(need, src.size)
        else:
            keys = src * n_nodes + dst
            keys = np.unique(keys)
            if seen is None:
                seen = keys
            else:
                seen = np.union1d(seen, keys)
            need = n_edges - seen.size
        if need <= 0:
            break
    if dedupe:
        if seen is None:
            seen = np.zeros(0, dtype=np.int64)
        if seen.size > n_edges:
            # Drop a random subset to hit the target exactly; keep the
            # selection deterministic under the provided rng.
            keep = rng.choice(seen.size, size=n_edges, replace=False)
            seen = seen[np.sort(keep)]
        return seen // n_nodes, seen % n_nodes
    src = np.concatenate(src_parts) if src_parts else np.zeros(0, dtype=np.int64)
    dst = np.concatenate(dst_parts) if dst_parts else np.zeros(0, dtype=np.int64)
    return src, dst


def _rmat_batch(count, levels, abcd, rng):
    """Draw ``count`` RMAT coordinate pairs over ``levels`` bit levels."""
    a, b, c, d = abcd
    # Quadrant encoding: 0 -> (0,0), 1 -> (0,1), 2 -> (1,0), 3 -> (1,1).
    probs = np.array([a, b, c, d])
    cdf = np.cumsum(probs)
    src = np.zeros(count, dtype=np.int64)
    dst = np.zeros(count, dtype=np.int64)
    for _level in range(levels):
        draw = rng.random(count)
        quadrant = np.searchsorted(cdf, draw, side="right")
        src = (src << 1) | (quadrant >> 1)
        dst = (dst << 1) | (quadrant & 1)
    return src, dst


def inject_hub_cluster(src, dst, n_nodes, *, hub_nodes, fraction, rng):
    """Route ``fraction`` of the edges into a small hub-node cluster.

    The paper observes that Nell's non-zeros are "quite clustered",
    over-loading one or two PEs. RMAT skew alone spreads hubs across the
    low-index region; this post-pass rewires a fraction of edge endpoints
    into a contiguous block of ``hub_nodes`` nodes, recreating the dense
    blob visible in Fig. 13. Returns new ``(src, dst)`` arrays (the
    inputs are not modified).
    """
    rng = rng_from_seed(rng)
    hub_nodes = check_positive_int(hub_nodes, "hub_nodes")
    if hub_nodes > n_nodes:
        raise ConfigError(
            f"hub_nodes ({hub_nodes}) cannot exceed n_nodes ({n_nodes})"
        )
    if not 0.0 <= fraction <= 1.0:
        raise ConfigError(f"fraction must be in [0, 1], got {fraction}")
    src = np.array(src, dtype=np.int64, copy=True)
    dst = np.array(dst, dtype=np.int64, copy=True)
    n_edges = src.size
    n_rewire = int(round(fraction * n_edges))
    if n_rewire == 0:
        return src, dst
    # Place the hub block away from index 0 so it does not merge with the
    # RMAT hubs; one-third of the way in, like the mid-matrix blob of the
    # paper's Nell plot. Only destinations are rewired (a stripe): with
    # random sources the hub entries rarely collide, so deduplication
    # does not erode the cluster, and symmetrization makes the hub ROWS
    # heavy — exactly the row-side concentration that over-loads the PEs
    # owning those rows. Hub degrees follow a zipf-like law (weight
    # 1/(rank+1)): real NELL-style hubs are a few super-rows, not a
    # uniform block, so the heaviest row stays on one PE no matter how
    # finely rows are partitioned — this is what makes the baseline's
    # utilization *fall* as the PE count grows (paper Fig. 15).
    hub_start = n_nodes // 3
    chosen = rng.choice(n_edges, size=n_rewire, replace=False)
    weights = 1.0 / np.arange(1, hub_nodes + 1)
    weights /= weights.sum()
    dst[chosen] = hub_start + rng.choice(hub_nodes, size=n_rewire, p=weights)
    return src, dst
