"""Dataset persistence: save/load a ``GcnDataset`` as a single ``.npz``.

Generating the full Reddit-scale preset takes seconds and gigabytes of
transient memory; persisting the generated dataset lets benchmark runs
and notebooks share one artifact. The format is a plain numpy archive —
no pickle — so files are portable and safe to load.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.datasets.synthetic import GcnDataset
from repro.errors import DatasetError
from repro.sparse.coo import CooMatrix

_FORMAT_VERSION = 1


def save_dataset(dataset, path):
    """Write ``dataset`` to ``path`` (``.npz``); returns the path."""
    if not isinstance(dataset, GcnDataset):
        raise DatasetError(
            f"expected a GcnDataset, got {type(dataset).__name__}"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "name": np.array(dataset.name),
        "preset": np.array(dataset.preset),
        "seed": np.array(dataset.seed),
        "n_nodes": np.array(dataset.n_nodes),
        "adj_rows": dataset.adjacency.rows,
        "adj_cols": dataset.adjacency.cols,
        "adj_vals": dataset.adjacency.vals,
        "w1": dataset.weights[0],
        "w2": dataset.weights[1],
        "x1_row_nnz": dataset.x1_row_nnz,
        "x2_row_nnz": dataset.x2_row_nnz,
        "has_features": np.array(dataset.has_numeric_features),
    }
    if dataset.has_numeric_features:
        payload["feat_rows"] = dataset.features.rows
        payload["feat_cols"] = dataset.features.cols
        payload["feat_vals"] = dataset.features.vals
        payload["feat_n_cols"] = np.array(dataset.features.shape[1])
    np.savez_compressed(path, **payload)
    return path


def load_dataset_file(path):
    """Read a dataset written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such dataset file: {path}")
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported dataset file version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        n_nodes = int(archive["n_nodes"])
        adjacency = CooMatrix(
            (n_nodes, n_nodes),
            archive["adj_rows"],
            archive["adj_cols"],
            archive["adj_vals"],
        )
        features = None
        if bool(archive["has_features"]):
            features = CooMatrix(
                (n_nodes, int(archive["feat_n_cols"])),
                archive["feat_rows"],
                archive["feat_cols"],
                archive["feat_vals"],
            )
        return GcnDataset(
            name=str(archive["name"]),
            preset=str(archive["preset"]),
            seed=int(archive["seed"]),
            adjacency=adjacency,
            features=features,
            weights=[archive["w1"], archive["w2"]],
            x1_row_nnz=archive["x1_row_nnz"],
            x2_row_nnz=archive["x2_row_nnz"],
        )
