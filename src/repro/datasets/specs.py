"""Dataset specifications transcribed from the paper's Table 1.

Each :class:`DatasetSpec` records the published node count, adjacency
density, GCN layer dimensions (F1, F2, F3) and feature densities, plus
the generator's skew profile chosen so that the synthetic graph's
imbalance matches what the paper reports (e.g. Nell's non-zeros are
"quite clustered", giving the baseline only 13% PE utilization, while
Reddit "by itself is already very balanced" at 92%).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import DatasetError


@dataclass(frozen=True)
class PresetSpec:
    """Size parameters for one preset (full / scaled / tiny) of a dataset."""

    nodes: int
    a_density: float
    """Target density of the normalized adjacency (A + I included)."""
    f1: int
    f2: int
    f3: int
    x1_density: float
    x2_density: float
    """Observed density of the layer-2 input features (Table 1, X2 row)."""

    @property
    def a_nnz_target(self):
        """Target non-zero count of the normalized adjacency matrix."""
        return max(int(round(self.a_density * self.nodes * self.nodes)), self.nodes)

    @property
    def mean_degree(self):
        """Average non-zeros per adjacency row (including the self-loop)."""
        return self.a_nnz_target / self.nodes


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset with its presets and generator skew profile.

    ``rmat_abcd`` are the RMAT quadrant probabilities: the farther from
    uniform (0.25 each), the heavier the power-law tail. ``hub_fraction``
    routes that share of edges into a small clustered node set, which is
    how we reproduce Nell's extreme concentration.
    """

    name: str
    full: PresetSpec
    scaled: PresetSpec
    tiny: PresetSpec
    rmat_abcd: tuple = (0.45, 0.22, 0.22, 0.11)
    hub_fraction: float = 0.0
    hub_nodes: int = 0
    shuffle_fraction: float = 0.5
    """Fraction of node ids scattered after generation. RMAT concentrates
    hubs at low indices (remote imbalance, paper Fig. 2B); shuffling a
    fraction of ids converts that into local imbalance (Fig. 2A). Lower
    values keep the graph clustered."""
    notes: str = ""

    def preset(self, preset_name):
        """Return the :class:`PresetSpec` for ``preset_name``."""
        try:
            return getattr(self, preset_name)
        except AttributeError:
            raise DatasetError(
                f"unknown preset {preset_name!r}; expected full/scaled/tiny"
            )


def _tiny(full, nodes=300, f1=64):
    """Derive a tiny preset from a full one, preserving mean degree."""
    density = min(full.mean_degree / nodes, 0.5)
    return PresetSpec(
        nodes=nodes,
        a_density=density,
        f1=f1,
        f2=full.f2,
        f3=full.f3,
        x1_density=max(full.x1_density, 4.0 / f1),
        x2_density=full.x2_density,
    )


_CORA_FULL = PresetSpec(
    nodes=2708, a_density=0.0018, f1=1433, f2=16, f3=7,
    x1_density=0.0127, x2_density=0.780,
)
_CITESEER_FULL = PresetSpec(
    nodes=3327, a_density=0.0011, f1=3703, f2=16, f3=6,
    x1_density=0.0085, x2_density=0.891,
)
_PUBMED_FULL = PresetSpec(
    nodes=19717, a_density=0.00028, f1=500, f2=16, f3=3,
    x1_density=0.100, x2_density=0.776,
)
_NELL_FULL = PresetSpec(
    nodes=65755, a_density=0.000073, f1=61278, f2=64, f3=186,
    x1_density=0.00011, x2_density=0.864,
)
_REDDIT_FULL = PresetSpec(
    nodes=232965, a_density=0.00043, f1=602, f2=64, f3=41,
    x1_density=0.516, x2_density=0.600,
)

DATASET_SPECS = {
    "cora": DatasetSpec(
        name="cora",
        full=_CORA_FULL,
        # Cora is small; the scaled preset is the full preset.
        scaled=_CORA_FULL,
        tiny=_tiny(_CORA_FULL),
        rmat_abcd=(0.52, 0.19, 0.19, 0.10),
        shuffle_fraction=0.5,
        notes="moderate power-law; baseline utilization ~53% in the paper",
    ),
    "citeseer": DatasetSpec(
        name="citeseer",
        full=_CITESEER_FULL,
        scaled=_CITESEER_FULL,
        tiny=_tiny(_CITESEER_FULL),
        rmat_abcd=(0.45, 0.22, 0.22, 0.11),
        shuffle_fraction=0.65,
        notes="mild power-law; baseline utilization ~71%",
    ),
    "pubmed": DatasetSpec(
        name="pubmed",
        full=_PUBMED_FULL,
        scaled=_PUBMED_FULL,
        tiny=_tiny(_PUBMED_FULL),
        rmat_abcd=(0.55, 0.19, 0.19, 0.07),
        shuffle_fraction=0.35,
        notes="moderate power-law; baseline utilization ~69%",
    ),
    "nell": DatasetSpec(
        name="nell",
        full=_NELL_FULL,
        # Keep the full graph (316K nnz is cheap); shrink only the very
        # wide layer-1 feature dimension, preserving non-zeros per row.
        scaled=replace(_NELL_FULL, f1=4096, x1_density=0.00164),
        tiny=_tiny(_NELL_FULL, nodes=400),
        rmat_abcd=(0.62, 0.16, 0.16, 0.06),
        hub_fraction=0.55,
        hub_nodes=200,
        shuffle_fraction=0.05,
        notes=(
            "extremely clustered (paper: baseline utilization 13%, one or "
            "two PEs extremely over-utilized); needs 2/3-hop sharing"
        ),
    ),
    "reddit": DatasetSpec(
        name="reddit",
        full=_REDDIT_FULL,
        # Preserve the ~100 nnz/row mean degree at 16K nodes.
        scaled=PresetSpec(
            nodes=16384, a_density=0.0061, f1=602, f2=64, f3=41,
            x1_density=0.516, x2_density=0.600,
        ),
        tiny=_tiny(_REDDIT_FULL, nodes=400),
        rmat_abcd=(0.35, 0.25, 0.25, 0.15),
        shuffle_fraction=0.6,
        notes="heavy but near-balanced; baseline utilization ~92%",
    ),
}


def dataset_names():
    """The five evaluated dataset names, in the paper's order."""
    return ["cora", "citeseer", "pubmed", "nell", "reddit"]


def get_spec(name):
    """Look up a :class:`DatasetSpec` by name (case-insensitive)."""
    try:
        return DATASET_SPECS[name.lower()]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of {dataset_names()}"
        )
