"""Feature and weight matrix generation.

Layer-1 feature matrices in GCN datasets are raw per-node attributes
(bag-of-words, one-hot entity features) and are very sparse — Table 1
reports 0.011%-51.6% density. We generate them as Bernoulli-sparse
matrices with mildly skewed per-row densities (some documents are longer
than others), which is what makes the X*W SPMM's workload not perfectly
flat either.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.sparse.coo import CooMatrix
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_fraction, check_positive_int


def sparse_feature_matrix(n_rows, n_cols, density, *, rng=None, row_skew=0.5):
    """Generate a sparse feature matrix with the requested global density.

    Per-row non-zero counts are drawn from a lognormal around the mean
    implied by ``density`` (``row_skew`` is the lognormal sigma; 0 gives
    uniform rows). Values are positive floats in [0.5, 1.5], loosely like
    tf-idf weights. Returns a canonical :class:`CooMatrix`.
    """
    n_rows = check_positive_int(n_rows, "n_rows")
    n_cols = check_positive_int(n_cols, "n_cols")
    density = check_fraction(density, "density")
    if row_skew < 0:
        raise ConfigError(f"row_skew must be >= 0, got {row_skew}")
    rng = rng_from_seed(rng)
    row_counts = sample_row_nnz(
        n_rows, n_cols, density, rng=rng, row_skew=row_skew
    )
    total = int(row_counts.sum())
    if total == 0:
        return CooMatrix.empty((n_rows, n_cols))
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), row_counts)
    # Draw columns with replacement then dedupe per row; the density
    # target tolerates the tiny loss from collisions.
    cols = rng.integers(0, n_cols, size=total, dtype=np.int64)
    vals = rng.uniform(0.5, 1.5, size=total)
    return CooMatrix((n_rows, n_cols), rows, cols, vals)


def sample_row_nnz(n_rows, n_cols, density, *, rng=None, row_skew=0.5):
    """Sample per-row non-zero counts matching a global density target.

    This is the pattern-only path used for the ``full`` presets of Nell
    and Reddit, where materializing tens of millions of feature values
    would buy nothing: the accelerator's workload model only consumes
    per-row non-zero counts (see DESIGN.md Sec. 4).
    """
    rng = rng_from_seed(rng)
    mean_nnz = density * n_cols
    if row_skew == 0:
        counts = np.full(n_rows, mean_nnz)
    else:
        # lognormal with unit mean, sigma = row_skew
        counts = mean_nnz * rng.lognormal(
            mean=-0.5 * row_skew**2, sigma=row_skew, size=n_rows
        )
    counts = np.round(counts).astype(np.int64)
    np.clip(counts, 0, n_cols, out=counts)
    return counts


def dense_weight_matrix(n_in, n_out, *, rng=None):
    """Glorot-uniform dense weight matrix, as used for W(l) (always dense)."""
    n_in = check_positive_int(n_in, "n_in")
    n_out = check_positive_int(n_out, "n_out")
    rng = rng_from_seed(rng)
    limit = np.sqrt(6.0 / (n_in + n_out))
    return rng.uniform(-limit, limit, size=(n_in, n_out))
