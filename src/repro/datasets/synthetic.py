"""Assembly of complete synthetic GCN datasets.

A :class:`GcnDataset` bundles everything a 2-layer GCN inference needs:
the normalized adjacency, the layer-1 feature matrix (materialized or
pattern-only), and the two dense weight matrices. It also precomputes
the per-row non-zero counts that drive the workload models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.features import (
    dense_weight_matrix,
    sample_row_nnz,
    sparse_feature_matrix,
)
from repro.datasets.normalize import gcn_normalize
from repro.datasets.rmat import inject_hub_cluster, rmat_edges
from repro.datasets.specs import get_spec
from repro.errors import DatasetError
from repro.sparse.coo import CooMatrix
from repro.utils.rng import spawn_rngs

# Materialize feature values only below this many non-zeros; above it we
# keep the pattern (per-row counts), which is all the cycle models need.
_MATERIALIZE_NNZ_LIMIT = 5_000_000


@dataclass(frozen=True)
class GcnDataset:
    """A synthetic dataset ready for GCN inference and simulation.

    Attributes
    ----------
    name, preset:
        Which spec and size preset produced this dataset.
    adjacency:
        The normalized ``A~`` as a canonical :class:`CooMatrix`.
    features:
        Layer-1 input ``X1`` as a :class:`CooMatrix`, or ``None`` when the
        dataset was built pattern-only (huge presets).
    weights:
        ``[W1, W2]`` dense arrays of shapes ``(F1, F2)`` and ``(F2, F3)``.
    x1_row_nnz, x2_row_nnz:
        Per-row non-zero counts of the layer inputs. ``x2_row_nnz`` is a
        *forecast* from the Table 1 density (the true X2 emerges from
        inference and is used instead whenever features are materialized).
    """

    name: str
    preset: str
    seed: int
    adjacency: CooMatrix
    features: object  # CooMatrix | None
    weights: list
    x1_row_nnz: np.ndarray
    x2_row_nnz: np.ndarray

    @property
    def n_nodes(self):
        """Number of graph nodes (rows of A)."""
        return self.adjacency.shape[0]

    @property
    def feature_dims(self):
        """``(F1, F2, F3)`` layer dimensions."""
        return (
            self.weights[0].shape[0],
            self.weights[0].shape[1],
            self.weights[1].shape[1],
        )

    @property
    def has_numeric_features(self):
        """True when X1 values were materialized (numeric inference runs)."""
        return self.features is not None

    def adjacency_row_nnz(self):
        """Per-row non-zero counts of A, memoized on the dataset.

        The serving layer builds an accelerator per request over the
        same (immutable) dataset; caching the bincount keeps repeat
        requests O(1) in graph size.
        """
        cached = self.__dict__.get("_a_row_nnz")
        if cached is None:
            cached = self.adjacency.row_nnz()
            object.__setattr__(self, "_a_row_nnz", cached)
        return cached

    def layer_dims(self):
        """Per-layer (n, in_features, out_features) tuples."""
        f1, f2, f3 = self.feature_dims
        return [(self.n_nodes, f1, f2), (self.n_nodes, f2, f3)]

    def summary(self):
        """Human-readable one-paragraph description used by examples."""
        f1, f2, f3 = self.feature_dims
        return (
            f"{self.name}/{self.preset}: {self.n_nodes} nodes, "
            f"A nnz={self.adjacency.nnz} "
            f"(density {self.adjacency.density:.4%}), "
            f"dims F1={f1} F2={f2} F3={f3}, "
            f"X1 nnz={int(self.x1_row_nnz.sum())}, "
            f"features {'materialized' if self.has_numeric_features else 'pattern-only'}"
        )


def build_dataset(name, preset="scaled", *, seed=7, materialize=None):
    """Build a :class:`GcnDataset` for ``name`` at ``preset`` size.

    Parameters
    ----------
    materialize:
        Force (True) or forbid (False) numeric feature materialization;
        by default features are materialized whenever the X1 non-zero
        count stays under ``5M`` (all presets except full Reddit).
    """
    spec = get_spec(name)
    sizes = spec.preset(preset)
    rng_graph, rng_feat, rng_w1, rng_w2, rng_x2 = spawn_rngs(seed, 5)

    adjacency = _build_adjacency(spec, sizes, rng_graph)
    x1_nnz_target = sizes.x1_density * sizes.nodes * sizes.f1
    if materialize is None:
        materialize = x1_nnz_target <= _MATERIALIZE_NNZ_LIMIT
    if materialize and x1_nnz_target > 20 * _MATERIALIZE_NNZ_LIMIT:
        raise DatasetError(
            f"refusing to materialize ~{x1_nnz_target:.0f} feature values; "
            "use materialize=False (pattern-only)"
        )
    if materialize:
        features = sparse_feature_matrix(
            sizes.nodes, sizes.f1, sizes.x1_density, rng=rng_feat
        )
        x1_row_nnz = features.row_nnz()
    else:
        features = None
        x1_row_nnz = sample_row_nnz(
            sizes.nodes, sizes.f1, sizes.x1_density, rng=rng_feat
        )
    weights = [
        dense_weight_matrix(sizes.f1, sizes.f2, rng=rng_w1),
        dense_weight_matrix(sizes.f2, sizes.f3, rng=rng_w2),
    ]
    # Forecast X2's row-nnz from the published density; X2 = relu(A(X1 W1))
    # is row-dense wherever a node has any 2-hop support, so skew is mild.
    x2_row_nnz = sample_row_nnz(
        sizes.nodes, sizes.f2, sizes.x2_density, rng=rng_x2, row_skew=0.2
    )
    return GcnDataset(
        name=spec.name,
        preset=preset,
        seed=seed,
        adjacency=adjacency,
        features=features,
        weights=weights,
        x1_row_nnz=x1_row_nnz,
        x2_row_nnz=x2_row_nnz,
    )


def _build_adjacency(spec, sizes, rng):
    """Generate, cluster, symmetrize and normalize the adjacency matrix."""
    # The normalized matrix gains n self-loop entries; budget for them.
    target_nnz = sizes.a_nnz_target
    n_directed = max((target_nnz - sizes.nodes) // 2, 1)
    src, dst = rmat_edges(
        sizes.nodes, n_directed, abcd=spec.rmat_abcd, rng=rng
    )
    if spec.hub_fraction > 0 and spec.hub_nodes > 0:
        # Keep the hub a small *fraction* of the graph on shrunken
        # presets — a 200-node hub inside a 400-node tiny graph would be
        # half the matrix, not a cluster.
        hub_nodes = min(spec.hub_nodes, max(sizes.nodes // 16, 1))
        src, dst = inject_hub_cluster(
            src,
            dst,
            sizes.nodes,
            hub_nodes=hub_nodes,
            fraction=spec.hub_fraction,
            rng=rng,
        )
    if spec.shuffle_fraction > 0:
        perm = _partial_shuffle(sizes.nodes, spec.shuffle_fraction, rng)
        src, dst = perm[src], perm[dst]
    # Symmetrize: real citation/social graphs are undirected.
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    raw = CooMatrix(
        (sizes.nodes, sizes.nodes), rows, cols, np.ones(rows.size)
    )
    return gcn_normalize(raw)


def _partial_shuffle(n_nodes, fraction, rng):
    """Permutation that scatters ``fraction`` of node ids, fixing the rest.

    Controls how spatially clustered the heavy rows are: RMAT alone packs
    hubs into low indices (remote imbalance); a full shuffle spreads them
    uniformly (local imbalance only).
    """
    perm = np.arange(n_nodes, dtype=np.int64)
    k = int(round(fraction * n_nodes))
    if k >= 2:
        chosen = rng.choice(n_nodes, size=k, replace=False)
        perm[chosen] = chosen[rng.permutation(k)]
    return perm
