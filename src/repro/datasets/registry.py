"""Dataset registry with in-process caching and graph fingerprinting.

Building the Reddit-scale adjacency takes seconds; benchmarks and tests
ask for the same dataset many times, so :func:`load_dataset` memoizes on
``(name, preset, seed, materialize)``. The cache can be cleared for
memory-sensitive runs.

:func:`dataset_fingerprint` hashes exactly the dataset properties the
cycle models consume, giving the serving layer a content-addressed key:
two datasets with equal fingerprints produce identical accelerator
reports under any config, regardless of how they were named or built.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.datasets.specs import get_spec
from repro.datasets.synthetic import build_dataset
from repro.errors import DatasetError

_CACHE = {}


def load_dataset(name, preset="scaled", *, seed=7, materialize=None):
    """Return a cached :class:`~repro.datasets.synthetic.GcnDataset`.

    ``name`` must be one of the five paper datasets; ``preset`` is
    ``full``, ``scaled`` or ``tiny``. All randomness derives from
    ``seed``, so repeated calls are bit-identical.
    """
    spec = get_spec(name)  # raises DatasetError for unknown names
    if preset not in ("full", "scaled", "tiny"):
        raise DatasetError(
            f"unknown preset {preset!r}; expected full/scaled/tiny"
        )
    key = (spec.name, preset, int(seed), materialize)
    if key not in _CACHE:
        _CACHE[key] = build_dataset(
            spec.name, preset, seed=seed, materialize=materialize
        )
    return _CACHE[key]


def dataset_fingerprint(dataset):
    """Content hash of the workload-defining properties of a dataset.

    Covers the adjacency's per-row non-zero profile, both layer input
    profiles and the layer dimensions — the complete input surface of
    :class:`~repro.accel.GcnAccelerator`. Feature *values* are excluded
    on purpose: the cycle models are value-oblivious, so pattern-only and
    materialized builds of the same graph fingerprint identically.

    The digest is memoized on the dataset object (datasets are frozen,
    so it can never go stale).
    """
    cached = getattr(dataset, "_fingerprint", None)
    if cached is not None:
        return cached
    f1, f2, f3 = dataset.feature_dims
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.int64(dataset.n_nodes).tobytes())
    digest.update(np.array([f1, f2, f3], dtype=np.int64).tobytes())
    if hasattr(dataset, "adjacency_row_nnz"):
        a_row_nnz = dataset.adjacency_row_nnz()
    else:
        a_row_nnz = dataset.adjacency.row_nnz()
    for arr in (
        a_row_nnz,
        np.asarray(dataset.x1_row_nnz, dtype=np.int64),
        np.asarray(dataset.x2_row_nnz, dtype=np.int64),
    ):
        digest.update(np.ascontiguousarray(arr).tobytes())
    fingerprint = digest.hexdigest()
    object.__setattr__(dataset, "_fingerprint", fingerprint)
    return fingerprint


def clear_dataset_cache():
    """Drop all cached datasets (frees multi-GB full presets)."""
    _CACHE.clear()


def cache_info():
    """Return the list of currently cached dataset keys."""
    return sorted(_CACHE.keys())
