"""Dataset registry with in-process caching.

Building the Reddit-scale adjacency takes seconds; benchmarks and tests
ask for the same dataset many times, so :func:`load_dataset` memoizes on
``(name, preset, seed, materialize)``. The cache can be cleared for
memory-sensitive runs.
"""

from __future__ import annotations

from repro.datasets.specs import get_spec
from repro.datasets.synthetic import build_dataset
from repro.errors import DatasetError

_CACHE = {}


def load_dataset(name, preset="scaled", *, seed=7, materialize=None):
    """Return a cached :class:`~repro.datasets.synthetic.GcnDataset`.

    ``name`` must be one of the five paper datasets; ``preset`` is
    ``full``, ``scaled`` or ``tiny``. All randomness derives from
    ``seed``, so repeated calls are bit-identical.
    """
    spec = get_spec(name)  # raises DatasetError for unknown names
    if preset not in ("full", "scaled", "tiny"):
        raise DatasetError(
            f"unknown preset {preset!r}; expected full/scaled/tiny"
        )
    key = (spec.name, preset, int(seed), materialize)
    if key not in _CACHE:
        _CACHE[key] = build_dataset(
            spec.name, preset, seed=seed, materialize=materialize
        )
    return _CACHE[key]


def clear_dataset_cache():
    """Drop all cached datasets (frees multi-GB full presets)."""
    _CACHE.clear()


def cache_info():
    """Return the list of currently cached dataset keys."""
    return sorted(_CACHE.keys())
