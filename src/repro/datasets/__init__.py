"""Synthetic dataset substrate calibrated to the paper's Table 1.

The paper evaluates on Cora, Citeseer, Pubmed, Nell and Reddit. Those
datasets are public, but this reproduction runs offline, so we generate
synthetic stand-ins whose *load-bearing properties* match Table 1 and
Figs. 1/13: node count, adjacency density, power-law row-nnz skew (with
Nell's hub cluster), feature dimensions and feature sparsity per layer.
Every experiment in the paper is driven by exactly these properties.

Three presets per dataset:

* ``full``   — the published sizes (Reddit: ~24M non-zeros);
* ``scaled`` — tractable-everywhere sizes with the same skew profile
  (default for the benchmark suite);
* ``tiny``   — a few hundred nodes, for unit tests and the detailed
  cycle-level simulator.
"""

from repro.datasets.specs import (
    DatasetSpec,
    PresetSpec,
    DATASET_SPECS,
    dataset_names,
    get_spec,
)
from repro.datasets.rmat import edges_fingerprint, rmat_edges
from repro.datasets.normalize import gcn_normalize, add_self_loops
from repro.datasets.features import (
    sparse_feature_matrix,
    dense_weight_matrix,
    sample_row_nnz,
)
from repro.datasets.synthetic import GcnDataset, build_dataset
from repro.datasets.registry import dataset_fingerprint, load_dataset
from repro.datasets.io import load_dataset_file, save_dataset

__all__ = [
    "DatasetSpec",
    "PresetSpec",
    "DATASET_SPECS",
    "dataset_names",
    "get_spec",
    "rmat_edges",
    "edges_fingerprint",
    "dataset_fingerprint",
    "gcn_normalize",
    "add_self_loops",
    "sparse_feature_matrix",
    "dense_weight_matrix",
    "sample_row_nnz",
    "GcnDataset",
    "build_dataset",
    "load_dataset",
    "load_dataset_file",
    "save_dataset",
]
