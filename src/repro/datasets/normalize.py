"""GCN adjacency normalization: ``A~ = D^-1/2 (A + I) D^-1/2``.

Paper Sec. 2.1: without normalization, nodes with more neighbours grow
larger feature values layer over layer. ``A~`` is constant across layers
and computed offline, exactly as we do here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import CooMatrix


def add_self_loops(adjacency):
    """Return ``A + I`` for a square :class:`CooMatrix`.

    Cells that already contain a self edge simply get +1 (canonical COO
    sums duplicates), matching the standard GCN preprocessing.
    """
    n_rows, n_cols = adjacency.shape
    if n_rows != n_cols:
        raise ShapeError(f"adjacency must be square, got {adjacency.shape}")
    idx = np.arange(n_rows)
    rows = np.concatenate([adjacency.rows, idx])
    cols = np.concatenate([adjacency.cols, idx])
    vals = np.concatenate([adjacency.vals, np.ones(n_rows)])
    return CooMatrix(adjacency.shape, rows, cols, vals)


def gcn_normalize(adjacency, *, add_loops=True):
    """Symmetric degree normalization of a square adjacency matrix.

    Computes ``D^-1/2 (A + I) D^-1/2`` where ``D`` is the diagonal degree
    matrix of ``A + I`` (``D_ii = sum_j (A + I)_ij``). Isolated nodes
    (degree 0 even after self-loops are disabled) keep zero rows.
    """
    n_rows, n_cols = adjacency.shape
    if n_rows != n_cols:
        raise ShapeError(f"adjacency must be square, got {adjacency.shape}")
    if add_loops:
        adjacency = add_self_loops(adjacency)
    degree = np.zeros(n_rows)
    np.add.at(degree, adjacency.rows, adjacency.vals)
    inv_sqrt = np.zeros(n_rows)
    positive = degree > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(degree[positive])
    vals = adjacency.vals * inv_sqrt[adjacency.rows] * inv_sqrt[adjacency.cols]
    return CooMatrix(adjacency.shape, adjacency.rows, adjacency.cols, vals)
