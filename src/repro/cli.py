"""Command-line interface: regenerate any paper artifact from the shell.

Usage::

    python -m repro table1 [--preset scaled] [--datasets cora,nell]
    python -m repro table2
    python -m repro table3 [--pes 256]
    python -m repro fig-dist [--datasets cora,pubmed]
    python -m repro fig14 [--pes 256]
    python -m repro fig14-spmm
    python -m repro fig14-area
    python -m repro fig15 [--pe-counts 512,768,1024]
    python -m repro serve-bench [--requests 96] [--graphs 4]
    python -m repro serve-bench --arrival-rate 400 --slo-ms 5
    python -m repro serve-bench --sim-workers 4    # parallel backend
    python -m repro bench-rebalance [--pe-counts 64,256,1024,4096]
    python -m repro shard-bench [--chips 1,2,4,8] [--nodes 8192]
    python -m repro shard-bench --topology ring --hetero --overlap --feedback
    python -m repro shard-bench --workers 4        # parallel backend
    python -m repro shard-topology [--chips 4] [--aggregate-bandwidth 64]
    python -m repro parallel-bench [--worker-counts 1,2,4]
    python -m repro mixed-bench [--rates 600,900,1800] [--requests 120]
    python -m repro affinity-bench [--rates 2000,4000,8000] [--workers 4]
    python -m repro serve-bench --arrival-rate 400 --cache-mode affinity \
        --repeat-alpha 1.2
    python -m repro trace [--scenario mixed] [--trace-dir results]
    python -m repro trace --scenario mixed --sim-workers 4
    python -m repro summary           # dataset inventory

Each command prints the rendered table; ``--out DIR`` additionally
writes the rows as CSV.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    fig14_overall,
    fig14_per_spmm,
    fig14_resources,
    fig15_scalability,
    fig_nnz_distribution,
    rows_to_csv,
    table1_profile,
    table2_ordering,
    table3_crossplatform,
)
from repro.datasets import dataset_names, load_dataset


def build_parser():
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AWB-GCN reproduction: regenerate the paper's artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, *, pes=False, pe_counts=False):
        p.add_argument("--preset", default="scaled",
                       choices=["tiny", "scaled", "full"],
                       help="dataset size preset (default: scaled)")
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--datasets", default=None,
                       help="comma-separated subset (default: all five)")
        p.add_argument("--out", default=None, metavar="DIR",
                       help="also write rows as CSV under DIR")
        if pes:
            p.add_argument("--pes", type=int, default=256,
                           help="PE count (default: 256)")
        if pe_counts:
            p.add_argument("--pe-counts", default="512,768,1024",
                           help="comma-separated PE counts")
        return p

    add_common(sub.add_parser("table1", help="matrix profiling"))
    add_common(sub.add_parser("table2", help="computation-order op counts"))
    add_common(sub.add_parser("table3", help="cross-platform comparison"),
               pes=True)
    add_common(sub.add_parser("fig-dist", help="row-nnz distributions"))
    add_common(sub.add_parser("fig14", help="overall delay & utilization"),
               pes=True)
    add_common(sub.add_parser("fig14-spmm", help="per-SPMM breakdown"),
               pes=True)
    add_common(sub.add_parser("fig14-area", help="CLB area breakdown"),
               pes=True)
    add_common(sub.add_parser("fig15", help="PE-count scalability"),
               pe_counts=True)
    add_common(sub.add_parser("summary", help="dataset inventory"))

    serve = sub.add_parser(
        "serve-bench",
        help=("multi-graph serving: cache throughput, or — with "
              "--arrival-rate — streaming latency/SLO attainment"),
    )
    serve.add_argument("--requests", type=int, default=96,
                       help="requests in the mix (default: 96)")
    serve.add_argument("--graphs", type=int, default=4,
                       help="unique RMAT graphs (default: 4)")
    serve.add_argument("--nodes", type=int, default=16384,
                       help="nodes per graph (default: 16384)")
    serve.add_argument("--pes", type=int, default=192,
                       help="PE count of the serving config (default: 192)")
    serve.add_argument("--workers", type=int, default=2,
                       help="simulated accelerator instances (default: 2)")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--arrival-rate", type=float, default=None,
                       metavar="REQ_PER_S",
                       help=("stream requests at this rate on the simulated "
                             "clock and report p50/p95/p99 latency instead "
                             "of throughput (default: offline batch mode)"))
    serve.add_argument("--slo-ms", type=float, default=None,
                       help="per-request end-to-end latency SLO in ms")
    serve.add_argument("--arrival", default=None,
                       choices=["poisson", "bursty"],
                       help="arrival process for --arrival-rate mode "
                            "(default: poisson)")
    serve.add_argument("--max-batch", type=int, default=None,
                       help="batch-size cap in streaming mode (default: 8)")
    serve.add_argument("--sim-workers", type=int, default=1,
                       help="host processes running the simulations "
                            "(repro.parallel; results stay bit-identical "
                            "to the sequential default of 1 — distinct "
                            "from --workers, the simulated pool size)")
    serve.add_argument("--cache-mode", default="shared",
                       choices=["shared", "partitioned", "affinity"],
                       help="cache organization of the cached run: one "
                            "shared AutotuneCache (default), per-instance "
                            "shards with cache-blind dispatch, or shards "
                            "with cache-affinity routing + demand-driven "
                            "replication")
    serve.add_argument("--repeat-alpha", type=float, default=None,
                       help="override the mix's Zipf popularity exponent "
                            "(higher = hotter head = more fingerprint "
                            "reuse; default: the mix's zipf_skew of 1.1)")
    serve.add_argument("--out", default=None, metavar="DIR",
                       help="also write rows as CSV under DIR")

    rebalance = sub.add_parser(
        "bench-rebalance",
        help=("time the vectorized rebalancing core (EDF transport + "
              "batched Eq. 5 tuning) against the retired Python loops"),
    )
    rebalance.add_argument("--pe-counts", default="64,256,1024,4096",
                           help="comma-separated PE counts "
                                "(default: 64,256,1024,4096)")
    rebalance.add_argument("--rows-per-pe", type=int, default=16,
                           help="RMAT nodes per PE (default: 16)")
    rebalance.add_argument("--hop", type=int, default=2,
                           help="local-sharing hop distance (default: 2)")
    rebalance.add_argument("--rounds", type=int, default=64,
                           help="SPMM rounds for the tuning timing "
                                "(default: 64)")
    rebalance.add_argument("--repeats", type=int, default=5,
                           help="best-of repeats per timing (default: 5)")
    rebalance.add_argument("--seed", type=int, default=7)
    rebalance.add_argument("--out", default=None, metavar="DIR",
                           help="also write rows as CSV under DIR")

    shard = sub.add_parser(
        "shard-bench",
        help=("weak/strong scaling of sharded multi-chip execution: "
              "static row/nnz partitions vs chip-level runtime "
              "rebalancing on a hub-heavy RMAT graph"),
    )
    shard.add_argument("--chips", default="1,2,4,8",
                       help="comma-separated chip counts "
                            "(default: 1,2,4,8; 1 is always included)")
    shard.add_argument("--nodes", type=int, default=8192,
                       help="strong-scaling graph size (default: 8192)")
    shard.add_argument("--weak-nodes-per-chip", type=int, default=2048,
                       help="weak-scaling nodes per chip (default: 2048)")
    shard.add_argument("--pes-per-chip", type=int, default=128,
                       help="PE count of each chip (default: 128)")
    shard.add_argument("--link-words", type=float, default=16.0,
                       help="inter-chip link bandwidth in words/cycle "
                            "(default: 16.0)")
    shard.add_argument("--blocks-per-chip", type=int, default=8,
                       help="row-block migration granularity "
                            "(default: 8 blocks per chip)")
    shard.add_argument("--topology", default="all-to-all",
                       choices=["all-to-all", "ring", "mesh2d"],
                       help="inter-chip fabric (default: all-to-all)")
    shard.add_argument("--hop-latency", type=int, default=0,
                       help="per-hop fabric transit latency in cycles "
                            "(default: 0)")
    shard.add_argument("--hetero", action="store_true",
                       help="alternating big/little chips (full and "
                            "half --pes-per-chip)")
    shard.add_argument("--overlap", action="store_true",
                       help="double-buffer halo transfers behind compute")
    shard.add_argument("--feedback", action="store_true",
                       help="rebalance on measured per-chip cycles "
                            "instead of the static load signal")
    shard.add_argument("--row-ceiling", type=int, default=None,
                       metavar="ROWS",
                       help="hard per-chip row ceiling: no chip may own "
                            "more than ROWS rows, in planning or after "
                            "migration (default: unconstrained)")
    shard.add_argument("--straggler", action="append", default=None,
                       metavar="CHIP:ONSET:FACTOR",
                       help="inject a straggler: CHIP's compute slows by "
                            "FACTOR from feedback round ONSET on "
                            "(fractional onsets land mid-round); "
                            "repeatable")
    shard.add_argument("--workers", type=int, default=1,
                       help="host processes running the per-chip "
                            "simulations (repro.parallel; results stay "
                            "bit-identical to the sequential default "
                            "of 1)")
    shard.add_argument("--seed", type=int, default=7)
    shard.add_argument("--out", default=None, metavar="DIR",
                       help="also write rows as CSV under DIR")

    pbench = sub.add_parser(
        "parallel-bench",
        help=("wall-clock scaling of the repro.parallel backend: run "
              "the shard sweep at each worker count, assert results "
              "stay bit-identical to the sequential oracle"),
    )
    pbench.add_argument("--worker-counts", default="1,2,4",
                        help="comma-separated worker counts "
                             "(default: 1,2,4; 1 is always included)")
    pbench.add_argument("--chips", default="4",
                        help="comma-separated chip counts for the "
                             "underlying sweep (default: 4)")
    pbench.add_argument("--nodes", type=int, default=4096,
                        help="strong-scaling graph size (default: 4096)")
    pbench.add_argument("--weak-nodes-per-chip", type=int, default=1024,
                        help="weak-scaling nodes per chip (default: 1024)")
    pbench.add_argument("--pes-per-chip", type=int, default=128,
                        help="PE count of each chip (default: 128)")
    pbench.add_argument("--repeats", type=int, default=1,
                        help="best-of repeats per worker count "
                             "(default: 1)")
    pbench.add_argument("--seed", type=int, default=7)
    pbench.add_argument("--out", default=None, metavar="DIR",
                        help="also write rows as CSV under DIR")

    topo = sub.add_parser(
        "shard-topology",
        help=("topology x rebalancing-signal sweep at equal aggregate "
              "bandwidth: all-to-all vs ring vs mesh2d, load-signal vs "
              "cycle-feedback, serialized vs overlapped halos"),
    )
    topo.add_argument("--chips", type=int, default=4,
                      help="cluster size (default: 4)")
    topo.add_argument("--nodes", type=int, default=8192,
                      help="graph size (default: 8192)")
    topo.add_argument("--pes-per-chip", type=int, default=128,
                      help="PE count of each chip (default: 128)")
    topo.add_argument("--aggregate-bandwidth", type=float, default=64.0,
                      help="total fabric bandwidth in words/cycle, split "
                           "evenly over each topology's links "
                           "(default: 64.0)")
    topo.add_argument("--hop-latency", type=int, default=8,
                      help="per-hop fabric transit latency in cycles "
                           "(default: 8)")
    topo.add_argument("--blocks-per-chip", type=int, default=4,
                      help="row-block migration granularity "
                           "(default: 4 blocks per chip)")
    topo.add_argument("--seed", type=int, default=7)
    topo.add_argument("--out", default=None, metavar="DIR",
                      help="also write rows as CSV under DIR")

    mixed = sub.add_parser(
        "mixed-bench",
        help=("multi-tenant co-scheduling sweep: identical mixed "
              "traces (critical smalls + SLO'd batches + sharded "
              "jobs) served with co-scheduling off vs on, per "
              "arrival rate"),
    )
    mixed.add_argument("--requests", type=int, default=120,
                       help="requests per trace (default: 120)")
    mixed.add_argument("--rates", default="600,900,1800",
                       help="comma-separated arrival rates in req/s "
                            "(default: 600,900,1800)")
    mixed.add_argument("--workers", type=int, default=4,
                       help="simulated accelerator instances "
                            "(default: 4)")
    mixed.add_argument("--chip-capacity", type=int, default=1024,
                       help="per-instance node capacity (default: 1024)")
    mixed.add_argument("--pes-per-chip", type=int, default=64,
                       help="PE count of each instance (default: 64)")
    mixed.add_argument("--critical-fraction", type=float, default=0.25,
                       help="share of deadline-critical small queries "
                            "(default: 0.25)")
    mixed.add_argument("--sharded-fraction", type=float, default=0.15,
                       help="share of oversized sharded jobs "
                            "(default: 0.15)")
    mixed.add_argument("--critical-slo-ms", type=float, default=1.0,
                       help="SLO of the critical class, also the "
                            "class-0 threshold (default: 1.0)")
    mixed.add_argument("--seed", type=int, default=7)
    mixed.add_argument("--out", default=None, metavar="DIR",
                       help="also write rows as CSV under DIR")

    affinity = sub.add_parser(
        "affinity-bench",
        help=("cache-affinity routing sweep: identical Zipf "
              "repeat-heavy streaming traces served on a partitioned "
              "pool with cache-blind vs warm-aware dispatch, per "
              "arrival rate"),
    )
    affinity.add_argument("--requests", type=int, default=96,
                          help="requests per trace (default: 96)")
    affinity.add_argument("--rates", default="2000,4000,8000",
                          help="comma-separated arrival rates in req/s "
                               "(default: 2000,4000,8000)")
    affinity.add_argument("--workers", type=int, default=4,
                          help="simulated accelerator instances "
                               "(default: 4)")
    affinity.add_argument("--families", type=int, default=12,
                          help="graph families in the Zipf pool "
                               "(default: 12)")
    affinity.add_argument("--repeat-alpha", type=float, default=1.2,
                          help="Zipf popularity exponent of the family "
                               "pool (default: 1.2)")
    affinity.add_argument("--nodes", type=int, default=4096,
                          help="nodes per graph (default: 4096)")
    affinity.add_argument("--pes", type=int, default=96,
                          help="PE count of the serving config "
                               "(default: 96)")
    affinity.add_argument("--cache-entries", type=int, default=None,
                          help="LRU bound of each per-worker cache "
                               "shard (default: unbounded)")
    affinity.add_argument("--replicate-threshold", type=float, default=3.0,
                          help="windowed demand at which a family's "
                               "entries replicate (default: 3.0)")
    affinity.add_argument("--replicate-k", type=int, default=2,
                          help="shards hot entries replicate to "
                               "(default: 2)")
    affinity.add_argument("--seed", type=int, default=7)
    affinity.add_argument("--out", default=None, metavar="DIR",
                          help="also write rows as CSV under DIR")

    trace = sub.add_parser(
        "trace",
        help=("replay a canned serving scenario under the recording "
              "tracer and export the span-level event stream as "
              "Chrome-trace / Perfetto JSON plus a per-round "
              "chip-utilization CSV"),
    )
    trace.add_argument("--scenario", default="mixed",
                       choices=["serve", "shard", "mixed"],
                       help="which canned scenario to replay: streaming "
                            "batch traffic, sharded jobs with a "
                            "backfill, or the co-scheduled multi-tenant "
                            "mix with a backfill and a preemption "
                            "(default: mixed)")
    trace.add_argument("--seed", type=int, default=None,
                       help="override the scenario's traffic seed "
                            "(default: the scenario's pinned seed)")
    trace.add_argument("--sim-workers", type=int, default=1,
                       help="host processes running the simulations "
                            "(repro.parallel; the recorded event stream "
                            "is bit-identical to the sequential default "
                            "of 1)")
    trace.add_argument("--trace-dir", default="results", metavar="DIR",
                       help="directory for the trace JSON and the "
                            "round-timeline CSV (default: results)")
    return parser


def _parse_pe_counts(raw):
    """Parse a comma-separated --pe-counts value into a tuple of ints."""
    return tuple(int(x) for x in raw.split(",") if x.strip())


def _parse_stragglers(specs, parser):
    """Parse repeated ``--straggler CHIP:ONSET:FACTOR`` values."""
    if not specs:
        return None
    events = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 3:
            parser.error(
                f"--straggler expects CHIP:ONSET:FACTOR, got {spec!r}"
            )
        try:
            events.append((int(parts[0]), float(parts[1]), float(parts[2])))
        except ValueError:
            parser.error(
                f"--straggler expects CHIP:ONSET:FACTOR, got {spec!r}"
            )
    return tuple(events)


def _dataset_list(args):
    if args.datasets is None:
        return None
    names = [name.strip() for name in args.datasets.split(",") if name.strip()]
    return names or None


def _emit(args, name, rows, text):
    print(text)
    if args.out:
        path = rows_to_csv(rows, f"{args.out}/{name}.csv")
        print(f"\nrows written to {path}")
    return 0


def main(argv=None):
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "serve-bench":
        streaming_flags = [
            name for name, value in (
                ("--slo-ms", args.slo_ms),
                ("--arrival", args.arrival),
                ("--max-batch", args.max_batch),
            ) if value is not None
        ]
        if args.arrival_rate is None and streaming_flags:
            parser.error(
                f"{', '.join(streaming_flags)} require(s) --arrival-rate "
                "(streaming mode); without it serve-bench runs the "
                "offline throughput comparison"
            )
        if args.arrival_rate is not None:
            from repro.serve import compare_latency

            rows, text = compare_latency(
                n_requests=args.requests,
                n_graphs=args.graphs,
                n_nodes=args.nodes,
                n_pes=args.pes,
                n_workers=args.workers,
                seed=args.seed,
                arrival_rate=args.arrival_rate,
                slo_ms=args.slo_ms,
                arrival=args.arrival or "poisson",
                max_batch=args.max_batch if args.max_batch is not None else 8,
                workers=args.sim_workers,
                cache_mode=args.cache_mode,
                repeat_alpha=args.repeat_alpha,
            )
            return _emit(args, "serve_latency", rows, text)
        from repro.serve import compare_caching

        rows, text = compare_caching(
            n_requests=args.requests,
            n_graphs=args.graphs,
            n_nodes=args.nodes,
            n_pes=args.pes,
            n_workers=args.workers,
            seed=args.seed,
            workers=args.sim_workers,
            cache_mode=args.cache_mode,
            repeat_alpha=args.repeat_alpha,
        )
        return _emit(args, "serve_bench", rows, text)

    if args.command == "shard-bench":
        from repro.analysis import compare_shard_scaling

        rows, text = compare_shard_scaling(
            chip_counts=_parse_pe_counts(args.chips),
            n_nodes=args.nodes,
            weak_nodes_per_chip=args.weak_nodes_per_chip,
            pes_per_chip=args.pes_per_chip,
            link_words_per_cycle=args.link_words,
            blocks_per_chip=args.blocks_per_chip,
            topology=args.topology,
            hop_latency_cycles=args.hop_latency,
            hetero=args.hetero,
            overlap=args.overlap,
            feedback=args.feedback,
            row_ceiling=args.row_ceiling,
            stragglers=_parse_stragglers(args.straggler, parser),
            seed=args.seed,
            workers=args.workers,
        )
        return _emit(args, "shard_scaling", rows, text)

    if args.command == "parallel-bench":
        from repro.analysis import compare_parallel_scaling

        rows, text = compare_parallel_scaling(
            worker_counts=_parse_pe_counts(args.worker_counts),
            chip_counts=_parse_pe_counts(args.chips),
            n_nodes=args.nodes,
            weak_nodes_per_chip=args.weak_nodes_per_chip,
            pes_per_chip=args.pes_per_chip,
            repeats=args.repeats,
            seed=args.seed,
        )
        return _emit(args, "parallel_scaling", rows, text)

    if args.command == "shard-topology":
        from repro.analysis import compare_shard_topology

        rows, text = compare_shard_topology(
            n_chips=args.chips,
            n_nodes=args.nodes,
            pes_per_chip=args.pes_per_chip,
            aggregate_bandwidth=args.aggregate_bandwidth,
            hop_latency_cycles=args.hop_latency,
            blocks_per_chip=args.blocks_per_chip,
            seed=args.seed,
        )
        return _emit(args, "shard_topology", rows, text)

    if args.command == "mixed-bench":
        from repro.analysis import compare_mixed_load

        rows, text = compare_mixed_load(
            n_requests=args.requests,
            rates=tuple(
                float(x) for x in args.rates.split(",") if x.strip()
            ),
            n_workers=args.workers,
            chip_capacity=args.chip_capacity,
            pes_per_chip=args.pes_per_chip,
            critical_fraction=args.critical_fraction,
            sharded_fraction=args.sharded_fraction,
            critical_slo_ms=args.critical_slo_ms,
            seed=args.seed,
        )
        return _emit(args, "mixed_load", rows, text)

    if args.command == "affinity-bench":
        from repro.analysis import compare_cache_affinity

        rows, text = compare_cache_affinity(
            n_requests=args.requests,
            rates=tuple(
                float(x) for x in args.rates.split(",") if x.strip()
            ),
            n_workers=args.workers,
            family_size=args.families,
            repeat_alpha=args.repeat_alpha,
            n_nodes=args.nodes,
            n_pes=args.pes,
            worker_cache_entries=args.cache_entries,
            replicate_threshold=args.replicate_threshold,
            replicate_k=args.replicate_k,
            seed=args.seed,
        )
        return _emit(args, "cache_affinity", rows, text)

    if args.command == "trace":
        from repro.analysis.tracescenarios import (
            run_trace_scenario,
            trace_summary,
        )
        from repro.obs import (
            chrome_trace,
            round_timeline_rows,
            validate_chrome_trace,
            write_chrome_trace,
        )

        outcome, tracer = run_trace_scenario(
            args.scenario, seed=args.seed, workers=args.sim_workers
        )
        print(trace_summary(args.scenario, outcome, tracer))
        doc = chrome_trace(tracer.events, wall_events=tracer.wall_events)
        errors = validate_chrome_trace(doc)
        if errors:
            for error in errors:
                print(f"trace validation: {error}", file=sys.stderr)
            return 1
        path = write_chrome_trace(
            f"{args.trace_dir}/trace_{args.scenario}.json",
            tracer.events, wall_events=tracer.wall_events,
        )
        print(f"\nChrome trace written to {path} "
              "(valid; open in Perfetto or chrome://tracing)")
        timeline = round_timeline_rows(tracer.events)
        if timeline:
            csv_path = rows_to_csv(
                timeline, f"{args.trace_dir}/trace_{args.scenario}_rounds.csv"
            )
            print(f"round timeline written to {csv_path}")
        return 0

    if args.command == "bench-rebalance":
        from repro.analysis import compare_rebalance

        rows, text = compare_rebalance(
            pe_counts=_parse_pe_counts(args.pe_counts),
            rows_per_pe=args.rows_per_pe,
            hop=args.hop,
            n_rounds=args.rounds,
            repeats=args.repeats,
            seed=args.seed,
        )
        return _emit(args, "bench_rebalance", rows, text)

    datasets = _dataset_list(args)
    common = {"preset": args.preset, "seed": args.seed, "datasets": datasets}

    if args.command == "table1":
        rows, text = table1_profile(**common)
        return _emit(args, "table1", rows, text)
    if args.command == "table2":
        rows, text = table2_ordering(**common)
        return _emit(args, "table2", rows, text)
    if args.command == "table3":
        rows, text = table3_crossplatform(n_pes=args.pes, **common)
        return _emit(args, "table3", rows, text)
    if args.command == "fig-dist":
        rows, text = fig_nnz_distribution(**common)
        return _emit(args, "fig_dist", rows, text)
    if args.command == "fig14":
        rows, text = fig14_overall(n_pes=args.pes, **common)
        return _emit(args, "fig14_overall", rows, text)
    if args.command == "fig14-spmm":
        rows, text = fig14_per_spmm(n_pes=args.pes, **common)
        return _emit(args, "fig14_per_spmm", rows, text)
    if args.command == "fig14-area":
        rows, text = fig14_resources(n_pes=args.pes, **common)
        return _emit(args, "fig14_resources", rows, text)
    if args.command == "fig15":
        rows, text = fig15_scalability(
            pe_counts=_parse_pe_counts(args.pe_counts), **common
        )
        return _emit(args, "fig15", rows, text)
    if args.command == "summary":
        names = datasets or dataset_names()
        for name in names:
            ds = load_dataset(name, args.preset, seed=args.seed)
            print(ds.summary())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
