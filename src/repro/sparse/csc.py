"""Compressed-Sparse-Column (CSC) format — the accelerator's native format.

Paper Fig. 4: the non-zeros are stored column-by-column in a dense value
array (``vals``) with their row indices alongside (``row_ids``) and a
column pointer (``indptr``). TDQ-2 streams ``vals`` directly — "if we can
directly process the dense array, we gain from avoiding all the zeros" —
and routes each element to the PE owning its row through the Omega
network, using ``row_ids``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.csr import _check_compressed


class CscMatrix:
    """An immutable sparse matrix in CSC form.

    Invariants mirror :class:`~repro.sparse.csr.CsrMatrix` with the roles
    of rows and columns exchanged: ``indptr`` has length ``n_cols + 1``
    and row indices are strictly increasing within each column.
    """

    __slots__ = ("shape", "indptr", "row_ids", "vals")

    def __init__(self, shape, indptr, row_ids, vals):
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise ShapeError(f"shape must be non-negative, got {shape}")
        indptr = np.asarray(indptr, dtype=np.int64).ravel()
        row_ids = np.asarray(row_ids, dtype=np.int64).ravel()
        vals = np.asarray(vals, dtype=np.float64).ravel()
        _check_compressed(n_cols, n_rows, indptr, row_ids, vals, axis="col")
        object.__setattr__(self, "shape", (n_rows, n_cols))
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "row_ids", row_ids)
        object.__setattr__(self, "vals", vals)

    def __setattr__(self, name, value):
        raise AttributeError("CscMatrix is immutable")

    @property
    def nnz(self):
        """Number of stored entries."""
        return int(self.vals.size)

    @property
    def density(self):
        """Fraction of cells that are non-zero (0.0 for empty shapes)."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def col_nnz(self):
        """Per-column non-zero counts (length n_cols)."""
        return np.diff(self.indptr)

    def row_nnz(self):
        """Per-row non-zero counts (length n_rows).

        This is the quantity whose skew drives the whole paper: the PE
        that owns a heavy row receives that many MAC tasks per round.
        """
        return np.bincount(self.row_ids, minlength=self.shape[0]).astype(np.int64)

    def col_slice(self, col):
        """Return ``(row_ids, vals)`` views for one column."""
        lo, hi = self.indptr[col], self.indptr[col + 1]
        return self.row_ids[lo:hi], self.vals[lo:hi]

    def expand_cols(self):
        """Return the implicit column index of every stored entry."""
        return np.repeat(np.arange(self.shape[1]), self.col_nnz())

    def to_dense(self):
        """Materialize as a dense float64 array."""
        out = np.zeros(self.shape)
        out[self.row_ids, self.expand_cols()] = self.vals
        return out

    def __repr__(self):
        return (
            f"CscMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3%})"
        )
