"""Reference sparse kernels used as the numerical oracle.

These kernels define *what* the accelerator computes; the simulators in
:mod:`repro.hw` and :mod:`repro.accel` define *how fast*. The SPMM kernel
``spmm_csc_dense`` mirrors the paper's Eq. 4 formulation: the resulting
matrix ``C`` is assembled column-of-A by column-of-A, broadcasting
``b[j, k]`` over column ``j`` of ``A``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import CooMatrix
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.csc import CscMatrix
from repro.sparse.csr import CsrMatrix

# Above this many (nnz * k) products the column-loop kernel switches to a
# flat scatter-add, which allocates an (nnz, k) temporary but avoids the
# Python-level loop over columns.
_FLAT_KERNEL_THRESHOLD = 2_000_000


def spmm_csc_dense(a_csc, b_dense, *, flat_kernel_threshold=None):
    """Multiply ``A (CSC, m x n) @ B (dense, n x k)`` -> dense ``(m, k)``.

    This is the computation TDQ-2 performs in hardware: for each column
    ``j`` of ``A`` and each round ``k``, broadcast ``b[j, k]`` to all
    non-zeros of column ``j`` and accumulate into the rows of ``C``
    (paper Eq. 4 and Fig. 5).

    ``flat_kernel_threshold`` overrides the module default
    ``_FLAT_KERNEL_THRESHOLD`` picking between the flat scatter-add
    kernel (``nnz * k`` at or below the threshold) and the column-loop
    kernel (above it). Both kernels compute the same sums in the same
    per-column order; the override exists so tests can pin either path.
    """
    if not isinstance(a_csc, CscMatrix):
        raise ShapeError(f"a_csc must be CscMatrix, got {type(a_csc).__name__}")
    b_dense = np.asarray(b_dense, dtype=np.float64)
    if b_dense.ndim != 2 or b_dense.shape[0] != a_csc.shape[1]:
        raise ShapeError(
            f"B must be 2-D with {a_csc.shape[1]} rows, got shape {b_dense.shape}"
        )
    if flat_kernel_threshold is None:
        flat_kernel_threshold = _FLAT_KERNEL_THRESHOLD
    m, k = a_csc.shape[0], b_dense.shape[1]
    out = np.zeros((m, k))
    if a_csc.nnz == 0 or k == 0:
        return out
    if a_csc.nnz * k <= flat_kernel_threshold:
        cols = a_csc.expand_cols()
        np.add.at(out, a_csc.row_ids, a_csc.vals[:, None] * b_dense[cols, :])
        return out
    indptr = a_csc.indptr
    for j in range(a_csc.shape[1]):
        lo, hi = indptr[j], indptr[j + 1]
        if lo == hi:
            continue
        rows = a_csc.row_ids[lo:hi]
        contrib = np.outer(a_csc.vals[lo:hi], b_dense[j, :])
        np.add.at(out, rows, contrib)
    return out


def spmm_csr_dense(a_csr, b_dense):
    """Multiply ``A (CSR, m x n) @ B (dense, n x k)`` -> dense ``(m, k)``.

    Row-oriented formulation: each output row is the weighted sum of the
    B rows selected by that A row. Used by the CPU software baseline.
    """
    if not isinstance(a_csr, CsrMatrix):
        raise ShapeError(f"a_csr must be CsrMatrix, got {type(a_csr).__name__}")
    b_dense = np.asarray(b_dense, dtype=np.float64)
    if b_dense.ndim != 2 or b_dense.shape[0] != a_csr.shape[1]:
        raise ShapeError(
            f"B must be 2-D with {a_csr.shape[1]} rows, got shape {b_dense.shape}"
        )
    m, k = a_csr.shape[0], b_dense.shape[1]
    out = np.zeros((m, k))
    if a_csr.nnz == 0 or k == 0:
        return out
    rows = a_csr.expand_rows()
    np.add.at(out, rows, a_csr.vals[:, None] * b_dense[a_csr.col_ids, :])
    return out


def spmv_csr(a_csr, x):
    """Multiply ``A (CSR, m x n) @ x (n,)`` -> ``(m,)`` vector."""
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size != a_csr.shape[1]:
        raise ShapeError(f"x must have length {a_csr.shape[1]}, got {x.size}")
    out = np.zeros(a_csr.shape[0])
    if a_csr.nnz:
        np.add.at(out, a_csr.expand_rows(), a_csr.vals * x[a_csr.col_ids])
    return out


# Expanded-product chunk size for spgemm_csr: bounds the temporary
# (row, col, val) triple arrays to a few MB regardless of output size.
_SPGEMM_CHUNK_PRODUCTS = 4_000_000


def spgemm_csr(a_csr, b_csr):
    """Multiply two sparse matrices, returning a canonical ``CooMatrix``.

    The paper never runs SPGEMM in hardware (it is exactly what the
    ``(A @ X) @ W`` ordering would need and Table 2 shows why it loses),
    but the op-count analysis needs the result's structure.

    Fully vectorized expansion-merge formulation: every scalar product
    ``A[i, j] * B[j, l]`` is materialized as a COO triple in one NumPy
    pass (``a``'s non-zeros repeated by the matching ``B`` row lengths),
    then duplicates are summed by the canonical COO constructor. Work is
    chunked over ``A``'s non-zeros so the expanded temporaries stay
    bounded; each chunk covers a contiguous run of ``A`` rows' products.
    """
    if a_csr.shape[1] != b_csr.shape[0]:
        raise ShapeError(
            f"inner dimensions disagree: {a_csr.shape} @ {b_csr.shape}"
        )
    shape = (a_csr.shape[0], b_csr.shape[1])
    if a_csr.nnz == 0 or b_csr.nnz == 0:
        return CooMatrix.empty(shape)
    a_rows = a_csr.expand_rows()
    a_cols = a_csr.col_ids
    a_vals = a_csr.vals
    b_indptr = b_csr.indptr
    # Products contributed by each A non-zero = nnz of the B row it hits.
    fanout = b_indptr[a_cols + 1] - b_indptr[a_cols]
    boundaries = np.concatenate(([0], np.cumsum(fanout)))
    total_products = int(boundaries[-1])
    if total_products == 0:
        return CooMatrix.empty(shape)

    parts = []
    start_nnz = 0
    while start_nnz < a_vals.size:
        stop_nnz = int(np.searchsorted(
            boundaries, boundaries[start_nnz] + _SPGEMM_CHUNK_PRODUCTS,
            side="right",
        )) - 1
        stop_nnz = max(stop_nnz, start_nnz + 1)  # always advance
        chunk = slice(start_nnz, stop_nnz)
        counts = fanout[chunk]
        n_products = int(counts.sum())
        if n_products:
            # For each A non-zero, gather its B row's entries: flat B
            # indices are the start offset repeated, plus a within-run
            # ramp (a vectorized "ragged arange").
            offsets = np.repeat(b_indptr[a_cols[chunk]], counts)
            run_starts = np.cumsum(counts) - counts
            ramp = np.arange(n_products) - np.repeat(run_starts, counts)
            flat = offsets + ramp
            part = CooMatrix(
                shape,
                np.repeat(a_rows[chunk], counts),
                b_csr.col_ids[flat],
                np.repeat(a_vals[chunk], counts) * b_csr.vals[flat],
                keep_zeros=True,
            )
            parts.append(part)
        start_nnz = stop_nnz
    if len(parts) == 1:
        coo = parts[0]
        # Re-canonicalize without keep_zeros to drop cancelled entries.
        return CooMatrix(shape, coo.rows, coo.cols, coo.vals)
    # Each chunk is already duplicate-summed, so the merge concatenates
    # at most output-sized parts — expanded product triples never
    # coexist across chunks.
    return CooMatrix(
        shape,
        np.concatenate([p.rows for p in parts]),
        np.concatenate([p.cols for p in parts]),
        np.concatenate([p.vals for p in parts]),
    )


def transpose_csr(a_csr):
    """Transpose a CSR matrix, returning CSR of the transposed shape."""
    coo = csr_to_coo(a_csr)
    return coo_to_csr(coo.transpose())
