"""Reference sparse kernels used as the numerical oracle.

These kernels define *what* the accelerator computes; the simulators in
:mod:`repro.hw` and :mod:`repro.accel` define *how fast*. The SPMM kernel
``spmm_csc_dense`` mirrors the paper's Eq. 4 formulation: the resulting
matrix ``C`` is assembled column-of-A by column-of-A, broadcasting
``b[j, k]`` over column ``j`` of ``A``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import CooMatrix
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.csc import CscMatrix
from repro.sparse.csr import CsrMatrix

# Above this many (nnz * k) products the column-loop kernel switches to a
# flat scatter-add, which allocates an (nnz, k) temporary but avoids the
# Python-level loop over columns.
_FLAT_KERNEL_THRESHOLD = 2_000_000


def spmm_csc_dense(a_csc, b_dense):
    """Multiply ``A (CSC, m x n) @ B (dense, n x k)`` -> dense ``(m, k)``.

    This is the computation TDQ-2 performs in hardware: for each column
    ``j`` of ``A`` and each round ``k``, broadcast ``b[j, k]`` to all
    non-zeros of column ``j`` and accumulate into the rows of ``C``
    (paper Eq. 4 and Fig. 5).
    """
    if not isinstance(a_csc, CscMatrix):
        raise ShapeError(f"a_csc must be CscMatrix, got {type(a_csc).__name__}")
    b_dense = np.asarray(b_dense, dtype=np.float64)
    if b_dense.ndim != 2 or b_dense.shape[0] != a_csc.shape[1]:
        raise ShapeError(
            f"B must be 2-D with {a_csc.shape[1]} rows, got shape {b_dense.shape}"
        )
    m, k = a_csc.shape[0], b_dense.shape[1]
    out = np.zeros((m, k))
    if a_csc.nnz == 0 or k == 0:
        return out
    if a_csc.nnz * k <= _FLAT_KERNEL_THRESHOLD:
        cols = a_csc.expand_cols()
        np.add.at(out, a_csc.row_ids, a_csc.vals[:, None] * b_dense[cols, :])
        return out
    indptr = a_csc.indptr
    for j in range(a_csc.shape[1]):
        lo, hi = indptr[j], indptr[j + 1]
        if lo == hi:
            continue
        rows = a_csc.row_ids[lo:hi]
        contrib = np.outer(a_csc.vals[lo:hi], b_dense[j, :])
        np.add.at(out, rows, contrib)
    return out


def spmm_csr_dense(a_csr, b_dense):
    """Multiply ``A (CSR, m x n) @ B (dense, n x k)`` -> dense ``(m, k)``.

    Row-oriented formulation: each output row is the weighted sum of the
    B rows selected by that A row. Used by the CPU software baseline.
    """
    if not isinstance(a_csr, CsrMatrix):
        raise ShapeError(f"a_csr must be CsrMatrix, got {type(a_csr).__name__}")
    b_dense = np.asarray(b_dense, dtype=np.float64)
    if b_dense.ndim != 2 or b_dense.shape[0] != a_csr.shape[1]:
        raise ShapeError(
            f"B must be 2-D with {a_csr.shape[1]} rows, got shape {b_dense.shape}"
        )
    m, k = a_csr.shape[0], b_dense.shape[1]
    out = np.zeros((m, k))
    if a_csr.nnz == 0 or k == 0:
        return out
    rows = a_csr.expand_rows()
    np.add.at(out, rows, a_csr.vals[:, None] * b_dense[a_csr.col_ids, :])
    return out


def spmv_csr(a_csr, x):
    """Multiply ``A (CSR, m x n) @ x (n,)`` -> ``(m,)`` vector."""
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size != a_csr.shape[1]:
        raise ShapeError(f"x must have length {a_csr.shape[1]}, got {x.size}")
    out = np.zeros(a_csr.shape[0])
    if a_csr.nnz:
        np.add.at(out, a_csr.expand_rows(), a_csr.vals * x[a_csr.col_ids])
    return out


def spgemm_csr(a_csr, b_csr):
    """Multiply two sparse matrices, returning a canonical ``CooMatrix``.

    The paper never runs SPGEMM in hardware (it is exactly what the
    ``(A @ X) @ W`` ordering would need and Table 2 shows why it loses),
    but the op-count analysis needs the result's structure.
    """
    if a_csr.shape[1] != b_csr.shape[0]:
        raise ShapeError(
            f"inner dimensions disagree: {a_csr.shape} @ {b_csr.shape}"
        )
    out_rows = []
    out_cols = []
    out_vals = []
    b_indptr, b_cols, b_vals = b_csr.indptr, b_csr.col_ids, b_csr.vals
    for i in range(a_csr.shape[0]):
        a_cols, a_vals = a_csr.row_slice(i)
        if a_cols.size == 0:
            continue
        acc = {}
        for j, av in zip(a_cols.tolist(), a_vals.tolist()):
            lo, hi = b_indptr[j], b_indptr[j + 1]
            for col, bv in zip(b_cols[lo:hi].tolist(), b_vals[lo:hi].tolist()):
                acc[col] = acc.get(col, 0.0) + av * bv
        for col, val in acc.items():
            out_rows.append(i)
            out_cols.append(col)
            out_vals.append(val)
    shape = (a_csr.shape[0], b_csr.shape[1])
    return CooMatrix(shape, out_rows, out_cols, out_vals)


def transpose_csr(a_csr):
    """Transpose a CSR matrix, returning CSR of the transposed shape."""
    coo = csr_to_coo(a_csr)
    return coo_to_csr(coo.transpose())
