"""Conversions between the COO, CSR and CSC formats (and scipy bridges).

All conversions are vectorized (argsort + cumulative counts) so the
Reddit-scale adjacency matrix (~24M non-zeros) converts in well under a
second. The scipy bridges exist for the CPU software baseline and for
oracle comparisons in the test suite; the simulators never touch scipy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.sparse.coo import CooMatrix
from repro.sparse.csc import CscMatrix
from repro.sparse.csr import CsrMatrix


def coo_to_csr(coo):
    """Convert a canonical :class:`CooMatrix` to :class:`CsrMatrix`."""
    counts = np.bincount(coo.rows, minlength=coo.shape[0])
    indptr = np.concatenate(([0], np.cumsum(counts)))
    # canonical COO is already sorted row-major, then by column
    return CsrMatrix(coo.shape, indptr, coo.cols, coo.vals)


def coo_to_csc(coo):
    """Convert a canonical :class:`CooMatrix` to :class:`CscMatrix`."""
    order = np.lexsort((coo.rows, coo.cols))
    rows = coo.rows[order]
    cols = coo.cols[order]
    vals = coo.vals[order]
    counts = np.bincount(cols, minlength=coo.shape[1])
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return CscMatrix(coo.shape, indptr, rows, vals)


def csr_to_coo(csr):
    """Convert a :class:`CsrMatrix` to canonical :class:`CooMatrix`."""
    return CooMatrix(csr.shape, csr.expand_rows(), csr.col_ids, csr.vals)


def csc_to_coo(csc):
    """Convert a :class:`CscMatrix` to canonical :class:`CooMatrix`."""
    return CooMatrix(csc.shape, csc.row_ids, csc.expand_cols(), csc.vals)


def csr_to_csc(csr):
    """Convert CSR to CSC directly (transpose of the compressed axis)."""
    return coo_to_csc(csr_to_coo(csr))


def csc_to_csr(csc):
    """Convert CSC to CSR directly."""
    return coo_to_csr(csc_to_coo(csc))


def from_scipy(mat):
    """Build a canonical :class:`CooMatrix` from any scipy sparse matrix."""
    try:
        coo = mat.tocoo()
    except AttributeError:
        raise FormatError(
            f"expected a scipy sparse matrix, got {type(mat).__name__}"
        )
    return CooMatrix(coo.shape, coo.row, coo.col, coo.data)


def to_scipy_csr(mat):
    """Convert any repro sparse matrix to ``scipy.sparse.csr_matrix``."""
    import scipy.sparse as sp

    coo = _as_coo(mat)
    return sp.csr_matrix((coo.vals, (coo.rows, coo.cols)), shape=coo.shape)


def to_scipy_csc(mat):
    """Convert any repro sparse matrix to ``scipy.sparse.csc_matrix``."""
    import scipy.sparse as sp

    coo = _as_coo(mat)
    return sp.csc_matrix((coo.vals, (coo.rows, coo.cols)), shape=coo.shape)


def _as_coo(mat):
    """Normalize any of the three formats to COO."""
    if isinstance(mat, CooMatrix):
        return mat
    if isinstance(mat, CsrMatrix):
        return csr_to_coo(mat)
    if isinstance(mat, CscMatrix):
        return csc_to_coo(mat)
    raise FormatError(f"not a repro sparse matrix: {type(mat).__name__}")
