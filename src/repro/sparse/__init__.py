"""From-scratch sparse matrix formats and reference kernels.

The AWB-GCN hardware streams the ultra-sparse adjacency matrix in
Compressed-Sparse-Column (CSC) form (paper Fig. 4) and the general-sparse
feature matrix in dense form. This subpackage implements the three
classic coordinate formats (COO, CSR, CSC) with explicit invariants,
conversions between them, reference SPMM kernels used as the numerical
oracle for the simulators, and the distribution statistics that drive the
workload-imbalance analysis (paper Figs. 1, 9 and 13).

scipy is deliberately *not* used here — it serves only as an independent
oracle in the test suite.
"""

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.csc import CscMatrix
from repro.sparse.convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
    from_scipy,
    to_scipy_csc,
    to_scipy_csr,
)
from repro.sparse.ops import (
    spmm_csc_dense,
    spmm_csr_dense,
    spmv_csr,
    spgemm_csr,
    transpose_csr,
)
from repro.sparse.stats import (
    row_nnz_histogram,
    DistributionStats,
    distribution_stats,
    partition_loads,
)

__all__ = [
    "CooMatrix",
    "CsrMatrix",
    "CscMatrix",
    "coo_to_csc",
    "coo_to_csr",
    "csc_to_coo",
    "csc_to_csr",
    "csr_to_coo",
    "csr_to_csc",
    "from_scipy",
    "to_scipy_csc",
    "to_scipy_csr",
    "spmm_csc_dense",
    "spmm_csr_dense",
    "spmv_csr",
    "spgemm_csr",
    "transpose_csr",
    "row_nnz_histogram",
    "DistributionStats",
    "distribution_stats",
    "partition_loads",
]
