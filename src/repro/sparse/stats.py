"""Non-zero distribution statistics — the quantities behind Figs. 1/9/13.

The paper's entire motivation is that per-row non-zero counts of graph
adjacency matrices are power-law distributed, so a static equal-rows
partition starves most PEs while one drowns. This module quantifies that
skew (coefficient of variation, Gini, max/mean) and computes the per-PE
loads induced by a row partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.utils.validation import check_1d_int_array, check_positive_int


@dataclass(frozen=True)
class DistributionStats:
    """Summary statistics of a per-row non-zero count vector."""

    count: int
    total: int
    mean: float
    std: float
    max: int
    min: int
    cv: float
    """Coefficient of variation std/mean (0 for perfectly even)."""
    gini: float
    """Gini coefficient of the counts (0 even .. ~1 concentrated)."""
    max_over_mean: float
    """How many times heavier the heaviest row is than the average row."""
    p99_over_median: float
    """Tail heaviness: 99th percentile over median (medians of 0 give inf)."""

    def describe(self):
        """One-line human-readable summary used in reports."""
        return (
            f"n={self.count} nnz={self.total} mean={self.mean:.2f} "
            f"max={self.max} cv={self.cv:.2f} gini={self.gini:.2f} "
            f"max/mean={self.max_over_mean:.1f}"
        )


def distribution_stats(counts):
    """Compute :class:`DistributionStats` for a vector of row-nnz counts."""
    counts = check_1d_int_array(counts, "counts")
    if counts.size == 0:
        raise ConfigError("counts must be non-empty")
    if counts.min() < 0:
        raise ConfigError("counts must be non-negative")
    total = int(counts.sum())
    mean = float(counts.mean())
    std = float(counts.std())
    median = float(np.median(counts))
    p99 = float(np.percentile(counts, 99))
    return DistributionStats(
        count=int(counts.size),
        total=total,
        mean=mean,
        std=std,
        max=int(counts.max()),
        min=int(counts.min()),
        cv=std / mean if mean else 0.0,
        gini=_gini(counts),
        max_over_mean=float(counts.max()) / mean if mean else 0.0,
        p99_over_median=p99 / median if median else float("inf"),
    )


def row_nnz_histogram(counts, *, n_bins=50, log_bins=True):
    """Histogram of per-row nnz counts (the data behind Figs. 1 and 13).

    Returns ``(bin_edges, bin_counts)``. With ``log_bins`` the edges grow
    geometrically, which is the natural axis for power-law data.
    """
    counts = check_1d_int_array(counts, "counts")
    n_bins = check_positive_int(n_bins, "n_bins")
    if counts.size == 0:
        raise ConfigError("counts must be non-empty")
    top = max(int(counts.max()), 1)
    if log_bins:
        edges = np.unique(
            np.round(np.geomspace(1, top + 1, n_bins + 1)).astype(np.int64)
        )
        edges = np.concatenate(([0], edges))
    else:
        edges = np.linspace(0, top + 1, n_bins + 1)
    hist, edges = np.histogram(counts, bins=edges)
    return edges, hist


def partition_loads(row_nnz, n_partitions):
    """Per-PE workload under the paper's static equal-rows partition.

    Rows are assigned to PEs in contiguous blocks (paper Fig. 6): PE ``p``
    owns rows ``[p * ceil(n/P), ...)``. Returns an int64 array of length
    ``n_partitions`` whose entry ``p`` is the number of non-zeros PE ``p``
    must process per round.
    """
    row_nnz = check_1d_int_array(row_nnz, "row_nnz")
    n_partitions = check_positive_int(n_partitions, "n_partitions")
    owners = equal_rows_owner(row_nnz.size, n_partitions)
    loads = np.zeros(n_partitions, dtype=np.int64)
    np.add.at(loads, owners, row_nnz)
    return loads


def equal_rows_owner(n_rows, n_partitions):
    """Owner PE of each row under contiguous equal-rows partitioning.

    Uses interleaved (round-robin) assignment of *blocks*: rows are split
    into ``n_partitions`` contiguous blocks of (nearly) equal size, block
    ``p`` belonging to PE ``p``. The final blocks are one row shorter when
    ``n_rows`` is not divisible by ``n_partitions``.
    """
    n_partitions = check_positive_int(n_partitions, "n_partitions")
    if n_rows < 0:
        raise ConfigError(f"n_rows must be >= 0, got {n_rows}")
    if n_rows == 0:
        return np.zeros(0, dtype=np.int64)
    base = n_rows // n_partitions
    extra = n_rows % n_partitions
    sizes = np.full(n_partitions, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.repeat(np.arange(n_partitions, dtype=np.int64), sizes)


def _gini(counts):
    """Gini coefficient of a non-negative integer vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    sorted_counts = np.sort(counts).astype(np.float64)
    n = sorted_counts.size
    cumulative = np.cumsum(sorted_counts)
    # Standard formula: G = (2 * sum(i*x_i) / (n * sum(x)) - (n+1)/n)
    index = np.arange(1, n + 1)
    return float(2.0 * np.sum(index * sorted_counts) / (n * total) - (n + 1) / n)
