"""Coordinate (COO) sparse matrix format.

COO is the interchange format of this package: the synthetic graph
generators emit edge lists, which are COO triples, and every other format
is built from it. Entries are kept in canonical order (row-major, then by
column) with duplicates summed, which makes equality checks and format
conversions deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError, ShapeError


class CooMatrix:
    """An immutable sparse matrix in canonical COO form.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)``.
    rows, cols, vals:
        Parallel 1-D arrays of coordinates and values. They are copied,
        canonicalized (sorted row-major, duplicates summed) and explicit
        zeros are dropped unless ``keep_zeros=True``.
    """

    __slots__ = ("shape", "rows", "cols", "vals")

    def __init__(self, shape, rows, cols, vals, *, keep_zeros=False):
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise ShapeError(f"shape must be non-negative, got {shape}")
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        vals = np.asarray(vals, dtype=np.float64).ravel()
        if not (rows.size == cols.size == vals.size):
            raise FormatError(
                "rows, cols and vals must have equal length, got "
                f"{rows.size}, {cols.size}, {vals.size}"
            )
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise FormatError("row index out of range")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise FormatError("column index out of range")
        rows, cols, vals = _canonicalize(n_rows, n_cols, rows, cols, vals)
        if not keep_zeros and vals.size:
            keep = vals != 0.0
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        object.__setattr__(self, "shape", (n_rows, n_cols))
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "vals", vals)

    def __setattr__(self, name, value):
        raise AttributeError("CooMatrix is immutable")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense):
        """Build a COO matrix from a 2-D dense array, dropping zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ShapeError(f"dense input must be 2-D, got {dense.ndim}-D")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape, rows, cols, dense[rows, cols])

    @classmethod
    def empty(cls, shape):
        """An all-zero matrix of the given shape."""
        return cls(shape, [], [], [])

    @classmethod
    def identity(cls, n):
        """The n x n identity matrix."""
        idx = np.arange(n)
        return cls((n, n), idx, idx, np.ones(n))

    # ------------------------------------------------------------------
    # properties and views
    # ------------------------------------------------------------------
    @property
    def nnz(self):
        """Number of stored (non-zero) entries."""
        return int(self.vals.size)

    @property
    def density(self):
        """Fraction of cells that are non-zero (0.0 for empty shapes)."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def row_nnz(self):
        """Per-row non-zero counts as an ``int64`` array of length n_rows."""
        return np.bincount(self.rows, minlength=self.shape[0]).astype(np.int64)

    def col_nnz(self):
        """Per-column non-zero counts as an ``int64`` array of length n_cols."""
        return np.bincount(self.cols, minlength=self.shape[1]).astype(np.int64)

    def to_dense(self):
        """Materialize as a dense float64 array."""
        out = np.zeros(self.shape)
        out[self.rows, self.cols] = self.vals
        return out

    def transpose(self):
        """Return the transpose as a new canonical ``CooMatrix``."""
        return CooMatrix(
            (self.shape[1], self.shape[0]), self.cols, self.rows, self.vals
        )

    def scaled(self, factor):
        """Return a copy with all values multiplied by ``factor``."""
        return CooMatrix(self.shape, self.rows, self.cols, self.vals * factor)

    def __eq__(self, other):
        if not isinstance(other, CooMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.rows, other.rows)
            and np.array_equal(self.cols, other.cols)
            and np.array_equal(self.vals, other.vals)
        )

    def __hash__(self):
        return hash((self.shape, self.nnz))

    def __repr__(self):
        return (
            f"CooMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3%})"
        )


def _canonicalize(n_rows, n_cols, rows, cols, vals):
    """Sort row-major and sum duplicate coordinates."""
    if rows.size == 0:
        return rows, cols, vals
    keys = rows * n_cols + cols
    order = np.argsort(keys, kind="stable")
    keys, rows, cols, vals = keys[order], rows[order], cols[order], vals[order]
    unique_mask = np.empty(keys.size, dtype=bool)
    unique_mask[0] = True
    np.not_equal(keys[1:], keys[:-1], out=unique_mask[1:])
    if unique_mask.all():
        return rows, cols, vals
    # Segmented sum over the sorted duplicates: reduceat accumulates each
    # run in element order, exactly like the scalar loop it replaces.
    starts = np.flatnonzero(unique_mask)
    summed = np.add.reduceat(vals, starts)
    return rows[unique_mask], cols[unique_mask], summed
