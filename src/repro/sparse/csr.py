"""Compressed-Sparse-Row (CSR) format.

CSR is the row-oriented twin of the CSC format used by the accelerator.
The simulators use it to enumerate the non-zeros a PE owns (PEs are
assigned contiguous row ranges, paper Sec. 3.2), and the software CPU
baseline multiplies in CSR because that is what ``torch``/``scipy`` do.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError, ShapeError


class CsrMatrix:
    """An immutable sparse matrix in CSR form.

    Invariants enforced at construction:

    * ``indptr`` has length ``n_rows + 1``, starts at 0, is monotonically
      non-decreasing and ends at ``nnz``;
    * column indices are in range and strictly increasing within a row
      (i.e. sorted with no duplicates).
    """

    __slots__ = ("shape", "indptr", "col_ids", "vals")

    def __init__(self, shape, indptr, col_ids, vals):
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise ShapeError(f"shape must be non-negative, got {shape}")
        indptr = np.asarray(indptr, dtype=np.int64).ravel()
        col_ids = np.asarray(col_ids, dtype=np.int64).ravel()
        vals = np.asarray(vals, dtype=np.float64).ravel()
        _check_compressed(n_rows, n_cols, indptr, col_ids, vals, axis="row")
        object.__setattr__(self, "shape", (n_rows, n_cols))
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "col_ids", col_ids)
        object.__setattr__(self, "vals", vals)

    def __setattr__(self, name, value):
        raise AttributeError("CsrMatrix is immutable")

    @property
    def nnz(self):
        """Number of stored entries."""
        return int(self.vals.size)

    @property
    def density(self):
        """Fraction of cells that are non-zero (0.0 for empty shapes)."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def row_nnz(self):
        """Per-row non-zero counts (length n_rows)."""
        return np.diff(self.indptr)

    def row_slice(self, row):
        """Return ``(col_ids, vals)`` views for one row."""
        lo, hi = self.indptr[row], self.indptr[row + 1]
        return self.col_ids[lo:hi], self.vals[lo:hi]

    def expand_rows(self):
        """Return the implicit row index of every stored entry (length nnz)."""
        return np.repeat(np.arange(self.shape[0]), self.row_nnz())

    def row_block(self, lo, hi):
        """The contiguous row slice ``[lo, hi)`` as a new CsrMatrix.

        The block keeps the full column range, so ``A.row_block(lo, hi)
        @ B`` computes rows ``lo..hi`` of ``A @ B`` — the shard-local
        adjacency view of :mod:`repro.cluster`. Entry order within each
        row is preserved, which keeps blocked SPMM accumulation
        bit-identical to the unblocked kernel.
        """
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= self.shape[0]:
            raise ShapeError(
                f"row block [{lo}, {hi}) out of range for {self.shape[0]} rows"
            )
        start, stop = int(self.indptr[lo]), int(self.indptr[hi])
        return CsrMatrix(
            (hi - lo, self.shape[1]),
            self.indptr[lo:hi + 1] - start,
            self.col_ids[start:stop],
            self.vals[start:stop],
        )

    def take_rows(self, rows):
        """Gather an arbitrary row subset as a new CsrMatrix.

        ``rows`` is a 1-D array of row indices (duplicates allowed);
        output row ``i`` is input row ``rows[i]``, with per-row entry
        order preserved (same bit-exactness property as
        :meth:`row_block`). This is the non-contiguous shard view used
        after chip-level rebalancing migrates row blocks.
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        if rows.size and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise ShapeError("row index out of range in take_rows")
        counts = self.indptr[rows + 1] - self.indptr[rows]
        indptr = np.concatenate(([0], np.cumsum(counts)))
        n_entries = int(indptr[-1])
        if n_entries:
            # Vectorized ragged gather: for each selected row, a ramp
            # over its entry run starting at the row's indptr offset.
            run_starts = indptr[:-1]
            offsets = np.repeat(self.indptr[rows], counts)
            ramp = np.arange(n_entries) - np.repeat(run_starts, counts)
            flat = offsets + ramp
        else:
            flat = np.empty(0, dtype=np.int64)
        return CsrMatrix(
            (rows.size, self.shape[1]),
            indptr,
            self.col_ids[flat],
            self.vals[flat],
        )

    def to_dense(self):
        """Materialize as a dense float64 array."""
        out = np.zeros(self.shape)
        out[self.expand_rows(), self.col_ids] = self.vals
        return out

    def __repr__(self):
        return (
            f"CsrMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3%})"
        )


def _check_compressed(n_major, n_minor, indptr, minor_ids, vals, *, axis):
    """Shared invariant checks for CSR (axis='row') and CSC (axis='col')."""
    major_name = "indptr"
    if indptr.size != n_major + 1:
        raise FormatError(
            f"{major_name} must have length {n_major + 1}, got {indptr.size}"
        )
    if indptr.size and indptr[0] != 0:
        raise FormatError(f"{major_name} must start at 0, got {indptr[0]}")
    if np.any(np.diff(indptr) < 0):
        raise FormatError(f"{major_name} must be non-decreasing")
    if minor_ids.size != vals.size:
        raise FormatError(
            f"index and value arrays must match, got {minor_ids.size} != {vals.size}"
        )
    if indptr.size and indptr[-1] != vals.size:
        raise FormatError(
            f"{major_name}[-1] ({indptr[-1]}) must equal nnz ({vals.size})"
        )
    if minor_ids.size:
        if minor_ids.min() < 0 or minor_ids.max() >= n_minor:
            raise FormatError(f"{axis} minor index out of range")
    # Sorted + unique within each major slice, vectorized: consecutive
    # entries must strictly increase except across slice boundaries.
    if minor_ids.size > 1:
        non_increasing = minor_ids[1:] <= minor_ids[:-1]
        if non_increasing.any():
            boundaries = np.zeros(minor_ids.size - 1, dtype=bool)
            starts = indptr[1:-1]
            starts = starts[(starts > 0) & (starts < minor_ids.size)]
            boundaries[starts - 1] = True
            if np.any(non_increasing & ~boundaries):
                raise FormatError(
                    f"indices within each {axis} must be strictly increasing"
                )
