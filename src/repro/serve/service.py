"""The batched multi-graph inference service.

Ties the serving pieces together: requests enter a
:class:`~repro.serve.scheduler.RequestQueue`, the
:class:`~repro.serve.scheduler.Scheduler` folds them into config-affine
batches, and a pool of simulated accelerator instances drains the
batches round-robin, sharing one :class:`~repro.serve.AutotuneCache`.
Per-request outcomes come back as
:class:`~repro.serve.request.InferenceResult`; :class:`ServiceStats`
aggregates throughput, hit rate and modeled hardware metrics.

The pool is a *model* of a multi-accelerator deployment: instances run
sequentially in-process (this is a simulator, not a thread pool), but
batch placement, per-instance accounting and cache sharing behave as
the deployed system would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.accel.gcnaccel import GcnAccelerator
from repro.errors import ConfigError
from repro.serve.cache import AutotuneCache
from repro.serve.request import InferenceResult
from repro.serve.scheduler import RequestQueue, Scheduler
from repro.utils.validation import check_positive_int


@dataclass
class WorkerState:
    """Accounting for one simulated accelerator instance."""

    index: int
    requests_served: int = 0
    batches_served: int = 0
    busy_seconds: float = 0.0


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate outcome of one :meth:`InferenceService.drain`."""

    n_requests: int
    n_batches: int
    cache_hits: int
    cache_misses: int
    wall_seconds: float
    total_cycles: int
    mean_utilization: float

    @property
    def hit_rate(self):
        """Fraction of requests answered from the autotune cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def requests_per_second(self):
        """Simulation throughput of the drain."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.n_requests / self.wall_seconds


@dataclass(frozen=True)
class ServeOutcome:
    """Everything one drain produced: ordered results plus stats."""

    results: tuple
    stats: ServiceStats
    workers: tuple


class InferenceService:
    """Accepts a stream of requests and serves them in batches.

    Parameters
    ----------
    n_workers:
        Size of the simulated accelerator pool; batches are placed
        round-robin.
    cache:
        An :class:`AutotuneCache` shared by all instances, ``True`` for
        a fresh one, or None to disable caching (every request runs the
        full auto-tuner — the ablation mode of the serving benchmark).
    max_batch:
        Optional cap on scheduler batch size.
    """

    def __init__(self, *, n_workers=2, cache=True, max_batch=None):
        check_positive_int(n_workers, "n_workers")
        if cache is True:
            cache = AutotuneCache()
        if cache is not None and not isinstance(cache, AutotuneCache):
            raise ConfigError(
                f"cache must be AutotuneCache, True or None, "
                f"got {type(cache).__name__}"
            )
        self.cache = cache
        self.queue = RequestQueue()
        self.scheduler = Scheduler(max_batch=max_batch)
        self.workers = [WorkerState(index=i) for i in range(n_workers)]

    def submit(self, request):
        """Queue one request; returns its id."""
        return self.queue.submit(request)

    def submit_many(self, requests):
        """Queue an iterable of requests; returns their ids."""
        return self.queue.submit_many(requests)

    def drain(self):
        """Serve everything queued; returns a :class:`ServeOutcome`.

        Results come back in request arrival order regardless of batch
        placement, so callers can zip them against what they submitted.
        """
        queued = self.queue.drain()
        # Without an explicit batch cap, bound batches so one giant
        # config group still spreads over the whole instance pool (each
        # instance configures once and takes a contiguous share) instead
        # of serializing on instance 0.
        pool_cap = None
        if self.scheduler.max_batch is None and len(self.workers) > 1:
            pool_cap = -(-len(queued) // len(self.workers)) or None
        batches = self.scheduler.plan(queued, max_batch=pool_cap)
        results = []
        started = time.perf_counter()
        for batch in batches:
            worker = self.workers[batch.index % len(self.workers)]
            batch_started = time.perf_counter()
            for item in batch.items:
                results.append((item.seq, self._serve_one(item, batch, worker)))
            worker.busy_seconds += time.perf_counter() - batch_started
            worker.batches_served += 1
        wall = time.perf_counter() - started
        results.sort(key=lambda pair: pair[0])
        results = tuple(result for _seq, result in results)
        return ServeOutcome(
            results=results,
            stats=self._stats(results, len(batches), wall),
            workers=tuple(self.workers),
        )

    def _serve_one(self, item, batch, worker):
        """Run one request on one instance and record the outcome."""
        request = item.request
        dataset = request.resolve_graph()
        started = time.perf_counter()
        accel = GcnAccelerator(
            dataset, request.config, a_hops=request.a_hops
        )
        report = accel.run(cache=self.cache)
        elapsed = time.perf_counter() - started
        worker.requests_served += 1
        return InferenceResult(
            request_id=request.request_id,
            dataset=getattr(dataset, "name", "custom"),
            fingerprint=accel.fingerprint(),
            total_cycles=report.total_cycles,
            latency_ms=report.latency_ms,
            utilization=report.utilization,
            cache_hit=report.cache_hit,
            worker=worker.index,
            batch=batch.index,
            sim_seconds=elapsed,
        )

    def _stats(self, results, n_batches, wall):
        """Fold per-request results into :class:`ServiceStats`."""
        hits = sum(1 for r in results if r.cache_hit)
        utils = [r.utilization for r in results]
        return ServiceStats(
            n_requests=len(results),
            n_batches=n_batches,
            cache_hits=hits,
            cache_misses=len(results) - hits,
            wall_seconds=wall,
            total_cycles=sum(r.total_cycles for r in results),
            mean_utilization=sum(utils) / len(utils) if utils else 0.0,
        )


def serve_requests(requests, *, n_workers=2, cache=True, max_batch=None):
    """One-shot convenience: submit ``requests``, drain, return outcome."""
    service = InferenceService(
        n_workers=n_workers, cache=cache, max_batch=max_batch
    )
    service.submit_many(requests)
    return service.drain()
