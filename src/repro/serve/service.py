"""The event-driven streaming inference service.

Ties the serving pieces together: requests enter a
:class:`~repro.serve.scheduler.RequestQueue` carrying simulated-clock
arrival times and optional latency SLOs; an event loop advances the
clock from arrival to arrival, the
:class:`~repro.serve.scheduler.StreamingScheduler` seals config-affine
batches when they fill or when a deadline demands it, and a pool of
simulated accelerator instances picks sealed batches up
earliest-deadline-first as each instance frees, sharing one
:class:`~repro.serve.AutotuneCache`. Per-request outcomes come back as
:class:`~repro.serve.request.InferenceResult` with a full serving
timeline (queueing delay, service start/finish, end-to-end latency,
SLO verdict); :class:`ServiceStats` aggregates throughput and hit rate
and :class:`LatencyStats` the latency percentiles and SLO attainment.

Two clocks run side by side and must never mix: the *simulated* clock
(seconds of modeled hardware time, derived from cycle counts via
:meth:`~repro.accel.ArchConfig.cycles_to_seconds`) drives every
scheduling decision, while the *wall* clock only measures how long the
simulation itself took — the serving-cost metric the autotune cache
exists to shrink. Because control flow depends only on the simulated
clock, a run is bit-deterministic under a fixed seed, and enabling the
cache changes wall time but not one cycle count, timestamp or verdict.

The offline batch regime of the original submit-then-drain service is
the degenerate case: when every request arrives at t=0 with no SLO, the
loop admits everything at once, flushes, and dispatches batches oldest
first — reproducing the old planner's order exactly.

The pool is a *model* of a multi-accelerator deployment: instances run
in-process by default (this is a simulator, not a thread pool), but
admission, batch placement, per-instance accounting and cache sharing
behave as the deployed system would. With ``workers=N`` the underlying
simulations additionally run on a real :mod:`repro.parallel` process
pool — a host-execution knob that shrinks wall time while leaving every
modeled number bit-identical (the sequential path stays the oracle).

Multi-tenant co-scheduling (PR 8, ``coschedule=True``) unifies the
batch and sharded paths into one pool: a waiting gang *claims* its
planned members (claimed instances finish their current batch and take
no new one, so the gang assembles at a bounded instant instead of
racing batch traffic for simultaneous idleness), requests carry
priority classes derived from SLO slack (``critical_slo_ms``), a
deadline-critical batch may *preempt* a lower-priority sharded job at a
layer boundary (the remainder resumes on the same gang, cycle totals
conserved), and concurrent sharded jobs price their halo traffic on one
shared pool fabric (per-link background loads summing across jobs).
All of it defaults off — the default service is bit-identical to
before. Independent of the flag, the sharded queue uses EASY-style
backfill: when the head job cannot possibly assemble yet, a later
sharded job may run on idle instances iff it cannot delay the head's
planned assembly (screened against its exact modeled duration).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.accel.gcnaccel import GcnAccelerator
from repro.cluster.multichip import ClusterConfig, simulate_multichip_gcn
from repro.cluster.partition import halo_exchange, make_plan
from repro.cluster.topology import Topology, make_topology, subtopology
from repro.errors import CeilingError, ConfigError
from repro.obs.tracer import NULL_TRACER, config_label
from repro.serve.cache import AutotuneCache
from repro.serve.demand import DemandHistogram
from repro.serve.request import InferenceResult
from repro.serve.scheduler import (
    RequestQueue,
    StreamingScheduler,
    _check_max_batch,
    _check_max_wait,
)
from repro.utils.validation import (
    check_non_negative_int,
    check_positive_finite,
    check_positive_int,
)


@dataclass
class WorkerState:
    """Accounting for one simulated accelerator instance."""

    index: int
    requests_served: int = 0
    batches_served: int = 0
    busy_seconds: float = 0.0
    """Wall-clock seconds this instance's simulations took."""
    free_at: float = 0.0
    """Simulated second the instance finishes its current batch."""
    modeled_busy_seconds: float = 0.0
    """Simulated seconds the instance was occupied: from the moment it
    is claimed for a batch (including any reconfiguration penalty) to
    the batch's finish. Gang members of a sharded job each accrue the
    full sharded duration."""
    last_key: object = None
    """The (config, a_hops) pair the instance is currently configured
    for (None until its first batch)."""
    reconfigs: int = 0
    """How many times the instance switched configurations between
    batches (each charged ``reconfig_cycles`` when that is non-zero)."""
    cache: object = None
    """This instance's own :class:`AutotuneCache` shard under
    ``cache_mode`` ``"partitioned"``/``"affinity"``; None in the
    historical shared-cache mode."""


class _ScreenCache:
    """Zero-footprint read-through cache for backfill screening.

    The backfill screen simulates a candidate sharded job to learn its
    exact modeled duration *before* deciding whether it may dispatch —
    a scheduling probe that must leave the shared serving cache
    untouched: lookups go through :meth:`AutotuneCache.peek` (no stats,
    no LRU promotion) and stores land in a private throwaway layer.
    When the job later really dispatches, it re-runs against the shared
    cache in dispatch order, so cache contents, stats and LRU order
    stay identical to a service that never screened anything.
    """

    def __init__(self, shared):
        self._own = AutotuneCache()
        self._shared = shared

    def lookup(self, fingerprint, config):
        entry = self._own.lookup(fingerprint, config)
        if entry is None and self._shared is not None:
            entry = self._shared.peek(fingerprint, config)
        return entry

    def peek(self, fingerprint, config, *, trace=True):
        entry = self._own.peek(fingerprint, config, trace=False)
        if entry is None and self._shared is not None:
            entry = self._shared.peek(fingerprint, config, trace=trace)
        return entry

    def store(self, fingerprint, config, entry):
        self._own.store(fingerprint, config, entry)


class _UnionPeek:
    """Read-only union view over the per-worker cache shards.

    :func:`repro.parallel.presimulate` only ever calls
    ``peek(..., trace=False)`` to decide which cold simulations to farm
    out. Under a partitioned pool "cold" means cold on *every* shard: a
    key warm anywhere is skipped — if the batch routes to that warm
    worker the replay peeks it warm, and if it routes elsewhere the
    replay's no-presim fallback runs it inline against that worker's
    shard, which is exactly the sequential protocol. No stats, no LRU
    promotion, no stores.
    """

    def __init__(self, caches):
        self._caches = caches

    def peek(self, fingerprint, config, *, trace=False):
        for cache in self._caches:
            entry = cache.peek(fingerprint, config, trace=False)
            if entry is not None:
                return entry
        return None


@dataclass
class _ActiveJob:
    """One running (or boundary-preempted) sharded job's live state."""

    seq: int
    gang: list
    """The member :class:`WorkerState` objects, in gang order."""
    priority: int
    start: float
    finish: float
    """Projected finish on the simulated clock (updated on resume)."""
    boundaries: list
    """Absolute simulated seconds of the remaining layer boundaries —
    the only instants the job may be preempted at."""
    flows: object = None
    """Per-link halo words (pool link id space) this job keeps on the
    shared fabric per round, or None for single-chip/clamped gangs."""
    constrained: bool = True
    preempted: bool = False
    remaining: float = 0.0
    """Modeled seconds of work left past the preemption boundary."""
    rel_boundaries: tuple = ()
    """Remaining boundary offsets relative to the preemption boundary,
    re-anchored at resume."""
    grant: int = None
    """Worker index the preempting batch may use (the rest of the gang
    is claimed for the resume)."""
    grant_used: bool = False
    resumes: int = 0
    spans: list = None
    """Mutable member worker-lane span events (tracing only) — trimmed
    at a preemption boundary, replaced by resume spans."""
    req_span: object = None
    svc_span: object = None
    complete_ev: object = None
    preempt_at: float = None


def percentile(values, q):
    """Nearest-rank percentile of ``values`` (0 < q <= 100).

    Deterministic and library-independent so golden latency numbers pin
    exactly: the result is always one of the observed values, never an
    interpolation.
    """
    if not 0.0 < q <= 100.0:
        raise ConfigError(f"percentile q must be in (0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(rank, 1) - 1]


@dataclass(frozen=True)
class LatencyStats:
    """Latency percentiles and SLO attainment of one serving run.

    All latency figures are end-to-end (arrival to finish, queueing
    plus modeled service) in milliseconds of simulated time.
    """

    n: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    mean_queue_ms: float
    """Mean queueing delay (arrival to service start)."""
    slo_requests: int
    """How many requests carried an SLO."""
    slo_met: int
    """How many SLO-carrying requests finished within it."""
    p999_ms: float = 0.0
    """99.9th-percentile end-to-end latency (nearest rank, so on small
    runs it coincides with the max)."""

    @property
    def slo_attainment(self):
        """Fraction of SLO-carrying requests that met their SLO
        (None when no request carried one)."""
        if self.slo_requests == 0:
            return None
        return self.slo_met / self.slo_requests

    @classmethod
    def from_results(cls, results):
        """Fold per-request results into latency statistics.

        Shed requests are excluded — they were never served, so they
        have no latency; the shed rate lives in
        :attr:`ServiceStats.shed_rate`.
        """
        results = [r for r in results if not r.shed]
        latencies = [r.e2e_ms for r in results]
        queues = [r.queue_ms for r in results]
        with_slo = [r for r in results if r.slo_ms is not None]
        return cls(
            n=len(results),
            p50_ms=percentile(latencies, 50),
            p95_ms=percentile(latencies, 95),
            p99_ms=percentile(latencies, 99),
            mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
            max_ms=max(latencies) if latencies else 0.0,
            mean_queue_ms=sum(queues) / len(queues) if queues else 0.0,
            slo_requests=len(with_slo),
            slo_met=sum(1 for r in with_slo if r.slo_met),
            p999_ms=percentile(latencies, 99.9),
        )


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate outcome of one :meth:`InferenceService.drain`."""

    n_requests: int
    n_batches: int
    cache_hits: int
    cache_misses: int
    wall_seconds: float
    total_cycles: int
    mean_utilization: float
    makespan_seconds: float = 0.0
    """Simulated seconds from clock zero to the last request's finish."""
    n_shed: int = 0
    """Requests rejected by admission control (``shed_expired``);
    counted inside ``n_requests``."""
    n_sharded: int = 0
    """Requests served as multi-chip sharded jobs (``chip_capacity``)."""
    n_backfilled: int = 0
    """Sharded jobs dispatched by the EASY backfill screen while the
    queue head was still assembling its gang."""
    n_preemptions: int = 0
    """Boundary preemptions of sharded jobs by deadline-critical
    requests (``coschedule`` only)."""
    n_evictions: int = 0
    """Autotune-cache entries the LRU bound evicted during this drain
    (0 without a bounded cache)."""
    n_routed: int = 0
    """Placement decisions the cache-affinity router made
    (``cache_mode="affinity"`` only; batch dispatches plus sharded gang
    placements)."""
    n_placement_hits: int = 0
    """Routed placements that landed on an instance already warm for
    the work (non-zero warm-entry coverage, or a sharded job re-landing
    on its remembered gang)."""
    n_replications: int = 0
    """Hot-entry replication pushes: one per (family, target instance)
    merge that actually copied at least one new cache entry."""

    @property
    def placement_hit_rate(self):
        """Fraction of routed placements that were warm (None when the
        affinity router never ran — shared/partitioned modes)."""
        if self.n_routed == 0:
            return None
        return self.n_placement_hits / self.n_routed

    @property
    def shed_rate(self):
        """Fraction of admitted requests shed instead of served."""
        return self.n_shed / self.n_requests if self.n_requests else 0.0

    @property
    def hit_rate(self):
        """Fraction of requests answered from the autotune cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def requests_per_second(self):
        """Simulation throughput of the drain (wall clock)."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.n_requests / self.wall_seconds

    @property
    def modeled_requests_per_second(self):
        """Modeled serving throughput on the simulated clock."""
        if self.makespan_seconds <= 0:
            return float("inf")
        return self.n_requests / self.makespan_seconds


@dataclass(frozen=True)
class ServeOutcome:
    """Everything one drain produced: ordered results plus stats."""

    results: tuple
    stats: ServiceStats
    workers: tuple
    latency: LatencyStats = None


class InferenceService:
    """Accepts a stream of requests and serves them event-driven.

    Parameters
    ----------
    n_workers:
        Size of the simulated accelerator pool; each sealed batch goes
        to the lowest-indexed instance free when it is dispatched.
    cache:
        An :class:`AutotuneCache` shared by all instances, ``True`` for
        a fresh one, or None to disable caching (every request runs the
        full auto-tuner — the ablation mode of the serving benchmark).
    max_batch:
        Optional cap on batch size; a config group is sealed as soon as
        it accumulates this many requests.
    max_wait:
        Optional bound (simulated seconds) on how long a sealed-pending
        request may wait for its batch to fill — the batch timeout that
        keeps SLO-less streaming traffic from queueing indefinitely.
        None disables it (batches then cut on size, deadline slack or
        end of stream only).
    shed_expired:
        Admission control: shed (reject, with a recorded outcome)
        requests whose deadline has already expired at batch-cut time —
        or by the time their sealed batch reaches an instance, the
        point where queueing under load actually expires deadlines —
        instead of serving them hopelessly late. Shed requests come
        back with ``InferenceResult.shed`` True and zeroed cycle
        fields; the shed rate is reported in
        :attr:`ServiceStats.shed_rate`. Default False keeps the
        historical serve-late behavior bit-for-bit.
    reconfig_cycles:
        Cycle penalty charged when an instance switches its
        ``(config, a_hops)`` between consecutive batches (converted to
        simulated seconds at the incoming config's clock and added
        before service starts). Default 0 models free switching — the
        historical behavior, which flatters small batches.
    chip_capacity:
        Per-instance node-count capacity: one int for a uniform pool,
        or a sequence of ``n_workers`` ints for a heterogeneous one. A
        request whose graph exceeds the pool's largest capacity is
        planned as a *sharded job*: it gang-schedules the smallest
        index-ordered set of free instances whose capacities cover the
        graph (``ceil(n_nodes / chip_capacity)`` instances in the
        uniform case, clamped to the pool size; instances whose
        *expected* capacity-proportional share would overflow are left
        out of the gang, and the *actual* constrained plan is validated
        before dispatch — a gang whose real nnz-balanced shards would
        overfill a member re-gangs wider) and executes through
        the :mod:`repro.cluster` multi-chip model with the members'
        capacities enforced as hard per-chip row ceilings, occupying
        all participating instances for the sharded duration; the
        shared ``AutotuneCache`` is keyed per shard. Only pool-clamped
        jobs (graphs even the whole pool cannot cover) run with
        capacities as best-effort estimates. None (default) disables
        sharding — oversized graphs run single-instance as before.
        Sharded jobs dispatch earliest-deadline-first with
        oldest-arrival tie-break, which degenerates to FIFO when no
        request carries an ``slo_ms``.
    cluster_options:
        Optional dict of :class:`~repro.cluster.ClusterConfig`
        overrides for sharded jobs (e.g. ``link_words_per_cycle``,
        ``topology``, ``overlap``, ``rebalance_signal``); ``n_chips``,
        ``chip``, ``chips`` and ``row_ceilings`` are always derived
        from the job itself.
    worker_configs:
        Optional per-instance :class:`~repro.accel.ArchConfig` sequence
        (length ``n_workers``) describing a heterogeneous hardware
        pool. Sharded jobs then run on the *participating instances'
        own configs* — a :class:`~repro.cluster.ClusterConfig` with one
        ``chips`` entry per gang member — instead of replicating the
        request's config, and the capacity-normalized cluster
        partitioner spreads the graph accordingly. None (default)
        models the historical uniform pool. Single-instance batches
        still simulate at the request's config (the request defines the
        workload's target architecture; sharding is where the pool's
        physical heterogeneity binds).
    workers:
        Host processes running the underlying simulations
        (:mod:`repro.parallel`): independent queued requests are
        presimulated in a process pool before the event loop, and
        sharded jobs run their per-chip simulations in the same pool.
        1 (default) keeps the in-process sequential oracle. Results —
        cycles, timestamps, latency traces, cache contents and stats —
        are bit-identical for any value; only the wall-clock figures
        (``wall_seconds``, ``busy_seconds``, ``sim_seconds``) shrink.
        Not to be confused with ``n_workers``, which sizes the
        *simulated* instance pool.
    coschedule:
        Multi-tenant co-scheduling of batch and sharded traffic.
        Enables (1) *gang claims*: while the head sharded job waits for
        members, its planned instances stop taking new batches at their
        next batch boundary, so the gang assembles at a bounded instant
        instead of racing batch traffic; (2) *priority classes*: the
        streaming scheduler groups and dispatches class-major
        (``(class, deadline, arrival)``), with classes derived per
        request via
        :meth:`~repro.serve.request.InferenceRequest.priority_class`;
        (3) *boundary preemption*: a class-0 (deadline-critical) batch
        with no free fitting instance preempts the lower-priority
        active sharded job with the earliest upcoming layer boundary —
        the gang frees at that boundary, one granted member serves the
        critical batch, and the remainder resumes on the same gang with
        the modeled cycle total conserved; (4) *fabric sharing*:
        concurrent sharded jobs run on per-gang restrictions of one
        pool-wide fabric (:func:`~repro.cluster.topology.subtopology`
        of the ``cluster_options`` topology kind) and each new job
        prices its halo flows against the per-link background traffic
        of jobs already running. Default False is bit-identical to the
        exclusive-gang service.
    critical_slo_ms:
        SLO threshold (ms) at or under which a request without an
        explicit ``priority`` derives class 0 (deadline-critical) under
        ``coschedule``. None means only explicit priorities can reach
        class 0.
    cache_mode:
        How the pool's autotune cache is organized.

        * ``"shared"`` (default) — one cache shared by every instance,
          cache-blind first-free placement: the historical service,
          bit-identical to before this knob existed.
        * ``"partitioned"`` — each instance owns a private
          :class:`AutotuneCache` shard (bounded by
          ``worker_cache_entries``) but placement stays cache-blind
          first-free: the realistic-deployment baseline the affinity
          bench compares against.
        * ``"affinity"`` — per-instance shards plus cache-aware
          placement: each sealed batch is scored against every
          candidate instance by *warm-entry coverage* (how many of the
          batch's (fingerprint, config) keys the instance's shard
          already holds), and a warm instance that frees within the
          batch's deadline slack is preferred over a cold first-free
          one. EDF dispatch order is untouched — affinity only picks
          *which* feasible instance serves the head batch, and falls
          back to first-free whenever waiting for a warm instance
          would risk the SLO (or, for SLO-less traffic, would exceed
          the batch's own estimated service time). Sharded jobs prefer
          re-landing on the gang that last served their graph. A
          per-family :class:`~repro.serve.demand.DemandHistogram`
          (decayed on the simulated clock) drives proactive
          replication of hot entries to the least-loaded shards.

        ``"partitioned"``/``"affinity"`` require ``cache=True`` (the
        service builds the per-instance shards itself).
    worker_cache_entries:
        LRU bound of each per-instance cache shard under
        ``"partitioned"``/``"affinity"`` (None = unbounded). The
        shared-mode cache is bounded via the ``cache`` object itself.
    replicate_threshold:
        Demand level (decayed requests within roughly one
        ``demand_half_life`` window) at which a graph family counts as
        *hot* and its warm cache entries are pushed to the
        ``replicate_k`` least-loaded instances via
        :meth:`AutotuneCache.merge`. None disables replication.
        Affinity mode only.
    replicate_k:
        How many least-loaded instances (earliest ``free_at``, index
        tie-break) receive each hot family's entries.
    demand_half_life:
        Half-life (simulated seconds) of the demand histogram's
        exponential decay.
    tracer:
        Optional :class:`~repro.obs.tracer.RecordingTracer` collecting
        the structured event trace of every drain (request span trees,
        batch cuts, gang claims, backfills, preemptions, cache and
        cluster events — all on the simulated clock). The recorded
        stream is bit-identical for any host ``workers`` count. None
        (default) uses the zero-overhead
        :class:`~repro.obs.tracer.NullTracer`.

    Units
    -----
    Two clocks must never mix (see the module docstring). Everything
    scheduling-related — ``arrival_time``, ``max_wait``, deadlines,
    ``free_at``, the ``start_time``/``finish_time`` of results,
    ``LatencyStats`` — is *simulated* time: seconds of modeled hardware
    derived from cycle counts via
    :meth:`~repro.accel.ArchConfig.cycles_to_seconds` (latencies are
    reported in simulated *milliseconds*). Only
    ``ServiceStats.wall_seconds``, ``WorkerState.busy_seconds`` and
    ``InferenceResult.sim_seconds`` are wall-clock: they measure how
    long the *simulation* took, the cost the autotune cache shrinks.

    SLO semantics
    -------------
    A request with ``slo_ms`` set carries the absolute deadline
    ``arrival_time + slo_ms / 1e3`` (simulated seconds). Deadlines
    steer scheduling twice — the tightest member deadline decides when
    a pending batch must be cut, and sealed batches dispatch
    earliest-deadline-first — and, by default, are never enforced by
    shedding: a request whose deadline already passed is still served
    and simply reported as a miss (``InferenceResult.slo_met`` False,
    aggregated into :attr:`LatencyStats.slo_attainment`). With
    ``shed_expired`` the front door sheds such requests at batch-cut
    time instead (recorded outcome, counted in
    :attr:`ServiceStats.shed_rate`). Requests without an SLO never
    expire and degrade to FIFO order.
    """

    def __init__(self, *, n_workers=2, cache=True, max_batch=None,
                 max_wait=None, shed_expired=False, reconfig_cycles=0,
                 chip_capacity=None, cluster_options=None,
                 worker_configs=None, workers=1, coschedule=False,
                 critical_slo_ms=None, cache_mode="shared",
                 worker_cache_entries=None, replicate_threshold=None,
                 replicate_k=2, demand_half_life=0.05, tracer=None):
        check_positive_int(n_workers, "n_workers")
        self.sim_workers = check_positive_int(workers, "workers")
        self.tracer = NULL_TRACER if tracer is None else tracer
        """Event sink (:mod:`repro.obs`): a
        :class:`~repro.obs.tracer.RecordingTracer` collects the span
        tree of every request plus scheduler/cluster/cache events on
        the simulated clock; the default :data:`NULL_TRACER` costs one
        attribute check per hook."""
        if cache_mode not in ("shared", "partitioned", "affinity"):
            raise ConfigError(
                "cache_mode must be 'shared', 'partitioned' or "
                f"'affinity', got {cache_mode!r}"
            )
        self.cache_mode = cache_mode
        if worker_cache_entries is not None:
            worker_cache_entries = check_positive_int(
                worker_cache_entries, "worker_cache_entries"
            )
        self.worker_cache_entries = worker_cache_entries
        if replicate_threshold is not None:
            try:
                replicate_threshold = float(replicate_threshold)
            except (TypeError, ValueError):
                raise ConfigError(
                    "replicate_threshold must be a number or None, got "
                    f"{type(replicate_threshold).__name__}"
                )
            if not math.isfinite(replicate_threshold) \
                    or replicate_threshold <= 0.0:
                raise ConfigError(
                    "replicate_threshold must be finite and > 0, got "
                    f"{replicate_threshold}"
                )
        self.replicate_threshold = replicate_threshold
        self.replicate_k = check_positive_int(replicate_k, "replicate_k")
        self.demand_half_life = check_positive_finite(
            demand_half_life, "demand_half_life"
        )
        if cache_mode != "shared":
            if cache is not True:
                raise ConfigError(
                    f"cache_mode={cache_mode!r} builds one cache shard "
                    "per instance itself; pass cache=True (a prebuilt "
                    "or disabled cache cannot be partitioned)"
                )
            self.cache = None
        else:
            if cache is True:
                cache = AutotuneCache()
            if cache is not None and not isinstance(cache, AutotuneCache):
                raise ConfigError(
                    f"cache must be AutotuneCache, True or None, "
                    f"got {type(cache).__name__}"
                )
            self.cache = cache
            if cache is not None:
                cache.tracer = self.tracer
        self.queue = RequestQueue()
        self.max_batch = _check_max_batch(max_batch)
        self.max_wait = _check_max_wait(max_wait)
        self.shed_expired = bool(shed_expired)
        self.reconfig_cycles = check_non_negative_int(
            reconfig_cycles, "reconfig_cycles"
        )
        if chip_capacity is not None:
            if isinstance(chip_capacity, (list, tuple)):
                caps = tuple(
                    check_positive_int(cap, "chip_capacity")
                    for cap in chip_capacity
                )
                if len(caps) != n_workers:
                    raise ConfigError(
                        f"chip_capacity must have one entry per worker "
                        f"({n_workers}), got {len(caps)}"
                    )
                chip_capacity = caps
            else:
                chip_capacity = check_positive_int(
                    chip_capacity, "chip_capacity"
                )
        self.chip_capacity = chip_capacity
        if worker_configs is not None:
            worker_configs = tuple(worker_configs)
            if len(worker_configs) != n_workers:
                raise ConfigError(
                    f"worker_configs must have one ArchConfig per worker "
                    f"({n_workers}), got {len(worker_configs)}"
                )
            from repro.accel.config import ArchConfig

            for cfg in worker_configs:
                if not isinstance(cfg, ArchConfig):
                    raise ConfigError(
                        "worker_configs entries must be ArchConfig, got "
                        f"{type(cfg).__name__}"
                    )
        self.worker_configs = worker_configs
        self.cluster_options = dict(cluster_options or {})
        for reserved in ("n_chips", "chip", "chips", "row_ceilings",
                         "workers", "background_link_loads"):
            if reserved in self.cluster_options:
                raise ConfigError(
                    f"cluster_options may not override {reserved!r} "
                    "(derived per sharded job)"
                )
        self.coschedule = bool(coschedule)
        if critical_slo_ms is not None:
            try:
                critical_slo_ms = float(critical_slo_ms)
            except (TypeError, ValueError):
                raise ConfigError(
                    "critical_slo_ms must be a number or None, got "
                    f"{type(critical_slo_ms).__name__}"
                )
            if not math.isfinite(critical_slo_ms) or critical_slo_ms <= 0.0:
                raise ConfigError(
                    "critical_slo_ms must be finite and > 0, got "
                    f"{critical_slo_ms}"
                )
        self.critical_slo_ms = critical_slo_ms
        if self.coschedule and isinstance(
            self.cluster_options.get("topology"), Topology
        ):
            raise ConfigError(
                "coschedule needs a topology *kind* in cluster_options "
                "(the pool-wide fabric is built per pool, then restricted "
                "per gang); a prebuilt Topology cannot be re-sized"
            )
        self.workers = [WorkerState(index=i) for i in range(n_workers)]
        if cache_mode != "shared":
            for worker in self.workers:
                shard = AutotuneCache(max_entries=worker_cache_entries)
                shard.tracer = self.tracer
                shard.lane = f"cache/w{worker.index}"
                worker.cache = shard
        self._n_batches = 0
        self._presim = {}
        self._pool_fabric_cache = None
        self._active = []
        self._screen_memo = {}
        self._drain_preemptions = 0
        self._drain_backfills = 0
        self._last_claim = None
        self._demand = DemandHistogram(half_life=self.demand_half_life)
        self._gang_affinity = {}
        """family -> member indices of the gang that last served it
        (sharded re-landing; persists across drains like the caches)."""
        self._family_keys = {}
        """family -> ordered set (dict) of (fingerprint, config) cache
        keys observed for it — what replication copies around."""
        self._fp_memo = {}
        self._family_memo = {}
        self._drain_routes = 0
        self._drain_route_hits = 0
        self._drain_replications = 0

    def submit(self, request):
        """Queue one :class:`~repro.serve.request.InferenceRequest`.

        Requests must arrive in non-decreasing ``arrival_time`` order
        (simulated seconds; equal times model a burst) — the queue
        rejects out-of-order arrivals with
        :class:`~repro.errors.ConfigError`. Returns the request id
        (the caller's ``request_id``, or the assigned arrival sequence
        number when None).
        """
        return self.queue.submit(request)

    def submit_many(self, requests):
        """Queue an iterable of requests (same contract as :meth:`submit`);
        returns their ids in submission order."""
        return self.queue.submit_many(requests)

    def drain(self):
        """Serve everything queued; returns a :class:`ServeOutcome`.

        Runs the event loop over the queued arrival stream. Results
        come back in request arrival order regardless of batch
        placement, so callers can zip them against what they submitted.

        Each drain is an independent simulation epoch: the clock
        restarts at zero and every instance starts idle. The cache and
        the cumulative per-instance counters carry over — that is the
        "warm service" the multi-drain pattern models.
        """
        queued = self.queue.drain()
        for worker in self.workers:
            worker.free_at = 0.0
        tr = self.tracer
        trace = tr.enabled
        evictions_before = self._evictions_total()
        if trace:
            tr.set_time(0.0)
            # No host-execution knobs in the args: the deterministic
            # stream must be identical for any ``workers`` count.
            tr.instant("drain.begin", ts=0.0, args={
                "queued": len(queued),
                "n_workers": len(self.workers),
                "coschedule": self.coschedule,
            })
        # Parallel backend: run the cold simulations every non-sharded
        # queued request needs in the process pool up front, then let
        # the event loop replay them in its own sequential order
        # (repro.parallel's bit-identity protocol). Sharded jobs
        # parallelize at chip level inside simulate_multichip_gcn
        # instead. A request shed later simply wastes its presimulation
        # — host work, never a modeled cycle.
        self._presim = {}
        if self.sim_workers > 1 and queued:
            from repro.parallel import presimulate

            accels = [
                GcnAccelerator(
                    item.request.resolve_graph(), item.request.config,
                    a_hops=item.request.a_hops,
                )
                for item in queued
                if not self._needs_sharding(item.request)
            ]
            # Partitioned/affinity pools presimulate against a read-only
            # union of the worker shards: a key warm on *any* shard is
            # skipped (its routed worker either has it — replay peeks it
            # warm — or doesn't, and replay falls back to the inline
            # sequential run, which is the bit-identity path anyway).
            presim_cache = (
                self.cache if self.cache_mode == "shared"
                else _UnionPeek([w.cache for w in self.workers])
            )
            self._presim = presimulate(
                accels, cache=presim_cache, workers=self.sim_workers,
                tracer=tr,
            )
        # Without an explicit batch cap, bound batches so one giant
        # config group still spreads over the whole instance pool (each
        # instance configures once and takes a contiguous share) instead
        # of serializing on instance 0.
        cap = self.max_batch
        if cap is None and len(self.workers) > 1:
            cap = -(-len(queued) // len(self.workers)) or None
        stream = StreamingScheduler(max_batch=cap, max_wait=self.max_wait,
                                    shed_expired=self.shed_expired,
                                    priorities=self.coschedule,
                                    critical_slo_ms=self.critical_slo_ms,
                                    tracer=tr)

        results = []
        sharded = []  # FIFO of oversized requests awaiting enough chips
        clock = 0.0
        i, n = 0, len(queued)
        batches_before = self._n_batches
        self._active = []
        self._screen_memo = {}
        self._drain_preemptions = 0
        self._drain_backfills = 0
        self._last_claim = None
        self._drain_routes = 0
        self._drain_route_hits = 0
        self._drain_replications = 0
        # The memos key by id(dataset); ids can be recycled across
        # drains, so they never outlive one. The demand histogram is
        # rebuilt too: each drain restarts the simulated clock at zero,
        # and a decayed counter anchored in a previous epoch would read
        # as infinitely stale. Caches and gang affinity persist — that
        # is the warm service.
        self._fp_memo = {}
        self._family_memo = {}
        if self.cache_mode == "affinity":
            self._demand = DemandHistogram(half_life=self.demand_half_life)
        last_snapshot = None
        started = time.perf_counter()
        while (i < n or stream.pending or stream.ready or sharded
               or any(entry.preempted for entry in self._active)):
            if trace:
                tr.set_time(clock)
            # Admit everything that has arrived by now. Size cuts
            # happen inside admit(), in arrival order; graphs over the
            # per-chip capacity divert to the sharded-job queue.
            while i < n and queued[i].arrival_time <= clock:
                item = queued[i]
                needs_shards = self._needs_sharding(item.request)
                if trace:
                    args = {
                        "seq": item.seq,
                        "slo_ms": item.request.slo_ms,
                        "sharded": needs_shards,
                    }
                    if self.coschedule:
                        args["class"] = self._class_of(item.request)
                    tr.instant("request.arrival", ts=item.arrival_time,
                               args=args)
                if self.cache_mode == "affinity":
                    self._demand.record(self._family_of(item.request),
                                        item.arrival_time)
                if needs_shards:
                    sharded.append(item)
                else:
                    stream.admit(item, now=clock)
                i += 1
            # Seal groups whose deadline slack (or batch timeout) is up.
            stream.cut_due(clock)
            # The arrival stream has ended: nothing more can join a
            # group, so seal the remainder.
            if i >= n:
                stream.flush(now=clock)
            # Record anything admission control shed at the cuts above.
            for item, when in stream.take_shed():
                results.append((item.seq, self._shed_result(item, when)))
            # Sharded jobs dispatch first, in priority-then-EDF order
            # with oldest-arrival tie-break (plain FIFO when nothing
            # carries an SLO), whenever enough instances are
            # simultaneously idle; they gang-schedule the lowest-indexed
            # free instances whose capacities cover the graph. The queue
            # head never gets *delayed*: a blocked head plans its gang
            # on the pool's free_at timeline (EASY reservation), and a
            # later job may only backfill onto idle instances when that
            # cannot push the head's planned assembly back — either it
            # avoids the reserved instances entirely, or its exact
            # screened duration proves they are free again in time.
            if self.coschedule:
                self._retire_active(clock)
            claims = self._resume_claims() if self.coschedule else set()
            reserved = set()
            while sharded:
                head_at = self._sharded_head(sharded)
                head = sharded[head_at]
                if self.shed_expired and head.deadline < clock:
                    sharded.pop(head_at)
                    results.append((head.seq, self._shed_result(head, clock)))
                    continue
                free = [w for w in self.workers
                        if w.free_at <= clock and w.index not in claims]
                picked = self._shard_gang(free, head.request)
                if picked is not None:
                    gang, constrained = picked
                    sharded.pop(head_at)
                    self._serve_sharded(head, gang, clock, results,
                                        constrained=constrained)
                    continue
                planned = self._planned_gang(head.request, exclude=claims)
                if planned is None:
                    break
                t_head, head_gang = planned
                if self.coschedule:
                    # Claim the planned members: from now until the
                    # gang assembles they take no new batch, so t_head
                    # is an upper bound, not a moving target.
                    reserved = set(head_gang)
                    claim = (head.seq, tuple(sorted(reserved)))
                    if trace and claim != self._last_claim:
                        self._last_claim = claim
                        tr.instant("gang.claim", ts=clock, args={
                            "seq": head.seq,
                            "members": sorted(reserved),
                            "ready_at": t_head,
                        })
                if len(sharded) == 1:
                    break
                dispatched = False
                order = sorted(
                    (j for j in range(len(sharded)) if j != head_at),
                    key=lambda j: self._sharded_key(sharded[j]),
                )
                for j in order:
                    cand = sharded[j]
                    if self.shed_expired and cand.deadline < clock:
                        continue
                    unreserved = [
                        w for w in free if w.index not in head_gang
                    ]
                    picked = self._shard_gang(unreserved, cand.request,
                                              clamp=False)
                    if picked is None:
                        # Reserved instances are idle until t_head; the
                        # candidate may borrow them iff its exact
                        # modeled duration returns them in time.
                        picked = self._shard_gang(free, cand.request,
                                                  clamp=False)
                        if picked is not None:
                            gang, constrained = picked
                            would_end = self._would_start(
                                gang, cand.request, clock
                            ) + self._screen_duration(
                                cand, gang, constrained, clock
                            )
                            if would_end > t_head:
                                picked = None
                    if picked is None:
                        continue
                    gang, constrained = picked
                    sharded.pop(j)
                    if trace:
                        tr.instant("backfill", ts=clock, args={
                            "seq": cand.seq,
                            "members": sorted(w.index for w in gang),
                            "head_seq": head.seq,
                        })
                    self._serve_sharded(cand, gang, clock, results,
                                        constrained=constrained,
                                        backfill=True)
                    self._drain_backfills += 1
                    dispatched = True
                    break
                if not dispatched:
                    break
            # Hand sealed batches, tightest deadline first (class-major
            # under co-scheduling), to free instances (lowest index when
            # several are free). With per-worker capacities, only an
            # instance that fits the batch's largest graph qualifies — a
            # small chip must not receive a graph its capacity says it
            # cannot hold. Claimed instances (gang reservations, pending
            # resumes) take no new batch; a deadline-critical batch with
            # nowhere to go may arm a boundary preemption instead.
            claimed = claims | reserved
            while stream.ready:
                items = stream.peek_ready()
                needed = self._batch_nodes(items)
                if self.cache_mode == "affinity":
                    worker = self._route_worker(items, clock, needed,
                                                claimed, stream)
                else:
                    worker = self._free_worker(clock, needed,
                                               claimed=claimed)
                if worker is None:
                    if self.coschedule and self._active:
                        self._maybe_preempt(stream.peek_ready(), needed,
                                            clock)
                    break
                if self.coschedule:
                    for entry in self._active:
                        if (entry.preempted and not entry.grant_used
                                and entry.grant == worker.index):
                            entry.grant_used = True
                self._serve_batch(stream.pop_ready(), worker, clock,
                                  stream, results)
            if self.coschedule:
                self._process_resumes(clock, results)
            if (self.cache_mode == "affinity"
                    and self.replicate_threshold is not None):
                self._replicate_hot(clock)
            if trace:
                tr.counter("service.queue", ts=clock, values={
                    "pending": stream.pending,
                    "ready": stream.ready,
                    "sharded": len(sharded),
                    "active": len(self._active),
                })
            # Advance the clock to the next event: an arrival, a
            # deadline-forced cut, an unclaimed instance freeing up, the
            # head sharded job's planned assembly, a backfill
            # opportunity (any instance freeing while the head waits),
            # or a preempted gang coming back together.
            horizon = []
            if i < n:
                horizon.append(queued[i].arrival_time)
            if stream.pending:
                horizon.append(stream.next_cut_time())
            claimed = (self._resume_claims() | reserved
                       if self.coschedule else set())
            if stream.ready:
                needed = self._batch_nodes(stream.peek_ready())
                frees = [
                    w.free_at for w in self.workers
                    if self._worker_fits(w.index, needed)
                    and w.index not in claimed
                ]
                if frees:
                    horizon.append(min(frees))
            if sharded:
                head = sharded[self._sharded_head(sharded)]
                planned = self._planned_gang(
                    head.request, exclude=self._resume_claims()
                    if self.coschedule else frozenset()
                )
                if planned is not None:
                    horizon.append(planned[0])
                if len(sharded) > 1:
                    busy = [w.free_at for w in self.workers
                            if w.free_at > clock]
                    if busy:
                        horizon.append(min(busy))
            if self.coschedule:
                for entry in self._active:
                    if entry.preempted:
                        horizon.append(max(
                            w.free_at for w in entry.gang
                        ))
            if not horizon:
                break
            clock = max(clock, min(horizon))
            # Livelock backstop: two identical consecutive snapshots
            # mean no event can ever fire again — fail loudly instead
            # of spinning (a claimed-worker accounting bug would
            # otherwise hang the caller silently).
            snapshot = (
                clock, i, len(results), len(sharded),
                int(stream.ready), int(stream.pending),
                self._n_batches,
                tuple(w.free_at for w in self.workers),
                tuple(entry.preempted for entry in self._active),
            )
            if snapshot == last_snapshot:
                raise RuntimeError(
                    "serving event loop stalled: no event advanced the "
                    f"clock past {clock} (co-scheduling claim bug?)"
                )
            last_snapshot = snapshot
        wall = time.perf_counter() - started

        if trace and self.cache_mode != "shared":
            tr.counter("cache.worker_hit_rate", ts=clock, values={
                f"w{w.index}": w.cache.stats.hit_rate
                for w in self.workers
            })
        results.sort(key=lambda pair: pair[0])
        results = tuple(result for _seq, result in results)
        n_batches = self._n_batches - batches_before
        evictions = self._evictions_total() - evictions_before
        return ServeOutcome(
            results=results,
            stats=self._stats(results, n_batches, wall, evictions),
            workers=tuple(self.workers),
            latency=LatencyStats.from_results(results),
        )

    @staticmethod
    def _batch_nodes(items):
        """The largest member graph of a (peeked) batch, in nodes."""
        return max(item.request.graph_nodes() for item in items)

    def _worker_fits(self, index, nodes):
        """Whether one instance's declared capacity covers ``nodes``.

        Unconstrained without ``chip_capacity``; with a uniform
        capacity every non-sharded request fits every instance, so the
        check only bites on heterogeneous per-worker capacities.
        """
        if self.chip_capacity is None:
            return True
        return self._capacity_of(index) >= nodes

    def _free_worker(self, clock, nodes=0, claimed=frozenset()):
        """The lowest-indexed fitting instance idle at ``clock``, or None.

        ``claimed`` instances (reserved for a waiting gang or a pending
        resume under ``coschedule``) are passed over even when idle.
        """
        for worker in self.workers:
            if (worker.free_at <= clock and worker.index not in claimed
                    and self._worker_fits(worker.index, nodes)):
                return worker
        return None

    def _cache_for(self, worker):
        """The cache an instance simulates against (shared or shard)."""
        if self.cache_mode == "shared":
            return self.cache
        return worker.cache

    def _evictions_total(self):
        """Cumulative evictions across whichever caches exist."""
        if self.cache_mode == "shared":
            return self.cache.stats.evictions if self.cache is not None else 0
        return sum(w.cache.stats.evictions for w in self.workers)

    def _request_key(self, request):
        """The (fingerprint, config) cache key one request will use.

        Builds (once per dataset/config/a_hops per drain — memoized)
        the same :class:`GcnAccelerator` the serving path builds, so
        the key matches what :func:`replay_simulation` looks up
        exactly.
        """
        dataset = request.resolve_graph()
        memo_key = (id(dataset), request.config, request.a_hops)
        fp = self._fp_memo.get(memo_key)
        if fp is None:
            accel = GcnAccelerator(dataset, request.config,
                                   a_hops=request.a_hops)
            fp = accel.fingerprint()
            self._fp_memo[memo_key] = fp
        return (fp, request.config)

    def _family_of(self, request):
        """The request's graph family (dataset fingerprint)."""
        dataset = request.resolve_graph()
        family = self._family_memo.get(id(dataset))
        if family is None:
            from repro.datasets.registry import dataset_fingerprint

            family = dataset_fingerprint(dataset)
            self._family_memo[id(dataset)] = family
        return family

    def _route_worker(self, items, clock, needed, claimed, stream):
        """Cache-affinity placement for one sealed batch.

        Scores candidate instances by warm-entry coverage of the
        batch's (fingerprint, config) keys and picks the best-covered
        *feasible* one — where feasible means free now, or freeing
        early enough that waiting for it cannot break the batch's
        earliest deadline (for SLO-less batches the wait is bounded by
        the scheduler's own EWMA service estimate, so a cold idle pool
        is never left idle for long). Ties break toward the
        earliest-free then lowest-indexed instance, and when no warm
        feasible instance exists the router falls back to the
        first-free rule — so EDF dispatch order within a priority
        class is preserved and a batch is never stranded past its
        deadline waiting for a warm instance.
        """
        config = items[0].request.config
        a_hops = items[0].request.a_hops
        keys = []
        seen = set()
        for item in items:
            key = self._request_key(item.request)
            family = self._family_of(item.request)
            self._family_keys.setdefault(family, {})[key] = None
            if key not in seen:
                seen.add(key)
                keys.append(key)
        estimate = stream.estimate(config, a_hops) * len(items)
        deadline = min(item.deadline for item in items)
        best = None
        best_score = None
        best_coverage = 0
        for worker in self.workers:
            if worker.index in claimed:
                continue
            if not self._worker_fits(worker.index, needed):
                continue
            coverage = sum(
                1 for fp, cfg in keys
                if worker.cache.peek(fp, cfg, trace=False) is not None
            )
            if coverage == 0:
                continue
            if worker.free_at > clock:
                # Waiting for this warm instance must be provably
                # safe: with a deadline, start + estimated service
                # still meets it; without one, the wait is bounded by
                # one estimated batch service time (0.0 before any
                # observation — i.e. never wait while cold).
                start = max(clock, worker.free_at)
                if (worker.last_key is not None
                        and worker.last_key != (config, a_hops)
                        and self.reconfig_cycles):
                    start += config.cycles_to_seconds(self.reconfig_cycles)
                if math.isfinite(deadline):
                    if start + estimate > deadline:
                        continue
                elif worker.free_at - clock > estimate:
                    continue
            score = (-coverage, worker.free_at, worker.index)
            if best_score is None or score < best_score:
                best = worker
                best_score = score
                best_coverage = coverage
        warm = best is not None
        if best is None:
            best = self._free_worker(clock, needed, claimed=claimed)
        if best is None:
            return None
        self._drain_routes += 1
        self._drain_route_hits += int(warm)
        if self.tracer.enabled:
            self.tracer.instant("cache.route", ts=clock, args={
                "seq": items[0].seq,
                "size": len(items),
                "keys": len(keys),
                "worker": best.index,
                "coverage": best_coverage,
                "warm": warm,
                "wait_ms": max(best.free_at - clock, 0.0) * 1e3,
            })
        return best

    def _replicate_hot(self, clock):
        """Copy hot families' warm entries to the least-loaded shards.

        Families whose windowed demand at ``clock`` meets
        ``replicate_threshold`` get every known (fingerprint, config)
        entry folded — via :meth:`AutotuneCache.merge`, so an entry
        already present and no staler is left untouched — into the
        ``replicate_k`` earliest-free instances' shards. Cold entries
        age out under each shard's LRU bound; modeled numbers never
        change (a replica only converts future cold simulations into
        warm replays).
        """
        if self.tracer.enabled:
            # Merge traces its stores through each shard's tracer;
            # anchor them here, not at the last-served request's start.
            self.tracer.set_time(clock)
        hot = self._demand.hot(clock, threshold=self.replicate_threshold)
        if not hot:
            return
        targets = sorted(
            self.workers, key=lambda w: (w.free_at, w.index)
        )[:min(self.replicate_k, len(self.workers))]
        for family in hot:
            known = self._family_keys.get(family)
            if not known:
                continue
            donor = AutotuneCache()
            for fp, cfg in known:
                for worker in self.workers:
                    entry = worker.cache.peek(fp, cfg, trace=False)
                    if entry is not None:
                        donor.store(fp, cfg, entry)
                        donor._meta[(fp, cfg)] = list(
                            worker.cache._meta[(fp, cfg)]
                        )
                        break
            if len(donor) == 0:
                continue
            for worker in targets:
                added = sum(
                    1 for key in donor._entries
                    if key not in worker.cache._entries
                )
                if added == 0:
                    continue
                worker.cache.merge(donor)
                self._drain_replications += 1
                if self.tracer.enabled:
                    self.tracer.instant(
                        "cache.replicate", ts=clock,
                        lane=worker.cache.lane, args={
                            "family": str(family)[:24],
                            "worker": worker.index,
                            "entries": added,
                        },
                    )

    def _capacity_of(self, index):
        """Node capacity of one instance (uniform or per-worker)."""
        if isinstance(self.chip_capacity, tuple):
            return self.chip_capacity[index]
        return self.chip_capacity

    def _needs_sharding(self, request):
        """Whether a request's graph exceeds every instance's capacity."""
        if self.chip_capacity is None:
            return False
        largest = (
            max(self.chip_capacity)
            if isinstance(self.chip_capacity, tuple)
            else self.chip_capacity
        )
        return request.graph_nodes() > largest

    def _class_of(self, request):
        """The request's effective priority class under this service."""
        return request.priority_class(self.critical_slo_ms)

    def _sharded_key(self, item):
        """Sort key of one queued sharded job.

        EDF with oldest-arrival tie-break by default; under
        ``coschedule`` the priority class majors it (a critical sharded
        job jumps any later-deadline best-effort one).
        """
        if self.coschedule:
            return (self._class_of(item.request), item.deadline, item.seq)
        return (item.deadline, item.seq)

    def _sharded_head(self, sharded):
        """Index of the first sharded job in :meth:`_sharded_key` order.

        Deadlines are infinite without an SLO, so an SLO-less queue
        degenerates to FIFO (lowest sequence number = index 0).
        """
        head = 0
        for i in range(1, len(sharded)):
            if self._sharded_key(sharded[i]) < self._sharded_key(
                sharded[head]
            ):
                head = i
        return head

    def _compute_capacity_of(self, index):
        """Relative compute throughput of one instance (gang split key)."""
        if self.worker_configs is None:
            return 1.0
        cfg = self.worker_configs[index]
        return cfg.n_pes * cfg.frequency_mhz

    def _fit_gang(self, candidates, nodes):
        """The covering gang inside ``candidates``, or None.

        The cluster partitioner splits work in proportion to *compute*
        capacity, so each member's *expected* share of the nodes must
        fit its declared node capacity — a small chip is not
        gang-scheduled next to a big one when even its proportional
        share would overflow. Members whose expected share overflows
        are pruned (their load redistributes) until the gang is
        feasible or empty. Pruning depends only on the candidate *set*,
        and a feasible gang survives pruning of any superset (shares
        only shrink as members are added), so this finds a covering
        gang iff the candidate set contains one. Uniform pools reduce
        to the historical ``ceil(nodes / capacity)`` sizing exactly:
        ``nodes / k <= capacity`` iff ``k * capacity >= nodes``, and
        nothing is ever pruned.

        The expected share is only a provisioning estimate — the
        partitioner balances *nnz*, so on skewed graphs a chip's actual
        row count can deviate from its proportional share. The hard
        guarantee lives one level down: :meth:`_shard_gang` validates
        the *actual* constrained plan (:meth:`_plan_fits`, worker
        capacities as :func:`~repro.cluster.partition.make_plan` row
        ceilings) before committing a gang, and the sharded run itself
        executes under those ceilings, so no instance is ever handed
        more rows than its declared capacity.
        """
        gang = list(candidates)
        while gang:
            total = sum(
                self._compute_capacity_of(w.index) for w in gang
            )
            kept = [
                worker for worker in gang
                if nodes * self._compute_capacity_of(worker.index) / total
                <= self._capacity_of(worker.index)
            ]
            if len(kept) == len(gang):
                return gang
            gang = kept
        return None

    def _gang_ceilings(self, gang):
        """The gang members' node capacities as hard row ceilings."""
        return tuple(self._capacity_of(worker.index) for worker in gang)

    def _gang_cluster(self, workers, request, *, row_ceilings=None,
                      topology=None, background=None):
        """The :class:`ClusterConfig` a sharded run on ``workers`` uses.

        Under ``coschedule``, ``topology`` carries the gang's
        restriction of the pool fabric (overriding the kind string in
        ``cluster_options``) and ``background`` the per-link loads of
        the other jobs concurrently on it.
        """
        opts = dict(self.cluster_options)
        if topology is not None:
            opts["topology"] = topology
        if background is not None:
            opts["background_link_loads"] = tuple(
                float(x) for x in background
            )
        if self.worker_configs is not None:
            return ClusterConfig(
                n_chips=len(workers),
                chips=tuple(
                    self.worker_configs[worker.index] for worker in workers
                ),
                row_ceilings=row_ceilings,
                workers=self.sim_workers,
                **opts,
            )
        return ClusterConfig(
            n_chips=len(workers), chip=request.config,
            row_ceilings=row_ceilings, workers=self.sim_workers,
            **opts,
        )

    def _plan_fits(self, gang, request):
        """Whether the *actual* constrained plan is feasible on ``gang``.

        :meth:`_fit_gang`'s proportional-share check is an estimate; on
        a skewed graph the real nnz-balanced plan can hand a member
        more rows than its declared capacity. This builds the very plan
        the sharded run would use — same strategy, block granularity
        and capacities, with the members' capacities as hard row
        ceilings — and reports whether it exists. The graph build is
        memoized per spec, so repeated validation during gang scans
        stays cheap.
        """
        dataset = request.resolve_graph()
        if hasattr(dataset, "adjacency_row_nnz"):
            row_nnz = dataset.adjacency_row_nnz()
        else:
            row_nnz = dataset.adjacency.row_nnz()
        cluster = self._gang_cluster(
            gang, request, row_ceilings=self._gang_ceilings(gang)
        )
        try:
            make_plan(
                row_nnz, cluster.n_chips, strategy=cluster.strategy,
                blocks_per_chip=cluster.blocks_per_chip,
                capacities=cluster.capacities(),
                row_ceilings=cluster.row_ceilings,
            )
        except CeilingError:
            return False
        return True

    def _shard_gang(self, free, request, *, clamp=True):
        """The gang a sharded request runs on: ``(gang, constrained)``.

        The first index-ordered prefix of ``free`` containing a gang
        that passes both the proportional-share screen
        (:meth:`_fit_gang`) and actual-plan validation
        (:meth:`_plan_fits`) — ``ceil(nodes / capacity)`` instances in
        the uniform case, more when the real plan overfills a member
        (the job re-gangs wider instead of silently overfilling).
        ``constrained`` True means the run enforces the members'
        capacities as hard row ceilings. When even the whole pool holds
        no feasible gang the job is pool-clamped onto every instance
        with ``constrained`` False (capacities become best-effort — the
        pool physically cannot honor them); otherwise an insufficient
        *free* set returns None and the job waits for more instances to
        idle. ``clamp=False`` disables the pool-clamp fallback — the
        backfill path uses it so only the queue head may ever
        monopolize the whole pool best-effort.

        Under ``cache_mode="affinity"`` a family served before prefers
        its previous gang: the remembered members are moved to the
        front of the candidate order (when free), so a repeat
        oversized graph re-lands on the instances whose shards hold
        its sharded entry. Feasibility is unchanged — the reordered
        scan admits exactly the same gang sizes, and the plain
        index-ordered scan still runs afterwards as the fallback.
        """
        nodes = request.graph_nodes()
        orders = [free]
        if self.cache_mode == "affinity" and free:
            remembered = self._gang_affinity.get(self._family_of(request))
            if remembered:
                preferred = [w for w in free if w.index in remembered]
                if preferred and preferred != free[:len(preferred)]:
                    rest = [w for w in free if w.index not in remembered]
                    orders.insert(0, preferred + rest)
        for order in orders:
            for end in range(1, len(order) + 1):
                gang = self._fit_gang(order[:end], nodes)
                if gang and self._plan_fits(gang, request):
                    return gang, True
        if clamp and free and len(free) == len(self.workers):
            return list(free), False
        return None

    def _planned_gang(self, request, *, exclude=frozenset()):
        """``(ready_time, member_indices)`` of the head job's plan.

        Scans non-excluded instances in ``free_at`` order (index-stable
        on ties): at each instant the candidate set is exactly the set
        :meth:`_shard_gang` will see, and its combined predicate
        (:meth:`_fit_gang` plus :meth:`_plan_fits`) is
        order-independent, so the returned time is one at which
        dispatch really succeeds — the event loop never advances to a
        horizon that cannot make progress. The fallback (every instance
        idle) is exactly the pool-clamp case, which always dispatches.
        ``exclude`` (claimed instances under ``coschedule``) shrinks
        the candidate pool; None when no feasible plan exists inside
        what remains (only possible with a non-empty ``exclude``).
        """
        nodes = request.graph_nodes()
        eligible = [w for w in self.workers if w.index not in exclude]
        by_free = sorted(eligible, key=lambda w: w.free_at)
        for end in range(1, len(by_free) + 1):
            gang = self._fit_gang(by_free[:end], nodes)
            if gang and self._plan_fits(gang, request):
                return (
                    by_free[end - 1].free_at,
                    tuple(w.index for w in gang),
                )
        if len(eligible) == len(self.workers):
            return (
                by_free[-1].free_at,
                tuple(w.index for w in self.workers),
            )
        return None

    def _gang_ready_time(self, request):
        """Earliest simulated second a feasible gang could assemble."""
        return self._planned_gang(request)[0]

    @property
    def _pool_fabric(self):
        """The pool-wide fabric co-scheduled gangs share, memoized.

        Built from the ``cluster_options`` topology *kind* (default
        all-to-all) at pool size; each gang runs on its
        :func:`~repro.cluster.topology.subtopology`, so different gangs'
        link loads live in one id space and sum as background traffic.
        """
        if self._pool_fabric_cache is None:
            self._pool_fabric_cache = make_topology(
                self.cluster_options.get("topology", "all-to-all"),
                len(self.workers),
                link_words_per_cycle=float(
                    self.cluster_options.get("link_words_per_cycle", 8.0)
                ),
                hop_latency_cycles=int(
                    self.cluster_options.get("hop_latency_cycles", 0)
                ),
            )
        return self._pool_fabric_cache

    def _would_start(self, workers, request, clock):
        """When a gang dispatched at ``clock`` would actually start.

        Non-mutating mirror of the :meth:`_reconfigure` gating inside
        :meth:`_serve_sharded`: the slowest member's reconfiguration
        penalty (if its configured key differs) delays the whole gang.
        Used by the backfill screen, which must price a candidate
        without touching worker state.
        """
        start = clock
        for worker in workers:
            if self.worker_configs is not None:
                config = self.worker_configs[worker.index]
            else:
                config = request.config
            key = (config, request.a_hops)
            member_start = clock
            if (worker.last_key is not None and worker.last_key != key
                    and self.reconfig_cycles):
                member_start += config.cycles_to_seconds(
                    self.reconfig_cycles
                )
            start = max(start, member_start)
        return start

    def _screen_duration(self, item, gang, constrained, clock):
        """Exact modeled duration a sharded dispatch would take *now*.

        Runs the very simulation :meth:`_serve_sharded` would run —
        same gang, ceilings, fabric restriction and background — against
        a :class:`_ScreenCache`, so the shared cache's contents, stats
        and LRU order stay untouched. Because the cache never changes
        modeled numbers, the screened duration equals the dispatched
        duration exactly; the backfill decision is a proof, not an
        estimate. Memoized per (job, gang, background) so the event
        loop can re-screen a parked candidate cheaply.
        """
        indices = tuple(worker.index for worker in gang)
        background = self._background_for(clock) if self.coschedule else None
        bg_key = (
            None if background is None else tuple(background.tolist())
        )
        key = (item.seq, indices, constrained, bg_key)
        cached = self._screen_memo.get(key)
        if cached is not None:
            return cached
        request = item.request
        ceilings = (
            self._gang_ceilings(gang)
            if constrained and self.chip_capacity is not None else None
        )
        topology = (
            subtopology(self._pool_fabric, indices)
            if self.coschedule else None
        )
        cluster = self._gang_cluster(
            gang, request, row_ceilings=ceilings,
            topology=topology, background=background,
        )
        report = simulate_multichip_gcn(
            request.resolve_graph(), cluster, a_hops=request.a_hops,
            cache=_ScreenCache(self._cache_for(gang[0])),
        )
        duration = cluster.chip.cycles_to_seconds(report.total_cycles)
        self._screen_memo[key] = duration
        return duration

    def _background_for(self, clock):
        """Per-link words other active jobs keep on the pool fabric.

        Sums the stored per-round halo flows of every running (not
        preempted, not finished) sharded job. None when nothing
        contends — the single-tenant fast path, which prices exactly
        as the exclusive fabric did.
        """
        flows = [
            entry.flows for entry in self._active
            if not entry.preempted and entry.flows is not None
            and entry.finish > clock
        ]
        if not flows:
            return None
        return np.sum(flows, axis=0)

    def _resume_claims(self):
        """Instance indices reserved for preempted jobs' resumes.

        Every gang member of a preempted job is claimed — it takes no
        new batch, so the resume is never pushed back — except the
        granted instance while its one-batch grant is still open.
        """
        claims = set()
        for entry in self._active:
            if not entry.preempted:
                continue
            for worker in entry.gang:
                if (entry.grant == worker.index
                        and not entry.grant_used):
                    continue
                claims.add(worker.index)
        return claims

    def _retire_active(self, clock):
        """Drop finished jobs from the active registry (keep preempted)."""
        self._active = [
            entry for entry in self._active
            if entry.preempted or entry.finish > clock
        ]

    def _maybe_preempt(self, items, needed, clock):
        """Boundary-preempt one active job for a critical batch.

        Fires only when the pending batch's best member class is 0
        (deadline-critical) and no fitting instance is free. Among
        active lower-priority jobs, picks the one with the earliest
        upcoming layer boundary that beats the batch's natural wait
        (the earliest fitting ``free_at``) and has a member the batch
        fits on. The gang frees at that boundary; the lowest-indexed
        fitting member becomes the batch's *grant*, the rest stay
        claimed for the resume. Returns True when a preemption was
        armed (the caller re-evaluates once the clock reaches the
        boundary).
        """
        cls = min(self._class_of(item.request) for item in items)
        if cls != 0:
            return False
        fits = [
            worker.free_at for worker in self.workers
            if self._worker_fits(worker.index, needed)
        ]
        if not fits:
            return False
        natural = min(fits)
        best = None
        for entry in self._active:
            if (entry.preempted or entry.finish <= clock
                    or entry.priority <= cls):
                continue
            while entry.boundaries and entry.boundaries[0] <= clock:
                entry.boundaries.pop(0)
            if not entry.boundaries:
                continue
            boundary = entry.boundaries[0]
            if not clock < boundary < natural:
                continue
            member = next(
                (worker for worker in
                 sorted(entry.gang, key=lambda w: w.index)
                 if self._worker_fits(worker.index, needed)),
                None,
            )
            if member is None:
                continue
            if best is None or boundary < best[0]:
                best = (boundary, entry, member)
        if best is None:
            return False
        boundary, entry, member = best
        entry.rel_boundaries = tuple(
            t - boundary for t in entry.boundaries[1:]
        )
        entry.remaining = entry.finish - boundary
        for worker in entry.gang:
            worker.free_at = boundary
            worker.modeled_busy_seconds -= entry.remaining
        entry.grant = member.index
        entry.grant_used = False
        entry.boundaries = []
        entry.preempted = True
        entry.preempt_at = boundary
        self._drain_preemptions += 1
        if self.tracer.enabled:
            self.tracer.instant("preempt", ts=boundary, args={
                "seq": entry.seq,
                "grant": member.index,
                "remaining_ms": entry.remaining * 1e3,
            })
            # The gang frees at the boundary: trim the running spans
            # there; the remainder's spans are re-emitted at resume.
            for span in entry.spans or ():
                span.dur = max(boundary - span.ts, 0.0)
            if entry.svc_span is not None:
                entry.svc_span.dur = max(
                    boundary - entry.svc_span.ts, 0.0
                )
        return True

    def _process_resumes(self, clock, results):
        """Resume preempted jobs whose whole gang is idle again.

        Runs *after* the batch loop each iteration, so the granted
        batch dispatches first. The remainder re-occupies the same gang
        for exactly the preserved ``remaining`` seconds (the modeled
        cycle total is conserved — only the timeline stretched), the
        surviving layer boundaries re-anchor at the resume instant, and
        the job's recorded result is patched with the stretched finish
        and its preemption count.
        """
        for entry in self._active:
            if not entry.preempted:
                continue
            if max(worker.free_at for worker in entry.gang) > clock:
                continue
            finish = clock + entry.remaining
            for worker in entry.gang:
                worker.free_at = finish
                worker.modeled_busy_seconds += entry.remaining
            entry.boundaries = [
                clock + offset for offset in entry.rel_boundaries
            ]
            entry.rel_boundaries = ()
            entry.remaining = 0.0
            entry.finish = finish
            entry.grant = None
            entry.preempted = False
            entry.resumes += 1
            if self.tracer.enabled:
                lane = f"req/{entry.seq}"
                self.tracer.span(
                    "request.preempted", lane=lane,
                    start=entry.preempt_at, end=clock,
                    args={"seq": entry.seq},
                )
                entry.spans = [
                    self.tracer.span(
                        "sharded.resume", lane=f"worker{w.index}",
                        start=clock, end=finish, args={"seq": entry.seq},
                    )
                    for w in entry.gang
                ]
                entry.svc_span = self.tracer.span(
                    "request.resume", lane=lane, start=clock, end=finish,
                    args={"seq": entry.seq},
                )
                entry.preempt_at = None
                if entry.req_span is not None:
                    entry.req_span.dur = finish - entry.req_span.ts
                ev = entry.complete_ev
                if ev is not None:
                    # The recorded completion moves with the stretched
                    # timeline, exactly as the result is patched below.
                    ev.ts = finish
                    e2e_ms = (finish - ev.args["arrival"]) * 1e3
                    ev.args["finish"] = finish
                    ev.args["e2e_ms"] = e2e_ms
                    if ev.args.get("slo_ms") is not None:
                        ev.args["slo_met"] = e2e_ms <= ev.args["slo_ms"]
                    ev.args["preemptions"] = entry.resumes
            for at, (seq, result) in enumerate(results):
                if seq == entry.seq:
                    results[at] = (seq, replace(
                        result, finish_time=finish,
                        preemptions=entry.resumes,
                    ))
                    break

    def _shed_result(self, item, when):
        """The recorded outcome of a request shed at simulated ``when``."""
        request = item.request
        if self.tracer.enabled:
            self.tracer.instant("request.shed", ts=when, args={
                "seq": item.seq,
                "slo_ms": request.slo_ms,
                "waited_ms": (when - request.arrival_time) * 1e3,
            })
        return InferenceResult(
            request_id=request.request_id,
            dataset=getattr(request.graph, "name", "custom"),
            fingerprint="",
            total_cycles=0,
            latency_ms=0.0,
            utilization=0.0,
            cache_hit=False,
            worker=-1,
            batch=-1,
            sim_seconds=0.0,
            arrival_time=request.arrival_time,
            start_time=when,
            finish_time=when,
            slo_ms=request.slo_ms,
            shed=True,
        )

    def _reconfigure(self, worker, key, config, start):
        """Track a config switch; returns ``start`` plus any penalty."""
        if worker.last_key is not None and worker.last_key != key:
            worker.reconfigs += 1
            if self.reconfig_cycles:
                start += config.cycles_to_seconds(self.reconfig_cycles)
        worker.last_key = key
        return start

    def _serve_sharded(self, item, workers, clock, results, *,
                       constrained=True, backfill=False):
        """Run one oversized request as a multi-chip job on ``workers``.

        All participating instances gang-schedule: service starts once
        every one of them is reconfigured (the slowest switch gates the
        start) and they stay busy until the synchronized sharded run
        finishes. With ``worker_configs`` the cluster is built from the
        gang members' own configs (a heterogeneous multi-chip job);
        otherwise every chip replicates the request's config. The
        shared autotune cache is passed down, so each shard's tuning
        state is cached independently per chip config.

        With ``constrained`` (the normal :meth:`_shard_gang` outcome)
        the members' node capacities become hard
        :attr:`~repro.cluster.ClusterConfig.row_ceilings` of the
        cluster plan — the partitioner and every rebalancing migration
        keep each shard within its instance's declared capacity.
        Pool-clamped jobs run unconstrained (best effort, the pool
        cannot cover the graph).
        """
        from repro.datasets.registry import dataset_fingerprint

        request = item.request
        if self.cache_mode == "affinity":
            # Remember (and score) the gang this family lands on:
            # re-landing on the same members means the primary's shard
            # already holds the sharded entry.
            family = self._family_of(request)
            members = tuple(sorted(w.index for w in workers))
            remembered = self._gang_affinity.get(family)
            warm = remembered is not None and members == tuple(
                sorted(remembered)
            )
            self._gang_affinity[family] = tuple(w.index for w in workers)
            self._drain_routes += 1
            self._drain_route_hits += int(warm)
            if self.tracer.enabled:
                self.tracer.instant("cache.route", ts=clock, args={
                    "seq": item.seq,
                    "sharded": True,
                    "members": list(members),
                    "warm": warm,
                })
        ceilings = (
            self._gang_ceilings(workers)
            if constrained and self.chip_capacity is not None else None
        )
        if self.worker_configs is not None:
            start = max(
                self._reconfigure(
                    worker,
                    (self.worker_configs[worker.index], request.a_hops),
                    self.worker_configs[worker.index],
                    clock,
                )
                for worker in workers
            )
        else:
            key = (request.config, request.a_hops)
            start = max(
                self._reconfigure(worker, key, request.config, clock)
                for worker in workers
            )
        topology = None
        background = None
        if self.coschedule:
            topology = subtopology(
                self._pool_fabric, tuple(w.index for w in workers)
            )
            background = self._background_for(clock)
        cluster = self._gang_cluster(
            workers, request, row_ceilings=ceilings,
            topology=topology, background=background,
        )
        dataset = request.resolve_graph()
        tr = self.tracer
        if tr.enabled:
            # Anchor the cluster/tuner/cache events of this job at its
            # service start on the simulated clock.
            tr.set_time(start)
        cache = self._cache_for(workers[0])
        if cache is not None:
            cache.clock = start
        wall_started = time.perf_counter()
        report = simulate_multichip_gcn(
            dataset, cluster, a_hops=request.a_hops, cache=cache,
            tracer=tr if tr.enabled else None,
        )
        elapsed = time.perf_counter() - wall_started
        service_seconds = cluster.chip.cycles_to_seconds(
            report.total_cycles
        )
        finish = start + service_seconds
        primary = workers[0]
        # Every gang member served the request and was busy for the
        # whole sharded run: the request and batch counts go to each
        # member alike, and the one wall-clock simulation cost is split
        # evenly (the counters then satisfy the gang invariant —
        # identical requests_served/batches_served/modeled_busy_seconds
        # across members, busy_seconds summing to the measured cost —
        # instead of piling requests and wall time onto workers[0]).
        for worker in workers:
            worker.free_at = finish
            worker.requests_served += 1
            worker.busy_seconds += elapsed / len(workers)
            worker.modeled_busy_seconds += finish - clock
            worker.batches_served += 1
        self._n_batches += 1
        result = InferenceResult(
            request_id=request.request_id,
            dataset=getattr(dataset, "name", "custom"),
            fingerprint=f"{dataset_fingerprint(dataset)}@{len(workers)}chips",
            total_cycles=report.total_cycles,
            latency_ms=report.latency_ms,
            utilization=report.utilization,
            cache_hit=report.cache_hit,
            worker=primary.index,
            batch=-1,
            sim_seconds=elapsed,
            arrival_time=request.arrival_time,
            start_time=start,
            finish_time=finish,
            slo_ms=request.slo_ms,
            n_shards=len(workers),
            priority=self._class_of(request) if self.coschedule else None,
        )
        member_spans = None
        req_span = svc_span = complete_ev = None
        if tr.enabled:
            tr.wall("sim.sharded", seconds=elapsed,
                    args={"seq": item.seq})
            lane = f"req/{item.seq}"
            member_spans = [
                tr.span(
                    "sharded.backfill" if backfill else "sharded",
                    lane=f"worker{w.index}", start=clock, end=finish,
                    args={"seq": item.seq, "n_shards": len(workers)},
                )
                for w in workers
            ]
            req_span = tr.span(
                "request", lane=lane, start=request.arrival_time,
                end=finish, args={"seq": item.seq},
            )
            tr.span(
                "request.queue", lane=lane, start=request.arrival_time,
                end=start, args={"seq": item.seq},
            )
            svc_span = tr.span(
                "request.service", lane=lane, start=start, end=finish,
                args={"seq": item.seq},
            )
            complete_ev = tr.instant("request.complete", ts=finish, args={
                "seq": item.seq,
                "dataset": result.dataset,
                "cycles": report.total_cycles,
                "utilization": float(report.utilization),
                "cache_hit": bool(report.cache_hit),
                "n_shards": len(workers),
                "backfilled": backfill,
                "arrival": request.arrival_time,
                "start": start,
                "finish": finish,
                "e2e_ms": result.e2e_ms,
                "queue_ms": result.queue_ms,
                "slo_ms": request.slo_ms,
                "slo_met": result.slo_met,
                "preemptions": 0,
            })
        if self.coschedule:
            # Register the job as an active tenant: its layer
            # boundaries are the preemption points, its per-round halo
            # flows the background traffic later jobs price against.
            secs = cluster.chip.cycles_to_seconds
            boundaries = []
            cum = report.migration_cycles
            for layer_cost in report.layer_cycles[:-1]:
                cum += layer_cost
                boundaries.append(start + secs(cum))
            flows = None
            if cluster.n_chips > 1:
                halo = halo_exchange(dataset.adjacency, report.plan)
                flows = cluster.fabric.link_loads(halo.words)
            self._active.append(_ActiveJob(
                seq=item.seq,
                gang=list(workers),
                priority=self._class_of(request),
                start=start,
                finish=finish,
                boundaries=boundaries,
                flows=flows,
                constrained=constrained,
                spans=member_spans,
                req_span=req_span,
                svc_span=svc_span,
                complete_ev=complete_ev,
            ))
        results.append((item.seq, result))

    def _serve_batch(self, batch, worker, clock, stream, results):
        """Run one sealed batch back-to-back on one instance.

        With ``shed_expired``, members whose deadline passed while the
        sealed batch queued for an instance are shed at service start —
        the second admission-control point, complementing the
        batch-cut-time check inside the scheduler. An entirely expired
        batch releases the instance untouched (no reconfiguration is
        charged, no batch is counted).
        """
        base_start = max(clock, worker.free_at)
        items = batch.items
        if self.shed_expired:
            live = []
            for item in items:
                if item.deadline < base_start:
                    results.append((item.seq,
                                    self._shed_result(item, base_start)))
                else:
                    live.append(item)
            items = tuple(live)
            if not items:
                return
        key = (batch.config, items[0].request.a_hops)
        start = self._reconfigure(worker, key, batch.config, base_start)
        now = start
        wall_started = time.perf_counter()
        for item in items:
            result = self._serve_one(item, batch, worker, now)
            now = result.finish_time
            stream.observe(item.request.config, item.request.a_hops,
                           result.modeled_seconds)
            results.append((item.seq, result))
        elapsed = time.perf_counter() - wall_started
        worker.busy_seconds += elapsed
        worker.free_at = now
        if self.tracer.enabled:
            self.tracer.wall("sim.batch", seconds=elapsed,
                             args={"batch": batch.index})
            self.tracer.span(
                "batch", lane=f"worker{worker.index}",
                start=base_start, end=now,
                args={
                    "batch": batch.index,
                    "size": len(items),
                    "config": config_label(batch.config),
                    "reconfig_s": start - base_start,
                },
            )
        # Charged from base_start, not start: the reconfiguration
        # interval keeps the instance occupied, so excluding it made
        # utilization denominators disagree with wall-clock occupancy
        # whenever reconfig_cycles > 0. One consistent definition:
        # modeled busy time runs from the moment the instance is
        # claimed (including any reconfiguration) to batch finish —
        # exactly what the sharded path charges via finish - clock.
        worker.modeled_busy_seconds += now - base_start
        worker.batches_served += 1
        self._n_batches += 1

    def _serve_one(self, item, batch, worker, start):
        """Run one request on one instance and record the outcome."""
        from repro.parallel import replay_simulation

        request = item.request
        dataset = request.resolve_graph()
        tr = self.tracer
        if tr.enabled:
            # Anchor this request's tuner/cache events (direct or
            # spliced from a pool worker) at its service start.
            tr.set_time(start)
        started = time.perf_counter()
        accel = GcnAccelerator(
            dataset, request.config, a_hops=request.a_hops
        )
        cache = self._cache_for(worker)
        if cache is not None:
            cache.clock = start
        report = replay_simulation(
            accel, cache, self._presim,
            tracer=tr if tr.enabled else None,
        )
        elapsed = time.perf_counter() - started
        worker.requests_served += 1
        service_seconds = request.config.cycles_to_seconds(
            report.total_cycles
        )
        result = InferenceResult(
            request_id=request.request_id,
            dataset=getattr(dataset, "name", "custom"),
            fingerprint=accel.fingerprint(),
            total_cycles=report.total_cycles,
            latency_ms=report.latency_ms,
            utilization=report.utilization,
            cache_hit=report.cache_hit,
            worker=worker.index,
            batch=batch.index,
            sim_seconds=elapsed,
            arrival_time=request.arrival_time,
            start_time=start,
            finish_time=start + service_seconds,
            slo_ms=request.slo_ms,
            priority=self._class_of(request) if self.coschedule else None,
        )
        if tr.enabled:
            finish = result.finish_time
            tr.wall("sim.request", seconds=elapsed,
                    args={"seq": item.seq})
            lane = f"req/{item.seq}"
            tr.span(
                "serve", lane=f"worker{worker.index}", start=start,
                end=finish, args={"seq": item.seq, "batch": batch.index},
            )
            tr.span(
                "request", lane=lane, start=request.arrival_time,
                end=finish, args={"seq": item.seq},
            )
            tr.span(
                "request.queue", lane=lane, start=request.arrival_time,
                end=start, args={"seq": item.seq},
            )
            tr.span(
                "request.service", lane=lane, start=start, end=finish,
                args={"seq": item.seq},
            )
            tr.instant("request.complete", ts=finish, args={
                "seq": item.seq,
                "dataset": result.dataset,
                "cycles": report.total_cycles,
                "utilization": float(report.utilization),
                "cache_hit": bool(report.cache_hit),
                "n_shards": 1,
                "batch": batch.index,
                "worker": worker.index,
                "arrival": request.arrival_time,
                "start": start,
                "finish": finish,
                "e2e_ms": result.e2e_ms,
                "queue_ms": result.queue_ms,
                "slo_ms": request.slo_ms,
                "slo_met": result.slo_met,
                "preemptions": 0,
            })
        return result

    def _stats(self, results, n_batches, wall, n_evictions=0):
        """Fold per-request results into :class:`ServiceStats`.

        Cache, cycle and utilization aggregates cover *served* requests
        only — a shed request never reached an instance.
        """
        served = [r for r in results if not r.shed]
        n_shed = len(results) - len(served)
        n_sharded = sum(1 for r in served if r.n_shards > 1)
        hits = sum(1 for r in served if r.cache_hit)
        utils = [r.utilization for r in served]
        return ServiceStats(
            n_requests=len(results),
            n_batches=n_batches,
            cache_hits=hits,
            cache_misses=len(served) - hits,
            wall_seconds=wall,
            total_cycles=sum(r.total_cycles for r in served),
            mean_utilization=sum(utils) / len(utils) if utils else 0.0,
            makespan_seconds=max(
                (r.finish_time for r in served), default=0.0
            ),
            n_shed=n_shed,
            n_sharded=n_sharded,
            n_backfilled=self._drain_backfills,
            n_preemptions=self._drain_preemptions,
            n_evictions=n_evictions,
            n_routed=self._drain_routes,
            n_placement_hits=self._drain_route_hits,
            n_replications=self._drain_replications,
        )


def serve_requests(requests, *, n_workers=2, cache=True, max_batch=None,
                   max_wait=None, shed_expired=False, reconfig_cycles=0,
                   chip_capacity=None, cluster_options=None,
                   worker_configs=None, workers=1, coschedule=False,
                   critical_slo_ms=None, cache_mode="shared",
                   worker_cache_entries=None, replicate_threshold=None,
                   replicate_k=2, demand_half_life=0.05, tracer=None):
    """One-shot convenience: submit ``requests``, drain, return outcome."""
    service = InferenceService(
        n_workers=n_workers, cache=cache, max_batch=max_batch,
        max_wait=max_wait, shed_expired=shed_expired,
        reconfig_cycles=reconfig_cycles, chip_capacity=chip_capacity,
        cluster_options=cluster_options, worker_configs=worker_configs,
        workers=workers, coschedule=coschedule,
        critical_slo_ms=critical_slo_ms, cache_mode=cache_mode,
        worker_cache_entries=worker_cache_entries,
        replicate_threshold=replicate_threshold,
        replicate_k=replicate_k, demand_half_life=demand_half_life,
        tracer=tracer,
    )
    service.submit_many(requests)
    return service.drain()
