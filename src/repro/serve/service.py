"""The event-driven streaming inference service.

Ties the serving pieces together: requests enter a
:class:`~repro.serve.scheduler.RequestQueue` carrying simulated-clock
arrival times and optional latency SLOs; an event loop advances the
clock from arrival to arrival, the
:class:`~repro.serve.scheduler.StreamingScheduler` seals config-affine
batches when they fill or when a deadline demands it, and a pool of
simulated accelerator instances picks sealed batches up
earliest-deadline-first as each instance frees, sharing one
:class:`~repro.serve.AutotuneCache`. Per-request outcomes come back as
:class:`~repro.serve.request.InferenceResult` with a full serving
timeline (queueing delay, service start/finish, end-to-end latency,
SLO verdict); :class:`ServiceStats` aggregates throughput and hit rate
and :class:`LatencyStats` the latency percentiles and SLO attainment.

Two clocks run side by side and must never mix: the *simulated* clock
(seconds of modeled hardware time, derived from cycle counts via
:meth:`~repro.accel.ArchConfig.cycles_to_seconds`) drives every
scheduling decision, while the *wall* clock only measures how long the
simulation itself took — the serving-cost metric the autotune cache
exists to shrink. Because control flow depends only on the simulated
clock, a run is bit-deterministic under a fixed seed, and enabling the
cache changes wall time but not one cycle count, timestamp or verdict.

The offline batch regime of the original submit-then-drain service is
the degenerate case: when every request arrives at t=0 with no SLO, the
loop admits everything at once, flushes, and dispatches batches oldest
first — reproducing the old planner's order exactly.

The pool is a *model* of a multi-accelerator deployment: instances run
sequentially in-process (this is a simulator, not a thread pool), but
admission, batch placement, per-instance accounting and cache sharing
behave as the deployed system would.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.accel.gcnaccel import GcnAccelerator
from repro.errors import ConfigError
from repro.serve.cache import AutotuneCache
from repro.serve.request import InferenceResult
from repro.serve.scheduler import (
    RequestQueue,
    StreamingScheduler,
    _check_max_batch,
    _check_max_wait,
)
from repro.utils.validation import check_positive_int


@dataclass
class WorkerState:
    """Accounting for one simulated accelerator instance."""

    index: int
    requests_served: int = 0
    batches_served: int = 0
    busy_seconds: float = 0.0
    """Wall-clock seconds this instance's simulations took."""
    free_at: float = 0.0
    """Simulated second the instance finishes its current batch."""
    modeled_busy_seconds: float = 0.0
    """Simulated seconds of modeled hardware time spent serving."""


def percentile(values, q):
    """Nearest-rank percentile of ``values`` (0 < q <= 100).

    Deterministic and library-independent so golden latency numbers pin
    exactly: the result is always one of the observed values, never an
    interpolation.
    """
    if not 0.0 < q <= 100.0:
        raise ConfigError(f"percentile q must be in (0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(rank, 1) - 1]


@dataclass(frozen=True)
class LatencyStats:
    """Latency percentiles and SLO attainment of one serving run.

    All latency figures are end-to-end (arrival to finish, queueing
    plus modeled service) in milliseconds of simulated time.
    """

    n: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    mean_queue_ms: float
    """Mean queueing delay (arrival to service start)."""
    slo_requests: int
    """How many requests carried an SLO."""
    slo_met: int
    """How many SLO-carrying requests finished within it."""

    @property
    def slo_attainment(self):
        """Fraction of SLO-carrying requests that met their SLO
        (None when no request carried one)."""
        if self.slo_requests == 0:
            return None
        return self.slo_met / self.slo_requests

    @classmethod
    def from_results(cls, results):
        """Fold per-request results into latency statistics."""
        latencies = [r.e2e_ms for r in results]
        queues = [r.queue_ms for r in results]
        with_slo = [r for r in results if r.slo_ms is not None]
        return cls(
            n=len(results),
            p50_ms=percentile(latencies, 50),
            p95_ms=percentile(latencies, 95),
            p99_ms=percentile(latencies, 99),
            mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
            max_ms=max(latencies) if latencies else 0.0,
            mean_queue_ms=sum(queues) / len(queues) if queues else 0.0,
            slo_requests=len(with_slo),
            slo_met=sum(1 for r in with_slo if r.slo_met),
        )


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate outcome of one :meth:`InferenceService.drain`."""

    n_requests: int
    n_batches: int
    cache_hits: int
    cache_misses: int
    wall_seconds: float
    total_cycles: int
    mean_utilization: float
    makespan_seconds: float = 0.0
    """Simulated seconds from clock zero to the last request's finish."""

    @property
    def hit_rate(self):
        """Fraction of requests answered from the autotune cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def requests_per_second(self):
        """Simulation throughput of the drain (wall clock)."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.n_requests / self.wall_seconds

    @property
    def modeled_requests_per_second(self):
        """Modeled serving throughput on the simulated clock."""
        if self.makespan_seconds <= 0:
            return float("inf")
        return self.n_requests / self.makespan_seconds


@dataclass(frozen=True)
class ServeOutcome:
    """Everything one drain produced: ordered results plus stats."""

    results: tuple
    stats: ServiceStats
    workers: tuple
    latency: LatencyStats = None


class InferenceService:
    """Accepts a stream of requests and serves them event-driven.

    Parameters
    ----------
    n_workers:
        Size of the simulated accelerator pool; each sealed batch goes
        to the lowest-indexed instance free when it is dispatched.
    cache:
        An :class:`AutotuneCache` shared by all instances, ``True`` for
        a fresh one, or None to disable caching (every request runs the
        full auto-tuner — the ablation mode of the serving benchmark).
    max_batch:
        Optional cap on batch size; a config group is sealed as soon as
        it accumulates this many requests.
    max_wait:
        Optional bound (simulated seconds) on how long a sealed-pending
        request may wait for its batch to fill — the batch timeout that
        keeps SLO-less streaming traffic from queueing indefinitely.
        None disables it (batches then cut on size, deadline slack or
        end of stream only).

    Units
    -----
    Two clocks must never mix (see the module docstring). Everything
    scheduling-related — ``arrival_time``, ``max_wait``, deadlines,
    ``free_at``, the ``start_time``/``finish_time`` of results,
    ``LatencyStats`` — is *simulated* time: seconds of modeled hardware
    derived from cycle counts via
    :meth:`~repro.accel.ArchConfig.cycles_to_seconds` (latencies are
    reported in simulated *milliseconds*). Only
    ``ServiceStats.wall_seconds``, ``WorkerState.busy_seconds`` and
    ``InferenceResult.sim_seconds`` are wall-clock: they measure how
    long the *simulation* took, the cost the autotune cache shrinks.

    SLO semantics
    -------------
    A request with ``slo_ms`` set carries the absolute deadline
    ``arrival_time + slo_ms / 1e3`` (simulated seconds). Deadlines
    steer scheduling twice — the tightest member deadline decides when
    a pending batch must be cut, and sealed batches dispatch
    earliest-deadline-first — but are never enforced by shedding: a
    request whose deadline already passed is still served and simply
    reported as a miss (``InferenceResult.slo_met`` False,
    aggregated into :attr:`LatencyStats.slo_attainment`). Requests
    without an SLO never expire and degrade to FIFO order.
    """

    def __init__(self, *, n_workers=2, cache=True, max_batch=None,
                 max_wait=None):
        check_positive_int(n_workers, "n_workers")
        if cache is True:
            cache = AutotuneCache()
        if cache is not None and not isinstance(cache, AutotuneCache):
            raise ConfigError(
                f"cache must be AutotuneCache, True or None, "
                f"got {type(cache).__name__}"
            )
        self.cache = cache
        self.queue = RequestQueue()
        self.max_batch = _check_max_batch(max_batch)
        self.max_wait = _check_max_wait(max_wait)
        self.workers = [WorkerState(index=i) for i in range(n_workers)]
        self._n_batches = 0

    def submit(self, request):
        """Queue one :class:`~repro.serve.request.InferenceRequest`.

        Requests must arrive in non-decreasing ``arrival_time`` order
        (simulated seconds; equal times model a burst) — the queue
        rejects out-of-order arrivals with
        :class:`~repro.errors.ConfigError`. Returns the request id
        (the caller's ``request_id``, or the assigned arrival sequence
        number when None).
        """
        return self.queue.submit(request)

    def submit_many(self, requests):
        """Queue an iterable of requests (same contract as :meth:`submit`);
        returns their ids in submission order."""
        return self.queue.submit_many(requests)

    def drain(self):
        """Serve everything queued; returns a :class:`ServeOutcome`.

        Runs the event loop over the queued arrival stream. Results
        come back in request arrival order regardless of batch
        placement, so callers can zip them against what they submitted.

        Each drain is an independent simulation epoch: the clock
        restarts at zero and every instance starts idle. The cache and
        the cumulative per-instance counters carry over — that is the
        "warm service" the multi-drain pattern models.
        """
        queued = self.queue.drain()
        for worker in self.workers:
            worker.free_at = 0.0
        # Without an explicit batch cap, bound batches so one giant
        # config group still spreads over the whole instance pool (each
        # instance configures once and takes a contiguous share) instead
        # of serializing on instance 0.
        cap = self.max_batch
        if cap is None and len(self.workers) > 1:
            cap = -(-len(queued) // len(self.workers)) or None
        stream = StreamingScheduler(max_batch=cap, max_wait=self.max_wait)

        results = []
        clock = 0.0
        i, n = 0, len(queued)
        batches_before = self._n_batches
        started = time.perf_counter()
        while i < n or stream.pending or stream.ready:
            # Admit everything that has arrived by now. Size cuts
            # happen inside admit(), in arrival order.
            while i < n and queued[i].arrival_time <= clock:
                stream.admit(queued[i])
                i += 1
            # Seal groups whose deadline slack (or batch timeout) is up.
            stream.cut_due(clock)
            # The arrival stream has ended: nothing more can join a
            # group, so seal the remainder.
            if i >= n:
                stream.flush()
            # Hand sealed batches, tightest deadline first, to free
            # instances (lowest index when several are free).
            while stream.ready:
                worker = self._free_worker(clock)
                if worker is None:
                    break
                self._serve_batch(stream.pop_ready(), worker, clock,
                                  stream, results)
            # Advance the clock to the next event: an arrival, a
            # deadline-forced cut, or an instance freeing up.
            horizon = []
            if i < n:
                horizon.append(queued[i].arrival_time)
            if stream.pending:
                horizon.append(stream.next_cut_time())
            if stream.ready:
                horizon.append(min(w.free_at for w in self.workers))
            if not horizon:
                break
            clock = max(clock, min(horizon))
        wall = time.perf_counter() - started

        results.sort(key=lambda pair: pair[0])
        results = tuple(result for _seq, result in results)
        n_batches = self._n_batches - batches_before
        return ServeOutcome(
            results=results,
            stats=self._stats(results, n_batches, wall),
            workers=tuple(self.workers),
            latency=LatencyStats.from_results(results),
        )

    def _free_worker(self, clock):
        """The lowest-indexed instance idle at ``clock``, or None."""
        for worker in self.workers:
            if worker.free_at <= clock:
                return worker
        return None

    def _serve_batch(self, batch, worker, clock, stream, results):
        """Run one sealed batch back-to-back on one instance."""
        start = max(clock, worker.free_at)
        now = start
        wall_started = time.perf_counter()
        for item in batch.items:
            result = self._serve_one(item, batch, worker, now)
            now = result.finish_time
            stream.observe(item.request.config, item.request.a_hops,
                           result.modeled_seconds)
            results.append((item.seq, result))
        worker.busy_seconds += time.perf_counter() - wall_started
        worker.free_at = now
        worker.modeled_busy_seconds += now - start
        worker.batches_served += 1
        self._n_batches += 1

    def _serve_one(self, item, batch, worker, start):
        """Run one request on one instance and record the outcome."""
        request = item.request
        dataset = request.resolve_graph()
        started = time.perf_counter()
        accel = GcnAccelerator(
            dataset, request.config, a_hops=request.a_hops
        )
        report = accel.run(cache=self.cache)
        elapsed = time.perf_counter() - started
        worker.requests_served += 1
        service_seconds = request.config.cycles_to_seconds(
            report.total_cycles
        )
        return InferenceResult(
            request_id=request.request_id,
            dataset=getattr(dataset, "name", "custom"),
            fingerprint=accel.fingerprint(),
            total_cycles=report.total_cycles,
            latency_ms=report.latency_ms,
            utilization=report.utilization,
            cache_hit=report.cache_hit,
            worker=worker.index,
            batch=batch.index,
            sim_seconds=elapsed,
            arrival_time=request.arrival_time,
            start_time=start,
            finish_time=start + service_seconds,
            slo_ms=request.slo_ms,
        )

    def _stats(self, results, n_batches, wall):
        """Fold per-request results into :class:`ServiceStats`."""
        hits = sum(1 for r in results if r.cache_hit)
        utils = [r.utilization for r in results]
        return ServiceStats(
            n_requests=len(results),
            n_batches=n_batches,
            cache_hits=hits,
            cache_misses=len(results) - hits,
            wall_seconds=wall,
            total_cycles=sum(r.total_cycles for r in results),
            mean_utilization=sum(utils) / len(utils) if utils else 0.0,
            makespan_seconds=max(
                (r.finish_time for r in results), default=0.0
            ),
        )


def serve_requests(requests, *, n_workers=2, cache=True, max_batch=None,
                   max_wait=None):
    """One-shot convenience: submit ``requests``, drain, return outcome."""
    service = InferenceService(
        n_workers=n_workers, cache=cache, max_batch=max_batch,
        max_wait=max_wait,
    )
    service.submit_many(requests)
    return service.drain()
