"""Request and result types of the streaming inference service.

An :class:`InferenceRequest` names a graph (a built
:class:`~repro.datasets.GcnDataset` or a lazily-built
:class:`~repro.serve.traffic.RmatGraphSpec`), the architecture to run it
on, the aggregation depth, and — for the event-driven serving loop — the
time it arrives on the simulated clock plus an optional latency SLO. The
service answers each request with an :class:`InferenceResult` carrying
the modeled hardware outcome (cycles, latency, utilization) and the
serving timeline (queueing delay, service start/finish, end-to-end
latency, SLO verdict) plus serving metadata (which simulated instance
ran it, whether the autotune cache hit, how long the simulation took).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accel.config import ArchConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class InferenceRequest:
    """One GCN inference to schedule.

    Parameters
    ----------
    graph:
        A :class:`~repro.datasets.GcnDataset`, or any object with a
        ``build()`` method returning one (e.g.
        :class:`~repro.serve.traffic.RmatGraphSpec`). Specs are built
        lazily and memoized, so a traffic mix can repeat a spec cheaply.
    config:
        The :class:`~repro.accel.ArchConfig` to simulate. Requests
        sharing a config are batched onto the same accelerator instance.
    a_hops:
        Aggregation depth per layer (``A^k (X W)``).
    request_id:
        Caller-side correlation id; assigned by the queue when None.
    arrival_time:
        Seconds on the simulated clock at which the request enters the
        system. The default 0.0 reproduces the offline batch regime
        (everything available up front). Requests must be submitted in
        non-decreasing arrival order.
    slo_ms:
        Optional end-to-end latency SLO in milliseconds. The scheduler
        cuts a batch early when a member's deadline
        (``arrival_time + slo_ms``) is about to expire; the result
        records whether the SLO was met. None means no deadline.
    priority:
        Optional explicit priority class (a non-negative int, lower =
        more urgent). None (default) lets the service derive the class
        from SLO slack via :meth:`priority_class`: 0 (deadline-critical)
        when ``slo_ms`` is at or under the service's critical
        threshold, 1 for any other SLO-carrying request, 2 (best
        effort) without an SLO. Priorities only steer scheduling when
        the service runs with co-scheduling enabled; the default
        service ignores them.
    """

    graph: object
    config: ArchConfig
    a_hops: int = 1
    request_id: object = None
    arrival_time: float = 0.0
    slo_ms: float = None
    priority: int = None

    def __post_init__(self):
        if not isinstance(self.config, ArchConfig):
            raise ConfigError(
                f"config must be ArchConfig, got {type(self.config).__name__}"
            )
        if not isinstance(self.a_hops, int) or self.a_hops < 1:
            raise ConfigError(
                f"a_hops must be a positive int, got {self.a_hops}"
            )
        try:
            arrival = float(self.arrival_time)
        except (TypeError, ValueError):
            raise ConfigError(
                "arrival_time must be a number, got "
                f"{type(self.arrival_time).__name__}"
            )
        if not math.isfinite(arrival) or arrival < 0.0:
            raise ConfigError(
                f"arrival_time must be finite and >= 0, got {arrival}"
            )
        object.__setattr__(self, "arrival_time", arrival)
        if self.slo_ms is not None:
            try:
                slo = float(self.slo_ms)
            except (TypeError, ValueError):
                raise ConfigError(
                    f"slo_ms must be a number or None, got "
                    f"{type(self.slo_ms).__name__}"
                )
            if not math.isfinite(slo) or slo <= 0.0:
                raise ConfigError(
                    f"slo_ms must be finite and > 0, got {slo}"
                )
            object.__setattr__(self, "slo_ms", slo)
        if self.priority is not None:
            if not isinstance(self.priority, int) or self.priority < 0:
                raise ConfigError(
                    "priority must be a non-negative int or None, got "
                    f"{self.priority!r}"
                )

    def priority_class(self, critical_slo_ms=None):
        """The request's effective priority class (lower = more urgent).

        An explicit :attr:`priority` always wins. Otherwise the class
        derives from SLO slack: 0 (deadline-critical) when ``slo_ms``
        is at or under ``critical_slo_ms``, 1 for any other
        SLO-carrying request, 2 (best effort) when no SLO is set.
        """
        if self.priority is not None:
            return self.priority
        if self.slo_ms is None:
            return 2
        if critical_slo_ms is not None and self.slo_ms <= critical_slo_ms:
            return 0
        return 1

    @property
    def deadline(self):
        """Absolute completion deadline in seconds (inf when no SLO)."""
        if self.slo_ms is None:
            return math.inf
        return self.arrival_time + self.slo_ms / 1e3

    def resolve_graph(self):
        """The built dataset behind this request."""
        build = getattr(self.graph, "build", None)
        if callable(build):
            return build()
        return self.graph

    def graph_nodes(self):
        """Node count of the request's graph.

        Cheap for specs and datasets (both expose ``n_nodes``); only a
        graph object without that attribute forces a build. The service
        uses this to decide whether a request exceeds the per-chip
        capacity and must be planned as a sharded job.
        """
        nodes = getattr(self.graph, "n_nodes", None)
        if nodes is None:
            nodes = self.resolve_graph().n_nodes
        return int(nodes)


@dataclass(frozen=True)
class InferenceResult:
    """The service's answer to one :class:`InferenceRequest`."""

    request_id: object
    dataset: str
    """Name of the dataset the request resolved to."""
    fingerprint: str
    """Workload fingerprint used as the cache key's graph half."""
    total_cycles: int
    latency_ms: float
    """Modeled hardware service latency (cycles at the config clock)."""
    utilization: float
    cache_hit: bool
    """Whether the autotune cache supplied the converged row map."""
    worker: int
    """Index of the simulated accelerator instance that served this."""
    batch: int
    """Index of the scheduler batch this request rode in."""
    sim_seconds: float
    """Wall-clock time the simulation took (the serving-cost metric the
    autotune cache exists to shrink)."""
    arrival_time: float = 0.0
    """Simulated-clock second the request entered the system."""
    start_time: float = 0.0
    """Simulated-clock second service began on the instance."""
    finish_time: float = 0.0
    """Simulated-clock second the result was ready."""
    slo_ms: float = None
    """The request's latency SLO in ms (None when it carried none)."""
    shed: bool = False
    """True when admission control rejected the request instead of
    serving it (its deadline had already expired at batch-cut time);
    cycle/latency fields are zero and ``finish_time`` records the shed
    instant."""
    n_shards: int = 1
    """How many accelerator instances executed this request (1 for the
    normal single-chip path; >1 when the graph exceeded the service's
    per-chip capacity and ran as a sharded multi-chip job)."""
    priority: int = None
    """The priority class the request was scheduled at (only populated
    by a co-scheduling service; None otherwise)."""
    preemptions: int = 0
    """How many times this (sharded) job was preempted at a layer
    boundary by a deadline-critical request and later resumed. The
    modeled cycle total is conserved across preemptions — only the
    serving timeline stretches."""

    @property
    def modeled_seconds(self):
        """Modeled hardware latency in seconds."""
        return self.latency_ms / 1e3

    @property
    def queue_ms(self):
        """Milliseconds the request waited before service started."""
        return (self.start_time - self.arrival_time) * 1e3

    @property
    def service_ms(self):
        """Milliseconds of modeled service time on the instance."""
        return (self.finish_time - self.start_time) * 1e3

    @property
    def e2e_ms(self):
        """End-to-end latency in ms: arrival to finish (queue + service)."""
        return (self.finish_time - self.arrival_time) * 1e3

    @property
    def deadline(self):
        """Absolute completion deadline in seconds (inf when no SLO)."""
        if self.slo_ms is None:
            return math.inf
        return self.arrival_time + self.slo_ms / 1e3

    @property
    def slo_met(self):
        """Whether the SLO held (None when the request carried none)."""
        if self.slo_ms is None:
            return None
        return self.e2e_ms <= self.slo_ms
