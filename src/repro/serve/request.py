"""Request and result types of the batched inference service.

An :class:`InferenceRequest` names a graph (a built
:class:`~repro.datasets.GcnDataset` or a lazily-built
:class:`~repro.serve.traffic.RmatGraphSpec`), the architecture to run it
on and the aggregation depth. The service answers each request with an
:class:`InferenceResult` carrying the modeled hardware outcome (cycles,
latency, utilization) plus serving metadata (which simulated instance
ran it, whether the autotune cache hit, how long the simulation took).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.config import ArchConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class InferenceRequest:
    """One GCN inference to schedule.

    Parameters
    ----------
    graph:
        A :class:`~repro.datasets.GcnDataset`, or any object with a
        ``build()`` method returning one (e.g.
        :class:`~repro.serve.traffic.RmatGraphSpec`). Specs are built
        lazily and memoized, so a traffic mix can repeat a spec cheaply.
    config:
        The :class:`~repro.accel.ArchConfig` to simulate. Requests
        sharing a config are batched onto the same accelerator instance.
    a_hops:
        Aggregation depth per layer (``A^k (X W)``).
    request_id:
        Caller-side correlation id; assigned by the queue when None.
    """

    graph: object
    config: ArchConfig
    a_hops: int = 1
    request_id: object = None

    def __post_init__(self):
        if not isinstance(self.config, ArchConfig):
            raise ConfigError(
                f"config must be ArchConfig, got {type(self.config).__name__}"
            )
        if not isinstance(self.a_hops, int) or self.a_hops < 1:
            raise ConfigError(
                f"a_hops must be a positive int, got {self.a_hops}"
            )

    def resolve_graph(self):
        """The built dataset behind this request."""
        build = getattr(self.graph, "build", None)
        if callable(build):
            return build()
        return self.graph


@dataclass(frozen=True)
class InferenceResult:
    """The service's answer to one :class:`InferenceRequest`."""

    request_id: object
    dataset: str
    """Name of the dataset the request resolved to."""
    fingerprint: str
    """Workload fingerprint used as the cache key's graph half."""
    total_cycles: int
    latency_ms: float
    utilization: float
    cache_hit: bool
    """Whether the autotune cache supplied the converged row map."""
    worker: int
    """Index of the simulated accelerator instance that served this."""
    batch: int
    """Index of the scheduler batch this request rode in."""
    sim_seconds: float
    """Wall-clock time the simulation took (the serving-cost metric the
    autotune cache exists to shrink)."""

    @property
    def modeled_seconds(self):
        """Modeled hardware latency in seconds."""
        return self.latency_ms / 1e3
