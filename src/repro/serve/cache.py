"""The autotune cache: converged row maps keyed by (graph, config).

The Eq. 5 auto-tuner spends its first rounds probing hotspots and
migrating rows; once converged, the map is optimal for that (sparse
matrix, architecture) pair forever — the matrix does not change between
requests. :class:`AutotuneCache` therefore memoizes the per-stage
converged :class:`~repro.accel.workload.RowAssignment` maps (plus the
recorded warm-up cycle trace) under a ``(workload fingerprint,
ArchConfig)`` key. A repeat graph skips the tuner loop entirely and goes
through the vectorized frozen fast path of
:func:`~repro.accel.cyclemodel.simulate_spmm_frozen`, producing a report
cycle-identical to the cold run at a fraction of the simulation cost.

Entries survive the process: :meth:`AutotuneCache.save` writes a single
``.npz`` archive (owner maps as arrays, everything else as an embedded
JSON index) and :meth:`AutotuneCache.load` restores it, so a service
restart starts warm.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass

import numpy as np

from repro.accel.config import ArchConfig
from repro.accel.gcnaccel import CachedStage, CachedTuning
from repro.errors import ConfigError
from repro.obs.tracer import NULL_TRACER, config_label
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one :class:`AutotuneCache`."""

    hits: int
    misses: int
    entries: int
    evictions: int = 0
    """Entries dropped by the LRU size bound since the last clear."""

    @property
    def lookups(self):
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self):
        """Fraction of lookups answered from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0


class AutotuneCache:
    """Persistent map from (workload fingerprint, config) to tuning state.

    The stored value is a :class:`~repro.accel.CachedTuning`: one frozen
    owner map + warm-up trace per SPMM stage of the inference.
    :meth:`lookup` and :meth:`store` are the hook surface
    :meth:`~repro.accel.GcnAccelerator.run` drives; the service never
    touches entries directly.

    ``max_entries`` bounds the cache LRU-style: every :meth:`lookup`
    hit and :meth:`store` refreshes the key's recency, and an insert
    that would exceed the bound evicts the least-recently-used entries
    first (counted in :attr:`stats`). None keeps the historical
    unbounded behavior. Recency survives persistence: :meth:`save`
    archives entries in LRU order (least recent first) and
    :meth:`load` restores them in that order, so cross-process cache
    sharing keeps evicting in true recency order.
    """

    def __init__(self, *, max_entries=None):
        if max_entries is not None:
            max_entries = check_positive_int(max_entries, "max_entries")
        self.max_entries = max_entries
        # Insertion-ordered dict doubling as the LRU list: the front is
        # the least recently used, re-insertion moves a key to the back.
        self._entries = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self.tracer = NULL_TRACER
        """Event sink for cache traffic (:mod:`repro.obs`); the service
        points it at its own tracer. Timestamps use the tracer's
        current simulated anchor."""

    @staticmethod
    def _key_args(fingerprint, config):
        """Deterministic event args naming one cache key."""
        return {
            "key": str(fingerprint)[:24],
            "config": config_label(config),
        }

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    @staticmethod
    def key(fingerprint, config):
        """The composite cache key for a workload/config pair."""
        if not isinstance(config, ArchConfig):
            raise ConfigError(
                f"config must be ArchConfig, got {type(config).__name__}"
            )
        return (str(fingerprint), config)

    def lookup(self, fingerprint, config):
        """Return the cached :class:`CachedTuning` or None (counted).

        ``fingerprint`` is the workload's structural hash
        (:meth:`~repro.accel.GcnAccelerator.fingerprint` — any object
        whose ``str()`` names the workload deterministically) and
        ``config`` the :class:`~repro.accel.ArchConfig` it would run
        under; together they form the cache key. Every call counts as
        a hit or miss in :attr:`stats`; a hit refreshes the key's LRU
        recency.
        """
        key = self.key(fingerprint, config)
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
        else:
            self._hits += 1
            self._entries[key] = self._entries.pop(key)
        if self.tracer.enabled:
            self.tracer.instant(
                "cache.hit" if entry is not None else "cache.miss",
                lane="cache", args=self._key_args(fingerprint, config),
            )
        return entry

    def peek(self, fingerprint, config, *, trace=True):
        """Return the cached entry without counting or touching recency.

        The side-effect-free read the parallel backend
        (:mod:`repro.parallel`) uses to decide which cold simulations to
        dispatch: probing every key up front must not perturb the
        hit/miss counters or the LRU order, or the later sequential
        replay would diverge from the oracle. ``trace=False`` also
        suppresses the trace event — the parallel backend's probes
        happen only when ``workers > 1``, so leaving them in the stream
        would break the ``workers=N`` trace bit-identity contract.
        """
        entry = self._entries.get(self.key(fingerprint, config))
        if trace and self.tracer.enabled:
            args = self._key_args(fingerprint, config)
            args["found"] = entry is not None
            self.tracer.instant("cache.peek", lane="cache", args=args)
        return entry

    def store(self, fingerprint, config, entry):
        """Insert (or overwrite) the tuning state for a key.

        ``fingerprint``/``config`` form the key as in :meth:`lookup`;
        ``entry`` must be a :class:`~repro.accel.CachedTuning` (the
        frozen owner maps plus warm-up cycle traces of one full
        inference — cycle counts, not timestamps, so an entry is valid
        under any arrival pattern). The key becomes the most recently
        used; when ``max_entries`` is set, least-recently-used entries
        are evicted to make room.
        """
        if not isinstance(entry, CachedTuning):
            raise ConfigError(
                f"entry must be CachedTuning, got {type(entry).__name__}"
            )
        key = self.key(fingerprint, config)
        self._entries.pop(key, None)
        self._entries[key] = entry
        if self.tracer.enabled:
            self.tracer.instant(
                "cache.store", lane="cache",
                args=self._key_args(fingerprint, config),
            )
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self._evictions += 1
                if self.tracer.enabled:
                    self.tracer.instant(
                        "cache.evict", lane="cache",
                        args=self._key_args(oldest[0], oldest[1]),
                    )

    def merge(self, other):
        """Fold another cache's entries into this one (merge-on-gather).

        Walks ``other`` in its LRU order (least recently used first) and
        :meth:`store`-s every entry, so merged keys become the most
        recently used here, ties between the two caches resolve in
        ``other``'s favor (its entry overwrites), and this cache's
        ``max_entries`` bound keeps evicting in true recency order.
        Counters are not transferred — hits/misses describe *this*
        cache's lookup history, not the donor's. Returns the number of
        entries merged in.

        This is the deterministic gather path for worker-local caches:
        merging the same caches in the same order always yields the same
        contents and LRU order, regardless of how the donors were
        populated in time.
        """
        if not isinstance(other, AutotuneCache):
            raise ConfigError(
                f"other must be AutotuneCache, got {type(other).__name__}"
            )
        merged = 0
        for (fingerprint, config), entry in list(other._entries.items()):
            self.store(fingerprint, config, entry)
            merged += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "cache.merge", lane="cache", args={"entries": merged},
            )
        return merged

    def clear(self):
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def stats(self):
        """Current :class:`CacheStats`."""
        return CacheStats(
            hits=self._hits, misses=self._misses,
            entries=len(self._entries), evictions=self._evictions,
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path):
        """Write every entry to ``path`` as a single ``.npz`` archive.

        Owner maps go in as arrays; fingerprints, configs, warm-up traces
        and convergence rounds ride in an embedded JSON index. Entries
        are archived in the live LRU order (least recently used first),
        so a :meth:`load` restores not just the contents but the
        eviction order — a warm restart evicts exactly what the saved
        process would have evicted next. Returns the path actually
        written (numpy appends ``.npz`` when the given path has no
        suffix, and so does this return value).

        The write is atomic: the archive is serialized to a temp file
        next to ``path`` and moved into place with :func:`os.replace`,
        so a crash mid-save (or a concurrent saver) never leaves a
        truncated archive — readers see either the old file or the new
        one, whole.
        """
        path = str(path)
        if not path.endswith(".npz"):
            path = path + ".npz"
        index = []
        arrays = {}
        for slot, ((fingerprint, config), entry) in enumerate(
            self._entries.items()
        ):
            stages_meta = []
            flat = 0
            for layer in entry.layers:
                layer_meta = []
                for stage in layer:
                    arrays[f"e{slot}_s{flat}"] = stage.owner
                    layer_meta.append({
                        "warmup": list(stage.warmup_costs),
                        "converged_round": stage.converged_round,
                        "final_backlog": stage.final_backlog,
                        "total_backlog": stage.total_backlog,
                    })
                    flat += 1
                stages_meta.append(layer_meta)
            index.append({
                "fingerprint": fingerprint,
                "config": asdict(config),
                "layers": stages_meta,
            })
        arrays["index"] = np.frombuffer(
            json.dumps({"version": 2, "entries": index}).encode(),
            dtype=np.uint8,
        )
        # Atomic publish: numpy would append ".npz" to a suffix-less
        # temp name, so the temp path must already carry the suffix.
        tmp = f"{path}.{os.getpid()}.tmp.npz"
        try:
            np.savez_compressed(tmp, **arrays)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path

    @classmethod
    def load(cls, path, *, max_entries=None):
        """Rebuild a cache from a :meth:`save` archive.

        Entries are restored in archive order, which for version-2
        archives is the saved process's LRU order — recency carries
        across processes. ``max_entries`` applies the LRU bound to the
        restored cache; archives holding more entries than the bound
        keep the ``max_entries`` *most recently used* ones. Version-1
        archives (sorted by key, no recency) still load, in their
        deterministic sort order.
        """
        cache = cls(max_entries=max_entries)
        with np.load(path) as archive:
            index = json.loads(bytes(archive["index"]).decode())
            if index.get("version") not in (1, 2):
                raise ConfigError(
                    f"unsupported cache archive version {index.get('version')}"
                )
            for slot, meta in enumerate(index["entries"]):
                config = ArchConfig(**meta["config"])
                layers = []
                flat = 0
                for layer_meta in meta["layers"]:
                    stages = []
                    for stage_meta in layer_meta:
                        owner = archive[f"e{slot}_s{flat}"]
                        stages.append(CachedStage(
                            owner=np.asarray(owner, dtype=np.int64),
                            warmup_costs=tuple(
                                int(c) for c in stage_meta["warmup"]
                            ),
                            converged_round=stage_meta["converged_round"],
                            final_backlog=int(stage_meta["final_backlog"]),
                            total_backlog=int(stage_meta["total_backlog"]),
                        ))
                        flat += 1
                    layers.append(tuple(stages))
                cache.store(
                    meta["fingerprint"], config,
                    CachedTuning(layers=tuple(layers)),
                )
        return cache
