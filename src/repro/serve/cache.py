"""The autotune cache: converged row maps keyed by (graph, config).

The Eq. 5 auto-tuner spends its first rounds probing hotspots and
migrating rows; once converged, the map is optimal for that (sparse
matrix, architecture) pair forever — the matrix does not change between
requests. :class:`AutotuneCache` therefore memoizes the per-stage
converged :class:`~repro.accel.workload.RowAssignment` maps (plus the
recorded warm-up cycle trace) under a ``(workload fingerprint,
ArchConfig)`` key. A repeat graph skips the tuner loop entirely and goes
through the vectorized frozen fast path of
:func:`~repro.accel.cyclemodel.simulate_spmm_frozen`, producing a report
cycle-identical to the cold run at a fraction of the simulation cost.

Entries survive the process: :meth:`AutotuneCache.save` writes a single
``.npz`` archive (owner maps as arrays, everything else as an embedded
JSON index) and :meth:`AutotuneCache.load` restores it, so a service
restart starts warm.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass

import numpy as np

from repro.accel.config import ArchConfig
from repro.accel.gcnaccel import CachedStage, CachedTuning
from repro.errors import ConfigError
from repro.obs.tracer import NULL_TRACER, config_label
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one :class:`AutotuneCache`."""

    hits: int
    misses: int
    entries: int
    evictions: int = 0
    """Entries dropped by the LRU size bound since the last clear."""

    @property
    def lookups(self):
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self):
        """Fraction of lookups answered from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class CacheEntryInfo:
    """One entry of an :meth:`AutotuneCache.snapshot` view."""

    fingerprint: str
    config: ArchConfig
    hits: int
    """Lookup hits this cache served from the entry (its own history —
    merge and load do not transfer donor hit counts)."""
    last_used: float
    """Simulated-clock time of the entry's last store or lookup hit
    (the cache's :attr:`~AutotuneCache.clock` at that moment)."""

    @property
    def key(self):
        """The composite ``(fingerprint, config)`` cache key."""
        return (self.fingerprint, self.config)


class AutotuneCache:
    """Persistent map from (workload fingerprint, config) to tuning state.

    The stored value is a :class:`~repro.accel.CachedTuning`: one frozen
    owner map + warm-up trace per SPMM stage of the inference.
    :meth:`lookup` and :meth:`store` are the hook surface
    :meth:`~repro.accel.GcnAccelerator.run` drives; the service never
    touches entries directly.

    ``max_entries`` bounds the cache LRU-style: every :meth:`lookup`
    hit and :meth:`store` refreshes the key's recency, and an insert
    that would exceed the bound evicts the least-recently-used entries
    first (counted in :attr:`stats`). None keeps the historical
    unbounded behavior. Recency survives persistence: :meth:`save`
    archives entries in LRU order (least recent first) and
    :meth:`load` restores them in that order, so cross-process cache
    sharing keeps evicting in true recency order.
    """

    def __init__(self, *, max_entries=None):
        if max_entries is not None:
            max_entries = check_positive_int(max_entries, "max_entries")
        self.max_entries = max_entries
        # Insertion-ordered dict doubling as the LRU list: the front is
        # the least recently used, re-insertion moves a key to the back.
        self._entries = {}
        # Per-entry [hits, last_used] metadata, keyed like _entries.
        self._meta = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self.clock = 0.0
        """Simulated-clock anchor stamped onto entry metadata
        (``last_used``); the service advances it alongside its own
        clock. Standalone users may leave it at 0.0."""
        self.tracer = NULL_TRACER
        """Event sink for cache traffic (:mod:`repro.obs`); the service
        points it at its own tracer. Timestamps use the tracer's
        current simulated anchor."""
        self.lane = "cache"
        """Trace lane cache events are emitted on; the affinity service
        renames per-worker shards (``cache/w0`` ...) so their traffic
        is distinguishable in the stream."""

    @staticmethod
    def _key_args(fingerprint, config):
        """Deterministic event args naming one cache key."""
        return {
            "key": str(fingerprint)[:24],
            "config": config_label(config),
        }

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    @staticmethod
    def key(fingerprint, config):
        """The composite cache key for a workload/config pair."""
        if not isinstance(config, ArchConfig):
            raise ConfigError(
                f"config must be ArchConfig, got {type(config).__name__}"
            )
        return (str(fingerprint), config)

    def lookup(self, fingerprint, config):
        """Return the cached :class:`CachedTuning` or None (counted).

        ``fingerprint`` is the workload's structural hash
        (:meth:`~repro.accel.GcnAccelerator.fingerprint` — any object
        whose ``str()`` names the workload deterministically) and
        ``config`` the :class:`~repro.accel.ArchConfig` it would run
        under; together they form the cache key. Every call counts as
        a hit or miss in :attr:`stats`; a hit refreshes the key's LRU
        recency.
        """
        key = self.key(fingerprint, config)
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
        else:
            self._hits += 1
            self._entries[key] = self._entries.pop(key)
            meta = self._meta[key]
            meta[0] += 1
            meta[1] = self.clock
        if self.tracer.enabled:
            self.tracer.instant(
                "cache.hit" if entry is not None else "cache.miss",
                lane=self.lane, args=self._key_args(fingerprint, config),
            )
        return entry

    def peek(self, fingerprint, config, *, trace=True):
        """Return the cached entry without counting or touching recency.

        The side-effect-free read the parallel backend
        (:mod:`repro.parallel`) uses to decide which cold simulations to
        dispatch: probing every key up front must not perturb the
        hit/miss counters or the LRU order, or the later sequential
        replay would diverge from the oracle. ``trace=False`` also
        suppresses the trace event — the parallel backend's probes
        happen only when ``workers > 1``, so leaving them in the stream
        would break the ``workers=N`` trace bit-identity contract.
        """
        entry = self._entries.get(self.key(fingerprint, config))
        if trace and self.tracer.enabled:
            args = self._key_args(fingerprint, config)
            args["found"] = entry is not None
            self.tracer.instant("cache.peek", lane=self.lane, args=args)
        return entry

    def store(self, fingerprint, config, entry):
        """Insert (or overwrite) the tuning state for a key.

        ``fingerprint``/``config`` form the key as in :meth:`lookup`;
        ``entry`` must be a :class:`~repro.accel.CachedTuning` (the
        frozen owner maps plus warm-up cycle traces of one full
        inference — cycle counts, not timestamps, so an entry is valid
        under any arrival pattern). The key becomes the most recently
        used; when ``max_entries`` is set, least-recently-used entries
        are evicted to make room.
        """
        if not isinstance(entry, CachedTuning):
            raise ConfigError(
                f"entry must be CachedTuning, got {type(entry).__name__}"
            )
        key = self.key(fingerprint, config)
        self._entries.pop(key, None)
        self._entries[key] = entry
        # Re-storing a key keeps its hit count (same logical entry);
        # a fresh key starts cold. Either way the store refreshes the
        # last-used stamp alongside the LRU recency.
        meta = self._meta.setdefault(key, [0, self.clock])
        meta[1] = self.clock
        if self.tracer.enabled:
            self.tracer.instant(
                "cache.store", lane=self.lane,
                args=self._key_args(fingerprint, config),
            )
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self._meta.pop(oldest, None)
                self._evictions += 1
                if self.tracer.enabled:
                    self.tracer.instant(
                        "cache.evict", lane=self.lane,
                        args=self._key_args(oldest[0], oldest[1]),
                    )

    def merge(self, other):
        """Fold another cache's entries into this one (merge-on-gather).

        Walks ``other`` in its LRU order (least recently used first).
        New keys are :meth:`store`-d (becoming the most recently used
        here, carrying the donor's last-used stamp); a key already
        present is left exactly where it sits in the receiver's LRU
        order unless the donor's copy is strictly *fresher* (larger
        ``last_used``), in which case it is re-stored and promoted —
        replication must not make hot local entries look cold.
        Counters are not transferred — hits/misses (and per-entry hit
        counts) describe *this* cache's lookup history, not the
        donor's. Returns the number of donor entries folded in
        (stored or already present).

        This is the deterministic gather path for worker-local caches:
        merging the same caches in the same order always yields the same
        contents and LRU order, regardless of how the donors were
        populated in time.
        """
        if not isinstance(other, AutotuneCache):
            raise ConfigError(
                f"other must be AutotuneCache, got {type(other).__name__}"
            )
        merged = 0
        for key, entry in list(other._entries.items()):
            fingerprint, config = key
            incoming = other._meta.get(key, [0, 0.0])[1]
            existing = self._meta.get(key)
            if key in self._entries and incoming <= existing[1]:
                merged += 1
                continue
            hits = existing[0] if existing is not None else 0
            self.store(fingerprint, config, entry)
            meta = self._meta[key]
            meta[0] = hits
            meta[1] = incoming
            merged += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "cache.merge", lane=self.lane, args={"entries": merged},
            )
        return merged

    def clear(self):
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self._meta.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def stats(self):
        """Current :class:`CacheStats`."""
        return CacheStats(
            hits=self._hits, misses=self._misses,
            entries=len(self._entries), evictions=self._evictions,
        )

    def snapshot(self):
        """Per-entry metadata view, in LRU order (least recent first).

        Returns a tuple of :class:`CacheEntryInfo` carrying each
        entry's hit count and last-used simulated timestamp — the
        recency/frequency signal the affinity bench report and the
        replication policy read instead of inferring it from position.
        """
        return tuple(
            CacheEntryInfo(
                fingerprint=fingerprint, config=config,
                hits=self._meta[(fingerprint, config)][0],
                last_used=self._meta[(fingerprint, config)][1],
            )
            for fingerprint, config in self._entries
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path):
        """Write every entry to ``path`` as a single ``.npz`` archive.

        Owner maps go in as arrays; fingerprints, configs, warm-up traces
        and convergence rounds ride in an embedded JSON index. Entries
        are archived in the live LRU order (least recently used first),
        so a :meth:`load` restores not just the contents but the
        eviction order — a warm restart evicts exactly what the saved
        process would have evicted next. Returns the path actually
        written (numpy appends ``.npz`` when the given path has no
        suffix, and so does this return value).

        The write is atomic: the archive is serialized to a temp file
        next to ``path`` and moved into place with :func:`os.replace`,
        so a crash mid-save (or a concurrent saver) never leaves a
        truncated archive — readers see either the old file or the new
        one, whole.
        """
        path = str(path)
        if not path.endswith(".npz"):
            path = path + ".npz"
        index = []
        arrays = {}
        for slot, ((fingerprint, config), entry) in enumerate(
            self._entries.items()
        ):
            stages_meta = []
            flat = 0
            for layer in entry.layers:
                layer_meta = []
                for stage in layer:
                    arrays[f"e{slot}_s{flat}"] = stage.owner
                    layer_meta.append({
                        "warmup": list(stage.warmup_costs),
                        "converged_round": stage.converged_round,
                        "final_backlog": stage.final_backlog,
                        "total_backlog": stage.total_backlog,
                    })
                    flat += 1
                stages_meta.append(layer_meta)
            meta = self._meta.get((fingerprint, config), [0, 0.0])
            index.append({
                "fingerprint": fingerprint,
                "config": asdict(config),
                "layers": stages_meta,
                "hits": int(meta[0]),
                "last_used": float(meta[1]),
            })
        arrays["index"] = np.frombuffer(
            json.dumps({"version": 3, "entries": index}).encode(),
            dtype=np.uint8,
        )
        # Atomic publish: numpy would append ".npz" to a suffix-less
        # temp name, so the temp path must already carry the suffix.
        tmp = f"{path}.{os.getpid()}.tmp.npz"
        try:
            np.savez_compressed(tmp, **arrays)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path

    @classmethod
    def load(cls, path, *, max_entries=None):
        """Rebuild a cache from a :meth:`save` archive.

        Entries are restored in archive order, which for version-2+
        archives is the saved process's LRU order — recency carries
        across processes. ``max_entries`` applies the LRU bound to the
        restored cache; archives holding more entries than the bound
        keep the ``max_entries`` *most recently used* ones. Version-3
        archives also restore per-entry hit counts and last-used
        stamps; version-1 (sorted by key, no recency) and version-2
        archives still load, with metadata defaulting to cold
        (0 hits, last used at 0.0).
        """
        cache = cls(max_entries=max_entries)
        with np.load(path) as archive:
            index = json.loads(bytes(archive["index"]).decode())
            if index.get("version") not in (1, 2, 3):
                raise ConfigError(
                    f"unsupported cache archive version {index.get('version')}"
                )
            for slot, meta in enumerate(index["entries"]):
                config = ArchConfig(**meta["config"])
                layers = []
                flat = 0
                for layer_meta in meta["layers"]:
                    stages = []
                    for stage_meta in layer_meta:
                        owner = archive[f"e{slot}_s{flat}"]
                        stages.append(CachedStage(
                            owner=np.asarray(owner, dtype=np.int64),
                            warmup_costs=tuple(
                                int(c) for c in stage_meta["warmup"]
                            ),
                            converged_round=stage_meta["converged_round"],
                            final_backlog=int(stage_meta["final_backlog"]),
                            total_backlog=int(stage_meta["total_backlog"]),
                        ))
                        flat += 1
                    layers.append(tuple(stages))
                cache.store(
                    meta["fingerprint"], config,
                    CachedTuning(layers=tuple(layers)),
                )
                key = cache.key(meta["fingerprint"], config)
                if key in cache._entries:
                    cache._meta[key] = [
                        int(meta.get("hits", 0)),
                        float(meta.get("last_used", 0.0)),
                    ]
        return cache
