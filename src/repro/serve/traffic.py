"""Synthetic multi-graph request traffic for the serving benchmarks.

Serving workloads are dominated by *repeat* graphs: a recommendation
or knowledge-graph deployment answers many queries against the same
handful of graph snapshots. :func:`synthetic_traffic` models that with a
pool of fixed-seed RMAT graph specs sampled with skew (earlier specs are
hotter), which is exactly the regime the
:class:`~repro.serve.AutotuneCache` targets — the first request per
(graph, config) pays the auto-tuner warm-up, every repeat takes the
frozen fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.accel.config import ArchConfig
from repro.datasets.features import dense_weight_matrix, sample_row_nnz
from repro.datasets.normalize import gcn_normalize
from repro.datasets.rmat import rmat_edges
from repro.datasets.synthetic import GcnDataset
from repro.errors import ConfigError
from repro.serve.request import InferenceRequest
from repro.sparse.coo import CooMatrix
from repro.utils.rng import rng_from_seed, spawn_rngs
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class RmatGraphSpec:
    """A fully-seeded recipe for one synthetic serving graph.

    Frozen and hashable, so it doubles as a memoization key: building
    the same spec twice returns the same (cached) dataset object, and
    its accelerator workload fingerprints identically — which is what
    turns repeat traffic into autotune-cache hits.
    """

    n_nodes: int
    avg_degree: int = 8
    f1: int = 64
    f2: int = 32
    f3: int = 8
    x1_density: float = 0.08
    x2_density: float = 0.6
    seed: int = 0
    abcd: tuple = (0.5, 0.2, 0.2, 0.1)

    def __post_init__(self):
        check_positive_int(self.n_nodes, "n_nodes")
        check_positive_int(self.avg_degree, "avg_degree")
        for dim_name in ("f1", "f2", "f3"):
            check_positive_int(getattr(self, dim_name), dim_name)

    @property
    def name(self):
        """Stable human-readable identifier."""
        return (
            f"rmat-n{self.n_nodes}-d{self.avg_degree}-s{self.seed}"
        )

    def build(self):
        """The (memoized) :class:`~repro.datasets.GcnDataset`."""
        return _build_rmat_dataset(self)


@lru_cache(maxsize=256)
def _build_rmat_dataset(spec):
    """Materialize an :class:`RmatGraphSpec` as a pattern-only dataset."""
    rng_graph, rng_x1, rng_w1, rng_w2, rng_x2 = spawn_rngs(
        int(spec.seed), 5
    )
    n_directed = max(spec.n_nodes * spec.avg_degree // 2, 1)
    src, dst = rmat_edges(
        spec.n_nodes, n_directed, abcd=spec.abcd, rng=rng_graph
    )
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    adjacency = gcn_normalize(
        CooMatrix((spec.n_nodes, spec.n_nodes), rows, cols,
                  np.ones(rows.size))
    )
    x1_row_nnz = sample_row_nnz(
        spec.n_nodes, spec.f1, spec.x1_density, rng=rng_x1
    )
    x2_row_nnz = sample_row_nnz(
        spec.n_nodes, spec.f2, spec.x2_density, rng=rng_x2, row_skew=0.2
    )
    weights = [
        dense_weight_matrix(spec.f1, spec.f2, rng=rng_w1),
        dense_weight_matrix(spec.f2, spec.f3, rng=rng_w2),
    ]
    return GcnDataset(
        name=spec.name,
        preset="serve",
        seed=int(spec.seed),
        adjacency=adjacency,
        features=None,
        weights=weights,
        x1_row_nnz=x1_row_nnz,
        x2_row_nnz=x2_row_nnz,
    )


def clear_graph_cache():
    """Drop memoized spec-built datasets (frees memory between mixes)."""
    _build_rmat_dataset.cache_clear()


def synthetic_traffic(n_requests, *, n_graphs=4, n_nodes=2048, seed=7,
                      configs=None, avg_degree=8, zipf_skew=1.1,
                      graph_kwargs=None):
    """A repeated-graph request mix over ``n_graphs`` RMAT specs.

    Graph popularity follows a Zipf-like law with exponent ``zipf_skew``
    (1.0 = classic Zipf; higher = hotter head), mirroring production
    query distributions. Each request cycles through ``configs``
    (default: one balanced AWB design), so the scheduler has real
    config-affinity batching to do. ``graph_kwargs`` forwards extra
    :class:`RmatGraphSpec` fields (layer dims, densities). Returns a
    list of :class:`InferenceRequest` in arrival order.
    """
    check_positive_int(n_requests, "n_requests")
    check_positive_int(n_graphs, "n_graphs")
    graph_kwargs = dict(graph_kwargs or {})
    if configs is None:
        configs = (ArchConfig(n_pes=64, hop=1, remote_switching=True),)
    configs = tuple(configs)
    for config in configs:
        if not isinstance(config, ArchConfig):
            raise ConfigError(
                f"configs must be ArchConfig, got {type(config).__name__}"
            )
    rng = rng_from_seed(seed)
    specs = [
        RmatGraphSpec(
            n_nodes=n_nodes, avg_degree=avg_degree, seed=1000 + graph_idx,
            **graph_kwargs,
        )
        for graph_idx in range(n_graphs)
    ]
    weights = 1.0 / np.arange(1, n_graphs + 1) ** zipf_skew
    weights /= weights.sum()
    choices = rng.choice(n_graphs, size=n_requests, p=weights)
    return [
        InferenceRequest(
            graph=specs[graph_idx],
            config=configs[i % len(configs)],
        )
        for i, graph_idx in enumerate(choices)
    ]
