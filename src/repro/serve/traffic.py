"""Synthetic multi-graph request traffic for the serving benchmarks.

Serving workloads are dominated by *repeat* graphs: a recommendation
or knowledge-graph deployment answers many queries against the same
handful of graph snapshots. :func:`synthetic_traffic` models that with a
pool of fixed-seed RMAT graph specs sampled with skew (earlier specs are
hotter), which is exactly the regime the
:class:`~repro.serve.AutotuneCache` targets — the first request per
(graph, config) pays the auto-tuner warm-up, every repeat takes the
frozen fast path.

For the event-driven serving loop the same mixes become *streams*:
:func:`poisson_arrivals` and :func:`bursty_arrivals` generate fully
seeded arrival-time processes, and :func:`streaming_traffic` stamps
them (plus an optional latency SLO) onto a synthetic mix, producing
requests the :class:`~repro.serve.InferenceService` admits as its
simulated clock advances. :func:`mixed_traffic` builds the multi-tenant
regime the co-scheduling service targets: one arrival stream carrying
deadline-critical small queries, ordinary SLO'd batch queries and
oversized sharded jobs side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from repro.accel.config import ArchConfig
from repro.datasets.features import dense_weight_matrix, sample_row_nnz
from repro.datasets.normalize import gcn_normalize
from repro.datasets.rmat import rmat_edges
from repro.datasets.synthetic import GcnDataset
from repro.errors import ConfigError
from repro.serve.request import InferenceRequest
from repro.sparse.coo import CooMatrix
from repro.utils.rng import rng_from_seed, spawn_rngs
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class RmatGraphSpec:
    """A fully-seeded recipe for one synthetic serving graph.

    Frozen and hashable, so it doubles as a memoization key: building
    the same spec twice returns the same (cached) dataset object, and
    its accelerator workload fingerprints identically — which is what
    turns repeat traffic into autotune-cache hits.
    """

    n_nodes: int
    avg_degree: int = 8
    f1: int = 64
    f2: int = 32
    f3: int = 8
    x1_density: float = 0.08
    x2_density: float = 0.6
    seed: int = 0
    abcd: tuple = (0.5, 0.2, 0.2, 0.1)

    def __post_init__(self):
        check_positive_int(self.n_nodes, "n_nodes")
        check_positive_int(self.avg_degree, "avg_degree")
        for dim_name in ("f1", "f2", "f3"):
            check_positive_int(getattr(self, dim_name), dim_name)

    @property
    def name(self):
        """Stable human-readable identifier."""
        return (
            f"rmat-n{self.n_nodes}-d{self.avg_degree}-s{self.seed}"
        )

    def build(self):
        """The (memoized) :class:`~repro.datasets.GcnDataset`."""
        return _build_rmat_dataset(self)


@lru_cache(maxsize=256)
def _build_rmat_dataset(spec):
    """Materialize an :class:`RmatGraphSpec` as a pattern-only dataset."""
    rng_graph, rng_x1, rng_w1, rng_w2, rng_x2 = spawn_rngs(
        int(spec.seed), 5
    )
    n_directed = max(spec.n_nodes * spec.avg_degree // 2, 1)
    src, dst = rmat_edges(
        spec.n_nodes, n_directed, abcd=spec.abcd, rng=rng_graph
    )
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    adjacency = gcn_normalize(
        CooMatrix((spec.n_nodes, spec.n_nodes), rows, cols,
                  np.ones(rows.size))
    )
    x1_row_nnz = sample_row_nnz(
        spec.n_nodes, spec.f1, spec.x1_density, rng=rng_x1
    )
    x2_row_nnz = sample_row_nnz(
        spec.n_nodes, spec.f2, spec.x2_density, rng=rng_x2, row_skew=0.2
    )
    weights = [
        dense_weight_matrix(spec.f1, spec.f2, rng=rng_w1),
        dense_weight_matrix(spec.f2, spec.f3, rng=rng_w2),
    ]
    return GcnDataset(
        name=spec.name,
        preset="serve",
        seed=int(spec.seed),
        adjacency=adjacency,
        features=None,
        weights=weights,
        x1_row_nnz=x1_row_nnz,
        x2_row_nnz=x2_row_nnz,
    )


def clear_graph_cache():
    """Drop memoized spec-built datasets (frees memory between mixes)."""
    _build_rmat_dataset.cache_clear()


def synthetic_traffic(n_requests, *, n_graphs=4, n_nodes=2048, seed=7,
                      configs=None, avg_degree=8, zipf_skew=1.1,
                      graph_kwargs=None):
    """A repeated-graph request mix over ``n_graphs`` RMAT specs.

    Graph popularity follows a Zipf-like law with exponent ``zipf_skew``
    (1.0 = classic Zipf; higher = hotter head), mirroring production
    query distributions. Each request cycles through ``configs``
    (default: one balanced AWB design), so the scheduler has real
    config-affinity batching to do. ``graph_kwargs`` forwards extra
    :class:`RmatGraphSpec` fields (layer dims, densities). Returns a
    list of :class:`InferenceRequest` in arrival order.
    """
    check_positive_int(n_requests, "n_requests")
    check_positive_int(n_graphs, "n_graphs")
    graph_kwargs = dict(graph_kwargs or {})
    if configs is None:
        configs = (ArchConfig(n_pes=64, hop=1, remote_switching=True),)
    configs = tuple(configs)
    for config in configs:
        if not isinstance(config, ArchConfig):
            raise ConfigError(
                f"configs must be ArchConfig, got {type(config).__name__}"
            )
    rng = rng_from_seed(seed)
    specs = [
        RmatGraphSpec(
            n_nodes=n_nodes, avg_degree=avg_degree, seed=1000 + graph_idx,
            **graph_kwargs,
        )
        for graph_idx in range(n_graphs)
    ]
    weights = 1.0 / np.arange(1, n_graphs + 1) ** zipf_skew
    weights /= weights.sum()
    choices = rng.choice(n_graphs, size=n_requests, p=weights)
    return [
        InferenceRequest(
            graph=specs[graph_idx],
            config=configs[i % len(configs)],
        )
        for i, graph_idx in enumerate(choices)
    ]


def _check_repeat(repeat_alpha, family_size):
    """Validate the repeat-heavy traffic knobs (both may be None)."""
    if repeat_alpha is not None:
        try:
            repeat_alpha = float(repeat_alpha)
        except (TypeError, ValueError):
            raise ConfigError(
                "repeat_alpha must be a number, got "
                f"{type(repeat_alpha).__name__}"
            )
        if not (np.isfinite(repeat_alpha) and repeat_alpha >= 0):
            raise ConfigError(
                f"repeat_alpha must be finite and >= 0, got {repeat_alpha}"
            )
    if family_size is not None:
        family_size = check_positive_int(family_size, "family_size")
    return repeat_alpha, family_size


def _check_rate(rate):
    try:
        rate = float(rate)
    except (TypeError, ValueError):
        raise ConfigError(
            f"rate must be a number, got {type(rate).__name__}"
        )
    if not rate > 0:
        raise ConfigError(f"rate must be > 0, got {rate}")
    return rate


def poisson_arrivals(n_requests, *, rate, seed=0, start=0.0):
    """Arrival times of a Poisson process at ``rate`` requests/second.

    Inter-arrival gaps are i.i.d. exponential with mean ``1/rate``;
    times are the running sum from ``start``. Fully seeded, so a trace
    regenerates bit-identically. Returns a non-decreasing float array
    of length ``n_requests``.
    """
    check_positive_int(n_requests, "n_requests")
    rate = _check_rate(rate)
    rng = rng_from_seed(seed)
    gaps = rng.exponential(1.0 / rate, size=n_requests)
    return start + np.cumsum(gaps)


def bursty_arrivals(n_requests, *, rate, burst_size=8, seed=0, start=0.0):
    """Arrival times of an on/off bursty process averaging ``rate`` req/s.

    Requests arrive in bursts of ``burst_size`` sharing one timestamp
    (think a fanned-out page render or a retry storm); burst epochs are
    Poisson at ``rate / burst_size``, so the long-run request rate
    matches :func:`poisson_arrivals` while the instantaneous load is
    far spikier — the regime that stresses deadline-aware batch
    cutting. Returns a non-decreasing float array of ``n_requests``.
    """
    check_positive_int(n_requests, "n_requests")
    check_positive_int(burst_size, "burst_size")
    rate = _check_rate(rate)
    rng = rng_from_seed(seed)
    n_bursts = -(-n_requests // burst_size)
    epochs = np.cumsum(rng.exponential(burst_size / rate, size=n_bursts))
    return start + np.repeat(epochs, burst_size)[:n_requests]


def streaming_traffic(n_requests, *, arrival_rate, arrival="poisson",
                      burst_size=8, slo_ms=None, n_graphs=4, n_nodes=2048,
                      seed=7, configs=None, avg_degree=8, zipf_skew=1.1,
                      repeat_alpha=None, family_size=None,
                      graph_kwargs=None):
    """A :func:`synthetic_traffic` mix stamped with an arrival process.

    ``arrival`` selects the process (``"poisson"`` or ``"bursty"`` at
    ``arrival_rate`` requests/second); ``slo_ms`` attaches the same
    end-to-end latency SLO to every request (None = no deadlines).
    ``repeat_alpha``/``family_size`` are the repeat-heavy knob the
    affinity benchmarks sweep: when set they override
    ``zipf_skew``/``n_graphs`` as the Zipf exponent and pool size of
    the graph-family popularity law (higher alpha = hotter head = more
    fingerprint reuse). Everything derives from ``seed``, so the trace
    — graphs, arrival times and deadlines — is deterministic. Returns
    requests in arrival order, ready for
    :meth:`InferenceService.submit_many`.
    """
    repeat_alpha, family_size = _check_repeat(repeat_alpha, family_size)
    if repeat_alpha is not None:
        zipf_skew = repeat_alpha
    if family_size is not None:
        n_graphs = family_size
    base = synthetic_traffic(
        n_requests, n_graphs=n_graphs, n_nodes=n_nodes, seed=seed,
        configs=configs, avg_degree=avg_degree, zipf_skew=zipf_skew,
        graph_kwargs=graph_kwargs,
    )
    if arrival == "poisson":
        times = poisson_arrivals(n_requests, rate=arrival_rate, seed=seed)
    elif arrival == "bursty":
        times = bursty_arrivals(
            n_requests, rate=arrival_rate, burst_size=burst_size, seed=seed
        )
    else:
        raise ConfigError(
            f"arrival must be 'poisson' or 'bursty', got {arrival!r}"
        )
    return [
        replace(request, arrival_time=float(when), slo_ms=slo_ms)
        for request, when in zip(base, times)
    ]


def mixed_traffic(n_requests, *, arrival_rate, chip_capacity, seed=7,
                  configs=None, critical_fraction=0.2,
                  sharded_fraction=0.15, critical_slo_ms=1.0,
                  batch_slo_ms=20.0, sharded_slo_ms=None,
                  small_nodes=None, batch_nodes=None, sharded_nodes=None,
                  n_graphs=3, avg_degree=8, repeat_alpha=None,
                  family_size=None, graph_kwargs=None):
    """A multi-tenant request mix: critical, batch and sharded tenants.

    Models the co-scheduling regime of a shared pool: a Poisson stream
    at ``arrival_rate`` requests/second where each request is
    independently a *critical* small query (tight ``critical_slo_ms``,
    graphs of ``small_nodes``), an ordinary *batch* query
    (``batch_slo_ms``, ``batch_nodes``) or an oversized *sharded* job
    (``sharded_slo_ms``, ``sharded_nodes`` — sized past
    ``chip_capacity`` so the service gang-schedules it). Node counts
    default to ``chip_capacity // 4``, ``chip_capacity // 2`` and
    ``3 * chip_capacity``. Each tenant class draws from its own pool of
    ``n_graphs`` fixed-seed RMAT specs, so repeat traffic still hits
    the autotune cache. ``family_size`` overrides ``n_graphs``, and
    ``repeat_alpha`` (None = historical uniform picks) makes each
    class's pool Zipf-popular with that exponent — the repeat-heavy
    regime the cache-affinity benchmarks model. Everything derives
    from ``seed``; the trace is deterministic. Returns requests in
    arrival order.
    """
    check_positive_int(n_requests, "n_requests")
    repeat_alpha, family_size = _check_repeat(repeat_alpha, family_size)
    if family_size is not None:
        n_graphs = family_size
    check_positive_int(n_graphs, "n_graphs")
    chip_capacity = check_positive_int(chip_capacity, "chip_capacity")
    for name, fraction in (("critical_fraction", critical_fraction),
                           ("sharded_fraction", sharded_fraction)):
        if not 0.0 <= float(fraction) <= 1.0:
            raise ConfigError(f"{name} must be in [0, 1], got {fraction}")
    if float(critical_fraction) + float(sharded_fraction) > 1.0:
        raise ConfigError(
            "critical_fraction + sharded_fraction must be <= 1, got "
            f"{critical_fraction} + {sharded_fraction}"
        )
    graph_kwargs = dict(graph_kwargs or {})
    if configs is None:
        configs = (ArchConfig(n_pes=64, hop=1, remote_switching=True),)
    configs = tuple(configs)
    for config in configs:
        if not isinstance(config, ArchConfig):
            raise ConfigError(
                f"configs must be ArchConfig, got {type(config).__name__}"
            )
    small_nodes = small_nodes or max(chip_capacity // 4, 16)
    batch_nodes = batch_nodes or max(chip_capacity // 2, 16)
    sharded_nodes = sharded_nodes or 3 * chip_capacity
    if sharded_nodes <= chip_capacity:
        raise ConfigError(
            f"sharded_nodes ({sharded_nodes}) must exceed chip_capacity "
            f"({chip_capacity}) or the sharded tenant never shards"
        )
    classes = (
        # (spec seed base, node count, slo_ms)
        (2000, small_nodes, critical_slo_ms),
        (3000, batch_nodes, batch_slo_ms),
        (4000, sharded_nodes, sharded_slo_ms),
    )
    pools = [
        [
            RmatGraphSpec(
                n_nodes=nodes, avg_degree=avg_degree,
                seed=seed_base + graph_idx, **graph_kwargs,
            )
            for graph_idx in range(n_graphs)
        ]
        for seed_base, nodes, _slo in classes
    ]
    rng = rng_from_seed(seed)
    kinds = rng.choice(
        3, size=n_requests,
        p=[float(critical_fraction), 1.0 - float(critical_fraction)
           - float(sharded_fraction), float(sharded_fraction)],
    )
    if repeat_alpha is None:
        picks = rng.integers(0, n_graphs, size=n_requests)
    else:
        weights = 1.0 / np.arange(1, n_graphs + 1) ** repeat_alpha
        weights /= weights.sum()
        picks = rng.choice(n_graphs, size=n_requests, p=weights)
    times = poisson_arrivals(n_requests, rate=arrival_rate, seed=seed)
    requests = []
    for i in range(n_requests):
        cls = int(kinds[i])
        slo_ms = classes[cls][2]
        requests.append(InferenceRequest(
            graph=pools[cls][int(picks[i])],
            config=configs[i % len(configs)],
            arrival_time=float(times[i]),
            slo_ms=slo_ms,
        ))
    return requests
