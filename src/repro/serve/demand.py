"""Sliding-window demand histograms on the simulated clock.

Cache-affinity routing needs to know which graph *families* (dataset
fingerprints) are hot **right now**, not which were hot over the whole
trace: replication should chase the current working set and let
yesterday's burst age out. :class:`DemandHistogram` keeps one
exponentially-decayed counter per family — the continuous analogue of
a sliding-window count, the same idiom LLM serving schedulers use to
drive prefix-cache replication from observed per-prefix demand. Every
observation first decays the counter to the observation time with
half-life ``half_life`` (simulated seconds), then adds the
observation's weight, so a family's demand is approximately "requests
seen in the last ``half_life`` seconds" and the whole structure is
deterministic: same observations at the same simulated times, same
histogram — no wall clock anywhere.
"""

from __future__ import annotations

from repro.utils.validation import check_positive_finite


class DemandHistogram:
    """Per-family request-demand counters with exponential decay.

    ``half_life`` is the decay half-life in simulated seconds: a
    family's counter halves every ``half_life`` seconds without
    observations. Families are kept in first-observation order, so
    iteration (and therefore every policy built on it) is
    deterministic.
    """

    def __init__(self, *, half_life=0.05):
        self.half_life = check_positive_finite(half_life, "half_life")
        # family -> [decayed weight, time of last decay]
        self._families = {}

    def __len__(self):
        return len(self._families)

    def __contains__(self, family):
        return family in self._families

    def _decayed(self, state, now):
        weight, last = state
        if now <= last:
            return weight
        return weight * 0.5 ** ((now - last) / self.half_life)

    def record(self, family, now, weight=1.0):
        """Observe ``weight`` units of demand for ``family`` at ``now``.

        Decays the family's counter to ``now`` first, then adds
        ``weight``. Returns the updated (decayed + added) demand.
        """
        now = float(now)
        state = self._families.get(family)
        if state is None:
            state = [0.0, now]
            self._families[family] = state
        state[0] = self._decayed(state, now) + float(weight)
        state[1] = max(state[1], now)
        return state[0]

    def demand(self, family, now):
        """The family's decayed demand at ``now`` (0.0 if never seen).

        Read-only: does not advance the stored decay anchor, so reads
        at arbitrary times never perturb later arithmetic.
        """
        state = self._families.get(family)
        if state is None:
            return 0.0
        return self._decayed(state, float(now))

    def hot(self, now, *, threshold):
        """Families whose decayed demand at ``now`` meets ``threshold``.

        Returned in first-observation order (deterministic).
        """
        threshold = float(threshold)
        now = float(now)
        return [
            family for family, state in self._families.items()
            if self._decayed(state, now) >= threshold
        ]

    def snapshot(self, now):
        """``{family: decayed demand at now}`` in first-observation order."""
        now = float(now)
        return {
            family: self._decayed(state, now)
            for family, state in self._families.items()
        }
