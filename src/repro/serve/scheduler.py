"""Request queue and config-affinity batch scheduler.

A real accelerator deployment cannot reconfigure its PE array between
every request: switching the arch config (PE count, hop distance,
network) is expensive relative to running one more graph. The scheduler
therefore groups pending requests by :class:`~repro.accel.ArchConfig` —
all requests of a batch run back-to-back on one simulated instance —
while preserving fairness: batches are emitted in order of their oldest
member's arrival, and requests inside a batch keep arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.serve.request import InferenceRequest


@dataclass(frozen=True)
class QueuedRequest:
    """An accepted request plus its arrival sequence number."""

    seq: int
    request: InferenceRequest


@dataclass(frozen=True)
class Batch:
    """Requests sharing one arch config, dispatched as a unit."""

    index: int
    config: object
    items: tuple
    """The member :class:`QueuedRequest` objects in arrival order."""

    @property
    def arrival(self):
        """Sequence number of the oldest member (the batch's priority)."""
        return self.items[0].seq

    def __len__(self):
        return len(self.items)


class RequestQueue:
    """FIFO admission queue assigning arrival sequence numbers."""

    def __init__(self):
        self._pending = []
        self._next_seq = 0

    def __len__(self):
        return len(self._pending)

    def submit(self, request):
        """Accept a request; returns its assigned request id.

        Requests without an explicit ``request_id`` get the arrival
        sequence number as their id.
        """
        if not isinstance(request, InferenceRequest):
            raise ConfigError(
                "submit expects an InferenceRequest, got "
                f"{type(request).__name__}"
            )
        seq = self._next_seq
        self._next_seq += 1
        if request.request_id is None:
            request = replace(request, request_id=seq)
        self._pending.append(QueuedRequest(seq=seq, request=request))
        return request.request_id

    def submit_many(self, requests):
        """Accept an iterable of requests; returns their ids."""
        return [self.submit(request) for request in requests]

    def drain(self):
        """Remove and return every pending request in arrival order."""
        pending, self._pending = self._pending, []
        return pending


class Scheduler:
    """Groups queued requests into config-affine batches.

    ``max_batch`` caps the batch size (None = unbounded); an over-full
    config group is split into consecutive chunks that stay in arrival
    order, so a flood of one tenant's config cannot monopolize an
    instance indefinitely.
    """

    def __init__(self, *, max_batch=None):
        if max_batch is not None and max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch

    def plan(self, queued, *, max_batch=None):
        """Fold queued requests into an ordered list of :class:`Batch`.

        Batches are keyed by the request's (config, a_hops) pair —
        the full reconfiguration surface of an instance — and ordered by
        the arrival of their oldest member; members keep arrival order.
        ``max_batch`` overrides the scheduler's own cap for this plan
        (the service uses it to spread one giant config group over the
        instance pool).
        """
        if max_batch is None:
            max_batch = self.max_batch
        groups = {}
        order = []
        for item in queued:
            key = (item.request.config, item.request.a_hops)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(item)
        batches = []
        for key in order:
            items = groups[key]
            size = max_batch or len(items)
            for start in range(0, len(items), size):
                batches.append((items[start], key, items[start:start + size]))
        # Order chunks globally by their oldest member's arrival.
        batches.sort(key=lambda entry: entry[0].seq)
        return [
            Batch(index=i, config=key[0], items=tuple(items))
            for i, (_first, key, items) in enumerate(batches)
        ]
