"""Request queue, config-affinity batching and SLO-aware batch cutting.

A real accelerator deployment cannot reconfigure its PE array between
every request: switching the arch config (PE count, hop distance,
network) is expensive relative to running one more graph. The
schedulers here therefore group pending requests by
:class:`~repro.accel.ArchConfig` — all requests of a batch run
back-to-back on one simulated instance — while preserving fairness:
requests inside a batch keep arrival order, and batches are dispatched
earliest-deadline-first with the oldest member's arrival as the
tie-break (which degenerates to plain oldest-first FIFO when no request
carries an SLO).

Two planners share those rules:

* :class:`Scheduler` is the offline planner of the original
  submit-then-drain service: it folds an already-complete queue into
  batches in one shot.
* :class:`StreamingScheduler` is the event-driven planner behind the
  simulated-clock serving loop: requests are admitted one at a time as
  they arrive, and a batch is *cut* (sealed for dispatch) when its
  config group reaches ``max_batch``, when the group's tightest
  deadline minus the estimated service time says it must start now, or
  when the arrival stream ends.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.obs.tracer import NULL_TRACER, config_label
from repro.serve.request import InferenceRequest
from repro.utils.validation import check_positive_int


def _check_max_batch(max_batch):
    """Validate a batch-size cap: None (unbounded) or a positive int."""
    if max_batch is None:
        return None
    return check_positive_int(max_batch, "max_batch")


def _check_max_wait(max_wait):
    """Validate a batch timeout: None (disabled) or finite seconds >= 0."""
    if max_wait is None:
        return None
    try:
        max_wait = float(max_wait)
    except (TypeError, ValueError):
        raise ConfigError(
            f"max_wait must be a number or None, got "
            f"{type(max_wait).__name__}"
        )
    if not math.isfinite(max_wait) or max_wait < 0.0:
        raise ConfigError(
            f"max_wait must be finite and >= 0, got {max_wait}"
        )
    return max_wait


@dataclass(frozen=True)
class QueuedRequest:
    """An accepted request plus its arrival sequence number."""

    seq: int
    request: InferenceRequest

    @property
    def arrival_time(self):
        """Simulated-clock arrival second of the member request."""
        return self.request.arrival_time

    @property
    def deadline(self):
        """Absolute completion deadline in seconds (inf when no SLO)."""
        return self.request.deadline


@dataclass(frozen=True)
class Batch:
    """Requests sharing one arch config, dispatched as a unit."""

    index: int
    config: object
    items: tuple
    """The member :class:`QueuedRequest` objects in arrival order."""

    @property
    def arrival(self):
        """Sequence number of the oldest member (the batch's priority)."""
        return self.items[0].seq

    @property
    def deadline(self):
        """Tightest member deadline — the batch's EDF key."""
        return min(item.deadline for item in self.items)

    def __len__(self):
        return len(self.items)


class RequestQueue:
    """FIFO admission queue assigning arrival sequence numbers.

    Arrival times must be non-decreasing across submissions — the queue
    is the front door of an event-driven simulation, and an
    out-of-order arrival would mean the clock ran backwards. Equal
    times are fine (a burst).
    """

    def __init__(self):
        self._pending = []
        self._next_seq = 0
        self._last_arrival = 0.0

    def __len__(self):
        return len(self._pending)

    def submit(self, request):
        """Accept a request; returns its assigned request id.

        Requests without an explicit ``request_id`` get the arrival
        sequence number as their id. A request arriving earlier than
        the previously submitted one is rejected with
        :class:`~repro.errors.ConfigError`.
        """
        if not isinstance(request, InferenceRequest):
            raise ConfigError(
                "submit expects an InferenceRequest, got "
                f"{type(request).__name__}"
            )
        if request.arrival_time < self._last_arrival:
            raise ConfigError(
                "non-monotonic arrival: request arrives at "
                f"{request.arrival_time:.6f}s but a request at "
                f"{self._last_arrival:.6f}s was already submitted"
            )
        self._last_arrival = request.arrival_time
        seq = self._next_seq
        self._next_seq += 1
        if request.request_id is None:
            request = replace(request, request_id=seq)
        self._pending.append(QueuedRequest(seq=seq, request=request))
        return request.request_id

    def submit_many(self, requests):
        """Accept an iterable of requests; returns their ids."""
        return [self.submit(request) for request in requests]

    def drain(self):
        """Remove and return every pending request in arrival order.

        Draining ends the current arrival stream: the monotonicity
        watermark resets, so the next stream may start back at t=0 (the
        serving loop restarts its simulated clock per drain).
        """
        pending, self._pending = self._pending, []
        self._last_arrival = 0.0
        return pending


class Scheduler:
    """Groups an already-drained queue into config-affine batches.

    ``max_batch`` caps the batch size (None = unbounded); an over-full
    config group is split into consecutive chunks that stay in arrival
    order, so a flood of one tenant's config cannot monopolize an
    instance indefinitely.
    """

    def __init__(self, *, max_batch=None):
        self.max_batch = _check_max_batch(max_batch)

    def plan(self, queued, *, max_batch=None):
        """Fold queued requests into an ordered list of :class:`Batch`.

        Batches are keyed by the request's (config, a_hops) pair —
        the full reconfiguration surface of an instance — and ordered by
        the arrival of their oldest member; members keep arrival order.
        ``max_batch`` overrides the scheduler's own cap for this plan
        (the service uses it to spread one giant config group over the
        instance pool).
        """
        if max_batch is None:
            max_batch = self.max_batch
        else:
            max_batch = _check_max_batch(max_batch)
        groups = {}
        order = []
        for item in queued:
            key = (item.request.config, item.request.a_hops)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(item)
        batches = []
        for key in order:
            items = groups[key]
            size = max_batch or len(items)
            for start in range(0, len(items), size):
                batches.append((items[start], key, items[start:start + size]))
        # Order chunks globally by their oldest member's arrival.
        batches.sort(key=lambda entry: entry[0].seq)
        return [
            Batch(index=i, config=key[0], items=tuple(items))
            for i, (_first, key, items) in enumerate(batches)
        ]


class StreamingScheduler:
    """Event-driven admission with deadline-aware batch cutting.

    The serving loop feeds it one :class:`QueuedRequest` at a time via
    :meth:`admit`; requests accumulate in per-(config, a_hops) groups
    until a *cut* seals a batch:

    * **size cut** — the group reached ``max_batch`` members;
    * **deadline cut** — :meth:`cut_due` finds the group's cut time has
      passed: its tightest member deadline minus the estimated batch
      service time (a per-group EWMA of observed per-request modeled
      service seconds, fed back via :meth:`observe`) says the batch
      must start now to have a chance of meeting the SLO;
    * **timeout cut** — the oldest member has waited ``max_wait``
      seconds (bounds queueing for SLO-less traffic);
    * **flush** — the arrival stream ended (:meth:`flush`).

    Cut batches wait in an EDF priority queue: :meth:`pop_ready` hands
    out the batch with the tightest deadline, ties broken by the oldest
    member's arrival sequence — so SLO-less traffic degrades to plain
    FIFO and no config group can starve another with equal deadlines.

    Parameters
    ----------
    max_batch:
        Size cut threshold in requests (None = no size cuts). Positive
        int.
    max_wait:
        Timeout cut threshold in *simulated seconds* measured from the
        oldest member's arrival (None = no timeout cuts).
    shed_expired:
        Admission control: when True, a member whose deadline has
        already expired at the instant its batch is cut is *shed* —
        removed from the batch and recorded in :attr:`shed_log` (the
        service turns the log into rejected
        :class:`~repro.serve.request.InferenceResult` outcomes) instead
        of being served hopelessly late. Default False preserves the
        historical serve-late behavior bit-for-bit.
    priorities:
        Priority-class mode (the co-scheduling service turns this on):
        the grouping key gains the request's
        :meth:`~repro.serve.request.InferenceRequest.priority_class`
        (batches are priority-pure — a best-effort request never rides
        in front of a critical one by sharing its batch), and the ready
        queue orders by ``(class, deadline, arrival)`` so a lower class
        always dispatches first. Default False is bit-identical to the
        historical ``(deadline, arrival)`` EDF order.
    critical_slo_ms:
        The SLO threshold (ms) at or under which a request without an
        explicit priority derives class 0 (deadline-critical). Only
        consulted when ``priorities`` is on.

    All times this class consumes and produces — :meth:`cut_due` /
    :meth:`next_cut_time` instants, deadlines, :meth:`observe` service
    estimates — are simulated seconds on the serving loop's clock,
    never wall-clock. An SLO enters as the member's absolute deadline
    ``arrival_time + slo_ms / 1e3`` and influences *when* its batch is
    cut and *which* ready batch dispatches first; without
    ``shed_expired`` an expired deadline is still served (the service
    reports it as an SLO miss).
    """

    def __init__(self, *, max_batch=None, max_wait=None, shed_expired=False,
                 priorities=False, critical_slo_ms=None, tracer=None):
        self.max_batch = _check_max_batch(max_batch)
        self.max_wait = _check_max_wait(max_wait)
        self.shed_expired = bool(shed_expired)
        self.priorities = bool(priorities)
        self.critical_slo_ms = critical_slo_ms
        self.tracer = NULL_TRACER if tracer is None else tracer
        """Event sink (:mod:`repro.obs`): every sealed batch emits a
        ``batch.cut`` instant stamped with the cut reason."""
        self._groups = {}
        self._order = []
        self._estimates = {}
        self._ready = []
        self._n_dispatched = 0
        self.shed_log = []
        """``(QueuedRequest, shed_time)`` pairs of rejected members, in
        shed order; the service drains it via :meth:`take_shed`."""

    @property
    def pending(self):
        """Number of admitted requests not yet sealed into a batch."""
        return sum(len(group) for group in self._groups.values())

    @property
    def ready(self):
        """Number of cut batches awaiting dispatch."""
        return len(self._ready)

    def admit(self, item, *, now=None):
        """Accept one queued request into its config group.

        Seals the group immediately when it reaches ``max_batch``;
        ``now`` (defaulting to the item's arrival instant) is the
        batch-cut time a size cut is stamped with for shedding.
        """
        if not isinstance(item, QueuedRequest):
            raise ConfigError(
                f"admit expects a QueuedRequest, got {type(item).__name__}"
            )
        key = self._group_key(item.request)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = []
            if key not in self._order:
                self._order.append(key)
        group.append(item)
        if self.max_batch is not None and len(group) >= self.max_batch:
            self._cut(key, item.arrival_time if now is None else now,
                      reason="size")

    def _group_key(self, request):
        """The grouping key one request batches under.

        ``(config, a_hops)`` historically; with :attr:`priorities` the
        priority class is appended so batches stay priority-pure. The
        first two elements are always the reconfiguration surface — the
        service keys instance state and service-time estimates off
        ``key[:2]``.
        """
        key = (request.config, request.a_hops)
        if self.priorities:
            key = key + (request.priority_class(self.critical_slo_ms),)
        return key

    def observe(self, config, a_hops, seconds):
        """Feed back one served request's modeled service time.

        ``seconds`` is the request's modeled hardware service time in
        simulated seconds (cycles at the config clock — not the
        wall-clock simulation cost). Updates the ``(config, a_hops)``
        group's EWMA estimate (half-life one observation), which the
        deadline cut uses to answer "how long would this batch take if
        it started now".
        """
        key = (config, a_hops)
        previous = self._estimates.get(key)
        if previous is None:
            self._estimates[key] = seconds
        else:
            self._estimates[key] = 0.5 * previous + 0.5 * seconds

    def estimate(self, config, a_hops):
        """Current EWMA per-request service estimate for a group key.

        0.0 before any observation — callers treating the estimate as
        a wait budget (cache-affinity routing) therefore never wait
        while the scheduler knows nothing.
        """
        return self._estimates.get((config, a_hops), 0.0)

    def request_class(self, request):
        """The priority class this scheduler assigns one request.

        2 (best effort) and below only matter with :attr:`priorities`
        on; without it every request is class 2-equivalent and the EDF
        order ignores the value entirely.
        """
        return request.priority_class(self.critical_slo_ms)

    def _cut_decision(self, key):
        """``(when, reason)`` — the instant this group must be sealed.

        ``reason`` is ``"deadline"`` when the tightest member deadline
        minus the estimated batch service time binds, ``"timeout"``
        when the oldest member's ``max_wait`` clock cuts earlier.
        """
        group = self._groups[key]
        tightest = min(item.deadline for item in group)
        # Estimates are keyed by the hardware surface alone — the
        # priority suffix of a 3-element group key carries no service
        # time information.
        estimate = self._estimates.get(key[:2], 0.0) * len(group)
        when = tightest - estimate
        reason = "deadline"
        if self.max_wait is not None:
            timeout = group[0].arrival_time + self.max_wait
            if timeout < when:
                when, reason = timeout, "timeout"
        return when, reason

    def _cut_time(self, key):
        """Simulated second at which this group must be sealed."""
        return self._cut_decision(key)[0]

    def next_cut_time(self):
        """Earliest second any live group needs cutting (inf if none)."""
        times = [
            self._cut_time(key) for key in self._order if self._groups.get(key)
        ]
        return min(times) if times else math.inf

    def cut_due(self, now):
        """Seal every group whose cut time has passed; returns the count.

        ``now`` is the current simulated-clock second. A group is due
        when its tightest member deadline minus the estimated batch
        service time, or its oldest member's ``max_wait`` timeout,
        is at or before ``now``.
        """
        cut = 0
        for key in self._order:
            if not self._groups.get(key):
                continue
            when, reason = self._cut_decision(key)
            if when <= now:
                self._cut(key, now, reason=reason)
                cut += 1
        return cut

    def flush(self, *, now=0.0):
        """Seal every live group (the arrival stream has ended).

        ``now`` is the simulated instant of the flush — the batch-cut
        time stamped on any members shed here.
        """
        for key in self._order:
            if self._groups.get(key):
                self._cut(key, now, reason="flush")

    def take_shed(self):
        """Drain and return the accumulated shed log."""
        shed, self.shed_log = self.shed_log, []
        return shed

    def _cut(self, key, now, *, reason="flush"):
        """Seal one group into the EDF-ordered ready queue.

        With ``shed_expired``, members whose deadline lies strictly
        before ``now`` are logged as shed instead of sealed; a group
        whose members all expired produces no batch (and no
        ``batch.cut`` event — only sealed batches trace).
        """
        items = self._groups[key]
        self._groups[key] = []
        if self.shed_expired:
            live = []
            for item in items:
                if item.deadline < now:
                    self.shed_log.append((item, now))
                else:
                    live.append(item)
            items = live
            if not items:
                return
        if self.tracer.enabled:
            args = {
                "reason": reason,
                "size": len(items),
                "config": config_label(key[0]),
                "a_hops": key[1],
                "seqs": [item.seq for item in items],
            }
            if self.priorities:
                args["class"] = key[2]
            self.tracer.instant("batch.cut", lane="service", ts=now,
                                args=args)
        deadline = min(item.deadline for item in items)
        if self.priorities:
            # Class-major EDF: a lower class always dispatches first;
            # within a class the historical (deadline, arrival) order.
            entry = (key[2], deadline, items[0].seq, key, tuple(items))
        else:
            entry = (deadline, items[0].seq, key, tuple(items))
        heapq.heappush(self._ready, entry)

    def peek_ready(self):
        """The EDF-first ready batch's member tuple, without dispatching.

        Lets the service inspect what :meth:`pop_ready` would hand out
        (e.g. the largest member graph, for capacity-aware instance
        placement) before committing to a dispatch.
        """
        if not self._ready:
            raise ConfigError("peek_ready on an empty ready queue")
        return self._ready[0][-1]

    def pop_ready(self):
        """Remove and return the EDF-first ready :class:`Batch`.

        Batch indices are assigned in dispatch order, so they are
        consecutive in the order instances actually receive work.
        """
        if not self._ready:
            raise ConfigError("pop_ready on an empty ready queue")
        entry = heapq.heappop(self._ready)
        key, items = entry[-2], entry[-1]
        batch = Batch(index=self._n_dispatched, config=key[0], items=items)
        self._n_dispatched += 1
        return batch
