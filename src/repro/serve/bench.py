"""The serving benchmarks behind ``repro serve-bench``.

:func:`compare_caching` runs the same repeated-graph RMAT request mix
through the :class:`~repro.serve.InferenceService` twice — autotune
cache disabled, then enabled — and reports wall-clock throughput, hit
rate and the cache speedup, verifying along the way that cache-hit
results are cycle-identical to the cold runs (the cache must never
change model semantics, only simulation cost).

:func:`compare_latency` is the streaming counterpart: the same mix
arrives over simulated time (Poisson or bursty) with a latency SLO,
and the report pivots from throughput to tail latency — p50/p95/p99
end-to-end latency, mean queueing delay and SLO attainment — again in
both cache modes, verifying that caching changes neither a cycle count
nor a single simulated timestamp (scheduling runs on the simulated
clock, which the cache cannot touch).
"""

from __future__ import annotations

from repro.accel.config import ArchConfig
from repro.analysis.report import ascii_table
from repro.serve.service import serve_requests
from repro.serve.traffic import streaming_traffic, synthetic_traffic

# The default mix: graphs large enough that Eq. 5 tuning dominates a
# cold request, served under a config whose damped, patient tuner takes
# realistically many rounds to converge (the regime where GNNIE-style
# decision caching pays).
DEFAULT_GRAPH_KWARGS = {"f2": 96}


def default_serving_config(n_pes=192):
    """The arch config the serving mix is simulated under."""
    return ArchConfig(
        n_pes=n_pes,
        hop=1,
        remote_switching=True,
        convergence_patience=4,
        switch_damping=0.7,
    )


def compare_caching(*, n_requests=96, n_graphs=4, n_nodes=16384, seed=7,
                    n_workers=2, n_pes=192, configs=None, graph_kwargs=None,
                    workers=1, cache_mode="shared", repeat_alpha=None):
    """Serve one mix with and without the cache; returns ``(rows, text)``.

    ``rows`` has one dict per mode (``no-cache`` / ``cache``) plus the
    derived comparison row carrying the speedup and the cycle-identity
    verdict; ``text`` is the rendered table with a summary line.
    ``workers`` runs the underlying simulations on the
    :mod:`repro.parallel` process pool (host execution only — every
    reported cycle, timestamp and verdict is bit-identical to the
    sequential ``workers=1`` oracle; only wall-clock columns shrink).
    ``cache_mode`` selects the cached run's cache organization
    (``"shared"``/``"partitioned"``/``"affinity"``; the cold run is
    always cache-less) and ``repeat_alpha`` overrides the mix's Zipf
    exponent — together the repeat-heavy partitioned regimes
    ``repro affinity-bench`` sweeps in full.
    """
    if configs is None:
        configs = (default_serving_config(n_pes),)
    if graph_kwargs is None:
        graph_kwargs = dict(DEFAULT_GRAPH_KWARGS)
    traffic_kwargs = {}
    if repeat_alpha is not None:
        traffic_kwargs["zipf_skew"] = float(repeat_alpha)
    requests = synthetic_traffic(
        n_requests, n_graphs=n_graphs, n_nodes=n_nodes, seed=seed,
        configs=configs, graph_kwargs=graph_kwargs, **traffic_kwargs,
    )
    # Materialize the graph pool up front: dataset construction is
    # identical in both modes and must not pollute the comparison.
    for request in requests:
        request.resolve_graph()

    outcomes = {}
    for mode, cache in (("no-cache", None), ("cache", True)):
        outcomes[mode] = serve_requests(
            requests, n_workers=n_workers, cache=cache, workers=workers,
            cache_mode=cache_mode if cache else "shared",
        )

    cold, warm = outcomes["no-cache"], outcomes["cache"]
    identical = all(
        a.total_cycles == b.total_cycles and a.utilization == b.utilization
        for a, b in zip(cold.results, warm.results)
    )
    speedup = (
        cold.stats.wall_seconds / warm.stats.wall_seconds
        if warm.stats.wall_seconds else float("inf")
    )

    rows = []
    for mode in ("no-cache", "cache"):
        stats = outcomes[mode].stats
        rows.append({
            "mode": mode,
            "requests": stats.n_requests,
            "batches": stats.n_batches,
            "cache_hits": stats.cache_hits,
            "hit_rate": round(stats.hit_rate, 4),
            "evictions": stats.n_evictions,
            "wall_s": round(stats.wall_seconds, 4),
            "req_per_s": round(stats.requests_per_second, 2),
            "total_cycles": stats.total_cycles,
            "mean_util": round(stats.mean_utilization, 4),
        })
    rows.append({
        "mode": "speedup",
        "requests": n_requests,
        "batches": "-",
        "cache_hits": "-",
        "hit_rate": "-",
        "evictions": "-",
        "wall_s": "-",
        "req_per_s": round(speedup, 2),
        "total_cycles": "identical" if identical else "MISMATCH",
        "mean_util": "-",
    })

    table = ascii_table(
        ["mode", "requests", "batches", "hits", "hit rate", "evict",
         "wall (s)", "req/s", "total cycles", "mean util"],
        [[r["mode"], r["requests"], r["batches"], r["cache_hits"],
          r["hit_rate"], r["evictions"], r["wall_s"], r["req_per_s"],
          r["total_cycles"], r["mean_util"]] for r in rows],
        title=(
            f"Serving throughput: {n_requests} requests over {n_graphs} "
            f"RMAT graphs ({n_nodes} nodes, {n_pes} PEs, "
            f"{n_workers} instances)"
        ),
    )
    verdict = "cycle-identical" if identical else "CYCLE MISMATCH (bug!)"
    text = (
        f"{table}\n"
        f"autotune-cache speedup: {speedup:.2f}x "
        f"(hit rate {warm.stats.hit_rate:.1%}); "
        f"cache-hit results are {verdict} to cold runs"
    )
    return rows, text


def compare_latency(*, n_requests=96, n_graphs=4, n_nodes=4096, seed=7,
                    n_workers=2, n_pes=96, arrival_rate=400.0, slo_ms=None,
                    arrival="poisson", burst_size=8, max_batch=8,
                    max_wait=None, configs=None, graph_kwargs=None,
                    workers=1, cache_mode="shared", repeat_alpha=None):
    """Streaming latency/SLO comparison; returns ``(rows, text)``.

    Serves one fixed-seed streaming trace (arrival process + optional
    per-request SLO) through the event-driven service with the autotune
    cache disabled and enabled. ``rows`` has one dict per mode plus a
    comparison row carrying the wall speedup and two identity verdicts:
    cycle identity (total cycles match exactly) and timeline identity
    (every simulated start/finish timestamp matches exactly — caching
    must be invisible to the simulated clock). All latency figures are
    simulated milliseconds and deterministic under the seed.
    ``workers`` parallelizes the host-side simulations as in
    :func:`compare_caching` — bit-identical results, smaller wall-clock
    columns. ``cache_mode``/``repeat_alpha`` behave as in
    :func:`compare_caching` (cached run's cache organization; Zipf
    exponent override on the mix).
    """
    if configs is None:
        configs = (default_serving_config(n_pes),)
    if graph_kwargs is None:
        graph_kwargs = dict(DEFAULT_GRAPH_KWARGS)
    requests = streaming_traffic(
        n_requests, arrival_rate=arrival_rate, arrival=arrival,
        burst_size=burst_size, slo_ms=slo_ms, n_graphs=n_graphs,
        n_nodes=n_nodes, seed=seed, configs=configs,
        repeat_alpha=repeat_alpha, graph_kwargs=graph_kwargs,
    )
    # Materialize the graph pool up front: dataset construction is
    # identical in both modes and must not pollute the comparison.
    for request in requests:
        request.resolve_graph()

    outcomes = {}
    for mode, cache in (("no-cache", None), ("cache", True)):
        outcomes[mode] = serve_requests(
            requests, n_workers=n_workers, cache=cache,
            max_batch=max_batch, max_wait=max_wait, workers=workers,
            cache_mode=cache_mode if cache else "shared",
        )

    cold, warm = outcomes["no-cache"], outcomes["cache"]
    cycles_identical = all(
        a.total_cycles == b.total_cycles
        for a, b in zip(cold.results, warm.results)
    )
    timeline_identical = all(
        a.start_time == b.start_time and a.finish_time == b.finish_time
        for a, b in zip(cold.results, warm.results)
    )
    speedup = (
        cold.stats.wall_seconds / warm.stats.wall_seconds
        if warm.stats.wall_seconds else float("inf")
    )

    rows = []
    for mode in ("no-cache", "cache"):
        outcome = outcomes[mode]
        stats, latency = outcome.stats, outcome.latency
        attainment = latency.slo_attainment
        rows.append({
            "mode": mode,
            "requests": stats.n_requests,
            "batches": stats.n_batches,
            "hit_rate": round(stats.hit_rate, 4),
            "p50_ms": round(latency.p50_ms, 4),
            "p95_ms": round(latency.p95_ms, 4),
            "p99_ms": round(latency.p99_ms, 4),
            "p999_ms": round(latency.p999_ms, 4),
            "queue_ms": round(latency.mean_queue_ms, 4),
            "slo_attained": (
                "-" if attainment is None else round(attainment, 4)
            ),
            "shed_rate": round(stats.shed_rate, 4),
            "makespan_s": round(stats.makespan_seconds, 4),
            "wall_s": round(stats.wall_seconds, 4),
        })
    rows.append({
        "mode": "speedup",
        "requests": n_requests,
        "batches": "-",
        "hit_rate": "-",
        "p50_ms": "identical" if timeline_identical else "MISMATCH",
        "p95_ms": "-",
        "p99_ms": "-",
        "p999_ms": "-",
        "queue_ms": "-",
        "slo_attained": "-",
        "shed_rate": "-",
        "makespan_s": "identical" if cycles_identical else "MISMATCH",
        "wall_s": round(speedup, 2),
    })

    slo_label = f"{slo_ms:g} ms SLO" if slo_ms is not None else "no SLO"
    table = ascii_table(
        ["mode", "requests", "batches", "hit rate", "p50 (ms)", "p95 (ms)",
         "p99 (ms)", "p99.9 (ms)", "queue (ms)", "SLO att.", "shed",
         "makespan (s)", "wall (s)"],
        [[r["mode"], r["requests"], r["batches"], r["hit_rate"],
          r["p50_ms"], r["p95_ms"], r["p99_ms"], r["p999_ms"],
          r["queue_ms"], r["slo_attained"], r["shed_rate"],
          r["makespan_s"], r["wall_s"]] for r in rows],
        title=(
            f"Serving latency: {n_requests} requests over {n_graphs} RMAT "
            f"graphs ({n_nodes} nodes, {n_pes} PEs, {n_workers} instances), "
            f"{arrival} arrivals at {arrival_rate:g} req/s, {slo_label}"
        ),
    )
    warm_latency = warm.latency
    attainment = warm_latency.slo_attainment
    attainment_txt = (
        "no SLO set" if attainment is None
        else f"SLO attainment {attainment:.1%}"
    )
    cycles_verdict = (
        "cycle-identical" if cycles_identical else "CYCLE MISMATCH (bug!)"
    )
    timeline_verdict = (
        "timeline-identical" if timeline_identical
        else "TIMELINE MISMATCH (bug!)"
    )
    text = (
        f"{table}\n"
        f"p50/p95/p99 = {warm_latency.p50_ms:.3f}/"
        f"{warm_latency.p95_ms:.3f}/{warm_latency.p99_ms:.3f} ms, "
        f"{attainment_txt}; autotune-cache speedup {speedup:.2f}x; "
        f"cached runs are {cycles_verdict} and {timeline_verdict} "
        f"to cold runs"
    )
    return rows, text
