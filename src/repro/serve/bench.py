"""The serving-throughput comparison behind ``repro serve-bench``.

Runs the same repeated-graph RMAT request mix through the
:class:`~repro.serve.InferenceService` twice — autotune cache disabled,
then enabled — and reports wall-clock throughput, hit rate and the
cache speedup, verifying along the way that cache-hit results are
cycle-identical to the cold runs (the cache must never change model
semantics, only simulation cost).
"""

from __future__ import annotations

from repro.accel.config import ArchConfig
from repro.analysis.report import ascii_table
from repro.serve.service import serve_requests
from repro.serve.traffic import synthetic_traffic

# The default mix: graphs large enough that Eq. 5 tuning dominates a
# cold request, served under a config whose damped, patient tuner takes
# realistically many rounds to converge (the regime where GNNIE-style
# decision caching pays).
DEFAULT_GRAPH_KWARGS = {"f2": 96}


def default_serving_config(n_pes=192):
    """The arch config the serving mix is simulated under."""
    return ArchConfig(
        n_pes=n_pes,
        hop=1,
        remote_switching=True,
        convergence_patience=4,
        switch_damping=0.7,
    )


def compare_caching(*, n_requests=96, n_graphs=4, n_nodes=16384, seed=7,
                    n_workers=2, n_pes=192, configs=None, graph_kwargs=None):
    """Serve one mix with and without the cache; returns ``(rows, text)``.

    ``rows`` has one dict per mode (``no-cache`` / ``cache``) plus the
    derived comparison row carrying the speedup and the cycle-identity
    verdict; ``text`` is the rendered table with a summary line.
    """
    if configs is None:
        configs = (default_serving_config(n_pes),)
    if graph_kwargs is None:
        graph_kwargs = dict(DEFAULT_GRAPH_KWARGS)
    requests = synthetic_traffic(
        n_requests, n_graphs=n_graphs, n_nodes=n_nodes, seed=seed,
        configs=configs, graph_kwargs=graph_kwargs,
    )
    # Materialize the graph pool up front: dataset construction is
    # identical in both modes and must not pollute the comparison.
    for request in requests:
        request.resolve_graph()

    outcomes = {}
    for mode, cache in (("no-cache", None), ("cache", True)):
        outcomes[mode] = serve_requests(
            requests, n_workers=n_workers, cache=cache
        )

    cold, warm = outcomes["no-cache"], outcomes["cache"]
    identical = all(
        a.total_cycles == b.total_cycles and a.utilization == b.utilization
        for a, b in zip(cold.results, warm.results)
    )
    speedup = (
        cold.stats.wall_seconds / warm.stats.wall_seconds
        if warm.stats.wall_seconds else float("inf")
    )

    rows = []
    for mode in ("no-cache", "cache"):
        stats = outcomes[mode].stats
        rows.append({
            "mode": mode,
            "requests": stats.n_requests,
            "batches": stats.n_batches,
            "cache_hits": stats.cache_hits,
            "hit_rate": round(stats.hit_rate, 4),
            "wall_s": round(stats.wall_seconds, 4),
            "req_per_s": round(stats.requests_per_second, 2),
            "total_cycles": stats.total_cycles,
            "mean_util": round(stats.mean_utilization, 4),
        })
    rows.append({
        "mode": "speedup",
        "requests": n_requests,
        "batches": "-",
        "cache_hits": "-",
        "hit_rate": "-",
        "wall_s": "-",
        "req_per_s": round(speedup, 2),
        "total_cycles": "identical" if identical else "MISMATCH",
        "mean_util": "-",
    })

    table = ascii_table(
        ["mode", "requests", "batches", "hits", "hit rate", "wall (s)",
         "req/s", "total cycles", "mean util"],
        [[r["mode"], r["requests"], r["batches"], r["cache_hits"],
          r["hit_rate"], r["wall_s"], r["req_per_s"], r["total_cycles"],
          r["mean_util"]] for r in rows],
        title=(
            f"Serving throughput: {n_requests} requests over {n_graphs} "
            f"RMAT graphs ({n_nodes} nodes, {n_pes} PEs, "
            f"{n_workers} instances)"
        ),
    )
    verdict = "cycle-identical" if identical else "CYCLE MISMATCH (bug!)"
    text = (
        f"{table}\n"
        f"autotune-cache speedup: {speedup:.2f}x "
        f"(hit rate {warm.stats.hit_rate:.1%}); "
        f"cache-hit results are {verdict} to cold runs"
    )
    return rows, text
