"""Streaming multi-graph inference serving on the AWB-GCN model.

The paper simulates one graph per run; production GNN serving answers a
*stream* of requests over many graphs and architectures, arriving over
time with latency SLOs. This package adds that layer:

* :mod:`repro.serve.request`   — request/result types with arrival
  times, deadlines and a per-request serving timeline;
* :mod:`repro.serve.scheduler` — FIFO admission queue, the offline
  config-affinity batch planner, and the event-driven
  :class:`StreamingScheduler` (deadline-aware batch cutting, EDF
  dispatch);
* :mod:`repro.serve.cache`     — the :class:`AutotuneCache`: converged
  Eq. 5 row maps keyed by (workload fingerprint, arch config), with an
  optional LRU size bound and ``.npz`` persistence, so repeat graphs
  skip the auto-tuner warm-up via the frozen fast path of
  :func:`~repro.accel.cyclemodel.simulate_spmm_frozen`;
* :mod:`repro.serve.demand`    — :class:`DemandHistogram`:
  exponentially-decayed per-graph-family demand counters on the
  simulated clock, the signal cache-affinity routing
  (``InferenceService(cache_mode="affinity")``) uses to replicate hot
  autotune entries across per-worker cache shards;
* :mod:`repro.serve.service`   — the :class:`InferenceService`: an
  event-driven simulated-clock loop over a pool of simulated
  accelerator instances, with latency percentile / SLO-attainment
  accounting (:class:`LatencyStats`), optional admission control
  (``shed_expired`` rejects requests whose deadline expired, reported
  via ``ServiceStats.shed_rate``), reconfiguration pricing
  (``reconfig_cycles`` charged when an instance switches configs
  between batches), sharded dispatch (``chip_capacity`` plans
  oversized graphs as :mod:`repro.cluster` multi-chip jobs
  gang-scheduled across the pool), and multi-tenant co-scheduling
  (``coschedule`` adds gang claims, priority classes, boundary
  preemption and shared-fabric pricing; off by default and
  bit-identical to the exclusive-gang service). Pass a
  :class:`~repro.obs.tracer.RecordingTracer` as ``tracer`` to record
  the span-level event stream of a drain (see :mod:`repro.obs`);
* :mod:`repro.serve.traffic`   — fixed-seed RMAT request mixes,
  Poisson/bursty arrival processes and the multi-tenant
  :func:`mixed_traffic` regime for the serving benchmarks
  (``repro serve-bench``, ``repro mixed-bench``,
  ``benchmarks/bench_serve_*.py``).

Quickstart::

    from repro.serve import InferenceService, streaming_traffic

    service = InferenceService(n_workers=2, cache=True, max_batch=8)
    service.submit_many(streaming_traffic(
        32, arrival_rate=200.0, slo_ms=5.0, n_graphs=4, seed=7,
    ))
    outcome = service.drain()
    print(outcome.latency.p99_ms, outcome.latency.slo_attainment)
"""

from repro.serve.bench import (
    compare_caching,
    compare_latency,
    default_serving_config,
)
from repro.serve.cache import AutotuneCache, CacheEntryInfo, CacheStats
from repro.serve.demand import DemandHistogram
from repro.serve.request import InferenceRequest, InferenceResult
from repro.serve.scheduler import (
    Batch,
    QueuedRequest,
    RequestQueue,
    Scheduler,
    StreamingScheduler,
)
from repro.serve.service import (
    InferenceService,
    LatencyStats,
    ServeOutcome,
    ServiceStats,
    percentile,
    serve_requests,
)
from repro.serve.traffic import (
    RmatGraphSpec,
    bursty_arrivals,
    clear_graph_cache,
    mixed_traffic,
    poisson_arrivals,
    streaming_traffic,
    synthetic_traffic,
)

__all__ = [
    "compare_caching",
    "compare_latency",
    "default_serving_config",
    "AutotuneCache",
    "CacheEntryInfo",
    "CacheStats",
    "DemandHistogram",
    "InferenceRequest",
    "InferenceResult",
    "Batch",
    "QueuedRequest",
    "RequestQueue",
    "Scheduler",
    "StreamingScheduler",
    "InferenceService",
    "LatencyStats",
    "ServeOutcome",
    "ServiceStats",
    "percentile",
    "serve_requests",
    "RmatGraphSpec",
    "bursty_arrivals",
    "clear_graph_cache",
    "mixed_traffic",
    "poisson_arrivals",
    "streaming_traffic",
    "synthetic_traffic",
]
