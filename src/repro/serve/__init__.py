"""Batched multi-graph inference serving on the AWB-GCN model.

The paper simulates one graph per run; production GNN serving answers a
*stream* of requests over many graphs and architectures. This package
adds that layer:

* :mod:`repro.serve.request`   — request/result types;
* :mod:`repro.serve.scheduler` — FIFO admission queue + config-affinity
  batch scheduler;
* :mod:`repro.serve.cache`     — the :class:`AutotuneCache`: converged
  Eq. 5 row maps keyed by (workload fingerprint, arch config), with
  ``.npz`` persistence, so repeat graphs skip the auto-tuner warm-up via
  the frozen fast path of
  :func:`~repro.accel.cyclemodel.simulate_spmm_frozen`;
* :mod:`repro.serve.service`   — the :class:`InferenceService` driving a
  pool of simulated accelerator instances;
* :mod:`repro.serve.traffic`   — fixed-seed RMAT request mixes for the
  serving benchmarks (``repro serve-bench``,
  ``benchmarks/bench_serve_throughput.py``).

Quickstart::

    from repro.serve import InferenceService, synthetic_traffic

    service = InferenceService(n_workers=2, cache=True)
    service.submit_many(synthetic_traffic(32, n_graphs=4, seed=7))
    outcome = service.drain()
    print(outcome.stats.hit_rate, outcome.stats.requests_per_second)
"""

from repro.serve.bench import compare_caching, default_serving_config
from repro.serve.cache import AutotuneCache, CacheStats
from repro.serve.request import InferenceRequest, InferenceResult
from repro.serve.scheduler import Batch, RequestQueue, Scheduler
from repro.serve.service import (
    InferenceService,
    ServeOutcome,
    ServiceStats,
    serve_requests,
)
from repro.serve.traffic import (
    RmatGraphSpec,
    clear_graph_cache,
    synthetic_traffic,
)

__all__ = [
    "compare_caching",
    "default_serving_config",
    "AutotuneCache",
    "CacheStats",
    "InferenceRequest",
    "InferenceResult",
    "Batch",
    "RequestQueue",
    "Scheduler",
    "InferenceService",
    "ServeOutcome",
    "ServiceStats",
    "serve_requests",
    "RmatGraphSpec",
    "clear_graph_cache",
    "synthetic_traffic",
]
