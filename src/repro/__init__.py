"""AWB-GCN reproduction: a GCN accelerator with runtime workload rebalancing.

This library reproduces *AWB-GCN: A Graph Convolutional Network
Accelerator with Runtime Workload Rebalancing* (MICRO 2020; arXiv
preprint titled UWB-GCN) as a pure-Python system:

* :mod:`repro.sparse`   — from-scratch COO/CSR/CSC formats and kernels;
* :mod:`repro.datasets` — Table-1-calibrated synthetic dataset substrate;
* :mod:`repro.model`    — numpy reference GCN (Eq. 1) and the Table 2
  computation-order analysis;
* :mod:`repro.accel`    — the accelerator cycle model: baseline SPMM
  engine, dynamic local sharing, Eq. 5 remote switching, Fig. 8
  pipelining, and the CLB area model;
* :mod:`repro.hw`       — a detailed cycle-level simulator (Omega
  network, task queues, RaW-stalling MAC pipelines) for validation;
* :mod:`repro.baselines`— CPU / GPU / EIE-like comparison platforms and
  the energy model;
* :mod:`repro.analysis` — regeneration of every table and figure;
* :mod:`repro.serve`    — batched multi-graph inference serving with
  autotune caching (scheduler, accelerator pool, ``repro serve-bench``);
* :mod:`repro.parallel` — the multiprocessing execution backend: cold
  simulations fan out to a worker pool and replay bit-identically
  (``workers=N`` on :class:`~repro.serve.InferenceService` /
  :class:`~repro.cluster.ClusterConfig`, ``repro parallel-bench``).

Quickstart::

    from repro import load_dataset, ArchConfig, GcnAccelerator

    dataset = load_dataset("cora")
    report = GcnAccelerator(dataset, ArchConfig(n_pes=256, hop=1,
                                                remote_switching=True)).run()
    print(report.utilization, report.latency_ms)
"""

from repro.accel import (
    ArchConfig,
    GcnAccelerator,
    SpmmJob,
    simulate_spmm,
    design_config,
    run_design_suite,
)
from repro.datasets import GcnDataset, build_dataset, load_dataset
from repro.errors import ReproError
from repro.hw import simulate_spmm_detailed
from repro.model import GcnModel, build_model
from repro.serve import (
    AutotuneCache,
    InferenceRequest,
    InferenceService,
    serve_requests,
    synthetic_traffic,
)
from repro.sparse import CooMatrix, CscMatrix, CsrMatrix

__version__ = "1.0.0"

__all__ = [
    "ArchConfig",
    "GcnAccelerator",
    "SpmmJob",
    "simulate_spmm",
    "design_config",
    "run_design_suite",
    "GcnDataset",
    "build_dataset",
    "load_dataset",
    "ReproError",
    "simulate_spmm_detailed",
    "GcnModel",
    "build_model",
    "AutotuneCache",
    "InferenceRequest",
    "InferenceService",
    "serve_requests",
    "synthetic_traffic",
    "CooMatrix",
    "CscMatrix",
    "CsrMatrix",
    "__version__",
]
