"""Per-PE utilization heat strips — the paper's Fig. 10 view.

Fig. 10 explains the rebalancing flow with a heat-map of PE utilization
"from blue 0% to red 200%". This module renders the same view in ASCII:
one character per PE, graded by its load relative to the balanced ideal,
before and after each rebalancing stage.
"""

from __future__ import annotations

import numpy as np

from repro.accel.localshare import share_effective_loads
from repro.accel.remote import RemoteAutoTuner
from repro.accel.workload import RowAssignment
from repro.errors import ConfigError

_GRADES = " .:-=+*#%@"
"""Ten grades from idle (space) to >=2x the ideal load (@)."""


def heat_strip(loads, *, ideal=None):
    """One character per PE: load relative to the balanced ideal.

    ``ideal`` defaults to the mean load; a PE at 0 renders as space, at
    the ideal as '=', at 2x ideal or more as '@' (the paper's "red").
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.ndim != 1 or loads.size == 0:
        raise ConfigError("loads must be a non-empty 1-D array")
    if ideal is None:
        ideal = max(loads.mean(), 1e-12)
    if ideal <= 0:
        raise ConfigError(f"ideal must be > 0, got {ideal}")
    relative = np.clip(loads / (2.0 * ideal), 0.0, 1.0)
    indices = np.minimum(
        (relative * (len(_GRADES) - 1)).round().astype(int),
        len(_GRADES) - 1,
    )
    return "".join(_GRADES[i] for i in indices)


def rebalancing_heat_story(row_nnz, n_pes, *, hop=1, max_rounds=20):
    """The Fig. 10 narrative as a list of labelled heat strips.

    Returns ``[(label, strip), ...]`` showing: the initial equal
    partition, the view after local sharing, and the converged view
    after remote switching plus local sharing.
    """
    row_nnz = np.asarray(row_nnz, dtype=np.int64)
    assignment = RowAssignment(row_nnz, n_pes)
    ideal = max(assignment.total_work / n_pes, 1e-12)
    story = [("equal partition", heat_strip(assignment.loads, ideal=ideal))]
    if hop > 0:
        shared = share_effective_loads(assignment.loads, hop)
        story.append(
            (f"{hop}-hop local sharing", heat_strip(shared, ideal=ideal))
        )
    tuner = RemoteAutoTuner(
        assignment, rows_per_pe_equal=max(row_nnz.size / n_pes, 1.0)
    )
    from repro.accel.localshare import share_makespan

    for _ in range(max_rounds):
        if tuner.converged:
            break
        tuner.observe_round(share_makespan(assignment.loads, hop))
    after_switch = assignment.loads
    story.append(
        ("after remote switching", heat_strip(after_switch, ideal=ideal))
    )
    if hop > 0:
        final = share_effective_loads(after_switch, hop)
        story.append(
            ("switching + sharing", heat_strip(final, ideal=ideal))
        )
    return story


def render_heat_story(story):
    """Format a heat story as aligned text lines."""
    width = max(len(label) for label, _strip in story)
    lines = [f"{label:<{width}}  |{strip}|" for label, strip in story]
    legend = (
        f"{'legend':<{width}}  |{_GRADES}| = 0% .. 200% of ideal load"
    )
    return "\n".join(lines + [legend])
