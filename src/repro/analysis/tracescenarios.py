"""Canned serving scenarios for ``repro trace``.

Each scenario is a fully seeded ``(requests, serve_kwargs)`` pair small
enough to replay in seconds yet rich enough that its recorded event
stream exercises a distinct slice of the stack:

* ``serve``  — streaming batch traffic under an SLO on an
  affinity-routed partitioned pool: arrivals, batch cuts (size /
  deadline / timeout), per-worker batch spans, per-shard cache
  hit/miss/store, ``cache.route``/``cache.replicate`` placement
  events, per-worker hit-rate counters and per-round Eq. 5 tuner
  events;
* ``shard``  — oversized jobs on a 4-instance pool: gang scheduling,
  an EASY backfill past a blocked queue head, cluster plan /
  rebalancing / per-layer chip-utilization counters;
* ``mixed``  — the multi-tenant regime: the ``shard`` trio ahead of a
  Poisson stream of critical smalls, SLO'd batches and sharded jobs
  under co-scheduling, so the trace carries gang claims, at least one
  backfill *and* at least one boundary preemption/resume.

The ``mixed`` scenario deliberately mixes two sharded job sizes: the
stock :func:`~repro.serve.traffic.mixed_traffic` stream gives every
sharded job the same node count, and equal-size jobs can never
backfill past each other (a later job needs exactly the gang the
blocked head is waiting for). The hand-built trio in front breaks that
symmetry.

:func:`run_trace_scenario` replays a scenario under a
:class:`~repro.obs.tracer.RecordingTracer` and returns the outcome and
the tracer; the recorded stream is bit-identical for any host
``workers`` count.
"""

from __future__ import annotations

from repro.accel.config import ArchConfig
from repro.errors import ConfigError
from repro.serve.request import InferenceRequest
from repro.serve.traffic import (
    RmatGraphSpec,
    mixed_traffic,
    streaming_traffic,
)

TRACE_SCENARIOS = ("serve", "shard", "mixed")

# Small layer dims keep every scenario's cold simulations seconds-long.
_TINY_LAYERS = {"f1": 16, "f2": 8, "f3": 4}


def _sharded_trio(config):
    """Three t=0 sharded jobs sized to force an EASY backfill.

    On a 4-instance pool of 256-row chips: A (400 rows -> 2 chips)
    gangs instances 0-1, B (700 rows -> 3 chips) blocks as queue head
    on the 2 free instances, and C (300 rows -> 2 chips) fits the free
    pair right now — the backfill screen dispatches it iff that cannot
    delay B's planned assembly.
    """
    graphs = {
        "A": RmatGraphSpec(n_nodes=400, seed=11, avg_degree=4,
                           **_TINY_LAYERS),
        "B": RmatGraphSpec(n_nodes=700, seed=12, avg_degree=4,
                           **_TINY_LAYERS),
        "C": RmatGraphSpec(n_nodes=300, seed=13, avg_degree=4,
                           **_TINY_LAYERS),
    }
    return [
        InferenceRequest(graph=graphs[name], config=config,
                         arrival_time=0.0, request_id=name)
        for name in ("A", "B", "C")
    ]


def trace_scenario(name, *, seed=None):
    """The requests and service kwargs of one named scenario.

    Returns ``(requests, serve_kwargs)`` ready for
    ``serve_requests(requests, **serve_kwargs)``. ``seed`` overrides
    the scenario's default traffic seed (graph pools stay fixed).
    """
    if name == "serve":
        seed = 7 if seed is None else int(seed)
        config = ArchConfig(n_pes=64, hop=1, remote_switching=True)
        requests = streaming_traffic(
            24, arrival_rate=400.0, slo_ms=20.0, n_graphs=3,
            n_nodes=512, seed=seed, configs=(config,), avg_degree=4,
            graph_kwargs=_TINY_LAYERS,
        )
        return requests, {
            "n_workers": 2, "cache": True, "max_batch": 4,
            "cache_mode": "affinity", "replicate_threshold": 2.0,
        }
    if name == "shard":
        config = ArchConfig(n_pes=16, hop=1, remote_switching=True)
        return _sharded_trio(config), {
            "n_workers": 4, "chip_capacity": 256, "cache": True,
        }
    if name == "mixed":
        seed = 6 if seed is None else int(seed)
        config = ArchConfig(n_pes=16, hop=1, remote_switching=True)
        stream = mixed_traffic(
            14, arrival_rate=1500.0, chip_capacity=256, seed=seed,
            configs=(config,), sharded_nodes=900, sharded_fraction=0.3,
            critical_fraction=0.3, avg_degree=6,
            graph_kwargs=_TINY_LAYERS,
        )
        requests = _sharded_trio(config) + stream
        return requests, {
            "n_workers": 4, "chip_capacity": 256, "cache": True,
            "coschedule": True, "critical_slo_ms": 1.0,
        }
    raise ConfigError(
        f"unknown trace scenario {name!r}; expected one of "
        f"{', '.join(TRACE_SCENARIOS)}"
    )


def run_trace_scenario(name, *, seed=None, workers=1):
    """Replay one scenario under a fresh recording tracer.

    Returns ``(outcome, tracer)`` — the
    :class:`~repro.serve.service.ServiceOutcome` and the
    :class:`~repro.obs.tracer.RecordingTracer` holding the simulated
    event stream (plus wall-clock profiling spans). ``workers`` runs
    the underlying simulations on the :mod:`repro.parallel` pool; the
    recorded stream is bit-identical to ``workers=1``.
    """
    from repro.obs import RecordingTracer
    from repro.serve.service import serve_requests

    requests, kwargs = trace_scenario(name, seed=seed)
    tracer = RecordingTracer()
    outcome = serve_requests(requests, tracer=tracer, workers=workers,
                             **kwargs)
    return outcome, tracer


def trace_summary(name, outcome, tracer):
    """The text block ``repro trace`` prints for one recorded run."""
    from repro.analysis.report import ascii_table
    from repro.obs import render_round_heat

    counts = {}
    for event in tracer.events:
        counts[event.name] = counts.get(event.name, 0) + 1
    table = ascii_table(
        ["event", "count"],
        [[event_name, counts[event_name]] for event_name in sorted(counts)],
        title=(
            f"Trace scenario {name!r}: {len(tracer.events)} simulated "
            f"events, {len(tracer.wall_events)} wall spans"
        ),
    )
    stats = outcome.stats
    lines = [
        table,
        (
            f"requests={stats.n_requests} batches={stats.n_batches} "
            f"sharded={stats.n_sharded} backfilled={stats.n_backfilled} "
            f"preemptions={stats.n_preemptions} shed={stats.n_shed} "
            f"evictions={stats.n_evictions} "
            f"makespan={stats.makespan_seconds * 1e3:.3f}ms"
        ),
    ]
    heat = render_round_heat(tracer.events)
    if heat:
        lines.append(heat)
    return "\n".join(lines)
