"""Experiment harness: regenerates every table and figure of the paper.

Each public function returns plain data (lists of dict rows) plus an
ASCII rendering, so the benchmark suite can both print the artifact and
assert the paper's qualitative claims about it. See DESIGN.md for the
experiment-to-module index.
"""

from repro.analysis.report import ascii_table, format_quantity
from repro.analysis.profile import table1_profile
from repro.analysis.opcount import table2_ordering
from repro.analysis.crossplatform import table3_crossplatform
from repro.analysis.figures import (
    fig_nnz_distribution,
    fig14_overall,
    fig14_per_spmm,
    fig14_resources,
    fig15_scalability,
)
from repro.analysis.export import rows_to_csv, rows_to_json
from repro.analysis.parallelscale import (
    compare_parallel_scaling,
    host_cpu_count,
)
from repro.analysis.rebalance import compare_rebalance, rmat_pe_loads
from repro.analysis.shardscale import (
    compare_shard_scaling,
    compare_shard_topology,
)
from repro.analysis.affinity import compare_cache_affinity
from repro.analysis.mixedload import compare_mixed_load
from repro.analysis.tracescenarios import (
    TRACE_SCENARIOS,
    run_trace_scenario,
    trace_scenario,
    trace_summary,
)
from repro.analysis.straggler import compare_straggler
from repro.analysis.heatmap import (
    heat_strip,
    rebalancing_heat_story,
    render_heat_story,
)
from repro.analysis.toy import (
    fig9_local_loads,
    fig9_remote_loads,
    toy_round_cycles,
)

__all__ = [
    "ascii_table",
    "format_quantity",
    "table1_profile",
    "table2_ordering",
    "table3_crossplatform",
    "fig_nnz_distribution",
    "fig14_overall",
    "fig14_per_spmm",
    "fig14_resources",
    "fig15_scalability",
    "rows_to_csv",
    "rows_to_json",
    "compare_parallel_scaling",
    "host_cpu_count",
    "compare_rebalance",
    "compare_cache_affinity",
    "compare_mixed_load",
    "TRACE_SCENARIOS",
    "run_trace_scenario",
    "trace_scenario",
    "trace_summary",
    "compare_shard_scaling",
    "compare_shard_topology",
    "compare_straggler",
    "rmat_pe_loads",
    "heat_strip",
    "rebalancing_heat_story",
    "render_heat_story",
    "fig9_local_loads",
    "fig9_remote_loads",
    "toy_round_cycles",
]
