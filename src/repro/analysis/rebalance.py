"""The rebalancing-core microbenchmark behind ``repro bench-rebalance``.

The runtime-rebalancing model has two hot loops, exercised once per
round, per SPMM, per request by :mod:`repro.serve`:

* the EDF transport of
  :func:`~repro.accel.localshare.share_effective_loads`, which turns a
  per-PE load vector into the executed-work vector at the Hall-bound
  makespan (queue sizing, steady-state backlog);
* the Eq. 5 auto-tuning phase of
  :func:`~repro.accel.cyclemodel.simulate_spmm`, which prices one Hall
  bound per tuning round until the map freezes.

Both were pure-Python loops (a heap per receiver; one
``share_makespan`` call per round) and are now vectorized — the
transport as a closed-form prefix-sum sweep, the tuning phase as
chunked speculation priced by one batched kernel call. This benchmark
times old vs. new on fixed-seed RMAT workloads across PE counts and
writes ``results/bench_rebalance.{csv,txt}``; the bench suite asserts
the transport speedup stays >= 5x at 1024+ PEs.

Both implementations are kept importable precisely so this comparison
(and the bit-identity property tests) never rot: the heap transport
survives as ``_share_effective_loads_reference`` and the sequential
tuning driver behind ``simulate_spmm(..., batched_tuning=False)``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.accel.config import ArchConfig
from repro.accel.cyclemodel import SpmmJob, simulate_spmm
from repro.accel.localshare import (
    _share_effective_loads_reference,
    share_effective_loads,
    share_makespan,
)
from repro.accel.workload import initial_assignment, per_pe_loads
from repro.analysis.report import ascii_table
from repro.datasets.rmat import rmat_edges
from repro.errors import ConfigError
from repro.utils.rng import rng_from_seed


def rmat_pe_loads(n_pes, *, rows_per_pe=16, avg_degree=8,
                  abcd=(0.5, 0.2, 0.2, 0.1), seed=7):
    """Per-PE loads of a fixed-seed RMAT adjacency under the static map.

    Builds an undirected RMAT graph with ``n_pes * rows_per_pe`` nodes,
    takes its row-nnz profile as the per-row task counts, and folds it
    onto ``n_pes`` PEs through the paper's contiguous equal-rows
    partition — the load vector every round of an untuned SPMM sees.
    """
    n_nodes = int(n_pes) * int(rows_per_pe)
    n_directed = max(n_nodes * avg_degree // 2, 1)
    src, dst = rmat_edges(
        n_nodes, n_directed, abcd=abcd, rng=rng_from_seed(seed)
    )
    row_nnz = np.bincount(
        np.concatenate([src, dst]), minlength=n_nodes
    ).astype(np.int64)
    return per_pe_loads(
        initial_assignment(n_nodes, n_pes), row_nnz, n_pes
    ), row_nnz


def _best_of(fn, repeats):
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def compare_rebalance(*, pe_counts=(64, 256, 1024, 4096), rows_per_pe=16,
                      avg_degree=8, hop=2, n_rounds=64, seed=7, repeats=5,
                      abcd=(0.5, 0.2, 0.2, 0.1)):
    """Time old-vs-new rebalancing kernels; returns ``(rows, text)``.

    One row per PE count. The transport columns time the full
    ``share_effective_loads`` call with the Hall bound precomputed and
    passed as ``cap`` — exactly how the cycle model's steady-state
    backlog invokes it — against the retired heap implementation under
    the same contract. The tuning columns time a complete
    ``simulate_spmm`` run (Eq. 5 switching enabled, the serving
    config's damped/patient tuner) with the batched driver against the
    sequential reference. Every timed pair is also checked elementwise
    /cycle-identical, so the speedup numbers can never come from a
    divergent result.
    """
    pe_counts = tuple(int(p) for p in pe_counts)
    if not pe_counts or any(p <= 0 for p in pe_counts):
        raise ConfigError(f"pe_counts must be positive, got {pe_counts}")

    rows = []
    for n_pes in pe_counts:
        loads, row_nnz = rmat_pe_loads(
            n_pes, rows_per_pe=rows_per_pe, avg_degree=avg_degree,
            abcd=abcd, seed=seed,
        )
        cap = share_makespan(loads, hop)

        old_effective = _share_effective_loads_reference(loads, hop, cap=cap)
        new_effective = share_effective_loads(loads, hop, cap=cap)
        if not np.array_equal(old_effective, new_effective):
            raise AssertionError(
                f"transport mismatch at {n_pes} PEs — refusing to report "
                "a speedup over a divergent result"
            )
        transport_old = _best_of(
            lambda: _share_effective_loads_reference(loads, hop, cap=cap),
            repeats,
        )
        transport_new = _best_of(
            lambda: share_effective_loads(loads, hop, cap=cap), repeats
        )

        job = SpmmJob(name=f"rmat-{n_pes}", row_nnz=row_nnz,
                      n_rounds=n_rounds)
        config = ArchConfig(
            n_pes=n_pes, hop=hop, remote_switching=True,
            convergence_patience=4, switch_damping=0.7,
        )
        sequential = simulate_spmm(job, config, batched_tuning=False)
        batched = simulate_spmm(job, config, batched_tuning=True)
        if not np.array_equal(
            sequential.cycles_per_round, batched.cycles_per_round
        ):
            raise AssertionError(
                f"tuning mismatch at {n_pes} PEs — refusing to report a "
                "speedup over a divergent result"
            )
        tuning_old = _best_of(
            lambda: simulate_spmm(job, config, batched_tuning=False),
            repeats,
        )
        tuning_new = _best_of(
            lambda: simulate_spmm(job, config, batched_tuning=True), repeats
        )

        rows.append({
            "n_pes": n_pes,
            "n_nodes": n_pes * rows_per_pe,
            "hop": hop,
            "transport_old_ms": round(transport_old * 1e3, 4),
            "transport_new_ms": round(transport_new * 1e3, 4),
            "transport_speedup": round(transport_old / transport_new, 2),
            "tuning_rounds": (
                batched.converged_round
                if batched.converged_round is not None else n_rounds
            ),
            "tuning_old_ms": round(tuning_old * 1e3, 4),
            "tuning_new_ms": round(tuning_new * 1e3, 4),
            "tuning_speedup": round(tuning_old / tuning_new, 2),
        })

    table = ascii_table(
        ["PEs", "nodes", "hop", "transport old (ms)", "transport new (ms)",
         "transport speedup", "tune rounds", "tuning old (ms)",
         "tuning new (ms)", "tuning speedup"],
        [[r["n_pes"], r["n_nodes"], r["hop"], r["transport_old_ms"],
          r["transport_new_ms"], f'{r["transport_speedup"]}x',
          r["tuning_rounds"], r["tuning_old_ms"], r["tuning_new_ms"],
          f'{r["tuning_speedup"]}x'] for r in rows],
        title=(
            f"Rebalancing-core speedups: vectorized EDF transport and "
            f"batched Eq. 5 tuning vs. the retired Python loops "
            f"(RMAT, {rows_per_pe} rows/PE, degree {avg_degree}, "
            f"hop {hop}, seed {seed}; best of {repeats})"
        ),
    )
    wide = [r for r in rows if r["n_pes"] >= 1024]
    summary = ""
    if wide:
        floor = min(r["transport_speedup"] for r in wide)
        summary = (
            f"\nshare_effective_loads speedup at 1024+ PEs: >= {floor}x "
            f"(bit-identical to the heap reference)"
        )
    return rows, table + summary
