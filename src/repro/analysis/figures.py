"""Figure regeneration: Figs. 1/13 (distributions), 14 (A-O), 15.

Figures are reproduced as data series plus ASCII renderings. Each
function returns ``(rows, text)`` like the table builders, so the bench
suite prints the series the paper plots and asserts their shape.
"""

from __future__ import annotations

import numpy as np

from repro.accel.config import ArchConfig
from repro.accel.designs import (
    DESIGN_LABELS,
    DESIGN_NAMES,
    design_config,
    run_design_suite,
)
from repro.accel.gcnaccel import GcnAccelerator
from repro.accel.resources import estimate_resources, report_tq_depth
from repro.analysis.report import ascii_table, format_quantity
from repro.datasets.registry import load_dataset
from repro.datasets.specs import dataset_names
from repro.sparse.stats import distribution_stats, row_nnz_histogram


def fig_nnz_distribution(*, preset="scaled", seed=7, datasets=None,
                         n_bins=12):
    """Figs. 1 & 13: per-row non-zero distribution of the adjacency.

    Returns histogram rows (dataset, bin range, row count) and summary
    skew statistics. The paper plots Cora/Pubmed in Fig. 1 and
    Citeseer/Nell/Reddit in Fig. 13; this builder covers any subset.
    """
    if datasets is None:
        datasets = dataset_names()
    rows = []
    lines = []
    for name in datasets:
        ds = load_dataset(name, preset, seed=seed)
        counts = ds.adjacency.row_nnz()
        stats = distribution_stats(counts)
        edges, hist = row_nnz_histogram(counts, n_bins=n_bins)
        lines.append(f"{name}: {stats.describe()}")
        peak = hist.max() if hist.size else 1
        for lo, hi, count in zip(edges[:-1], edges[1:], hist):
            rows.append(
                {
                    "dataset": name,
                    "nnz_lo": int(lo),
                    "nnz_hi": int(hi),
                    "rows": int(count),
                }
            )
            bar = "#" * int(round(40 * count / peak)) if peak else ""
            lines.append(f"  [{int(lo):>6}, {int(hi):>6}) {count:>8} {bar}")
    return rows, "\n".join(lines)


def fig14_overall(*, preset="scaled", seed=7, n_pes=256, datasets=None,
                  designs=None):
    """Fig. 14 A-E: overall inference delay and PE utilization.

    One row per (dataset, design): total cycles, per-layer cycle split,
    utilization, latency and speedup over the baseline.
    """
    if datasets is None:
        datasets = dataset_names()
    if designs is None:
        designs = DESIGN_NAMES
    base = ArchConfig(n_pes=n_pes)
    rows = []
    for name in datasets:
        ds = load_dataset(name, preset, seed=seed)
        reports = run_design_suite(ds, base=base, designs=designs)
        base_cycles = reports[designs[0]].total_cycles
        for design in designs:
            report = reports[design]
            per_layer = report.per_layer_cycles()
            rows.append(
                {
                    "dataset": name,
                    "design": design,
                    "total_cycles": report.total_cycles,
                    "layer1_cycles": per_layer[0],
                    "layer2_cycles": per_layer[1],
                    "utilization": report.utilization,
                    "latency_ms": report.latency_ms,
                    "speedup_vs_baseline": base_cycles / report.total_cycles,
                }
            )
    text = ascii_table(
        [
            "dataset", "design", "cycles", "L1 cycles", "L2 cycles",
            "util", "latency ms", "speedup",
        ],
        [
            [
                r["dataset"],
                DESIGN_LABELS.get(r["design"], r["design"]),
                format_quantity(r["total_cycles"]),
                format_quantity(r["layer1_cycles"]),
                format_quantity(r["layer2_cycles"]),
                f"{r['utilization']:.1%}",
                f"{r['latency_ms']:.4g}",
                f"{r['speedup_vs_baseline']:.2f}x",
            ]
            for r in rows
        ],
        title=(
            f"Fig. 14 A-E — overall delay & PE utilization "
            f"({preset} presets, {n_pes} PEs)"
        ),
    )
    return rows, text


def fig14_per_spmm(*, preset="scaled", seed=7, n_pes=256, datasets=None,
                   designs=None):
    """Fig. 14 F-J: per-SPMM cycle breakdown (ideal vs sync) and util."""
    if datasets is None:
        datasets = dataset_names()
    if designs is None:
        designs = DESIGN_NAMES
    base = ArchConfig(n_pes=n_pes)
    rows = []
    for name in datasets:
        ds = load_dataset(name, preset, seed=seed)
        reports = run_design_suite(ds, base=base, designs=designs)
        for design in designs:
            for result in reports[design].spmm_results:
                rows.append(
                    {
                        "dataset": name,
                        "design": design,
                        "spmm": result.job_name,
                        "ideal_cycles": result.ideal_total_cycles,
                        "sync_cycles": result.sync_cycles,
                        "total_cycles": result.total_cycles,
                        "utilization": result.utilization,
                        "converged_round": result.converged_round,
                    }
                )
    text = ascii_table(
        ["dataset", "design", "SPMM", "ideal", "sync", "total", "util"],
        [
            [
                r["dataset"],
                r["design"],
                r["spmm"],
                format_quantity(r["ideal_cycles"]),
                format_quantity(r["sync_cycles"]),
                format_quantity(r["total_cycles"]),
                f"{r['utilization']:.1%}",
            ]
            for r in rows
        ],
        title=(
            f"Fig. 14 F-J — per-SPMM cycles: ideal vs sync "
            f"({preset} presets, {n_pes} PEs)"
        ),
    )
    return rows, text


def fig14_resources(*, preset="scaled", seed=7, n_pes=256, datasets=None,
                    designs=None):
    """Fig. 14 K-O: CLB area split into TQ vs other, per design."""
    if datasets is None:
        datasets = dataset_names()
    if designs is None:
        designs = DESIGN_NAMES
    base = ArchConfig(n_pes=n_pes)
    rows = []
    for name in datasets:
        ds = load_dataset(name, preset, seed=seed)
        reports = run_design_suite(ds, base=base, designs=designs)
        for design in designs:
            report = reports[design]
            depth = report_tq_depth(report)
            resources = estimate_resources(report.config, tq_depth=depth)
            rows.append(
                {
                    "dataset": name,
                    "design": design,
                    "tq_depth": depth,
                    "tq_clb": resources.tq_clb,
                    "other_clb": resources.other_clb,
                    "total_clb": resources.total_clb,
                    "tq_fraction": resources.tq_fraction,
                }
            )
    text = ascii_table(
        ["dataset", "design", "TQ depth", "TQ CLB", "other CLB", "total CLB"],
        [
            [
                r["dataset"],
                r["design"],
                r["tq_depth"],
                format_quantity(r["tq_clb"]),
                format_quantity(r["other_clb"]),
                format_quantity(r["total_clb"]),
            ]
            for r in rows
        ],
        title=(
            f"Fig. 14 K-O — CLB consumption, TQ vs other "
            f"({preset} presets, {n_pes} PEs)"
        ),
    )
    return rows, text


def fig15_scalability(*, preset="scaled", seed=7, datasets=None,
                      pe_counts=(512, 768, 1024)):
    """Fig. 15: utilization / performance / area vs PE count.

    Three designs per the paper: baseline, local sharing only (1-hop;
    3-hop for Nell), and local + remote. Performance is reported as
    throughput relative to the 512-PE baseline.
    """
    if datasets is None:
        datasets = dataset_names()
    variants = ["baseline", "local", "local+remote"]
    rows = []
    for name in datasets:
        ds = load_dataset(name, preset, seed=seed)
        hop = 3 if name == "nell" else 1
        reference_cycles = None
        for n_pes in pe_counts:
            base = ArchConfig(n_pes=n_pes)
            configs = {
                "baseline": base.with_updates(hop=0, remote_switching=False),
                "local": base.with_updates(hop=hop, remote_switching=False),
                "local+remote": base.with_updates(
                    hop=hop, remote_switching=True
                ),
            }
            for variant in variants:
                report = GcnAccelerator(ds, configs[variant]).run()
                depth = report_tq_depth(report)
                resources = estimate_resources(
                    configs[variant], tq_depth=depth
                )
                if reference_cycles is None:
                    reference_cycles = report.total_cycles
                rows.append(
                    {
                        "dataset": name,
                        "variant": variant,
                        "n_pes": n_pes,
                        "total_cycles": report.total_cycles,
                        "utilization": report.utilization,
                        "relative_perf": reference_cycles
                        / report.total_cycles,
                        "total_clb": resources.total_clb,
                    }
                )
    text = ascii_table(
        ["dataset", "variant", "PEs", "cycles", "util", "rel perf", "CLB"],
        [
            [
                r["dataset"],
                r["variant"],
                r["n_pes"],
                format_quantity(r["total_cycles"]),
                f"{r['utilization']:.1%}",
                f"{r['relative_perf']:.2f}x",
                format_quantity(r["total_clb"]),
            ]
            for r in rows
        ],
        title=f"Fig. 15 — scalability over PE count ({preset} presets)",
    )
    return rows, text
