"""Table 3: cross-platform latency and energy comparison.

CPU and GPU latencies come from the calibrated analytic models (see
:mod:`repro.baselines`); the EIE-like, baseline and AWB rows are
simulated on the accelerator models. Speedups are reported AWB-relative,
like the paper's headline numbers (246.7x / 78.9x / 2.7x / 11.0x mean
speedup over CPU / GPU / baseline / EIE on the published setup).
"""

from __future__ import annotations

from repro.accel.config import ArchConfig
from repro.accel.designs import design_config
from repro.accel.gcnaccel import GcnAccelerator
from repro.analysis.report import ascii_table, format_quantity
from repro.baselines.cpu import CpuModel, total_inference_ops
from repro.baselines.eie import EieLikeModel
from repro.baselines.energy import PLATFORM_POWER_WATTS
from repro.baselines.gpu import GpuModel
from repro.baselines.platforms import PlatformResult
from repro.datasets.registry import load_dataset
from repro.datasets.specs import dataset_names

PLATFORM_ORDER = ["cpu", "gpu", "eie", "baseline", "awb"]


def table3_crossplatform(*, preset="scaled", seed=7, n_pes=256,
                         datasets=None):
    """Build the Table 3 rows; returns ``(rows, rendered_text)``.

    Each row is one (platform, dataset) pair with latency in ms and the
    energy-efficiency metric, plus AWB's speedup over that platform.
    """
    if datasets is None:
        datasets = dataset_names()
    cpu = CpuModel()
    gpu = GpuModel()
    eie = EieLikeModel(n_pes=n_pes)
    base_cfg = ArchConfig(n_pes=n_pes)

    rows = []
    for name in datasets:
        ds = load_dataset(name, preset, seed=seed)
        ops = total_inference_ops(ds)
        results = {
            "cpu": cpu.evaluate(ds.name, ops),
            "gpu": gpu.evaluate(ds.name, ops),
            "eie": eie.evaluate(ds),
        }
        baseline_report = GcnAccelerator(
            ds, design_config("baseline", dataset_name=ds.name, base=base_cfg)
        ).run()
        results["baseline"] = PlatformResult(
            platform="baseline",
            dataset=ds.name,
            latency_ms=baseline_report.latency_ms,
            power_watts=PLATFORM_POWER_WATTS["baseline"],
        )
        awb_report = GcnAccelerator(
            ds, design_config("design_d", dataset_name=ds.name, base=base_cfg)
        ).run()
        results["awb"] = PlatformResult(
            platform="awb",
            dataset=ds.name,
            latency_ms=awb_report.latency_ms,
            power_watts=PLATFORM_POWER_WATTS["awb"],
        )
        awb_latency = results["awb"].latency_ms
        for platform in PLATFORM_ORDER:
            res = results[platform]
            rows.append(
                {
                    "platform": platform,
                    "dataset": ds.name,
                    "latency_ms": res.latency_ms,
                    "inferences_per_kj": res.inferences_per_kilojoule,
                    "awb_speedup": res.latency_ms / awb_latency,
                }
            )
    text = ascii_table(
        ["platform", "dataset", "latency (ms)", "Inference/kJ", "AWB speedup"],
        [
            [
                r["platform"],
                r["dataset"],
                f"{r['latency_ms']:.4g}",
                format_quantity(r["inferences_per_kj"]),
                f"{r['awb_speedup']:.1f}x",
            ]
            for r in rows
        ],
        title=(
            f"Table 3 — cross-platform comparison "
            f"({preset} presets, {n_pes} PEs)"
        ),
    )
    return rows, text


def mean_speedups(rows):
    """Geometric-mean AWB speedup per platform (the paper's headline)."""
    from math import exp, log

    by_platform = {}
    for row in rows:
        by_platform.setdefault(row["platform"], []).append(
            row["awb_speedup"]
        )
    return {
        platform: exp(sum(log(s) for s in speedups) / len(speedups))
        for platform, speedups in by_platform.items()
    }
