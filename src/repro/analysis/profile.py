"""Table 1: sparsity and dimensions of the GCN matrices per dataset.

Regenerates the paper's profiling table from the synthetic datasets:
density of A / W / X1 / X2 and the node / feature dimensions. X2's
density is measured by actually running the reference forward pass when
features are materialized, otherwise the Table 1 forecast is reported.
"""

from __future__ import annotations

from repro.analysis.report import ascii_table
from repro.datasets.registry import load_dataset
from repro.datasets.specs import dataset_names
from repro.model.gcn import build_model


def table1_profile(*, preset="scaled", seed=7, datasets=None,
                   measure_x2=True):
    """Build the Table 1 rows; returns ``(rows, rendered_text)``.

    Each row is a dict with the dataset name, densities (fractions) and
    dimensions. ``measure_x2`` runs the reference model to measure the
    layer-2 input density instead of trusting the spec forecast.
    """
    if datasets is None:
        datasets = dataset_names()
    rows = []
    for name in datasets:
        ds = load_dataset(name, preset, seed=seed)
        f1, f2, f3 = ds.feature_dims
        x1_density = float(ds.x1_row_nnz.sum()) / (ds.n_nodes * f1)
        if measure_x2 and ds.has_numeric_features:
            trace = build_model(ds).forward(ds.features)
            x2_density = trace.layer_results[0].output_density
        else:
            x2_density = float(ds.x2_row_nnz.sum()) / (ds.n_nodes * f2)
        rows.append(
            {
                "dataset": ds.name,
                "preset": preset,
                "a_density": ds.adjacency.density,
                "w_density": 1.0,
                "x1_density": x1_density,
                "x2_density": x2_density,
                "nodes": ds.n_nodes,
                "f1": f1,
                "f2": f2,
                "f3": f3,
            }
        )
    text = ascii_table(
        [
            "dataset", "A dens", "W dens", "X1 dens", "X2 dens",
            "nodes", "F1", "F2", "F3",
        ],
        [
            [
                r["dataset"],
                f"{r['a_density']:.4%}",
                f"{r['w_density']:.0%}",
                f"{r['x1_density']:.3%}",
                f"{r['x2_density']:.1%}",
                r["nodes"],
                r["f1"],
                r["f2"],
                r["f3"],
            ]
            for r in rows
        ],
        title=f"Table 1 — matrix profiling ({preset} presets)",
    )
    return rows, text
