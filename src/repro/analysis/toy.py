"""The paper's Fig. 9 toy example, reproduced exactly.

Fig. 9 illustrates the two imbalance types on 8 PEs processing an 8x8
matrix at 75% sparsity (16 non-zeros, so a perfectly balanced round
takes 2 cycles):

* (A) *local* imbalance — counts vary between adjacent rows; the
  busiest PE holds 5 tasks, so the round takes **5** cycles;
* (B) *remote* imbalance — non-zeros concentrate in one region; the
  busiest PE holds 7 tasks, so the round takes **7** cycles.

These exact workloads drive unit tests and a bench that demonstrate the
paper's remedy matrix: local sharing fixes (A), while (B) additionally
needs remote switching.
"""

from __future__ import annotations

import numpy as np

from repro.accel.localshare import share_makespan

IDEAL_CYCLES = 2
LOCAL_IMBALANCE_CYCLES = 5
REMOTE_IMBALANCE_CYCLES = 7


def fig9_local_loads():
    """Per-PE task counts of Fig. 9(A): local imbalance, max 5, total 16.

    Neighbouring PEs alternate heavy/light, so every overloaded PE has
    an underloaded neighbour — the pattern 1-hop sharing resolves.
    """
    return np.array([5, 1, 4, 1, 2, 1, 1, 1], dtype=np.int64)


def fig9_remote_loads():
    """Per-PE task counts of Fig. 9(B): remote imbalance, max 7, total 16.

    The work concentrates in one region (PEs 0-1), far from the idle
    PEs — the pattern local sharing alone cannot resolve.
    """
    return np.array([7, 6, 1, 1, 1, 0, 0, 0], dtype=np.int64)


def toy_round_cycles(loads, *, hop=0):
    """Round delay for a toy workload under ``hop``-local sharing."""
    return share_makespan(loads, hop)


def toy_after_remote_switching(loads):
    """Loads after ideal remote switching (pair-wise equalization).

    Remote switching may move work between *any* two PEs, so with
    enough rounds the reachable end state is the flat partition; this
    helper returns it (total preserved, spread evenly) for comparing
    the post-tuning round delay.
    """
    loads = np.asarray(loads, dtype=np.int64)
    total = int(loads.sum())
    n = loads.size
    flat = np.full(n, total // n, dtype=np.int64)
    flat[: total % n] += 1
    return flat
