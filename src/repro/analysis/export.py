"""CSV / JSON export of experiment rows.

Every harness function returns rows as a list of flat dicts; these
helpers persist them so EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.errors import ConfigError


def rows_to_csv(rows, path):
    """Write dict rows to ``path`` as CSV (keys of the first row = header)."""
    if not rows:
        raise ConfigError("rows must be non-empty")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = list(rows[0].keys())
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def rows_to_json(rows, path):
    """Write dict rows to ``path`` as pretty-printed JSON."""
    if not rows:
        raise ConfigError("rows must be non-empty")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(rows, handle, indent=2, default=float)
        handle.write("\n")
    return path
