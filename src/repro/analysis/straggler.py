"""Straggler-resilience sweep for cycle-feedback rebalancing.

AWB-GCN's rebalancer exists because imbalance is *observed at runtime*,
not predicted — and a chip that starts throttling mid-run (thermal
limits, a contended memory channel, a failing board) is the purest
case: no static profile can see it. This sweep injects one
:class:`~repro.cluster.StragglerEvent` with a *fractional* onset (the
slowdown lands inside a feedback round, so the ``"cycles"`` signal
first observes a blended mid-round measurement) and compares three
regimes per slowdown factor:

* ``clean``    — no straggler, load-signal rebalancing: the floor;
* ``frozen``   — the straggler hits a load-signal plan that cannot
  react (the static signal never sees measured cycles), so the slowed
  chip stretches every layer barrier by the full factor;
* ``feedback`` — cycle-feedback rebalancing observes the slowdown in
  its per-round measurements (including the blended onset round) and
  migrates row blocks off the straggling chip.

The recovered fraction — ``(frozen - feedback) / (frozen - clean)`` —
is the share of straggler-induced slowdown the feedback loop claws
back; the verdict asserts it is strictly positive at every factor,
which is the claim ``results/straggler.{csv,txt}`` records and the
bench suite enforces.

Unlike :mod:`shard-bench <.shardscale>`, this sweep uses the *default*
(mildly skewed) RMAT mix rather than the hub-heavy one: the straggler
story needs a clean plan that is time-balanced, so that the measured
gap is attributable to the injected slowdown rather than to an
immovable hub block pinned on the straggling chip.
"""

from __future__ import annotations

from repro.accel.config import ArchConfig
from repro.analysis.report import ascii_table
from repro.cluster.multichip import (
    ClusterConfig,
    StragglerEvent,
    simulate_multichip_gcn,
)
from repro.errors import ConfigError
from repro.serve.traffic import RmatGraphSpec


def compare_straggler(*, n_chips=4, n_nodes=4096, avg_degree=12,
                      pes_per_chip=128, link_words_per_cycle=16.0,
                      blocks_per_chip=8, f1=64, f2=32, f3=8, seed=7,
                      straggler_chip=0, onset_round=1.5,
                      factors=(1.5, 2.0, 3.0), feedback_rounds=6):
    """Run the straggler-recovery sweep; returns ``(rows, text)``.

    One default-mix RMAT graph, one straggling chip whose compute
    slows by each of ``factors`` from ``onset_round`` on.
    ``onset_round`` defaults to a fractional round so the first
    affected measurement is the blended mid-round one — the hardest
    case for the controller, and the one the mid-round measurement
    model exists for. Every row reports total cycles and slowdown over
    the clean floor; ``feedback`` rows add migrated blocks and the
    recovered fraction of the straggler-induced gap.
    """
    if not factors:
        raise ConfigError("factors must be a non-empty sequence")
    factors = tuple(float(f) for f in factors)
    if any(f < 1.0 for f in factors):
        raise ConfigError(f"straggler factors must be >= 1.0, got {factors}")
    chip = ArchConfig(n_pes=pes_per_chip, hop=1, remote_switching=True)
    dataset = RmatGraphSpec(
        n_nodes=n_nodes, avg_degree=avg_degree,
        f1=f1, f2=f2, f3=f3, seed=seed,
    ).build()

    def run(signal, stragglers):
        cluster = ClusterConfig(
            n_chips=n_chips, chip=chip, strategy="nnz",
            rebalance_signal=signal,
            link_words_per_cycle=link_words_per_cycle,
            blocks_per_chip=blocks_per_chip,
            feedback_rounds=feedback_rounds,
            stragglers=stragglers,
        )
        return simulate_multichip_gcn(dataset, cluster)

    clean = run("load", None)
    rows = [{
        "factor": 1.0,
        "regime": "clean",
        "cycles": clean.total_cycles,
        "slowdown": 1.0,
        "migrated_blocks": clean.rebalance.migrated_blocks,
        "recovered": "",
    }]
    for factor in factors:
        event = StragglerEvent(
            chip=straggler_chip, onset_round=onset_round, factor=factor
        )
        frozen = run("load", (event,))
        feedback = run("cycles", (event,))
        gap = frozen.total_cycles - clean.total_cycles
        recovered = (
            (frozen.total_cycles - feedback.total_cycles) / gap
            if gap > 0 else 0.0
        )
        rows.append({
            "factor": factor,
            "regime": "frozen",
            "cycles": frozen.total_cycles,
            "slowdown": round(frozen.total_cycles / clean.total_cycles, 3),
            "migrated_blocks": frozen.rebalance.migrated_blocks,
            "recovered": "",
        })
        rows.append({
            "factor": factor,
            "regime": "feedback",
            "cycles": feedback.total_cycles,
            "slowdown": round(
                feedback.total_cycles / clean.total_cycles, 3
            ),
            "migrated_blocks": feedback.rebalance.migrated_blocks,
            "recovered": round(recovered, 3),
        })

    table = ascii_table(
        ["factor", "regime", "cycles", "slowdown", "migrated", "recovered"],
        [[r["factor"], r["regime"], r["cycles"], r["slowdown"],
          r["migrated_blocks"], r["recovered"]] for r in rows],
        title=(
            f"Straggler recovery: chip {straggler_chip} slows at round "
            f"{onset_round}, {n_chips} chips, RMAT "
            f"{n_nodes} nodes (seed {seed})"
        ),
    )
    text = table + "\n" + _verdict(rows)
    return rows, text


def _verdict(rows):
    """The claim line under the straggler table."""
    recovered = [
        float(r["recovered"]) for r in rows if r["regime"] == "feedback"
    ]
    beaten = all(
        feedback["cycles"] < frozen["cycles"]
        for feedback, frozen in zip(
            (r for r in rows if r["regime"] == "feedback"),
            (r for r in rows if r["regime"] == "frozen"),
        )
    )
    if not beaten:
        return (
            "cycle-feedback FAILED to beat the frozen plan on at least "
            "one factor"
        )
    return (
        "cycle-feedback with mid-round measurement beats the frozen "
        f"plan at every factor, recovering {min(recovered):.0%}-"
        f"{max(recovered):.0%} of the straggler-induced slowdown"
    )
