"""Mixed-load co-scheduling sweep: multi-tenant pool on vs off.

The multi-tenant service (PR 8) makes three promises over the
exclusive-gang baseline: deadline-critical small queries stop starving
behind pool-wide sharded jobs (boundary preemption), waiting gangs stop
racing batch traffic for simultaneous idleness (claims bound the
assembly instant), and concurrent sharded jobs price their halo traffic
honestly on one shared fabric. This sweep drives identical
:func:`~repro.serve.traffic.mixed_traffic` traces — critical smalls,
SLO'd batch queries and oversized sharded jobs on one Poisson stream —
through the same pool twice per traffic point, co-scheduling off and
on, and records SLO attainment (overall and for the critical class),
modeled makespan, and how often the new machinery fired
(preemptions, backfills).

The verdict line asserts the headline claim the bench suite enforces:
at *every* swept traffic point, co-scheduling improves SLO attainment
or modeled throughput (never trading both away). Everything is on the
simulated clock and fully seeded, so the table regenerates
bit-identically.
"""

from __future__ import annotations

from repro.accel.config import ArchConfig
from repro.analysis.report import ascii_table
from repro.errors import ConfigError
from repro.serve.service import serve_requests
from repro.serve.traffic import mixed_traffic


def _attainment(results, *, critical_slo_ms=None):
    """SLO attainment over ``results`` (optionally one class only)."""
    scoped = [
        r for r in results
        if r.slo_ms is not None
        and (critical_slo_ms is None or r.slo_ms <= critical_slo_ms)
    ]
    if not scoped:
        return None
    return sum(1 for r in scoped if r.slo_met) / len(scoped)


def compare_mixed_load(*, n_requests=120, rates=(600.0, 900.0, 1800.0),
                       n_workers=4, chip_capacity=1024, pes_per_chip=64,
                       critical_fraction=0.25, sharded_fraction=0.15,
                       critical_slo_ms=1.0, batch_slo_ms=25.0,
                       sharded_slo_ms=100.0, sharded_nodes=4096,
                       seed=7):
    """Run the mixed-load co-scheduling sweep; returns ``(rows, text)``.

    One :func:`~repro.serve.traffic.mixed_traffic` trace per arrival
    rate in ``rates`` (requests/second), served twice on an
    ``n_workers``-instance pool with per-instance capacity
    ``chip_capacity``: co-scheduling off (the exclusive-gang baseline)
    and on (claims + priority classes + boundary preemption + shared
    fabric, ``critical_slo_ms`` as the class-0 threshold). Two rows per
    rate report overall and critical-class SLO attainment, modeled
    makespan, and the preemption/backfill counts.
    """
    if not rates:
        raise ConfigError("rates must be a non-empty sequence")
    rates = tuple(float(rate) for rate in rates)
    if any(rate <= 0 for rate in rates):
        raise ConfigError(f"rates must be > 0, got {rates}")
    config = ArchConfig(n_pes=pes_per_chip, hop=1, remote_switching=True)

    rows = []
    for rate in rates:
        requests = mixed_traffic(
            n_requests, arrival_rate=rate, chip_capacity=chip_capacity,
            seed=seed, configs=(config,),
            critical_fraction=critical_fraction,
            sharded_fraction=sharded_fraction,
            critical_slo_ms=critical_slo_ms, batch_slo_ms=batch_slo_ms,
            sharded_slo_ms=sharded_slo_ms, sharded_nodes=sharded_nodes,
        )
        for mode, coschedule in (("off", False), ("on", True)):
            outcome = serve_requests(
                requests, n_workers=n_workers, cache=True,
                chip_capacity=chip_capacity, coschedule=coschedule,
                critical_slo_ms=critical_slo_ms if coschedule else None,
            )
            overall = _attainment(outcome.results)
            critical = _attainment(
                outcome.results, critical_slo_ms=critical_slo_ms
            )
            rows.append({
                "rate": rate,
                "mode": mode,
                "slo_attainment": round(overall, 4)
                if overall is not None else "",
                "critical_attainment": round(critical, 4)
                if critical is not None else "",
                "makespan_ms": round(
                    outcome.stats.makespan_seconds * 1e3, 4
                ),
                "p99_ms": round(outcome.latency.p99_ms, 4),
                "hit_rate": round(outcome.stats.hit_rate, 4),
                "shed_rate": round(outcome.stats.shed_rate, 4),
                "n_sharded": outcome.stats.n_sharded,
                "n_backfilled": outcome.stats.n_backfilled,
                "n_preemptions": outcome.stats.n_preemptions,
            })

    table = ascii_table(
        ["rate", "mode", "slo_att", "crit_att", "makespan_ms", "p99_ms",
         "hit_rate", "shed", "sharded", "backfill", "preempt"],
        [[r["rate"], r["mode"], r["slo_attainment"],
          r["critical_attainment"], r["makespan_ms"], r["p99_ms"],
          r["hit_rate"], r["shed_rate"], r["n_sharded"],
          r["n_backfilled"], r["n_preemptions"]]
         for r in rows],
        title=(
            f"Mixed-load co-scheduling: {n_workers} instances x "
            f"{chip_capacity} rows, {n_requests} requests "
            f"({critical_fraction:.0%} critical @ {critical_slo_ms}ms, "
            f"{sharded_fraction:.0%} sharded), seed {seed}"
        ),
    )
    text = table + "\n" + _verdict(rows)
    return rows, text


def _verdict(rows):
    """The claim line under the mixed-load table."""
    improved = []
    for off, on in zip(rows[0::2], rows[1::2]):
        off_att = off["slo_attainment"] or 0.0
        on_att = on["slo_attainment"] or 0.0
        improved.append(
            on_att > off_att
            or (on_att == off_att
                and on["makespan_ms"] < off["makespan_ms"])
            or (on_att == off_att
                and on["makespan_ms"] == off["makespan_ms"]
                and on["p99_ms"] <= off["p99_ms"])
        )
    if not all(improved):
        losing = [
            off["rate"] for off, ok in zip(rows[0::2], improved) if not ok
        ]
        return (
            "co-scheduling FAILED to improve SLO attainment or "
            f"throughput at rate(s) {losing}"
        )
    gains = [
        round((on["slo_attainment"] or 0.0) - (off["slo_attainment"] or 0.0),
              4)
        for off, on in zip(rows[0::2], rows[1::2])
    ]
    return (
        "co-scheduling improves SLO attainment or throughput at every "
        f"mixed-traffic point (attainment deltas {gains})"
    )
