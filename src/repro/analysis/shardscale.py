"""Weak/strong scaling of sharded multi-chip execution (``shard-bench``).

The Fig. 15 experiment one level up the hierarchy: instead of sweeping
PEs inside one chip, sweep *chips* over a power-law RMAT graph and
compare three partitioning regimes per chip count:

* ``rows``          — static contiguous equal-row shards (the chip-level
  analogue of the paper's baseline partition);
* ``nnz``           — greedy nnz-balanced shards (degree-profiled,
  GNNIE-style);
* ``rows+rebal``    — start from the naive ``rows`` partition and let
  the chip-level Eq. 5 controller migrate row blocks at runtime.

**Strong scaling** holds the graph fixed and grows the cluster: speedup
over one chip, per regime. **Weak scaling** grows the graph with the
cluster (fixed nodes per chip): efficiency = 1-chip cycles / k-chip
cycles (1.0 = perfect). On imbalanced graphs the runtime rebalancer
recovers most of the gap between the naive and the profiled static
partition without needing the nnz profile up front — the claim the
bench suite asserts and ``results/shard_scaling.{csv,txt}`` records.
"""

from __future__ import annotations

from repro.accel.config import ArchConfig
from repro.analysis.report import ascii_table
from repro.cluster.multichip import ClusterConfig, simulate_multichip_gcn
from repro.errors import ConfigError
from repro.serve.traffic import RmatGraphSpec

# A deliberately hub-heavy RMAT profile (between the paper's Nell and
# Pubmed skews): chip-level imbalance is the regime the rebalancer
# exists for.
DEFAULT_ABCD = (0.62, 0.16, 0.16, 0.06)

REGIMES = (
    ("rows", "rows", False),
    ("nnz", "nnz", False),
    ("rows+rebal", "rows", True),
)


def _graph(n_nodes, avg_degree, seed, f1, f2, f3):
    """A fixed-seed hub-heavy serving graph for the scaling sweep."""
    return RmatGraphSpec(
        n_nodes=n_nodes, avg_degree=avg_degree, f1=f1, f2=f2, f3=f3,
        seed=seed, abcd=DEFAULT_ABCD,
    ).build()


def _sweep_cell(dataset, chip, n_chips, strategy, rebalance,
                link_words_per_cycle, blocks_per_chip):
    """One (graph, cluster, regime) cell of the sweep."""
    cluster = ClusterConfig(
        n_chips=n_chips,
        chip=chip,
        strategy=strategy,
        rebalance=rebalance,
        link_words_per_cycle=link_words_per_cycle,
        blocks_per_chip=blocks_per_chip,
    )
    return simulate_multichip_gcn(dataset, cluster)


def compare_shard_scaling(*, chip_counts=(1, 2, 4, 8), n_nodes=8192,
                          weak_nodes_per_chip=2048, avg_degree=12,
                          pes_per_chip=128, link_words_per_cycle=16.0,
                          blocks_per_chip=8, f1=64, f2=32, f3=8, seed=7):
    """Run the weak+strong scaling sweep; returns ``(rows, text)``.

    Strong scaling shards the fixed ``n_nodes`` graph across each chip
    count; weak scaling grows the graph to
    ``weak_nodes_per_chip x chips`` (keeping per-chip occupancy high
    enough that the intra-chip mechanisms stay in their intended
    regime). Every cell reports total cycles, communication fraction,
    compute imbalance and migrated blocks; strong rows carry speedup
    over the same regime's 1-chip run, weak rows the parallel
    efficiency.
    """
    chip_counts = tuple(int(c) for c in chip_counts)
    if not chip_counts or min(chip_counts) < 1:
        raise ConfigError(f"chip_counts must be positive, got {chip_counts}")
    if 1 not in chip_counts:
        chip_counts = (1,) + chip_counts
    chip_counts = tuple(sorted(set(chip_counts)))
    chip = ArchConfig(n_pes=pes_per_chip, hop=1, remote_switching=True)
    nodes_per_chip = max(int(weak_nodes_per_chip), max(chip_counts))

    rows = []
    strong_graph = _graph(n_nodes, avg_degree, seed, f1, f2, f3)
    baselines = {}
    for regime, strategy, rebalance in REGIMES:
        for n_chips in chip_counts:
            report = _sweep_cell(
                strong_graph, chip, n_chips, strategy, rebalance,
                link_words_per_cycle, blocks_per_chip,
            )
            baselines.setdefault(regime, report.total_cycles)
            rows.append({
                "mode": "strong",
                "regime": regime,
                "chips": n_chips,
                "nodes": n_nodes,
                "cycles": report.total_cycles,
                "speedup": round(
                    baselines[regime] / report.total_cycles, 3
                ),
                "efficiency": round(
                    baselines[regime]
                    / (report.total_cycles * n_chips), 3
                ),
                "comm_frac": round(report.comm_fraction, 4),
                "imbalance": round(report.compute_imbalance, 3),
                "migrated_blocks": report.rebalance.migrated_blocks,
                "utilization": round(report.utilization, 4),
            })

    weak_graphs = {
        n_chips: _graph(
            nodes_per_chip * n_chips, avg_degree, seed, f1, f2, f3
        )
        for n_chips in chip_counts
    }
    weak_base = {}
    for regime, strategy, rebalance in REGIMES:
        for n_chips in chip_counts:
            dataset = weak_graphs[n_chips]
            report = _sweep_cell(
                dataset, chip, n_chips, strategy, rebalance,
                link_words_per_cycle, blocks_per_chip,
            )
            weak_base.setdefault(regime, report.total_cycles)
            rows.append({
                "mode": "weak",
                "regime": regime,
                "chips": n_chips,
                "nodes": nodes_per_chip * n_chips,
                "cycles": report.total_cycles,
                "speedup": round(
                    weak_base[regime] * n_chips / report.total_cycles, 3
                ),
                "efficiency": round(
                    weak_base[regime] / report.total_cycles, 3
                ),
                "comm_frac": round(report.comm_fraction, 4),
                "imbalance": round(report.compute_imbalance, 3),
                "migrated_blocks": report.rebalance.migrated_blocks,
                "utilization": round(report.utilization, 4),
            })

    table = ascii_table(
        ["mode", "regime", "chips", "nodes", "cycles", "speedup",
         "efficiency", "comm frac", "imbalance", "migrated", "util"],
        [[r["mode"], r["regime"], r["chips"], r["nodes"], r["cycles"],
          r["speedup"], r["efficiency"], r["comm_frac"], r["imbalance"],
          r["migrated_blocks"], r["utilization"]] for r in rows],
        title=(
            f"Sharded scaling: hub-heavy RMAT, {pes_per_chip} PEs/chip, "
            f"link {link_words_per_cycle} words/cycle, "
            f"{blocks_per_chip} blocks/chip (seed {seed})"
        ),
    )
    text = table + "\n" + _verdict(rows)
    return rows, text


def _verdict(rows):
    """One-line summary comparing rebalanced vs naive-static sharding."""
    gains = []
    for row in rows:
        if row["regime"] != "rows+rebal" or row["chips"] == 1:
            continue
        static = next(
            r for r in rows
            if r["mode"] == row["mode"] and r["regime"] == "rows"
            and r["chips"] == row["chips"]
        )
        gains.append(static["cycles"] / row["cycles"])
    if not gains:
        return "single-chip sweep: no rebalancing comparison"
    return (
        "chip-level rebalancing vs static rows partition: "
        f"{min(gains):.2f}x-{max(gains):.2f}x fewer cycles across "
        f"multi-chip points (geo-mean "
        f"{(_prod(gains)) ** (1.0 / len(gains)):.2f}x)"
    )


def _prod(values):
    out = 1.0
    for v in values:
        out *= v
    return out
