"""Weak/strong scaling of sharded multi-chip execution (``shard-bench``).

The Fig. 15 experiment one level up the hierarchy: instead of sweeping
PEs inside one chip, sweep *chips* over a power-law RMAT graph and
compare three partitioning regimes per chip count:

* ``rows``          — static contiguous equal-row shards (the chip-level
  analogue of the paper's baseline partition);
* ``nnz``           — greedy nnz-balanced shards (degree-profiled,
  GNNIE-style);
* ``rows+rebal``    — start from the naive ``rows`` partition and let
  the chip-level Eq. 5 controller migrate row blocks at runtime.

**Strong scaling** holds the graph fixed and grows the cluster: speedup
over one chip, per regime. **Weak scaling** grows the graph with the
cluster (fixed nodes per chip): efficiency = 1-chip cycles / k-chip
cycles (1.0 = perfect). On imbalanced graphs the runtime rebalancer
recovers most of the gap between the naive and the profiled static
partition without needing the nnz profile up front — the claim the
bench suite asserts and ``results/shard_scaling.{csv,txt}`` records.
"""

from __future__ import annotations

from repro.accel.config import ArchConfig
from repro.analysis.report import ascii_table
from repro.cluster.multichip import ClusterConfig, simulate_multichip_gcn
from repro.cluster.topology import TOPOLOGY_KINDS, make_topology
from repro.errors import ConfigError
from repro.serve.traffic import RmatGraphSpec

# A deliberately hub-heavy RMAT profile (between the paper's Nell and
# Pubmed skews): chip-level imbalance is the regime the rebalancer
# exists for.
DEFAULT_ABCD = (0.62, 0.16, 0.16, 0.06)

REGIMES = (
    ("rows", "rows", False),
    ("nnz", "nnz", False),
    ("rows+rebal", "rows", True),
)


def _graph(n_nodes, avg_degree, seed, f1, f2, f3):
    """A fixed-seed hub-heavy serving graph for the scaling sweep."""
    return RmatGraphSpec(
        n_nodes=n_nodes, avg_degree=avg_degree, f1=f1, f2=f2, f3=f3,
        seed=seed, abcd=DEFAULT_ABCD,
    ).build()


def _hetero_chips(n_chips, pes_per_chip):
    """An alternating big/little chip mix (full and half PE counts)."""
    if n_chips == 1:
        return None
    return tuple(
        ArchConfig(
            n_pes=pes_per_chip if i % 2 == 0 else max(pes_per_chip // 2, 1),
            hop=1, remote_switching=True,
        )
        for i in range(n_chips)
    )


def _sweep_cell(dataset, chip, n_chips, strategy, rebalance,
                link_words_per_cycle, blocks_per_chip, *,
                topology="all-to-all", hop_latency_cycles=0,
                overlap=False, rebalance_signal="load", chips=None,
                row_ceilings=None, stragglers=None, workers=1):
    """One (graph, cluster, regime) cell of the sweep."""
    cluster = ClusterConfig(
        n_chips=n_chips,
        chip=chip,
        chips=chips,
        strategy=strategy,
        rebalance=rebalance,
        rebalance_signal=rebalance_signal,
        link_words_per_cycle=link_words_per_cycle,
        blocks_per_chip=blocks_per_chip,
        topology=topology,
        hop_latency_cycles=hop_latency_cycles,
        overlap=overlap,
        row_ceilings=row_ceilings,
        stragglers=stragglers,
        workers=workers,
    )
    return simulate_multichip_gcn(dataset, cluster)


def _cell_ceilings(row_ceiling, n_chips, n_nodes):
    """A uniform per-chip ceiling tuple when the cell can honor it.

    A sweep spans chip counts; at small counts a per-chip ceiling may
    not cover the graph at all (``ceiling * chips < nodes``) — those
    cells run unconstrained rather than failing the whole sweep, which
    keeps the 1-chip baselines meaningful.
    """
    if row_ceiling is None or row_ceiling * n_chips < n_nodes:
        return None
    return (int(row_ceiling),) * n_chips


def _cell_stragglers(stragglers, n_chips):
    """Straggler events whose chip exists at this cell's chip count."""
    if not stragglers:
        return None
    kept = tuple(
        ev for ev in stragglers
        if (ev.chip if hasattr(ev, "chip") else int(ev[0])) < n_chips
    )
    return kept or None


def compare_shard_scaling(*, chip_counts=(1, 2, 4, 8), n_nodes=8192,
                          weak_nodes_per_chip=2048, avg_degree=12,
                          pes_per_chip=128, link_words_per_cycle=16.0,
                          blocks_per_chip=8, f1=64, f2=32, f3=8, seed=7,
                          topology="all-to-all", hop_latency_cycles=0,
                          overlap=False, hetero=False, feedback=False,
                          row_ceiling=None, stragglers=None, workers=1):
    """Run the weak+strong scaling sweep; returns ``(rows, text)``.

    Strong scaling shards the fixed ``n_nodes`` graph across each chip
    count; weak scaling grows the graph to
    ``weak_nodes_per_chip x chips`` (keeping per-chip occupancy high
    enough that the intra-chip mechanisms stay in their intended
    regime). Every cell reports total cycles, communication fraction,
    compute imbalance and migrated blocks; strong rows carry speedup
    over the same regime's 1-chip run, weak rows the parallel
    efficiency.

    The cluster-model knobs thread straight through: ``topology`` /
    ``hop_latency_cycles`` pick the fabric, ``overlap`` double-buffers
    halos, ``hetero`` runs an alternating big/little chip mix (full and
    half ``pes_per_chip``; the single-chip baseline stays one full
    chip), and ``feedback`` switches the ``rows+rebal`` regime to
    cycle-feedback rebalancing (measured per-chip cycles as the
    migration signal).

    ``row_ceiling`` is a uniform hard per-chip row budget: cells whose
    chip count can cover the graph under it
    (``ceiling * chips >= nodes``) partition and rebalance under hard
    ceilings; smaller cells run unconstrained (see
    :func:`_cell_ceilings`). ``stragglers`` is a sequence of
    ``(chip, onset_round, factor)`` slowdown events (or
    :class:`~repro.cluster.StragglerEvent`); events naming a chip a
    cell does not have are dropped for that cell.

    ``workers`` runs every cell's per-chip simulations on the
    :mod:`repro.parallel` process pool — a host-execution knob that
    shrinks the sweep's wall time and never changes a reported number
    (the sequential ``workers=1`` path is the oracle).
    """
    chip_counts = tuple(int(c) for c in chip_counts)
    if not chip_counts or min(chip_counts) < 1:
        raise ConfigError(f"chip_counts must be positive, got {chip_counts}")
    if 1 not in chip_counts:
        chip_counts = (1,) + chip_counts
    chip_counts = tuple(sorted(set(chip_counts)))
    chip = ArchConfig(n_pes=pes_per_chip, hop=1, remote_switching=True)
    nodes_per_chip = max(int(weak_nodes_per_chip), max(chip_counts))

    def cell(dataset, n_chips, strategy, rebalance):
        return _sweep_cell(
            dataset, chip, n_chips, strategy, rebalance,
            link_words_per_cycle, blocks_per_chip,
            topology=topology, hop_latency_cycles=hop_latency_cycles,
            overlap=overlap,
            rebalance_signal="cycles" if feedback and rebalance else "load",
            chips=_hetero_chips(n_chips, pes_per_chip) if hetero else None,
            row_ceilings=_cell_ceilings(
                row_ceiling, n_chips, dataset.n_nodes
            ),
            stragglers=_cell_stragglers(stragglers, n_chips),
            workers=workers,
        )

    rows = []
    strong_graph = _graph(n_nodes, avg_degree, seed, f1, f2, f3)
    baselines = {}
    for regime, strategy, rebalance in REGIMES:
        for n_chips in chip_counts:
            report = cell(strong_graph, n_chips, strategy, rebalance)
            baselines.setdefault(regime, report.total_cycles)
            rows.append({
                "mode": "strong",
                "regime": regime,
                "chips": n_chips,
                "nodes": n_nodes,
                "cycles": report.total_cycles,
                "speedup": round(
                    baselines[regime] / report.total_cycles, 3
                ),
                "efficiency": round(
                    baselines[regime]
                    / (report.total_cycles * n_chips), 3
                ),
                "comm_frac": round(report.comm_fraction, 4),
                "imbalance": round(report.compute_imbalance, 3),
                "migrated_blocks": report.rebalance.migrated_blocks,
                "utilization": round(report.utilization, 4),
            })

    weak_graphs = {
        n_chips: _graph(
            nodes_per_chip * n_chips, avg_degree, seed, f1, f2, f3
        )
        for n_chips in chip_counts
    }
    weak_base = {}
    for regime, strategy, rebalance in REGIMES:
        for n_chips in chip_counts:
            dataset = weak_graphs[n_chips]
            report = cell(dataset, n_chips, strategy, rebalance)
            weak_base.setdefault(regime, report.total_cycles)
            rows.append({
                "mode": "weak",
                "regime": regime,
                "chips": n_chips,
                "nodes": nodes_per_chip * n_chips,
                "cycles": report.total_cycles,
                "speedup": round(
                    weak_base[regime] * n_chips / report.total_cycles, 3
                ),
                "efficiency": round(
                    weak_base[regime] / report.total_cycles, 3
                ),
                "comm_frac": round(report.comm_fraction, 4),
                "imbalance": round(report.compute_imbalance, 3),
                "migrated_blocks": report.rebalance.migrated_blocks,
                "utilization": round(report.utilization, 4),
            })

    flavor = []
    if topology != "all-to-all":
        flavor.append(topology)
    if hetero:
        flavor.append("big/little chips")
    if overlap:
        flavor.append("overlap")
    if feedback:
        flavor.append("cycle feedback")
    if row_ceiling is not None:
        flavor.append(f"row ceiling {int(row_ceiling)}")
    if stragglers:
        flavor.append(f"{len(tuple(stragglers))} straggler(s)")
    table = ascii_table(
        ["mode", "regime", "chips", "nodes", "cycles", "speedup",
         "efficiency", "comm frac", "imbalance", "migrated", "util"],
        [[r["mode"], r["regime"], r["chips"], r["nodes"], r["cycles"],
          r["speedup"], r["efficiency"], r["comm_frac"], r["imbalance"],
          r["migrated_blocks"], r["utilization"]] for r in rows],
        title=(
            f"Sharded scaling: hub-heavy RMAT, {pes_per_chip} PEs/chip, "
            f"link {link_words_per_cycle} words/cycle, "
            f"{blocks_per_chip} blocks/chip (seed {seed})"
            + (f" [{', '.join(flavor)}]" if flavor else "")
        ),
    )
    text = table + "\n" + _verdict(rows)
    return rows, text


def _verdict(rows):
    """One-line summary comparing rebalanced vs naive-static sharding."""
    gains = []
    for row in rows:
        if row["regime"] != "rows+rebal" or row["chips"] == 1:
            continue
        static = next(
            r for r in rows
            if r["mode"] == row["mode"] and r["regime"] == "rows"
            and r["chips"] == row["chips"]
        )
        gains.append(static["cycles"] / row["cycles"])
    if not gains:
        return "single-chip sweep: no rebalancing comparison"
    return (
        "chip-level rebalancing vs static rows partition: "
        f"{min(gains):.2f}x-{max(gains):.2f}x fewer cycles across "
        f"multi-chip points (geo-mean "
        f"{(_prod(gains)) ** (1.0 / len(gains)):.2f}x)"
    )


def _prod(values):
    out = 1.0
    for v in values:
        out *= v
    return out


def compare_shard_topology(*, n_chips=4, n_nodes=8192, avg_degree=12,
                           pes_per_chip=128, aggregate_bandwidth=64.0,
                           hop_latency_cycles=8, blocks_per_chip=4,
                           f1=64, f2=32, f3=8, seed=7):
    """Topology x migration-signal sweep at equal aggregate bandwidth.

    Runs one internally-clustered hub-heavy RMAT graph (coarse
    ``blocks_per_chip`` so nnz-balanced shards can still hide slow
    intra-chip structure — the regime the static load signal cannot
    see) through every fabric kind and both rebalancing signals, with
    and without halo/compute overlap; returns ``(rows, text)``.

    Fairness: every fabric gets the same ``aggregate_bandwidth`` (words
    per cycle summed over its directed links), so a ring's per-link
    bandwidth is ``aggregate / (2 x chips)`` against the all-to-all's
    ``aggregate / chips`` — richer fabrics pay for their link count.
    The verdict lines record the two claims the benchmark asserts:
    cycle-feedback rebalancing is at least as good as the load signal
    on this graph, and the ring is strictly slower than all-to-all at
    equal aggregate bandwidth.
    """
    if aggregate_bandwidth <= 0:
        raise ConfigError(
            f"aggregate_bandwidth must be > 0, got {aggregate_bandwidth}"
        )
    if n_chips < 2:
        raise ConfigError(
            "the topology comparison needs at least 2 chips (a 1-chip "
            f"ring or mesh has no links), got {n_chips}"
        )
    chip = ArchConfig(n_pes=pes_per_chip, hop=1, remote_switching=True)
    dataset = _graph(n_nodes, avg_degree, seed, f1, f2, f3)

    rows = []
    for kind in TOPOLOGY_KINDS:
        n_links = make_topology(kind, n_chips).n_links
        link = aggregate_bandwidth / n_links
        fabric = make_topology(
            kind, n_chips, link_words_per_cycle=link,
            hop_latency_cycles=hop_latency_cycles,
        )
        for signal in ("load", "cycles"):
            for overlap in (False, True):
                cluster = ClusterConfig(
                    n_chips=n_chips, chip=chip, strategy="rows",
                    blocks_per_chip=blocks_per_chip,
                    rebalance_signal=signal,
                    link_words_per_cycle=link, topology=fabric,
                    overlap=overlap,
                )
                report = simulate_multichip_gcn(dataset, cluster)
                rows.append({
                    "topology": kind,
                    "signal": signal,
                    "overlap": overlap,
                    "link_words": round(link, 3),
                    "cycles": report.total_cycles,
                    "comm_frac": round(report.comm_fraction, 4),
                    "imbalance": round(report.compute_imbalance, 3),
                    "migrated_blocks": report.rebalance.migrated_blocks,
                    "utilization": round(report.utilization, 4),
                })

    table = ascii_table(
        ["topology", "signal", "overlap", "link w/cyc", "cycles",
         "comm frac", "imbalance", "migrated", "util"],
        [[r["topology"], r["signal"], "on" if r["overlap"] else "off",
          r["link_words"], r["cycles"], r["comm_frac"], r["imbalance"],
          r["migrated_blocks"], r["utilization"]] for r in rows],
        title=(
            f"Topology/signal sweep: {n_chips} chips, hub-heavy RMAT "
            f"{n_nodes} nodes, aggregate {aggregate_bandwidth} "
            f"words/cycle, hop latency {hop_latency_cycles} "
            f"(seed {seed})"
        ),
    )
    text = table + "\n" + "\n".join(_topology_verdicts(rows))
    return rows, text


def _topology_verdicts(rows):
    """The claim lines under the topology table."""
    by_cell = {
        (r["topology"], r["signal"], r["overlap"]): r["cycles"] for r in rows
    }
    verdicts = []
    fb_gains = [
        by_cell[(t, "load", ov)] / by_cell[(t, "cycles", ov)]
        for t in TOPOLOGY_KINDS for ov in (False, True)
    ]
    verdicts.append(
        "cycle-feedback vs load-signal rebalancing: "
        f"{min(fb_gains):.2f}x-{max(fb_gains):.2f}x fewer cycles "
        "(measured imbalance sees what block loads cannot)"
    )
    ring_costs = [
        by_cell[("ring", s, ov)] / by_cell[("all-to-all", s, ov)]
        for s in ("load", "cycles") for ov in (False, True)
    ]
    verdicts.append(
        "ring vs all-to-all at equal aggregate bandwidth: "
        f"{min(ring_costs):.2f}x-{max(ring_costs):.2f}x more cycles "
        "(contended multi-hop routes)"
    )
    overlap_gains = [
        by_cell[(t, s, False)] / by_cell[(t, s, True)]
        for t in TOPOLOGY_KINDS for s in ("load", "cycles")
    ]
    verdicts.append(
        "halo/compute overlap vs serialized transfer: "
        f"{min(overlap_gains):.2f}x-{max(overlap_gains):.2f}x fewer "
        "cycles (double-buffered halos hide behind compute)"
    )
    return verdicts
