"""Plain-text table rendering for benchmark output.

The benches print the regenerated tables in a layout close to the
paper's, using only ASCII so they render identically everywhere.
"""

from __future__ import annotations

from repro.errors import ConfigError


def ascii_table(headers, rows, *, title=None):
    """Render ``rows`` (sequences) under ``headers`` as an ASCII table."""
    headers = [str(h) for h in headers]
    str_rows = [[_cell(value) for value in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(_format_row(headers, widths))
    lines.append(sep)
    for row in str_rows:
        lines.append(_format_row(row, widths))
    lines.append(sep)
    return "\n".join(lines)


def format_quantity(value):
    """Human-scale formatting: 1.33M, 257G, 62.3K — like the paper's cells."""
    if value is None:
        return "-"
    value = float(value)
    for magnitude, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= magnitude:
            return f"{value / magnitude:.3g}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.3g}"


def _cell(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _format_row(cells, widths):
    padded = [f" {cell:<{width}} " for cell, width in zip(cells, widths)]
    return f"|{'|'.join(padded)}|"
