"""Wall-clock scaling of the parallel backend (``parallel-bench``).

Runs the same sharded scaling sweep (:func:`~repro.analysis.shardscale.
compare_shard_scaling` — the workload behind ``repro shard-bench``)
once per worker count and reports host wall time, speedup over the
sequential oracle, and the bit-identity verdict: every modeled number
the sweep emits (cycles, speedups, efficiencies, comm fractions,
migrated blocks, utilizations) must be *exactly equal* across worker
counts — the :mod:`repro.parallel` backend's contract is that worker
count is invisible to the model.

Speedup here is host physics, not model output: it depends on how many
CPU cores the machine actually has, so the artifact records
``host_cpus`` alongside every row. On a single-core host every worker
count collapses to ~1x (the pool just adds fork/IPC overhead) while
identity still holds — which is why the benchmark suite asserts
identity unconditionally but speedup only on hosts with enough cores.
"""

from __future__ import annotations

import os
import time

from repro.analysis.report import ascii_table
from repro.errors import ConfigError


def host_cpu_count():
    """CPUs usable by this process (affinity-aware where available)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def compare_parallel_scaling(*, worker_counts=(1, 2, 4), chip_counts=(4,),
                             n_nodes=4096, weak_nodes_per_chip=1024,
                             pes_per_chip=128, blocks_per_chip=8, seed=7,
                             repeats=1):
    """Time the shard sweep at each worker count; returns ``(rows, text)``.

    The ``workers=1`` run is the sequential oracle: its rows are the
    reference every parallel run's rows are compared against, field by
    field. ``repeats`` takes the best wall time of that many runs per
    worker count (the modeled rows are identical across repeats by
    determinism, so repeating only stabilizes the wall-clock figure).
    """
    from repro.analysis.shardscale import compare_shard_scaling

    worker_counts = tuple(int(w) for w in worker_counts)
    if not worker_counts or min(worker_counts) < 1:
        raise ConfigError(
            f"worker_counts must be positive, got {worker_counts}"
        )
    if 1 not in worker_counts:
        worker_counts = (1,) + worker_counts
    worker_counts = tuple(sorted(set(worker_counts)))
    repeats = int(repeats)
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    cpus = host_cpu_count()

    def sweep(workers):
        best_wall = None
        rows = None
        for _ in range(repeats):
            started = time.perf_counter()
            out_rows, _text = compare_shard_scaling(
                chip_counts=chip_counts, n_nodes=n_nodes,
                weak_nodes_per_chip=weak_nodes_per_chip,
                pes_per_chip=pes_per_chip, blocks_per_chip=blocks_per_chip,
                seed=seed, workers=workers,
            )
            wall = time.perf_counter() - started
            if best_wall is None or wall < best_wall:
                best_wall = wall
            rows = out_rows
        return rows, best_wall

    oracle_rows, oracle_wall = sweep(1)
    rows = [{
        "workers": 1,
        "host_cpus": cpus,
        "wall_s": round(oracle_wall, 4),
        "speedup": 1.0,
        "identical": "oracle",
    }]
    for workers in worker_counts:
        if workers == 1:
            continue
        par_rows, wall = sweep(workers)
        rows.append({
            "workers": workers,
            "host_cpus": cpus,
            "wall_s": round(wall, 4),
            "speedup": round(oracle_wall / wall, 3) if wall else float("inf"),
            "identical": "yes" if par_rows == oracle_rows else "MISMATCH",
        })

    identical = all(r["identical"] in ("oracle", "yes") for r in rows)
    table = ascii_table(
        ["workers", "host CPUs", "wall (s)", "speedup", "bit-identical"],
        [[r["workers"], r["host_cpus"], r["wall_s"], r["speedup"],
          r["identical"]] for r in rows],
        title=(
            f"Parallel-backend scaling: shard sweep over chips "
            f"{tuple(chip_counts)}, {n_nodes} nodes, {pes_per_chip} "
            f"PEs/chip (seed {seed}, best of {repeats})"
        ),
    )
    best = max(rows, key=lambda r: r["speedup"])
    verdict = (
        "bit-identical to the sequential oracle at every worker count"
        if identical else "RESULT MISMATCH (bug!)"
    )
    text = (
        f"{table}\n"
        f"best wall-clock speedup {best['speedup']:.2f}x at "
        f"{best['workers']} workers on a {cpus}-CPU host; "
        f"modeled results are {verdict}"
    )
    return rows, text
