"""Cache-affinity routing sweep: warm-aware vs cache-blind dispatch.

At millions-of-users scale the autotune warm-up is the dominant
repeated serving cost (the cache benchmarks measure ~8.5x cached vs
cold simulation throughput), and in a realistically *partitioned*
deployment each instance owns its own :class:`~repro.serve.AutotuneCache`
shard — a repeat graph landing on a cold instance pays the tuner again
even though a warm instance idles next to it. This sweep drives
identical Zipf repeat-heavy streaming traces
(:func:`~repro.serve.traffic.streaming_traffic` with ``repeat_alpha``)
through the same partitioned pool twice per arrival rate:

* ``blind`` — ``cache_mode="partitioned"``: per-worker shards, but the
  historical cache-oblivious dispatch (earliest-free, lowest index);
* ``affinity`` — ``cache_mode="affinity"``: dispatch scores instances
  by warm-entry coverage, waits for a warm instance only when provably
  deadline-safe, and a sliding-window demand histogram replicates hot
  families' entries to the least-loaded shards.

Both modes run the same modeled hardware: the sweep asserts per-request
cycle identity (a cache can change wall time, never a cycle), and the
verdict line asserts the headline claim — at *every* swept rate,
affinity routing improves the aggregate hit rate **and** wall-clock
serving throughput, with SLO attainment no worse. Rows record
per-worker hit rates and replication counts so the placement quality is
inspectable, not inferred.
"""

from __future__ import annotations

from repro.analysis.report import ascii_table
from repro.errors import ConfigError
from repro.serve.service import serve_requests
from repro.serve.traffic import streaming_traffic


def compare_cache_affinity(*, n_requests=96,
                           rates=(2000.0, 4000.0, 8000.0),
                           n_workers=4, family_size=12, repeat_alpha=1.2,
                           n_nodes=4096, n_pes=96, max_batch=4,
                           slo_ms=50.0, worker_cache_entries=None,
                           replicate_threshold=3.0, replicate_k=2,
                           seed=7, graph_kwargs=None):
    """Run the cache-affinity routing sweep; returns ``(rows, text)``.

    One Zipf repeat-heavy streaming trace per arrival rate in ``rates``
    (requests/second; ``family_size`` graph families with popularity
    exponent ``repeat_alpha``), served twice on an ``n_workers``
    partitioned pool: cache-blind dispatch vs affinity routing with
    demand-driven replication (``replicate_threshold`` windowed
    requests, ``replicate_k`` target shards). Two rows per rate report
    aggregate and per-worker hit rates, placement hit rate, replication
    count, wall-clock throughput and tail latency / SLO attainment.
    """
    # Deferred: repro.serve.bench itself imports the analysis package
    # (for ascii_table), so a module-level import here would be cyclic.
    from repro.serve.bench import DEFAULT_GRAPH_KWARGS, default_serving_config

    if not rates:
        raise ConfigError("rates must be a non-empty sequence")
    rates = tuple(float(rate) for rate in rates)
    if any(rate <= 0 for rate in rates):
        raise ConfigError(f"rates must be > 0, got {rates}")
    configs = (default_serving_config(n_pes),)
    if graph_kwargs is None:
        graph_kwargs = dict(DEFAULT_GRAPH_KWARGS)

    modes = (
        ("blind", {"cache_mode": "partitioned"}),
        ("affinity", {"cache_mode": "affinity",
                      "replicate_threshold": replicate_threshold,
                      "replicate_k": replicate_k}),
    )
    rows = []
    for rate in rates:
        requests = streaming_traffic(
            n_requests, arrival_rate=rate, slo_ms=slo_ms,
            n_nodes=n_nodes, seed=seed, configs=configs,
            repeat_alpha=repeat_alpha, family_size=family_size,
            graph_kwargs=graph_kwargs,
        )
        # Materialize the family pool up front so dataset construction
        # cost never pollutes the wall-clock comparison.
        for request in requests:
            request.resolve_graph()
        cycles = {}
        for mode, kwargs in modes:
            # serve_requests builds a fresh service (and fresh shards)
            # per call, so both modes start cold on this trace.
            outcome = serve_requests(
                requests, n_workers=n_workers, cache=True,
                max_batch=max_batch,
                worker_cache_entries=worker_cache_entries,
                **kwargs,
            )
            cycles[mode] = [r.total_cycles for r in outcome.results]
            stats, latency = outcome.stats, outcome.latency
            attainment = latency.slo_attainment
            placement = stats.placement_hit_rate
            row = {
                "rate": rate,
                "mode": mode,
                "hit_rate": round(stats.hit_rate, 4),
                "placement_hit_rate": (
                    "" if placement is None else round(placement, 4)
                ),
                "n_replications": stats.n_replications,
                "wall_s": round(stats.wall_seconds, 4),
                "req_per_s": round(stats.requests_per_second, 2),
                "p99_ms": round(latency.p99_ms, 4),
                "slo_attainment": (
                    "" if attainment is None else round(attainment, 4)
                ),
            }
            for worker in outcome.workers:
                row[f"w{worker.index}_hit_rate"] = round(
                    worker.cache.stats.hit_rate, 4
                )
            rows.append(row)
        if cycles["blind"] != cycles["affinity"]:
            raise AssertionError(
                f"cycle mismatch between dispatch modes at rate {rate}: "
                "the cache may change wall time, never a modeled cycle"
            )

    worker_cols = [f"w{i}_hit_rate" for i in range(n_workers)]
    table = ascii_table(
        ["rate", "mode", "hit_rate", "placement", "repl", "wall (s)",
         "req/s", "p99 (ms)", "SLO att."] + [f"w{i}" for i in
                                             range(n_workers)],
        [[r["rate"], r["mode"], r["hit_rate"], r["placement_hit_rate"],
          r["n_replications"], r["wall_s"], r["req_per_s"], r["p99_ms"],
          r["slo_attainment"]] + [r[c] for c in worker_cols]
         for r in rows],
        title=(
            f"Cache-affinity routing: {n_workers}-instance partitioned "
            f"pool, {n_requests} requests over {family_size} families "
            f"(Zipf alpha {repeat_alpha:g}, {n_nodes} nodes, {n_pes} "
            f"PEs), seed {seed}"
        ),
    )
    text = table + "\n" + _verdict(rows)
    return rows, text


def _verdict(rows):
    """The claim line under the affinity table."""
    failures = []
    deltas = []
    for blind, affinity in zip(rows[0::2], rows[1::2]):
        hit_gain = affinity["hit_rate"] > blind["hit_rate"]
        thr_gain = affinity["req_per_s"] > blind["req_per_s"]
        blind_att = blind["slo_attainment"]
        affinity_att = affinity["slo_attainment"]
        slo_ok = (blind_att == "" or affinity_att >= blind_att)
        if not (hit_gain and thr_gain and slo_ok):
            failures.append(blind["rate"])
        deltas.append(round(affinity["hit_rate"] - blind["hit_rate"], 4))
    if failures:
        return (
            "affinity routing FAILED to beat cache-blind dispatch at "
            f"rate(s) {failures}"
        )
    return (
        "affinity routing beats cache-blind dispatch at every swept "
        f"rate: higher hit rate (deltas {deltas}) and throughput, SLO "
        "attainment no worse"
    )
