"""Table 2: multiplication counts under the two computation orders.

For every dataset and layer, counts the multiplications of
``(A X) W`` versus ``A (X W)`` — the analysis that justifies the
paper's choice to compute ``X W`` first (Sec. 3.1).
"""

from __future__ import annotations

from repro.analysis.report import ascii_table, format_quantity
from repro.datasets.registry import load_dataset
from repro.datasets.specs import dataset_names
from repro.model.ordering import layer_ordering_ops


def table2_ordering(*, preset="scaled", seed=7, datasets=None):
    """Build the Table 2 rows; returns ``(rows, rendered_text)``.

    Rows carry per-layer and total op counts for both orders plus the
    ratio (how many times more work the rejected order performs).
    """
    if datasets is None:
        datasets = dataset_names()
    rows = []
    for name in datasets:
        ds = load_dataset(name, preset, seed=seed)
        f1, f2, f3 = ds.feature_dims
        layer1 = layer_ordering_ops(ds.adjacency, ds.x1_row_nnz, f1, f2)
        layer2 = layer_ordering_ops(ds.adjacency, ds.x2_row_nnz, f2, f3)
        rows.append(
            {
                "dataset": ds.name,
                "preset": preset,
                "l1_ax_w": layer1.ops_ax_w,
                "l1_a_xw": layer1.ops_a_xw,
                "l2_ax_w": layer2.ops_ax_w,
                "l2_a_xw": layer2.ops_a_xw,
                "total_ax_w": layer1.ops_ax_w + layer2.ops_ax_w,
                "total_a_xw": layer1.ops_a_xw + layer2.ops_a_xw,
                "ratio": (layer1.ops_ax_w + layer2.ops_ax_w)
                / max(layer1.ops_a_xw + layer2.ops_a_xw, 1),
            }
        )
    text = ascii_table(
        [
            "dataset", "L1 (AX)W", "L1 A(XW)", "L2 (AX)W", "L2 A(XW)",
            "ALL (AX)W", "ALL A(XW)", "ratio",
        ],
        [
            [
                r["dataset"],
                format_quantity(r["l1_ax_w"]),
                format_quantity(r["l1_a_xw"]),
                format_quantity(r["l2_ax_w"]),
                format_quantity(r["l2_a_xw"]),
                format_quantity(r["total_ax_w"]),
                format_quantity(r["total_a_xw"]),
                f"{r['ratio']:.1f}x",
            ]
            for r in rows
        ],
        title=f"Table 2 — operations by computation order ({preset} presets)",
    )
    return rows, text
