"""Chrome-trace / Perfetto JSON export of recorded event streams.

Maps :class:`~repro.obs.tracer.TraceEvent` lanes onto the Chrome trace
event format (the JSON Perfetto and ``chrome://tracing`` both load):
lanes group into processes (``worker*`` lanes under one "pool" pid,
``req/*`` lanes under "requests", ``sim/*`` under "sim", ``cluster/*``
under "cluster"), each lane becomes a tid, spans emit as complete
(``"ph": "X"``) events, instants as ``"i"`` and counters as ``"C"``.
Wall-clock profiling spans export under a separate "wall
(nondeterministic)" process so the deterministic simulated-clock lanes
are never polluted.

Also here: :func:`validate_chrome_trace` (the schema check the CI
trace-smoke job runs), :func:`round_timeline_rows` (the per-round
chip-utilization CSV rows) and :func:`render_round_heat`, which feeds
those rows through the existing :mod:`repro.analysis.heatmap` grading.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigError

_US = 1e6
"""Simulated seconds to Chrome-trace microseconds."""

_LANE_GROUPS = (
    ("worker", "pool"),
    ("req/", "requests"),
    ("sim/", "sim"),
    ("cluster/", "cluster"),
)


def lane_group(lane):
    """The process a lane belongs to (lanes group by prefix)."""
    for prefix, group in _LANE_GROUPS:
        if lane.startswith(prefix):
            return group
    return lane


def _lane_ids(events):
    """Deterministic (pid, tid) assignment for every lane seen."""
    lanes = sorted({event.lane for event in events})
    groups = sorted({lane_group(lane) for lane in lanes})
    pid_of_group = {group: i + 1 for i, group in enumerate(groups)}
    pid_of = {lane: pid_of_group[lane_group(lane)] for lane in lanes}
    tid_of = {lane: i + 1 for i, lane in enumerate(lanes)}
    return pid_of_group, pid_of, tid_of


def _json_arg(value):
    """Coerce one event arg into a JSON-stable value."""
    if isinstance(value, (list, tuple)):
        return [_json_arg(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, int):
        return int(value)
    return str(value)


def chrome_trace(events, *, wall_events=()):
    """The Chrome-trace JSON document for one recorded stream.

    Events are ordered by ``(ts, seq)`` — simulated time first, with
    the deterministic emission sequence breaking ties — so identical
    streams serialize identically. Returns the ``dict`` ready for
    ``json.dump``.
    """
    events = sorted(events, key=lambda e: (e.ts, e.seq))
    pid_of_group, pid_of, tid_of = _lane_ids(events)
    out = []
    for group, pid in sorted(pid_of_group.items(), key=lambda kv: kv[1]):
        out.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": group},
        })
    for lane, tid in sorted(tid_of.items(), key=lambda kv: kv[1]):
        out.append({
            "ph": "M", "name": "thread_name", "pid": pid_of[lane],
            "tid": tid, "args": {"name": lane},
        })
    wall_pid = len(pid_of_group) + 1
    if wall_events:
        out.append({
            "ph": "M", "name": "process_name", "pid": wall_pid,
            "tid": 0, "args": {"name": "wall (nondeterministic)"},
        })
    for event in events:
        record = {
            "name": event.name,
            "pid": pid_of[event.lane],
            "tid": tid_of[event.lane],
            "ts": event.ts * _US,
            "args": {k: _json_arg(v) for k, v in event.args.items()},
        }
        if event.kind == "span":
            record["ph"] = "X"
            record["dur"] = event.dur * _US
        elif event.kind == "counter":
            record["ph"] = "C"
        else:
            record["ph"] = "i"
            record["s"] = "t"
        out.append(record)
    for event in sorted(wall_events, key=lambda e: (e.ts, e.seq)):
        out.append({
            "name": event.name, "ph": "X", "pid": wall_pid, "tid": 1,
            "ts": event.ts * _US, "dur": (event.dur or 0.0) * _US,
            "args": {k: _json_arg(v) for k, v in event.args.items()},
        })
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(path, events, *, wall_events=()):
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    doc = chrome_trace(events, wall_events=wall_events)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return path


def validate_chrome_trace(doc):
    """Schema-check one Chrome-trace document; returns problem strings.

    Checks the contract the smoke job relies on: the required top-level
    keys exist, every event carries ``ph``/``name``/``ts``, complete
    (``X``) events have non-negative ``dur``, non-metadata timestamps
    are monotone non-decreasing per process, and any explicit
    begin/end (``B``/``E``) pairs balance per (pid, tid). An empty list
    means the document is valid.
    """
    problems = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document must be a dict with a 'traceEvents' list"]
    records = doc["traceEvents"]
    if not isinstance(records, list):
        return ["'traceEvents' must be a list"]
    last_ts = {}
    open_spans = {}
    for i, record in enumerate(records):
        for key in ("ph", "name"):
            if key not in record:
                problems.append(f"event {i} missing required key {key!r}")
        ph = record.get("ph")
        if ph == "M":
            continue
        if "ts" not in record:
            problems.append(f"event {i} missing required key 'ts'")
            continue
        pid = record.get("pid")
        ts = record["ts"]
        if pid in last_ts and ts < last_ts[pid]:
            problems.append(
                f"event {i} timestamp {ts} not monotone for pid {pid} "
                f"(previous {last_ts[pid]})"
            )
        last_ts[pid] = ts
        if ph == "X":
            dur = record.get("dur")
            if dur is None or dur < 0:
                problems.append(
                    f"event {i} ('X') needs a non-negative dur, got {dur}"
                )
        elif ph == "B":
            open_spans.setdefault((pid, record.get("tid")), []).append(
                record.get("name")
            )
        elif ph == "E":
            stack = open_spans.get((pid, record.get("tid")), [])
            if not stack:
                problems.append(
                    f"event {i} ('E') closes nothing on "
                    f"pid/tid {pid}/{record.get('tid')}"
                )
            else:
                stack.pop()
    for (pid, tid), stack in sorted(open_spans.items(),
                                    key=lambda kv: str(kv[0])):
        if stack:
            problems.append(
                f"unclosed 'B' span(s) {stack} on pid/tid {pid}/{tid}"
            )
    return problems


def round_timeline_rows(events):
    """Per-round per-chip utilization rows from the cluster counters.

    One dict per (counter event, chip series): the sharded jobs'
    ``cluster.chip_util`` counters (one per composed layer) and the
    feedback rebalancer's ``feedback.cycles`` counters (one per
    measured round). Ready for
    :func:`~repro.analysis.export.rows_to_csv`.
    """
    rows = []
    for event in sorted(events, key=lambda e: (e.ts, e.seq)):
        if event.kind != "counter":
            continue
        if event.name not in ("cluster.chip_util", "feedback.cycles"):
            continue
        series = {
            k: v for k, v in event.args.items()
            if isinstance(v, (int, float)) and k.startswith("chip")
        }
        index = event.args.get("layer", event.args.get("round", ""))
        for chip, value in sorted(series.items()):
            rows.append({
                "signal": event.name,
                "lane": event.lane,
                "index": index,
                "chip": chip,
                "value": round(float(value), 6),
                "ts_s": round(event.ts, 9),
            })
    return rows


def render_round_heat(events, *, max_strips=12):
    """ASCII heat strips of per-layer chip utilization per sharded job.

    Feeds the ``cluster.chip_util`` counters through the existing
    :func:`~repro.analysis.heatmap.heat_strip` grading — the Fig. 10
    view, per chip instead of per PE. Returns the rendered text, or
    ``""`` when no cluster counters were recorded.
    """
    from repro.analysis.heatmap import _GRADES, heat_strip

    strips = []
    for event in sorted(events, key=lambda e: (e.ts, e.seq)):
        if event.kind != "counter" or event.name != "cluster.chip_util":
            continue
        series = sorted(
            (k, v) for k, v in event.args.items()
            if isinstance(v, (int, float)) and k.startswith("chip")
        )
        if not series:
            continue
        loads = [value for _key, value in series]
        label = f"{event.lane} layer {event.args.get('layer', '?')}"
        # Utilizations are busy fractions in [0, 1]; grade against the
        # ideal of 0.5 so a fully-busy chip renders as '@' (2x ideal)
        # and an idle one as ' ' — the full grade range stays usable.
        strips.append((label, heat_strip(loads, ideal=0.5)))
    if not strips:
        return ""
    shown = strips[:max_strips]
    width = max(len(label) for label, _ in shown)
    lines = [f"{label:<{width}}  |{strip}|" for label, strip in shown]
    if len(strips) > len(shown):
        lines.append(f"... {len(strips) - len(shown)} more layer rows")
    lines.append(
        f"{'legend':<{width}}  |{_GRADES}| = 0% .. 100% chip busy"
    )
    return "\n".join(lines)


def check_span_tree(events):
    """Span-tree well-formedness problems of one recorded stream.

    Invariants the test suite pins: per lane, spans either nest or are
    disjoint (never partially overlap), and every ``request.arrival``
    instant is closed by a matching ``request.complete`` or
    ``request.shed``. Returns problem strings (empty = well-formed).
    """
    problems = []
    by_lane = {}
    for event in events:
        if event.kind == "span":
            by_lane.setdefault(event.lane, []).append(event)
    eps = 1e-12
    for lane in sorted(by_lane):
        spans = sorted(by_lane[lane], key=lambda e: (e.ts, -e.dur, e.seq))
        stack = []
        for span in spans:
            while stack and span.ts >= stack[-1].end - eps:
                stack.pop()
            if stack and span.end > stack[-1].end + eps:
                problems.append(
                    f"lane {lane!r}: span {span.name!r} "
                    f"[{span.ts}, {span.end}] partially overlaps "
                    f"{stack[-1].name!r} "
                    f"[{stack[-1].ts}, {stack[-1].end}]"
                )
            stack.append(span)
    arrivals = set()
    closed = set()
    for event in events:
        seq = event.args.get("seq")
        if event.name == "request.arrival":
            arrivals.add(seq)
        elif event.name in ("request.complete", "request.shed"):
            closed.add(seq)
    for seq in sorted(arrivals - closed, key=str):
        problems.append(f"request span for seq {seq} never closes")
    return problems


def load_chrome_trace(path):
    """Read a Chrome-trace JSON file back (for validation tooling)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ConfigError(f"{path} does not hold a Chrome-trace dict")
    return doc
