"""Structured event tracing on the simulated clock.

The serving stack models time explicitly: every scheduling decision —
batch cuts, gang claims, preemptions, rebalancing rounds — happens at a
definite instant of *simulated* time, yet until now only final
aggregates (:class:`~repro.serve.service.ServiceStats`,
:class:`~repro.cluster.multichip.ClusterReport`) survived a run. This
module adds the missing middle layer: a :class:`Tracer` protocol with a
zero-overhead :class:`NullTracer` default (the golden pins never see a
single extra branch beyond ``if tracer.enabled``) and a
:class:`RecordingTracer` that collects typed :class:`TraceEvent`
records as the simulation runs.

Two clocks, one rule (same as the service): every recorded ``ts`` is
*simulated* seconds. Wall-clock profiling goes through
:meth:`RecordingTracer.wall` into a separate ``wall_events`` list that
is explicitly nondeterministic — it never participates in the
``workers=N`` bit-identity contract and exports under its own process
lane.

Determinism contract: because control flow depends only on the
simulated clock, the event stream a :class:`RecordingTracer` collects
is bit-identical for any host ``workers`` count. The one wrinkle is the
parallel backend's presimulate-then-replay protocol
(:mod:`repro.parallel`): cold tuner events are recorded inside the
worker process (anchored at 0) and :meth:`RecordingTracer.splice`\\ d
into the parent's stream at replay time, at exactly the point the
sequential path would have emitted them — between the cache lookup and
the store. Parallel-only cache peeks are suppressed
(``peek(..., trace=False)``) so they leave no trace either.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

KIND_SPAN = "span"
KIND_INSTANT = "instant"
KIND_COUNTER = "counter"


@dataclass
class TraceEvent:
    """One typed trace record on the simulated clock.

    ``kind`` is ``"span"`` (has ``dur``), ``"instant"`` or
    ``"counter"`` (``args`` carries the sampled values). ``lane`` names
    the timeline the event lives on (``"worker0"``, ``"req/17"``,
    ``"cache"``, ``"sim/<job>"``, ``"cluster/<job>"``); the exporter
    maps lanes onto Chrome-trace pid/tid pairs. Events are mutable on
    purpose: a boundary preemption patches the affected spans the same
    way the service patches its recorded results.
    """

    name: str
    lane: str
    ts: float
    kind: str = KIND_INSTANT
    dur: float = None
    args: dict = field(default_factory=dict)
    seq: int = 0

    @property
    def end(self):
        """Span end time (``ts`` for instants/counters)."""
        if self.dur is None:
            return self.ts
        return self.ts + self.dur


class NullTracer:
    """The zero-overhead default: every hook is a no-op.

    ``enabled`` is False, so instrumented code paths guard any
    argument construction behind one attribute check and the golden
    pins never pay for tracing they did not ask for.
    """

    enabled = False
    now = 0.0

    def set_time(self, t):
        return None

    def instant(self, name, **kwargs):
        return None

    def span(self, name, **kwargs):
        return None

    def counter(self, name, **kwargs):
        return None

    def splice(self, events, **kwargs):
        return None

    def wall(self, name, **kwargs):
        return None


NULL_TRACER = NullTracer()
"""The shared no-op tracer instrumented modules default to."""


class RecordingTracer:
    """Collects :class:`TraceEvent` records on the simulated clock.

    ``now`` is the current simulated anchor — instrumented layers that
    know only cycle *offsets* (the autotuner, the cluster composer)
    emit relative to it via ``offset=``, while the service pins it with
    :meth:`set_time` before each dispatch. ``metrics`` optionally
    receives every event (see
    :class:`~repro.obs.metrics.MetricsRegistry`), making the registry a
    fold over the same stream the exporters consume.
    """

    enabled = True

    def __init__(self, *, metrics=None):
        self.events = []
        self.wall_events = []
        self.now = 0.0
        self.metrics = metrics
        self._seq = 0
        self._wall_origin = time.perf_counter()

    def set_time(self, t):
        """Pin the simulated-clock anchor for ``offset=`` emissions."""
        self.now = float(t)

    def _emit(self, event):
        event.seq = self._seq
        self._seq += 1
        self.events.append(event)
        if self.metrics is not None:
            self.metrics.record_event(event)
        return event

    def instant(self, name, *, lane="service", ts=None, offset=0.0,
                args=None):
        """Record a point event at ``ts`` (default ``now + offset``)."""
        when = self.now + offset if ts is None else float(ts)
        return self._emit(TraceEvent(
            name=name, lane=lane, ts=when, kind=KIND_INSTANT,
            args=dict(args or {}),
        ))

    def span(self, name, *, lane, start, end, args=None):
        """Record a closed span ``[start, end]``; returns the mutable
        event so callers can patch it (boundary preemption trims and
        re-extends spans exactly as it patches recorded results)."""
        start = float(start)
        end = float(end)
        if end < start:
            raise ConfigError(
                f"span {name!r} must not end before it starts "
                f"({end} < {start})"
            )
        return self._emit(TraceEvent(
            name=name, lane=lane, ts=start, kind=KIND_SPAN,
            dur=end - start, args=dict(args or {}),
        ))

    def counter(self, name, *, lane="counters", ts=None, offset=0.0,
                values=None):
        """Record sampled counter values at ``ts`` (default ``now +
        offset``); ``values`` maps series name to number."""
        when = self.now + offset if ts is None else float(ts)
        return self._emit(TraceEvent(
            name=name, lane=lane, ts=when, kind=KIND_COUNTER,
            args=dict(values or {}),
        ))

    def splice(self, events, *, anchor=None):
        """Re-emit worker-recorded events into this stream.

        The parallel backend's workers record cold-run events anchored
        at simulated time 0; the parent splices them at replay time
        with ``ts += anchor`` (default ``now``) and fresh sequence
        numbers, reproducing the exact stream the sequential path
        emits at the same point.
        """
        base = self.now if anchor is None else float(anchor)
        for event in events:
            self._emit(replace(
                event, ts=event.ts + base, args=dict(event.args),
            ))

    def wall(self, name, *, lane="wall", seconds=0.0, args=None):
        """Record a wall-clock profiling span (nondeterministic lane).

        Kept out of :attr:`events` entirely: wall timings vary run to
        run and across ``workers`` counts, so they live in
        :attr:`wall_events` and export under an explicitly
        nondeterministic process.
        """
        now = time.perf_counter() - self._wall_origin
        event = TraceEvent(
            name=name, lane=lane, ts=max(now - float(seconds), 0.0),
            kind=KIND_SPAN, dur=float(seconds), args=dict(args or {}),
            seq=len(self.wall_events),
        )
        self.wall_events.append(event)
        return event


def config_label(config):
    """A short deterministic label for an ArchConfig in event args."""
    return (
        f"{getattr(config, 'n_pes', '?')}pe"
        f"@{getattr(config, 'frequency_mhz', 0):g}MHz"
    )


def event_key(event):
    """The comparison tuple of one event (bit-identity checks)."""
    return (
        event.name, event.lane, event.ts, event.kind, event.dur,
        tuple(sorted(event.args.items())), event.seq,
    )


def stream_fingerprint(events):
    """Tuple-of-tuples fingerprint of a whole event stream."""
    return tuple(event_key(event) for event in events)
