"""Unified tracing & metrics for the serving / cluster / accel stack.

One cross-cutting observability layer over all four execution layers:

* :mod:`repro.obs.tracer`       — the :class:`Tracer` protocol:
  zero-overhead :class:`NullTracer` default (golden pins untouched)
  and :class:`RecordingTracer`, which collects typed
  :class:`TraceEvent` records (spans / instants / counters) on the
  *simulated* clock — per-request span trees from the service and
  scheduler, per-round per-chip events from the multi-chip rebalancer,
  per-round Eq. 5 autotuner events from the cycle model, and cache
  hit/miss/evict events;
* :mod:`repro.obs.metrics`      — :class:`MetricsRegistry`: counters,
  gauges and deterministic fixed-bucket histograms, fed by the same
  stream;
* :mod:`repro.obs.trace_export` — Chrome-trace / Perfetto JSON export
  (worker lanes as pid/tids, spans as ``X`` events, counters as ``C``
  events), the per-round chip-utilization CSV rows, schema validation
  for CI, and span-tree well-formedness checks;
* :mod:`repro.obs.views`        — ``ServiceStats`` / ``LatencyStats``
  rebuilt purely from the event stream (pinned equal to the
  hand-folded originals by the test suite).

Determinism contract: every event timestamp is simulated time, and the
stream a ``RecordingTracer`` collects is bit-identical for any host
``workers`` count — the parallel backend splices worker-recorded event
batches into the parent stream in replay order. Wall-clock profiling
spans live in a separate, explicitly nondeterministic lane.

Quickstart::

    from repro.obs import RecordingTracer, write_chrome_trace
    from repro.serve import serve_requests, streaming_traffic

    tracer = RecordingTracer()
    serve_requests(streaming_traffic(32, arrival_rate=200.0, seed=7),
                   tracer=tracer)
    write_chrome_trace("trace.json", tracer.events,
                       wall_events=tracer.wall_events)
"""

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    config_label,
    event_key,
    stream_fingerprint,
)
from repro.obs.trace_export import (
    check_span_tree,
    chrome_trace,
    load_chrome_trace,
    render_round_heat,
    round_timeline_rows,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.views import (
    latency_stats_view,
    metrics_view,
    service_stats_view,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "TraceEvent",
    "config_label",
    "event_key",
    "stream_fingerprint",
    "check_span_tree",
    "chrome_trace",
    "load_chrome_trace",
    "render_round_heat",
    "round_timeline_rows",
    "validate_chrome_trace",
    "write_chrome_trace",
    "latency_stats_view",
    "metrics_view",
    "service_stats_view",
]
