"""Stats dataclasses as views over the recorded event stream.

The tentpole claim of the observability layer: the aggregates the
service hand-folds (:class:`~repro.serve.service.ServiceStats`,
:class:`~repro.serve.service.LatencyStats`) are derivable from the
typed event stream alone. These folds rebuild both dataclasses from a
:class:`~repro.obs.tracer.RecordingTracer`'s events, and the test suite
pins them equal to the originals — so the stream is the single source
of truth, with the legacy counters as one (verified) view of it.

``wall_seconds`` is the one field that cannot come from simulated-clock
events (it is wall time by definition); the view takes it as an
argument.
"""

from __future__ import annotations


def _completions(events):
    """The ``request.complete`` events in request-sequence order.

    The service sorts its results by arrival sequence before folding,
    and float sums depend on order — folding in the same order keeps
    the views bit-equal to the hand-folded stats, not just close.
    """
    done = [e for e in events if e.name == "request.complete"]
    done.sort(key=lambda e: e.args.get("seq", 0))
    return done


def service_stats_view(events, *, wall_seconds=0.0):
    """Rebuild :class:`~repro.serve.service.ServiceStats` from events."""
    from repro.serve.service import ServiceStats

    done = _completions(events)
    shed = [e for e in events if e.name == "request.shed"]
    # One "batch" span per dispatched batch; sharded jobs emit one
    # member span per gang instance, so count distinct jobs (each
    # sharded job is one batch in the service's accounting).
    sharded_seqs = {
        e.args.get("seq") for e in events
        if e.kind == "span" and e.name.startswith("sharded")
        and not e.name.endswith(".resume")
    }
    batches = sum(
        1 for e in events if e.kind == "span" and e.name == "batch"
    ) + len(sharded_seqs)
    hits = sum(1 for e in done if e.args.get("cache_hit"))
    utils = [e.args["utilization"] for e in done]
    routes = [e for e in events if e.name == "cache.route"]
    return ServiceStats(
        n_requests=len(done) + len(shed),
        n_batches=batches,
        cache_hits=hits,
        cache_misses=len(done) - hits,
        wall_seconds=wall_seconds,
        total_cycles=sum(e.args["cycles"] for e in done),
        mean_utilization=sum(utils) / len(utils) if utils else 0.0,
        makespan_seconds=max((e.args["finish"] for e in done),
                             default=0.0),
        n_shed=len(shed),
        n_sharded=sum(1 for e in done if e.args.get("n_shards", 1) > 1),
        n_backfilled=sum(1 for e in events if e.name == "backfill"),
        n_preemptions=sum(1 for e in events if e.name == "preempt"),
        n_evictions=sum(1 for e in events if e.name == "cache.evict"),
        n_routed=len(routes),
        n_placement_hits=sum(1 for e in routes if e.args.get("warm")),
        n_replications=sum(
            1 for e in events if e.name == "cache.replicate"
        ),
    )


def latency_stats_view(events):
    """Rebuild :class:`~repro.serve.service.LatencyStats` from events."""
    from repro.serve.service import LatencyStats, percentile

    done = _completions(events)
    latencies = [e.args["e2e_ms"] for e in done]
    queues = [e.args["queue_ms"] for e in done]
    with_slo = [e for e in done if e.args.get("slo_ms") is not None]
    return LatencyStats(
        n=len(done),
        p50_ms=percentile(latencies, 50),
        p95_ms=percentile(latencies, 95),
        p99_ms=percentile(latencies, 99),
        mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        max_ms=max(latencies) if latencies else 0.0,
        mean_queue_ms=sum(queues) / len(queues) if queues else 0.0,
        slo_requests=len(with_slo),
        slo_met=sum(1 for e in with_slo if e.args.get("slo_met")),
        p999_ms=percentile(latencies, 99.9),
    )


def metrics_view(events):
    """Fold a recorded stream into a fresh
    :class:`~repro.obs.metrics.MetricsRegistry` (counters per event
    name, gauges from counter samples, a latency histogram from the
    completions)."""
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    for event in events:
        registry.record_event(event)
    for event in _completions(events):
        registry.observe("latency_ms", event.args["e2e_ms"])
        registry.observe("queue_ms", event.args["queue_ms"])
    return registry
