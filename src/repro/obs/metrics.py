"""Counters, gauges and deterministic fixed-bucket histograms.

The :class:`MetricsRegistry` is the aggregate side of the observability
layer: where :class:`~repro.obs.tracer.RecordingTracer` keeps the full
typed event stream, the registry folds it into monotonically updated
counters, last-value gauges and fixed-bucket histograms. Buckets are
fixed at observation time (never rebalanced), so two runs that observe
the same values produce byte-identical snapshots — the same determinism
contract the event stream itself carries.

The existing stats dataclasses are *views* over this one stream:
:func:`~repro.obs.views.service_stats_view` and
:func:`~repro.obs.views.latency_stats_view` rebuild
``ServiceStats``/``LatencyStats`` from recorded events alone, and the
test suite pins them equal to the hand-folded originals.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import ConfigError

DEFAULT_LATENCY_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0,
)
"""Default latency histogram bounds (ms); the last bucket is +inf."""


class Histogram:
    """A fixed-bucket histogram with deterministic bucket assignment.

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    implicit +inf bucket catches the overflow. A value lands in the
    first bucket whose bound is >= the value (``bisect_left``), so
    equal inputs always land identically — no adaptive resizing.
    """

    def __init__(self, bounds):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ConfigError("histogram bounds must be non-empty")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigError(
                f"histogram bounds must be strictly increasing, "
                f"got {bounds}"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.n = 0
        self.total = 0.0

    def observe(self, value):
        """Count one observation."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.n += 1
        self.total += value

    @property
    def mean(self):
        """Mean of all observed values (0.0 when empty)."""
        return self.total / self.n if self.n else 0.0

    def snapshot(self):
        """``{"le:<bound>": count, ..., "le:inf": count}`` plus totals."""
        out = {
            f"le:{bound:g}": count
            for bound, count in zip(self.bounds, self.counts)
        }
        out["le:inf"] = self.counts[-1]
        out["count"] = self.n
        out["sum"] = self.total
        return out


class MetricsRegistry:
    """Named counters, gauges and histograms with a flat snapshot.

    Counters only go up (:meth:`inc`), gauges hold the last set value,
    histograms are created on first :meth:`observe` with the given
    (fixed) bounds. :meth:`record_event` is the
    :class:`~repro.obs.tracer.RecordingTracer` hook: every traced event
    bumps an ``events.<kind>.<name>`` counter and counter-kind events
    update same-named gauges, so the registry is always a pure fold of
    the event stream.
    """

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def inc(self, name, by=1):
        """Add ``by`` (>= 0) to counter ``name``."""
        if by < 0:
            raise ConfigError(
                f"counter {name!r} cannot decrease (by={by})"
            )
        self.counters[name] = self.counters.get(name, 0) + by

    def set_gauge(self, name, value):
        """Set gauge ``name`` to ``value``."""
        self.gauges[name] = float(value)

    def observe(self, name, value, *, bounds=DEFAULT_LATENCY_BUCKETS_MS):
        """Add one observation to histogram ``name`` (created on first
        use with ``bounds``)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds)
        hist.observe(value)
        return hist

    def record_event(self, event):
        """Fold one traced event into the registry."""
        self.inc(f"events.{event.kind}.{event.name}")
        if event.kind == "counter":
            for series, value in event.args.items():
                if isinstance(value, (int, float)):
                    self.set_gauge(f"{event.name}.{series}", value)

    def snapshot(self):
        """One flat dict of everything, deterministically ordered."""
        out = {}
        for name in sorted(self.counters):
            out[f"counter.{name}"] = self.counters[name]
        for name in sorted(self.gauges):
            out[f"gauge.{name}"] = self.gauges[name]
        for name in sorted(self.histograms):
            for key, value in self.histograms[name].snapshot().items():
                out[f"hist.{name}.{key}"] = value
        return out
