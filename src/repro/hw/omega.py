"""The multi-stage Omega network of TDQ-2.

The paper routes the CSC non-zero stream to the PE owning each row
through an Omega network — "much less area and hardware complexity"
than a crossbar — with a local buffer per router in case the next stage
saturates.

Implementation: destination-tag routing. A task at position ``p`` of
stage ``s`` advances to position ``((p << 1) & (P - 1)) | bit_s(dest)``
of stage ``s + 1`` (MSB first); after ``log2(P)`` stages the position
*is* the destination. The two positions that map to the same next slot
differ only in their MSB — exactly the two inputs of one 2x2 switch —
so per-slot single-acceptance per cycle models switch contention
faithfully. Blocked tasks wait in the stage buffer (head-of-line).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigError


class OmegaNetwork:
    """An Omega network with ``log2(n_ports)`` stages of buffered switches."""

    def __init__(self, n_ports, *, buffer_depth=4):
        if n_ports < 2 or (n_ports & (n_ports - 1)) != 0:
            raise ConfigError(
                f"n_ports must be a power of two >= 2, got {n_ports}"
            )
        if buffer_depth < 1:
            raise ConfigError(
                f"buffer_depth must be >= 1, got {buffer_depth}"
            )
        self.n_ports = n_ports
        self.n_stages = int(np.log2(n_ports))
        self.buffer_depth = buffer_depth
        # stage buffers: stages x ports, each a FIFO of (dest, payload)
        self._buffers = [
            [deque() for _ in range(n_ports)] for _ in range(self.n_stages)
        ]
        self._rr_bit = 0  # round-robin arbitration between switch inputs

    def occupancy(self):
        """Total buffered tasks across all stages."""
        return sum(
            len(slot) for stage in self._buffers for slot in stage
        )

    @property
    def empty(self):
        """True when nothing is in flight inside the network."""
        return self.occupancy() == 0

    def inject(self, port, dest, payload):
        """Offer a task to input ``port``; False when the entry is full."""
        if not 0 <= dest < self.n_ports:
            raise ConfigError(f"dest {dest} out of range")
        slot = self._buffers[0][port]
        if len(slot) >= self.buffer_depth:
            return False
        slot.append((dest, payload))
        return True

    def step(self):
        """Advance one cycle; returns the list of (dest, payload) exits.

        Stages are processed back to front so a task can advance at most
        one stage per cycle and freed slots become available to the
        previous stage in the same cycle (credit-style flow control).
        """
        exits = []
        for stage in range(self.n_stages - 1, -1, -1):
            self._advance_stage(stage, exits)
        self._rr_bit ^= 1
        return exits

    def _advance_stage(self, stage, exits):
        """Move head tasks of ``stage`` into ``stage + 1`` (or out)."""
        n = self.n_ports
        buffers = self._buffers[stage]
        last = stage == self.n_stages - 1
        bit_shift = self.n_stages - 1 - stage  # MSB-first routing bit
        # Gather desired next-slot for each head task.
        claims = {}
        for port in range(n):
            slot = buffers[port]
            if not slot:
                continue
            dest, _payload = slot[0]
            routing_bit = (dest >> bit_shift) & 1
            next_pos = ((port << 1) & (n - 1)) | routing_bit
            claims.setdefault(next_pos, []).append(port)
        for next_pos, ports in claims.items():
            # At most one task per output per cycle; alternate priority
            # between the two switch inputs to avoid starvation.
            ports.sort()
            winner = ports[self._rr_bit % len(ports)]
            if last:
                dest, payload = buffers[winner].popleft()
                exits.append((dest, payload))
                continue
            target = self._buffers[stage + 1][next_pos]
            if len(target) < self.buffer_depth:
                target.append(buffers[winner].popleft())
