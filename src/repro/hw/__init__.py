"""Detailed cycle-level simulator of the SPMM engine (paper Fig. 7).

Where :mod:`repro.accel` models rounds analytically, this package steps
the microarchitecture cycle by cycle:

* :mod:`repro.hw.omega` — the multi-stage Omega network of TDQ-2, with
  destination-tag routing, 2x2 switch contention and per-stage buffers;
* :mod:`repro.hw.queues` — per-PE task queues with occupancy tracking;
* :mod:`repro.hw.pe` — the PE: arbiter over its queues, a MAC pipeline
  of configurable depth, and the RaW stall buffer that holds tasks
  targeting a row already in flight;
* :mod:`repro.hw.dispatch` — TDQ-1 (dense-stored stream, direct to
  queues) and TDQ-2 (CSC stream through the Omega network) dispatchers,
  both with the queue-compare local-sharing heuristic;
* :mod:`repro.hw.engine` — the full engine: runs a complete SPMM,
  returns the numeric result plus cycle/utilization statistics.

It carries real values (results are checked against numpy) and measures
the true cost of hazards and network contention. It is O(cycles x PEs)
pure Python, so it is meant for small matrices: unit tests, the
fast-model validation property tests, and the microarchitecture
examples.
"""

from repro.hw.task import Task
from repro.hw.queues import TaskQueue, QueueGroup
from repro.hw.omega import OmegaNetwork
from repro.hw.pe import ProcessingElement
from repro.hw.dispatch import Tdq1Dispatcher, Tdq2Dispatcher
from repro.hw.engine import DetailedStats, simulate_spmm_detailed

__all__ = [
    "Task",
    "TaskQueue",
    "QueueGroup",
    "OmegaNetwork",
    "ProcessingElement",
    "Tdq1Dispatcher",
    "Tdq2Dispatcher",
    "DetailedStats",
    "simulate_spmm_detailed",
]
