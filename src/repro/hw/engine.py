"""The detailed SPMM engine: full cycle loop over dispatcher, network, PEs.

``simulate_spmm_detailed`` runs ``A @ B`` column by column (paper
Fig. 5), measuring true cycle counts including Omega-network contention,
queue back-pressure and RaW stalls, and returns the numeric result so
tests can check it against numpy. Complexity is O(cycles x PEs) pure
Python — use it for small matrices; :mod:`repro.accel` covers the large
ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.workload import initial_assignment
from repro.errors import ConfigError, SimulationError
from repro.hw.dispatch import Tdq1Dispatcher, Tdq2Dispatcher
from repro.hw.omega import OmegaNetwork
from repro.hw.pe import ProcessingElement
from repro.sparse.convert import coo_to_csc
from repro.sparse.coo import CooMatrix
from repro.sparse.csc import CscMatrix

_MAX_CYCLES_PER_ROUND = 2_000_000


@dataclass(frozen=True)
class DetailedStats:
    """Measured statistics of one detailed SPMM simulation."""

    cycles: int
    tasks: int
    n_pes: int
    busy_cycles: np.ndarray
    """Per-PE cycles spent issuing MAC operations."""
    stall_events: int
    """Cycles lost to RaW hazards across all PEs."""
    max_queue_occupancy: int
    """High-water mark of any PE's queue group."""
    cycles_per_round: np.ndarray

    @property
    def utilization(self):
        """MAC issue slots used / offered: tasks / (PEs x cycles)."""
        denom = self.n_pes * self.cycles
        return self.tasks / denom if denom else 0.0


def simulate_spmm_detailed(a_matrix, b_dense, *, n_pes=8, hop=0,
                           mac_latency=5, queues_per_pe=4, tdq="tdq2",
                           owner_of_row=None, buffer_depth=4):
    """Cycle-accurate simulation of ``A @ B`` on the SPMM engine.

    Parameters
    ----------
    a_matrix:
        The sparse operand (:class:`CooMatrix` or :class:`CscMatrix`).
    b_dense:
        The dense operand, shape ``(A.shape[1], k)``.
    tdq:
        ``"tdq2"`` streams A in CSC through the Omega network (the
        ultra-sparse path); ``"tdq1"`` scans A stored dense (the
        general-sparse path). Results are identical; timing differs.
    owner_of_row:
        Optional row->PE map (defaults to the contiguous equal split).

    Returns
    -------
    (result, stats):
        ``result`` is the dense product; ``stats`` a :class:`DetailedStats`.
    """
    if isinstance(a_matrix, CooMatrix):
        a_csc = coo_to_csc(a_matrix)
    elif isinstance(a_matrix, CscMatrix):
        a_csc = a_matrix
    else:
        raise ConfigError(
            f"a_matrix must be CooMatrix or CscMatrix, got "
            f"{type(a_matrix).__name__}"
        )
    b_dense = np.asarray(b_dense, dtype=np.float64)
    if b_dense.ndim != 2 or b_dense.shape[0] != a_csc.shape[1]:
        raise ConfigError(
            f"B must be ({a_csc.shape[1]}, k), got {b_dense.shape}"
        )
    if tdq not in ("tdq1", "tdq2"):
        raise ConfigError(f"tdq must be 'tdq1' or 'tdq2', got {tdq}")

    m, k = a_csc.shape[0], b_dense.shape[1]
    if owner_of_row is None:
        owner_of_row = initial_assignment(m, n_pes)
    else:
        owner_of_row = np.asarray(owner_of_row, dtype=np.int64)
        if owner_of_row.size != m:
            raise ConfigError(
                f"owner_of_row must have length {m}, got {owner_of_row.size}"
            )

    pes = [
        ProcessingElement(
            p, n_queues=queues_per_pe, mac_latency=mac_latency
        )
        for p in range(n_pes)
    ]
    network = None
    if tdq == "tdq2":
        ports = 1 << max(int(np.ceil(np.log2(max(n_pes, 2)))), 1)
        network = OmegaNetwork(ports, buffer_depth=buffer_depth)
        dispatcher = Tdq2Dispatcher(
            a_csc, owner_of_row, pes, network, hop=hop
        )
    else:
        dispatcher = Tdq1Dispatcher(
            a_csc.to_dense(), owner_of_row, pes, hop=hop
        )

    result = np.zeros((m, k))
    cycles_per_round = np.zeros(k, dtype=np.int64)
    total_cycles = 0
    for col in range(k):
        acc = result[:, col]
        dispatcher.start_column(b_dense[:, col])
        round_cycles = _run_round(dispatcher, network, pes, acc, total_cycles)
        cycles_per_round[col] = round_cycles
        total_cycles += round_cycles

    busy = np.array([pe.busy_cycles for pe in pes], dtype=np.int64)
    return result, DetailedStats(
        cycles=int(total_cycles),
        tasks=a_csc.nnz * k,
        n_pes=n_pes,
        busy_cycles=busy,
        stall_events=sum(pe.stall_events for pe in pes),
        max_queue_occupancy=max(pe.queues.high_water for pe in pes),
        cycles_per_round=cycles_per_round,
    )


def _run_round(dispatcher, network, pes, acc, start_cycle):
    """Run one column to completion; returns its cycle count.

    The round barrier matches the paper: "synchronization is only needed
    when an entire column of the resulting matrix C is completely
    calculated".
    """
    cycle = start_cycle
    for _ in range(_MAX_CYCLES_PER_ROUND):
        dispatcher.step()
        if network is not None:
            exits = network.step()
            dispatcher.deliver(exits)
        for pe in pes:
            pe.step(cycle, acc)
        cycle += 1
        network_empty = network is None or network.empty
        if (
            dispatcher.exhausted
            and network_empty
            and all(pe.idle for pe in pes)
        ):
            # Let the MAC pipelines drain fully.
            drain = max(pe.drain_cycles_left() for pe in pes)
            for extra in range(drain + 1):
                for pe in pes:
                    pe.step(cycle + extra, acc)
            cycle += drain
            return cycle - start_cycle
    raise SimulationError(
        "round did not converge within the cycle limit; "
        "likely a deadlock in dispatch/back-pressure"
    )
