"""The unit of work flowing through the simulated hardware.

One task is one multiply-accumulate: ``C[row, col] += a_val * b_val``
(paper Eq. 4: element ``b(j, k)`` broadcast over column ``j`` of A).
``owner`` is the PE whose ACC bank holds the output row; local sharing
may execute the task on a neighbouring PE, but the accumulation returns
to the owner's bank.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Task:
    """One MAC task."""

    row: int
    a_val: float
    b_val: float
    owner: int

    @property
    def product(self):
        """The value this task contributes to its output row."""
        return self.a_val * self.b_val
