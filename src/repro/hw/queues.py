"""Per-PE task queues with occupancy tracking.

Each PE owns several queues (Fig. 6-B shows four); the dispatcher pushes
into them and the PE's arbiter pops. The pending-task counters are what
both the local-sharing comparison and the PESM's empty signals observe,
so the queues track their high-water mark for the area model.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError


class TaskQueue:
    """A FIFO of tasks with optional capacity and high-water tracking."""

    def __init__(self, capacity=None):
        if capacity is not None and capacity < 1:
            raise ConfigError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._items = deque()
        self.high_water = 0

    def __len__(self):
        return len(self._items)

    @property
    def full(self):
        """True when a bounded queue cannot accept another task."""
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def empty(self):
        """True when no tasks are pending (the PESM 'empty' signal)."""
        return not self._items

    def push(self, task):
        """Enqueue; returns False (and drops nothing) when full."""
        if self.full:
            return False
        self._items.append(task)
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        return True

    def peek(self):
        """The head task without removing it (None when empty)."""
        return self._items[0] if self._items else None

    def pop(self):
        """Dequeue the head task (None when empty)."""
        return self._items.popleft() if self._items else None


class QueueGroup:
    """The bundle of queues belonging to one PE."""

    def __init__(self, n_queues, capacity=None):
        if n_queues < 1:
            raise ConfigError(f"n_queues must be >= 1, got {n_queues}")
        self.queues = [TaskQueue(capacity) for _ in range(n_queues)]
        self._next_push = 0

    def __len__(self):
        return sum(len(q) for q in self.queues)

    @property
    def pending(self):
        """Total pending tasks (the counter local sharing compares)."""
        return len(self)

    @property
    def high_water(self):
        """Peak total occupancy observed."""
        return sum(q.high_water for q in self.queues)

    def push(self, task):
        """Round-robin push across the PE's queues; False if all full."""
        for offset in range(len(self.queues)):
            queue = self.queues[(self._next_push + offset) % len(self.queues)]
            if queue.push(task):
                self._next_push = (self._next_push + offset + 1) % len(
                    self.queues
                )
                return True
        return False

    def pop_non_hazard(self, in_flight_rows):
        """Arbiter pop: head task whose row is not in flight.

        Scans queues round-robin; skips heads that would RaW-hazard
        against ``in_flight_rows``. Returns ``(task, stalled)`` where
        ``stalled`` is True when tasks were pending but every available
        head conflicted (the PE loses the cycle — this is the stall the
        fast model's cooldown bound approximates).
        """
        saw_pending = False
        for queue in self.queues:
            head = queue.peek()
            if head is None:
                continue
            saw_pending = True
            if head.row not in in_flight_rows:
                return queue.pop(), False
        return None, saw_pending
