"""The processing element: arbiter, MAC pipeline, RaW stall handling.

Paper Sec. 3.3: a PE couples a multiply-accumulate unit (MAC) with an
address generation unit and a bank of the accumulation buffer (ACC).
The MAC is pipelined with latency ``T``; it accepts a new task per cycle
unless the task targets a row whose partial result is still in flight —
the Read-after-Write hazard — in which case the task waits in a stall
buffer while the arbiter issues from another queue.
"""

from __future__ import annotations

from collections import deque

from repro.hw.queues import QueueGroup


class ProcessingElement:
    """One PE with its queues, MAC pipeline and ACC bank."""

    def __init__(self, pe_id, *, n_queues=4, mac_latency=5,
                 queue_capacity=None):
        self.pe_id = pe_id
        self.queues = QueueGroup(n_queues, queue_capacity)
        self.mac_latency = mac_latency
        # In-flight MAC operations: deque of (finish_cycle, task)
        self._pipeline = deque()
        self._in_flight_rows = set()
        # Tasks parked on a RaW conflict, retried before the queues.
        self._stall_buffer = deque()
        self.busy_cycles = 0
        self.stall_events = 0
        self.tasks_executed = 0

    @property
    def pending(self):
        """Tasks visible to the sharing logic (queues + stall buffer)."""
        return self.queues.pending + len(self._stall_buffer)

    @property
    def idle(self):
        """True when nothing is queued or in flight."""
        return (
            self.pending == 0 and not self._pipeline
        )

    def step(self, cycle, acc):
        """Advance one cycle: retire finished MACs, issue one new task.

        ``acc`` is the global accumulator array (the union of all ACC
        banks); retiring a task performs the accumulate. Issuing follows
        the paper's arbiter: stall-buffer first, then the first queue
        head that does not RaW-conflict with an in-flight row.
        """
        # Retire completed MAC operations.
        while self._pipeline and self._pipeline[0][0] <= cycle:
            _finish, task = self._pipeline.popleft()
            acc[task.row] += task.product
            self._in_flight_rows.discard(task.row)

        task = self._take_task()
        if task is None:
            return
        self._pipeline.append((cycle + self.mac_latency, task))
        self._in_flight_rows.add(task.row)
        self.busy_cycles += 1
        self.tasks_executed += 1

    def _take_task(self):
        """Pick the next issuable task, honouring RaW ordering."""
        if self._stall_buffer:
            head = self._stall_buffer[0]
            if head.row not in self._in_flight_rows:
                return self._stall_buffer.popleft()
        task, stalled = self.queues.pop_non_hazard(self._in_flight_rows)
        if task is not None:
            return task
        if stalled:
            # Every available head conflicts: move one conflicting task
            # to the stall buffer (bounded by the MAC depth, like the
            # scoreboard the paper describes) and lose the cycle.
            self.stall_events += 1
            if len(self._stall_buffer) < self.mac_latency:
                for queue in self.queues.queues:
                    head = queue.peek()
                    if head is not None:
                        self._stall_buffer.append(queue.pop())
                        break
        return None

    def drain_cycles_left(self):
        """Cycles until the MAC pipeline is empty (for run-off timing)."""
        return len(self._pipeline)
