"""Task distributors: TDQ-1 (dense-stored) and TDQ-2 (CSC via Omega).

TDQ-1 (paper Fig. 7 left): the general-sparse matrix is stored dense and
row-partitioned; the distributor scans ``n_pes / (1 - sparsity)`` raw
elements per cycle so that, with evenly spread non-zeros, each PE
receives about one task per cycle. Zeros are filtered before the queues.

TDQ-2 (Fig. 7 right): the ultra-sparse matrix is stored CSC; the dense
value array is streamed directly (no zeros to skip) and each non-zero is
routed to the PE owning its row through the Omega network.

Both apply the *dynamic local sharing* rule at the point where a task
is about to be queued: compare the pending-task counters of the owner
and its neighbours within ``hop`` positions and enqueue at the least
loaded (paper Sec. 4.1). The owner id travels with the task so the
result accumulates into the owner's ACC bank either way.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.hw.task import Task


def choose_target(owner, hop, pes):
    """The local-sharing decision: least-pending PE within ``hop``.

    Ties break toward the owner (no pointless migration).
    """
    if hop == 0:
        return owner
    lo = max(0, owner - hop)
    hi = min(len(pes) - 1, owner + hop)
    best = owner
    best_pending = pes[owner].pending
    for candidate in range(lo, hi + 1):
        pending = pes[candidate].pending
        if pending < best_pending:
            best = candidate
            best_pending = pending
    return best


class Tdq1Dispatcher:
    """Streams a dense-stored sparse matrix directly into PE queues."""

    def __init__(self, a_dense, owner_of_row, pes, *, hop=0,
                 scan_bandwidth=None):
        a_dense = np.asarray(a_dense, dtype=np.float64)
        if a_dense.ndim != 2:
            raise ConfigError("a_dense must be 2-D")
        self.a_dense = a_dense
        self.owner_of_row = np.asarray(owner_of_row, dtype=np.int64)
        self.pes = pes
        self.hop = hop
        if scan_bandwidth is None:
            # n_pes / (1 - sparsity), the paper's matched scan rate.
            density = (
                np.count_nonzero(a_dense) / a_dense.size if a_dense.size else 1.0
            )
            scan_bandwidth = max(int(len(pes) / max(density, 1e-9)), len(pes))
        self.scan_bandwidth = scan_bandwidth
        self._b_val = None
        self._flat_index = 0
        self._n_cells = a_dense.shape[0] * a_dense.shape[1]

    def start_column(self, b_column):
        """Begin streaming one round (one column of the dense operand).

        ``b_column`` holds the operand values indexed by the A-column of
        each task (for ``X @ W`` this is a column of W).
        """
        self._b_val = np.asarray(b_column, dtype=np.float64)
        self._flat_index = 0

    @property
    def exhausted(self):
        """True when the scan of the current round has finished."""
        return self._flat_index >= self._n_cells

    def step(self):
        """Scan up to ``scan_bandwidth`` cells, queueing the non-zeros.

        Returns the number of tasks enqueued. A full target queue stops
        the scan early (back-pressure).
        """
        if self._b_val is None:
            raise ConfigError("start_column() must be called first")
        issued = 0
        scanned = 0
        n_cols = self.a_dense.shape[1]
        flat = self.a_dense.ravel()
        while scanned < self.scan_bandwidth and not self.exhausted:
            value = flat[self._flat_index]
            row = self._flat_index // n_cols
            col = self._flat_index - row * n_cols
            if value != 0.0:
                owner = int(self.owner_of_row[row])
                target = choose_target(owner, self.hop, self.pes)
                task = Task(
                    row=row,
                    a_val=float(value),
                    b_val=float(self._b_val[col]),
                    owner=owner,
                )
                if not self.pes[target].queues.push(task):
                    break  # back-pressure: retry next cycle
                issued += 1
            self._flat_index += 1
            scanned += 1
        return issued


class Tdq2Dispatcher:
    """Streams a CSC matrix through the Omega network to row owners."""

    def __init__(self, a_csc, owner_of_row, pes, network, *, hop=0,
                 inject_bandwidth=None):
        self.a_csc = a_csc
        self.owner_of_row = np.asarray(owner_of_row, dtype=np.int64)
        self.pes = pes
        self.network = network
        self.hop = hop
        self.inject_bandwidth = inject_bandwidth or len(pes)
        self._cursor = 0
        self._limit = 0
        self._b_val = None
        self._col = 0

    def start_column(self, b_column):
        """Begin one round: stream every stored non-zero of A once."""
        self._b_val = np.asarray(b_column, dtype=np.float64)
        self._cursor = 0
        self._limit = self.a_csc.nnz
        self._col_starts = self.a_csc.indptr
        self._col = 0

    @property
    def exhausted(self):
        """True when every non-zero of this round has been injected."""
        return self._cursor >= self._limit

    def step(self):
        """Inject up to ``inject_bandwidth`` non-zeros into the network.

        The sharing decision happens here — the paper "adjust[s] the
        address tag of the task before it is pushed into the TQs", so a
        task heading to an overloaded PE is retagged to a neighbour and
        takes a *different network route*. This matters: without the
        retag, every task for a hot PE would serialize through its
        single Omega output port and sharing could never engage.
        """
        injected = 0
        while injected < self.inject_bandwidth and not self.exhausted:
            # Advance the implicit column pointer.
            while self._col_starts[self._col + 1] <= self._cursor:
                self._col += 1
            row = int(self.a_csc.row_ids[self._cursor])
            owner = int(self.owner_of_row[row])
            target = choose_target(owner, self.hop, self.pes)
            task = Task(
                row=row,
                a_val=float(self.a_csc.vals[self._cursor]),
                b_val=float(self._b_val[self._col]),
                owner=owner,
            )
            port = self._cursor % self.network.n_ports
            if not self.network.inject(port, target, task):
                break  # entry stage full: back-pressure
            self._cursor += 1
            injected += 1
        return injected

    def deliver(self, exits):
        """Queue network exits at the PE their (possibly retagged)
        destination names. The owner travels with the task, so the
        accumulation address is unchanged regardless of who executes.
        """
        for dest, task in exits:
            target = min(int(dest), len(self.pes) - 1)
            self.pes[target].queues.push(task)
