"""Multi-layer GCN reference model.

Chains :class:`~repro.model.layers.GcnLayer` objects over a shared
normalized adjacency, with ReLU between layers and identity (optionally
softmax) at the output, matching the 2-layer networks of Kipf & Welling
that the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.model.activations import row_softmax
from repro.model.layers import GcnLayer
from repro.sparse.coo import CooMatrix


@dataclass(frozen=True)
class ForwardTrace:
    """All intermediates of a full forward pass.

    ``layer_results`` holds one :class:`LayerResult` per layer;
    ``logits`` is the final pre-softmax output, ``probabilities`` the
    softmax-normalized classification output.
    """

    layer_results: list
    logits: np.ndarray
    probabilities: np.ndarray

    @property
    def output(self):
        """Alias for the classification probabilities."""
        return self.probabilities

    def layer_input_density(self, layer_index):
        """Density of the input features to ``layer_index`` (X1, X2, ...).

        Layer 0's input density is not recorded here (it is a property of
        the dataset); for deeper layers it is the previous layer's output
        density — the quantity Table 1 reports as the X2 row.
        """
        if layer_index == 0:
            raise ValueError("layer 0 input density belongs to the dataset")
        return self.layer_results[layer_index - 1].output_density


class GcnModel:
    """A multi-layer spectral GCN bound to one graph.

    Any number of layers is supported (the paper's intro motivates
    deeper GCNs, up to 152 layers); ``a_hops`` applies the paper's
    multi-hop aggregation ``A^k (X W)`` in every layer.
    """

    def __init__(self, adjacency, weights, *, final_softmax=True, a_hops=1):
        if not isinstance(adjacency, CooMatrix):
            raise ShapeError(
                f"adjacency must be CooMatrix, got {type(adjacency).__name__}"
            )
        if not weights:
            raise ShapeError("at least one weight matrix is required")
        self.layers = []
        for index, weight in enumerate(weights):
            is_last = index == len(weights) - 1
            activation = "identity" if is_last else "relu"
            self.layers.append(
                GcnLayer(
                    adjacency, weight, activation=activation, a_hops=a_hops
                )
            )
        for left, right in zip(self.layers, self.layers[1:]):
            if left.out_features != right.in_features:
                raise ShapeError(
                    f"layer dims do not chain: {left.out_features} -> "
                    f"{right.in_features}"
                )
        self.final_softmax = final_softmax

    @property
    def n_layers(self):
        """Number of GCN layers."""
        return len(self.layers)

    def forward(self, features):
        """Run full inference; returns a :class:`ForwardTrace`."""
        results = []
        current = features
        for layer in self.layers:
            result = layer.forward(current)
            results.append(result)
            current = result.output
        logits = results[-1].pre_activation
        probs = row_softmax(logits) if self.final_softmax else logits
        return ForwardTrace(
            layer_results=results, logits=logits, probabilities=probs
        )

    def forward_ax_w(self, features):
        """Run inference in the rejected (A X) W order (for equivalence tests)."""
        results = []
        current = features
        for layer in self.layers:
            result = layer.forward_ax_w(current)
            results.append(result)
            current = result.output
        logits = results[-1].pre_activation
        probs = row_softmax(logits) if self.final_softmax else logits
        return ForwardTrace(
            layer_results=results, logits=logits, probabilities=probs
        )

    def predict(self, features):
        """Class index per node (argmax of the output probabilities)."""
        return np.argmax(self.forward(features).probabilities, axis=1)


def build_model(dataset, *, final_softmax=True):
    """Construct a :class:`GcnModel` from a :class:`GcnDataset`."""
    return GcnModel(
        dataset.adjacency, dataset.weights, final_softmax=final_softmax
    )
