"""Numpy reference implementation of spectral GCN inference (Eq. 1).

This is the *semantics* of the workload: ``X(l+1) = sigma(A X(l) W(l))``.
The accelerator simulators must produce numerically identical results
(up to accumulation-order rounding), which the test suite enforces.
The :mod:`repro.model.ordering` module reproduces the paper's Table 2
computation-order analysis, the argument for evaluating ``A (X W)``.
"""

from repro.model.activations import identity, relu, row_softmax
from repro.model.layers import GcnLayer, LayerResult
from repro.model.gcn import GcnModel, ForwardTrace, build_model
from repro.model.ordering import (
    OrderingOps,
    count_ops_a_xw,
    count_ops_ax_w,
    layer_ordering_ops,
    structural_product_nnz,
    expected_product_nnz,
)

__all__ = [
    "identity",
    "relu",
    "row_softmax",
    "GcnLayer",
    "LayerResult",
    "GcnModel",
    "ForwardTrace",
    "build_model",
    "OrderingOps",
    "count_ops_a_xw",
    "count_ops_ax_w",
    "layer_ordering_ops",
    "structural_product_nnz",
    "expected_product_nnz",
]
