"""Activation functions used by GCN layers.

The paper's networks use ReLU between layers (which is also what makes
X2 sparse again — Sec. 3.3: "after the activation function ReLU, a large
portion of entries become zero") and a row softmax on the output layer
for classification.
"""

from __future__ import annotations

import numpy as np


def relu(x):
    """Elementwise max(x, 0)."""
    return np.maximum(np.asarray(x, dtype=np.float64), 0.0)


def identity(x):
    """No-op activation (used on the output layer before softmax)."""
    return np.asarray(x, dtype=np.float64)


def row_softmax(x):
    """Numerically stable softmax over each row."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


ACTIVATIONS = {
    "relu": relu,
    "identity": identity,
    "softmax": row_softmax,
}


def get_activation(name):
    """Look up an activation by name; raises KeyError with choices listed."""
    try:
        return ACTIVATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; expected one of {sorted(ACTIVATIONS)}"
        )
